"""Parser unit tests: clause coverage, precedence, subqueries, errors."""

import pytest

from repro.common.errors import SqlSyntaxError
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse, parse_expression, parse_select


class TestSelectClauses:
    def test_minimal_select(self):
        stmt = parse_select("SELECT a FROM t")
        assert len(stmt.select_items) == 1
        assert isinstance(stmt.from_items[0], ast.TableRef)

    def test_select_star(self):
        stmt = parse_select("SELECT * FROM t")
        assert isinstance(stmt.select_items[0].expr, ast.Star)

    def test_qualified_star(self):
        stmt = parse_select("SELECT t.* FROM t")
        assert stmt.select_items[0].expr.qualifier == "t"

    def test_alias_with_as(self):
        stmt = parse_select("SELECT a AS x FROM t")
        assert stmt.select_items[0].alias == "x"

    def test_alias_without_as(self):
        stmt = parse_select("SELECT a x FROM t")
        assert stmt.select_items[0].alias == "x"

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct

    def test_top(self):
        assert parse_select("SELECT TOP 5 a FROM t").limit == 5

    def test_limit(self):
        assert parse_select("SELECT a FROM t LIMIT 7").limit == 7

    def test_where(self):
        stmt = parse_select("SELECT a FROM t WHERE a > 1")
        assert isinstance(stmt.where, ast.BinaryOp)

    def test_group_by_multiple(self):
        stmt = parse_select("SELECT a, b FROM t GROUP BY a, b")
        assert len(stmt.group_by) == 2

    def test_having(self):
        stmt = parse_select(
            "SELECT a, SUM(b) FROM t GROUP BY a HAVING SUM(b) > 10")
        assert stmt.having is not None

    def test_order_by_directions(self):
        stmt = parse_select("SELECT a, b FROM t ORDER BY a DESC, b ASC, a")
        assert [o.ascending for o in stmt.order_by] == [False, True, True]

    def test_comma_join_list(self):
        stmt = parse_select("SELECT a FROM t, u, v")
        assert len(stmt.from_items) == 3

    def test_trailing_semicolon_ok(self):
        assert parse("SELECT a FROM t;")

    def test_qualified_table_name_collapses(self):
        stmt = parse_select("SELECT a FROM [tpch].[dbo].[orders]")
        assert stmt.from_items[0].name == "orders"


class TestJoins:
    def test_inner_join(self):
        stmt = parse_select("SELECT a FROM t JOIN u ON t.a = u.b")
        join = stmt.from_items[0]
        assert isinstance(join, ast.JoinClause)
        assert join.kind == "INNER"

    def test_explicit_inner(self):
        join = parse_select(
            "SELECT a FROM t INNER JOIN u ON t.a = u.b").from_items[0]
        assert join.kind == "INNER"

    def test_left_outer(self):
        join = parse_select(
            "SELECT a FROM t LEFT OUTER JOIN u ON t.a = u.b").from_items[0]
        assert join.kind == "LEFT"

    def test_cross_join_has_no_condition(self):
        join = parse_select("SELECT a FROM t CROSS JOIN u").from_items[0]
        assert join.kind == "CROSS"
        assert join.condition is None

    def test_chained_joins_left_associative(self):
        join = parse_select(
            "SELECT a FROM t JOIN u ON t.a = u.a JOIN v ON u.b = v.b"
        ).from_items[0]
        assert isinstance(join.left, ast.JoinClause)
        assert isinstance(join.right, ast.TableRef)

    def test_derived_table_requires_alias(self):
        stmt = parse_select("SELECT x FROM (SELECT a AS x FROM t) AS d")
        derived = stmt.from_items[0]
        assert isinstance(derived, ast.DerivedTable)
        assert derived.alias == "d"

    def test_join_missing_on_raises(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT a FROM t JOIN u")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_and_over_or(self):
        expr = parse_expression("a OR b AND c")
        assert expr.op == "OR"

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_not_binds_tighter_than_and(self):
        expr = parse_expression("NOT a AND b")
        assert expr.op == "AND"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_comparison_chain_not_allowed_as_chain(self):
        expr = parse_expression("a < b")
        assert expr.op == "<"

    def test_neq_normalized(self):
        assert parse_expression("a != b").op == "<>"

    def test_unary_minus(self):
        expr = parse_expression("-a")
        assert isinstance(expr, ast.UnaryOp)

    def test_between(self):
        expr = parse_expression("a BETWEEN 1 AND 5")
        assert isinstance(expr, ast.Between)

    def test_not_between(self):
        assert parse_expression("a NOT BETWEEN 1 AND 5").negated

    def test_like(self):
        expr = parse_expression("name LIKE 'forest%'")
        assert isinstance(expr, ast.Like)

    def test_in_list(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.values) == 3

    def test_not_in_list(self):
        assert parse_expression("x NOT IN (1)").negated

    def test_is_null(self):
        assert isinstance(parse_expression("x IS NULL"), ast.IsNull)

    def test_is_not_null(self):
        assert parse_expression("x IS NOT NULL").negated

    def test_case_expression(self):
        expr = parse_expression(
            "CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' "
            "ELSE 'many' END")
        assert isinstance(expr, ast.CaseExpr)
        assert len(expr.whens) == 2
        assert expr.else_result is not None

    def test_case_without_else(self):
        expr = parse_expression("CASE WHEN a = 1 THEN 1 END")
        assert expr.else_result is None

    def test_case_without_when_raises(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("CASE END")

    def test_cast(self):
        expr = parse_expression("CAST(a AS DECIMAL(10, 2))")
        assert isinstance(expr, ast.Cast)
        assert expr.type_name == "DECIMAL(10, 2)"

    def test_date_literal(self):
        expr = parse_expression("DATE '1994-01-01'")
        assert isinstance(expr, ast.Literal)
        assert expr.is_date

    def test_dateadd(self):
        expr = parse_expression("DATEADD(year, 1, DATE '1994-01-01')")
        assert isinstance(expr, ast.FuncCall)
        assert expr.args[0].value == "year"

    def test_string_concat(self):
        assert parse_expression("a || b").op == "||"

    def test_null_literal(self):
        assert parse_expression("NULL").value is None

    def test_boolean_literals(self):
        assert parse_expression("TRUE").value is True
        assert parse_expression("FALSE").value is False


class TestAggregates:
    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr.args[0], ast.Star)

    def test_count_distinct(self):
        expr = parse_expression("COUNT(DISTINCT a)")
        assert expr.distinct

    @pytest.mark.parametrize("func", ["SUM", "AVG", "MIN", "MAX"])
    def test_aggregate_functions(self, func):
        expr = parse_expression(f"{func}(a)")
        assert expr.is_aggregate
        assert expr.name == func


class TestSubqueries:
    def test_in_subquery(self):
        stmt = parse_select(
            "SELECT a FROM t WHERE a IN (SELECT b FROM u)")
        assert isinstance(stmt.where, ast.InSubquery)

    def test_not_in_subquery(self):
        stmt = parse_select(
            "SELECT a FROM t WHERE a NOT IN (SELECT b FROM u)")
        assert stmt.where.negated

    def test_exists(self):
        stmt = parse_select(
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.b = t.a)")
        assert isinstance(stmt.where, ast.ExistsExpr)

    def test_scalar_subquery_in_comparison(self):
        stmt = parse_select(
            "SELECT a FROM t WHERE a > (SELECT MAX(b) FROM u)")
        assert isinstance(stmt.where.right, ast.ScalarSubquery)

    def test_nested_subqueries(self):
        stmt = parse_select(
            "SELECT a FROM t WHERE a IN "
            "(SELECT b FROM u WHERE b IN (SELECT c FROM v))")
        inner = stmt.where.subquery.where
        assert isinstance(inner, ast.InSubquery)


class TestOtherStatements:
    def test_create_table(self):
        stmt = parse("CREATE TABLE temp1 (a INTEGER, b VARCHAR(10))")
        assert isinstance(stmt, ast.CreateTableStatement)
        assert [c.name for c in stmt.columns] == ["a", "b"]

    def test_insert_values(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.InsertStatement)
        assert len(stmt.values) == 2

    def test_insert_select(self):
        stmt = parse("INSERT INTO t SELECT a, b FROM u")
        assert stmt.select is not None


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "SELECT",
        "SELECT FROM t",
        "SELECT a FROM",
        "SELECT a FROM t WHERE",
        "SELECT a FROM t GROUP",
        "SELECT a FROM t ORDER a",
        "FROB x",
        "SELECT a FROM t extra garbage here",
        "SELECT a, FROM t",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(SqlSyntaxError):
            parse(bad)

    def test_parse_select_rejects_create(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("CREATE TABLE t (a INTEGER)")


class TestRoundTrip:
    QUERIES = [
        "SELECT a FROM t",
        "SELECT DISTINCT a, b AS x FROM t WHERE (a > 1) ORDER BY a ASC",
        "SELECT a FROM t AS x INNER JOIN u AS y ON (x.a = y.b)",
        "SELECT a, SUM(b) AS s FROM t GROUP BY a HAVING (SUM(b) > 3)",
        "SELECT a FROM t WHERE (a IN (SELECT b FROM u))",
        "SELECT a FROM t WHERE (EXISTS (SELECT 1 FROM u WHERE (u.b = t.a)))",
        "SELECT CASE WHEN (a = 1) THEN 'x' ELSE 'y' END AS c FROM t",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_to_sql_reparses_to_same_text(self, sql):
        once = parse(sql).to_sql()
        twice = parse(once).to_sql()
        assert once == twice
