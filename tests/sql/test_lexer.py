"""Lexer unit tests."""

import pytest

from repro.common.errors import SqlSyntaxError
from repro.sql.lexer import Token, TokenType, tokenize


def kinds(text):
    return [t.type for t in tokenize(text)[:-1]]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("select SELECT SeLeCt")
        assert all(t.is_keyword("SELECT") for t in tokens[:-1])

    def test_identifier(self):
        token = tokenize("my_table")[0]
        assert token.type is TokenType.IDENT
        assert token.value == "my_table"

    def test_identifier_keeps_case(self):
        assert tokenize("MyTable")[0].value == "MyTable"

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.NUMBER
        assert token.value == "42"

    def test_decimal_literal(self):
        assert tokenize("0.5")[0].value == "0.5"

    def test_leading_dot_number(self):
        assert tokenize(".25")[0].value == ".25"

    def test_qualified_name_is_three_tokens(self):
        assert values("a.b") == ["a", ".", "b"]

    def test_number_then_qualifier_dot(self):
        # "1.e" should not swallow the dot into the number.
        tokens = tokenize("x.y.z")
        assert [t.value for t in tokens[:-1]] == ["x", ".", "y", ".", "z"]

    def test_eof_token_present(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestStrings:
    def test_simple_string(self):
        token = tokenize("'hello'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "hello"

    def test_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_string_keeps_case_and_spaces(self):
        assert tokenize("'Hello World'")[0].value == "Hello World"


class TestQuotedIdentifiers:
    def test_bracketed_identifier(self):
        token = tokenize("[tpch table]")[0]
        assert token.type is TokenType.IDENT
        assert token.value == "tpch table"

    def test_double_quoted_identifier(self):
        assert tokenize('"Weird Name"')[0].value == "Weird Name"

    def test_unterminated_bracket_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("[oops")


class TestOperators:
    @pytest.mark.parametrize("op", ["<=", ">=", "<>", "!=", "||"])
    def test_two_char_operators(self, op):
        token = tokenize(op)[0]
        assert token.type is TokenType.OPERATOR
        assert token.value == op

    def test_all_single_char_operators(self):
        text = "+ - * / % ( ) , . = < > ;"
        assert values(text) == text.split()

    def test_comparison_not_split(self):
        assert values("a<=b") == ["a", "<=", "b"]


class TestCommentsAndErrors:
    def test_line_comment_skipped(self):
        assert values("a -- comment here\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("a /* never closed")

    def test_unexpected_character_raises_with_position(self):
        with pytest.raises(SqlSyntaxError) as info:
            tokenize("select @")
        assert info.value.column == 8

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\nb\n  c")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]
        assert tokens[2].column == 3


class TestTokenHelpers:
    def test_is_keyword_multiple(self):
        token = tokenize("FROM")[0]
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_keyword("WHERE")

    def test_ident_is_not_keyword(self):
        assert not tokenize("frombar")[0].is_keyword("FROM")

    def test_str_repr(self):
        assert "SELECT" in str(tokenize("select")[0])
