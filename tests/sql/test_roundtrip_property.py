"""Property-based round-trip tests: generated ASTs survive
``to_sql`` → ``parse`` → ``to_sql`` unchanged."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_expression, parse_select

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s.upper() not in __import__(
        "repro.sql.lexer", fromlist=["KEYWORDS"]).KEYWORDS
)

literals = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6).map(ast.Literal),
    st.floats(min_value=0.001, max_value=10**6,
              allow_nan=False).map(lambda f: ast.Literal(round(f, 4))),
    st.text(alphabet="abcXYZ '", min_size=0, max_size=8).map(ast.Literal),
    st.just(ast.Literal(None)),
    st.booleans().map(ast.Literal),
)


def columns():
    return st.one_of(
        identifiers.map(ast.ColumnRef),
        st.tuples(identifiers, identifiers).map(
            lambda pair: ast.ColumnRef(pair[0], pair[1])),
    )


def expressions(depth=3):
    base = st.one_of(literals, columns())
    if depth == 0:
        return base
    sub = expressions(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["+", "-", "*", "/"]), sub, sub).map(
            lambda t: ast.BinaryOp(t[0], t[1], t[2])),
        st.tuples(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
                  sub, sub).map(lambda t: ast.BinaryOp(t[0], t[1], t[2])),
        st.tuples(st.sampled_from(["AND", "OR"]), sub, sub).map(
            lambda t: ast.BinaryOp(t[0], t[1], t[2])),
        sub.map(lambda e: ast.UnaryOp("NOT", e)),
        st.tuples(sub, sub, sub).map(
            lambda t: ast.Between(t[0], t[1], t[2])),
        sub.map(lambda e: ast.IsNull(e)),
    )


@given(expressions())
@settings(max_examples=200, deadline=None)
def test_expression_roundtrip(expr):
    sql = expr.to_sql()
    reparsed = parse_expression(sql)
    assert reparsed.to_sql() == sql


@given(
    items=st.lists(st.tuples(expressions(2), identifiers),
                   min_size=1, max_size=4),
    table=identifiers,
    where=st.none() | expressions(2),
    limit=st.none() | st.integers(min_value=1, max_value=100),
)
@settings(max_examples=100, deadline=None)
def test_select_roundtrip(items, table, where, limit):
    stmt = ast.SelectStatement(
        select_items=[ast.SelectItem(e, alias) for e, alias in items],
        from_items=[ast.TableRef(table)],
        where=where,
        limit=limit,
    )
    sql = stmt.to_sql()
    assert parse_select(sql).to_sql() == sql


@given(st.lists(
    st.tuples(identifiers,
              st.sampled_from(["INTEGER", "BIGINT", "DATE",
                               "VARCHAR(12)", "DECIMAL(10, 2)"])),
    min_size=1, max_size=5, unique_by=lambda t: t[0]))
@settings(max_examples=50, deadline=None)
def test_create_table_roundtrip(cols):
    stmt = ast.CreateTableStatement(
        "temp_x", [ast.ColumnDef(n, t) for n, t in cols])
    sql = stmt.to_sql()
    from repro.sql.parser import parse
    assert parse(sql).to_sql() == sql
