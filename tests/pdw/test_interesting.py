"""Interesting-property derivation tests (§3.2, Figure 4 step 04)."""

import pytest

from repro.optimizer.search import SerialOptimizer
from repro.pdw.interesting import (
    CONTROL_KEY,
    REPLICATED_KEY,
    build_equivalence,
    concrete_hash_column,
    derive_interesting_properties,
    hash_key,
    property_key_of,
)
from repro.algebra.properties import (
    ColumnEquivalence,
    ON_CONTROL_DIST,
    REPLICATED_DIST,
    hashed_on,
)


def derive(shell, sql):
    result = SerialOptimizer(shell).optimize_sql(sql, extract_serial=False)
    equivalence = build_equivalence(result.memo, result.root_group)
    props = derive_interesting_properties(result.memo, result.root_group,
                                          equivalence)
    return result, equivalence, props


class TestPropertyKeys:
    def test_hash_key_normalizes_via_equivalence(self):
        eq = ColumnEquivalence()
        eq.add_equality(1, 2)
        assert hash_key(eq, 1) == hash_key(eq, 2)

    def test_property_key_of_distributions(self):
        eq = ColumnEquivalence()
        assert property_key_of(REPLICATED_DIST, eq) == REPLICATED_KEY
        assert property_key_of(ON_CONTROL_DIST, eq) == CONTROL_KEY
        assert property_key_of(hashed_on(3), eq) == ("hash", 3)

    def test_multi_column_hash_key(self):
        eq = ColumnEquivalence()
        key = property_key_of(hashed_on(5, 3), eq)
        assert key[0] == "hash-multi"
        assert key[1] == (3, 5)


class TestDerivation:
    def test_join_columns_interesting_on_both_sides(self, mini_shell):
        result, equivalence, props = derive(
            mini_shell,
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        hash_keys = {
            key for keys in props.values() for key in keys
            if key[0] == "hash"
        }
        # One equivalence class covers both custkeys.
        assert len(hash_keys) == 1

    def test_replicated_interesting_for_join_inputs(self, mini_shell):
        result, _, props = derive(
            mini_shell,
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        groups_with_replicated = [
            gid for gid, keys in props.items() if REPLICATED_KEY in keys
        ]
        assert len(groups_with_replicated) >= 2

    def test_root_wants_control(self, mini_shell):
        result, _, props = derive(mini_shell,
                                  "SELECT c_name FROM customer")
        assert CONTROL_KEY in props[result.memo.find(result.root_group)]

    def test_groupby_keys_interesting_below(self, mini_shell):
        result, equivalence, props = derive(
            mini_shell,
            "SELECT c_nationkey, COUNT(*) FROM customer "
            "GROUP BY c_nationkey")
        hash_keys = {
            key for keys in props.values() for key in keys
            if key[0] == "hash"
        }
        assert hash_keys

    def test_keyless_agg_wants_control_below(self, mini_shell):
        result, _, props = derive(mini_shell,
                                  "SELECT COUNT(*) FROM orders")
        control_groups = [
            gid for gid, keys in props.items() if CONTROL_KEY in keys
        ]
        # Root plus at least one aggregation input.
        assert len(control_groups) >= 2

    def test_inherited_interest_propagates_through_select(self, mini_shell):
        result, equivalence, props = derive(
            mini_shell,
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey AND o_totalprice > 10")
        # The filtered orders pipeline (Select group) inherits the join
        # column interest.
        interesting_hash_groups = [
            gid for gid, keys in props.items()
            if any(k[0] == "hash" for k in keys)
        ]
        assert len(interesting_hash_groups) >= 3


class TestConcreteColumns:
    def test_concrete_hash_column_resolves(self, mini_shell):
        result, equivalence, props = derive(
            mini_shell,
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        for gid, keys in props.items():
            for key in keys:
                if key[0] != "hash":
                    continue
                group = result.memo.group(gid)
                reps = {equivalence.representative(v.id)
                        for v in group.output_vars}
                if key[1] in reps:
                    var = concrete_hash_column(result.memo, gid, key[1],
                                               equivalence)
                    assert equivalence.representative(var.id) == key[1]

    def test_concrete_hash_column_missing_raises(self, mini_shell):
        result, equivalence, _ = derive(mini_shell,
                                        "SELECT c_name FROM customer")
        with pytest.raises(KeyError):
            concrete_hash_column(result.memo, result.root_group, 999999,
                                 equivalence)
