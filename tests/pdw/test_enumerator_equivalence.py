"""Property: the bottom-up and top-down PDW enumerators agree on the
optimal plan cost for arbitrary query shapes (paper §3.2, "equally
applicable").

A disagreement means one strategy's pruning/strategy set lost an optimal
option — this suite is the regression net for exactly that class of bug
(it caught one: scalar-aggregate inputs missing the REPLICATED property).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.optimizer.search import SerialOptimizer
from repro.pdw.enumerator import PdwOptimizer
from repro.pdw.topdown import TopDownPdwOptimizer
from repro.workloads.tpch_queries import TPCH_QUERIES, query_names


def agree(shell, sql):
    serial = SerialOptimizer(shell).optimize_sql(sql, extract_serial=False)
    bottom_up = PdwOptimizer(
        serial.memo, serial.root_group, shell.node_count,
        equivalence=serial.equivalence).optimize()
    top_down = TopDownPdwOptimizer(
        serial.memo, serial.root_group, shell.node_count,
        equivalence=serial.equivalence).optimize()
    return bottom_up.cost, top_down.cost


@pytest.mark.parametrize("name", query_names())
def test_tpch_suite_agreement(name, tpch_shell):
    bottom_up, top_down = agree(tpch_shell, TPCH_QUERIES[name])
    assert top_down == pytest.approx(bottom_up, rel=1e-9, abs=1e-15)


FILTERS = ["", "WHERE c_custkey < 500", "WHERE c_nationkey = 3"]
AGGS = ["c_nationkey, COUNT(*) AS n", "c_nationkey, MIN(c_name) AS m"]


@st.composite
def random_queries(draw):
    shape = draw(st.sampled_from(["scan", "join", "agg", "join_agg",
                                  "semi", "scalar_sub"]))
    where = draw(st.sampled_from(FILTERS))
    if shape == "scan":
        return f"SELECT c_name FROM customer {where}"
    if shape == "join":
        extra = draw(st.sampled_from(
            ["", "AND o_totalprice > 100"]))
        return (f"SELECT c_name FROM customer, orders "
                f"WHERE c_custkey = o_custkey {extra}")
    if shape == "agg":
        select = draw(st.sampled_from(AGGS))
        return f"SELECT {select} FROM customer {where} GROUP BY c_nationkey"
    if shape == "join_agg":
        return ("SELECT c_nationkey, SUM(o_totalprice) AS t "
                "FROM customer, orders WHERE c_custkey = o_custkey "
                "GROUP BY c_nationkey")
    if shape == "semi":
        negated = draw(st.booleans())
        op = "NOT IN" if negated else "IN"
        return (f"SELECT c_name FROM customer WHERE c_custkey {op} "
                f"(SELECT o_custkey FROM orders)")
    return ("SELECT o_orderkey FROM orders WHERE o_totalprice > "
            "(SELECT SUM(l_quantity) FROM lineitem "
            "WHERE l_orderkey = o_orderkey)")


@given(sql=random_queries())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_random_query_agreement(mini_shell, sql):
    bottom_up, top_down = agree(mini_shell, sql)
    assert top_down == pytest.approx(bottom_up, rel=1e-9, abs=1e-15), sql
