"""Baseline ("parallelize the best serial plan", §2.5) tests."""

import pytest

from repro.algebra.logical import LogicalGet, LogicalJoin
from repro.optimizer.search import SerialOptimizer
from repro.pdw.baseline import parallelize_serial_plan, physical_to_logical
from repro.pdw.enumerator import PdwOptimizer


def serial(shell, sql):
    return SerialOptimizer(shell).optimize_sql(sql)


class TestPhysicalToLogical:
    def test_roundtrip_structure(self, mini_shell):
        result = serial(
            mini_shell,
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey AND o_totalprice > 10")
        logical = physical_to_logical(result.best_serial_plan)
        gets = [op for op in _walk(logical) if isinstance(op, LogicalGet)]
        assert {g.table.name for g in gets} == {"customer", "orders"}

    def test_join_preserved(self, mini_shell):
        result = serial(
            mini_shell,
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        logical = physical_to_logical(result.best_serial_plan)
        joins = [op for op in _walk(logical)
                 if isinstance(op, LogicalJoin)]
        assert len(joins) == 1


class TestBaselineQuality:
    def test_baseline_never_beats_pdw(self, mini_shell):
        """The PDW optimizer explores a superset of the baseline's space,
        so its cost is never worse."""
        for sql in [
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey",
            "SELECT c_name FROM customer, orders, lineitem "
            "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey",
            "SELECT c_nationkey, COUNT(*) FROM customer, orders "
            "WHERE c_custkey = o_custkey GROUP BY c_nationkey",
        ]:
            result = serial(mini_shell, sql)
            pdw_plan = PdwOptimizer(
                result.memo, result.root_group,
                node_count=mini_shell.node_count,
                equivalence=result.equivalence).optimize()
            baseline_plan = parallelize_serial_plan(result, mini_shell)
            assert pdw_plan.cost <= baseline_plan.cost + 1e-12

    def test_baseline_produces_executable_shape(self, mini_shell):
        result = serial(
            mini_shell,
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        plan = parallelize_serial_plan(result, mini_shell)
        assert plan.root is not None
        assert plan.cost >= 0

    def test_baseline_keeps_serial_join_order(self, mini_shell):
        result = serial(
            mini_shell,
            "SELECT c_name FROM customer, orders, lineitem "
            "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey")
        plan = parallelize_serial_plan(result, mini_shell)
        # The baseline memo has exactly one logical join order: count the
        # join nodes in the final plan — same as the serial plan.
        from repro.algebra import physical as phys
        serial_joins = sum(
            1 for n in result.best_serial_plan.walk()
            if isinstance(n.op, (phys.HashJoin, phys.MergeJoin,
                                 phys.NestedLoopJoin)))
        baseline_joins = sum(
            1 for n in plan.root.walk()
            if isinstance(n.op, LogicalJoin))
        assert baseline_joins == serial_joins

    def test_replicated_only_query_needs_no_movement(self, mini_shell):
        """A query over replicated tables only: the baseline inserts zero
        movements and costs exactly 0 — the degenerate case where
        "parallelize the serial plan" is trivially optimal."""
        from repro.pdw.dms import DataMovement

        result = serial(mini_shell, "SELECT n_name FROM nation")
        plan = parallelize_serial_plan(result, mini_shell)
        assert plan.cost == 0.0
        assert not any(isinstance(n.op, DataMovement)
                       for n in plan.root.walk())

    def test_baseline_accepts_opt_trace(self, mini_shell):
        """The baseline's movement-only enumeration records into the same
        trace as the full optimizer."""
        from repro.obs.opt_trace import OptimizerTrace

        result = serial(
            mini_shell,
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        trace = OptimizerTrace()
        plan = parallelize_serial_plan(result, mini_shell,
                                       opt_trace=trace)
        summary = trace.summary()
        assert summary.groups > 0
        assert summary.plan_cost == plan.cost


def _walk(op):
    yield op
    for child in op.children:
        yield from _walk(child)
