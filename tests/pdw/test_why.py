"""Plan-choice explainer tests (§2.5: optimizer vs. parallelized serial
plan)."""

import pytest

from repro.pdw.engine import PdwEngine
from repro.pdw.why import (
    PlanMovement,
    diff_movements,
    explain_plan_choice,
    plan_movements,
    render_plan_choice,
)


@pytest.fixture()
def engine(mini_shell):
    return PdwEngine(mini_shell)


def choice_for(engine, shell, sql, hints=None):
    compiled = engine.compile(sql, hints=hints)
    return explain_plan_choice(compiled, shell)


class TestPlanMovements:
    def test_movements_extracted_with_incremental_costs(self, engine,
                                                        mini_shell):
        compiled = engine.compile(
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        moves = plan_movements(compiled.pdw_plan.root)
        assert moves
        for move in moves:
            assert move.move_cost >= 0.0
            assert move.subtree_cost >= move.move_cost
        # Incremental costs of all movements account for the full DMS
        # cost of the plan (only movements are costed).
        assert sum(m.move_cost for m in moves) == pytest.approx(
            compiled.pdw_plan.cost)

    def test_movement_free_plan(self, engine):
        compiled = engine.compile("SELECT n_name FROM nation")
        assert plan_movements(compiled.pdw_plan.root) == []


class TestDiffMovements:
    def mv(self, movement, cost=1.0):
        return PlanMovement(movement=movement, operation="shuffle",
                            source="a", target="b", rows=1.0,
                            move_cost=cost, subtree_cost=cost)

    def test_multiset_semantics(self):
        plan = [self.mv("x"), self.mv("x"), self.mv("y")]
        baseline = [self.mv("x"), self.mv("z")]
        shared, only_plan, only_baseline = diff_movements(plan, baseline)
        assert [m.movement for m in shared] == ["x"]
        assert sorted(m.movement for m in only_plan) == ["x", "y"]
        assert [m.movement for m in only_baseline] == ["z"]

    def test_identical_plans_fully_shared(self):
        plan = [self.mv("x"), self.mv("y")]
        shared, only_plan, only_baseline = diff_movements(plan, list(plan))
        assert len(shared) == 2
        assert only_plan == [] and only_baseline == []


class TestPlanChoice:
    def test_baseline_never_cheaper(self, engine, mini_shell):
        choice = choice_for(
            engine, mini_shell,
            "SELECT c_name FROM customer, orders, lineitem "
            "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey")
        assert choice.delta >= -1e-12
        assert choice.plan_cost == pytest.approx(
            engine.compile(choice.sql).pdw_plan.cost)

    def test_to_dict_matches_schema_fields(self, engine, mini_shell):
        from repro.obs.export import EVENT_SCHEMAS

        choice = choice_for(
            engine, mini_shell,
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        payload = choice.to_dict()
        assert set(payload) == set(EVENT_SCHEMAS["plan_choice"])

    def test_replicated_only_query_zero_movement_baseline(self, engine,
                                                          mini_shell):
        """A query touching only replicated tables needs no data movement
        at all; the baseline trivially matches the optimal plan and the
        explainer must say so."""
        choice = choice_for(engine, mini_shell,
                            "SELECT n_name FROM nation")
        assert choice.plan_cost == 0.0
        assert choice.baseline_cost == 0.0
        assert choice.plan_movements == ()
        assert choice.baseline_movements == ()
        assert choice.baseline_matches
        assert choice.delta_pct == 0.0
        assert "baseline == optimal" in render_plan_choice(choice)

    def test_render_reports_baseline_loss(self):
        from repro.pdw.why import PlanChoice

        loser = PlanChoice(
            sql="SELECT 1", plan_cost=1.0, baseline_cost=1.5,
            plan_tree="plan", baseline_tree="baseline",
            plan_movements=(), baseline_movements=(),
            shared=(), only_plan=(), only_baseline=())
        text = render_plan_choice(loser)
        assert "baseline == optimal" not in text
        assert "+0.500000 s" in text
        assert "+50.0%" in text

    def test_hinted_compilation_diffs_against_hinted_baseline(
            self, engine, mini_shell):
        """The baseline must replay the same hints as the chosen plan —
        both sides answer the same (constrained) question."""
        choice = choice_for(
            engine, mini_shell,
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey",
            hints={"orders": "replicate"})
        assert choice.delta >= -1e-12


class TestSessionWhy:
    def test_why_renders_both_halves(self, tpch):
        from repro.session import PdwSession

        appliance, shell = tpch
        session = PdwSession(appliance=appliance, shell=shell)
        out = session.why("SELECT c_name FROM customer, orders "
                          "WHERE c_custkey = o_custkey")
        assert "Why this plan?" in out
        assert "Search space:" in out
        assert "Per-group enumeration:" in out

    def test_why_folds_metrics(self, tpch):
        from repro.session import PdwSession

        appliance, shell = tpch
        session = PdwSession(appliance=appliance, shell=shell)
        session.why("SELECT c_name FROM customer, orders "
                    "WHERE c_custkey = o_custkey")
        prom = session.metrics.render_prometheus()
        assert "pdw_optimizer_options_considered" in prom
        assert "pdw_optimizer_baseline_cost_seconds" in prom

    def test_explain_optimizer_appends_why(self, tpch):
        from repro.session import PdwSession

        appliance, shell = tpch
        session = PdwSession(appliance=appliance, shell=shell)
        out = session.explain("SELECT c_name FROM customer, orders "
                              "WHERE c_custkey = o_custkey",
                              optimizer=True)
        assert "DSQL plan" in out
        assert "Why this plan?" in out
        assert "Search space:" in out
