"""QRel SQL generation unit tests (§3.4, Figure 6)."""

import datetime

import pytest

from repro.algebra import expressions as ex
from repro.common.errors import PdwOptimizerError
from repro.common.types import DATE, INTEGER, varchar
from repro.pdw.qrel import SqlGenerator, build_name_map, type_name_of
from repro.sql.parser import parse_expression


def var(i, name="c", sql_type=INTEGER):
    return ex.ColumnVar(i, name, sql_type)


@pytest.fixture()
def generator():
    name_map = {1: "a", 2: "b", 3: "s"}
    return SqlGenerator(name_map), {1: "T1", 2: "T1", 3: "T2"}


def render(generator_pair, expr):
    generator, qualifiers = generator_pair
    return generator.render_scalar(expr, qualifiers).to_sql()


class TestScalarRendering:
    def test_column(self, generator):
        assert render(generator, var(1, "a")) == "T1.a"

    def test_uses_name_map_not_var_name(self, generator):
        # Var #2 is named "weird" but the emitted name is "b".
        assert render(generator, var(2, "weird")) == "T1.b"

    def test_comparison(self, generator):
        expr = ex.Comparison("<=", var(1, "a"), ex.Constant(5))
        assert render(generator, expr) == "(T1.a <= 5)"

    def test_date_constant(self, generator):
        expr = ex.Comparison(">", var(1, "a"),
                             ex.Constant(datetime.date(1994, 1, 1)))
        assert "DATE '1994-01-01'" in render(generator, expr)

    def test_string_quote_escaped(self, generator):
        expr = ex.Comparison("=", var(3, "s"), ex.Constant("it's"))
        assert "'it''s'" in render(generator, expr)

    def test_and_chain(self, generator):
        expr = ex.BoolOp("AND", (
            ex.Comparison("=", var(1), ex.Constant(1)),
            ex.Comparison("=", var(2), ex.Constant(2)),
            ex.Comparison("=", var(3), ex.Constant(3)),
        ))
        sql = render(generator, expr)
        assert sql.count("AND") == 2
        parse_expression(sql)  # re-parses

    def test_case(self, generator):
        expr = ex.CaseWhen(
            ((ex.Comparison(">", var(1), ex.Constant(0)),
              ex.Constant(1)),), ex.Constant(0))
        sql = render(generator, expr)
        assert sql.startswith("CASE WHEN")
        parse_expression(sql)

    def test_like(self, generator):
        expr = ex.LikeExpr(var(3), "forest%")
        assert "LIKE 'forest%'" in render(generator, expr)

    def test_cast(self, generator):
        expr = ex.CastExpr(var(1), DATE)
        assert render(generator, expr) == "CAST(T1.a AS DATE)"

    def test_agg_count_star(self, generator):
        assert render(generator, ex.AggExpr("COUNT", None)) == "COUNT(*)"

    def test_agg_distinct(self, generator):
        expr = ex.AggExpr("SUM", var(1), distinct=True)
        assert render(generator, expr) == "SUM(DISTINCT T1.a)"

    def test_out_of_scope_column_raises(self, generator):
        with pytest.raises(PdwOptimizerError):
            render(generator, var(99, "ghost"))

    def test_every_rendered_expr_reparses(self, generator):
        exprs = [
            ex.Arithmetic("*", var(1), ex.Constant(2)),
            ex.NotExpr(ex.Comparison("=", var(1), var(2))),
            ex.InListExpr(var(1), (1, 2, 3), negated=True),
            ex.IsNullExpr(var(3), negated=True),
            ex.FuncExpr("DATEADD", (ex.Constant("year"), ex.Constant(1),
                                    ex.Constant(datetime.date(1994, 1, 1)))),
        ]
        for expr in exprs:
            parse_expression(render(generator, expr))


class TestTypeNames:
    def test_varchar(self):
        assert type_name_of(varchar(25)) == "VARCHAR(25)"

    def test_integer(self):
        assert type_name_of(INTEGER) == "INTEGER"


class TestNameMapEdgeCases:
    def test_empty(self):
        assert build_name_map([]) == {}

    def test_non_identifier_sanitized(self):
        names = build_name_map([var(1, "col 1")])
        assert names[1].isidentifier()

    def test_same_var_seen_twice(self):
        v = var(1, "a")
        names = build_name_map([v, v, v])
        assert names == {1: "a"}
