"""Partitioning-design advisor tests (paper reference [10])."""

import pytest

from repro.catalog.schema import (
    Catalog,
    Column,
    REPLICATED,
    TableDef,
    hash_distributed,
)
from repro.catalog.shell_db import ShellDatabase
from repro.catalog.statistics import ColumnStats
from repro.common.errors import PdwOptimizerError
from repro.common.types import INTEGER, varchar
from repro.pdw.advisor import PartitioningAdvisor, WorkloadQuery


def make_shell(customer_dist=None, orders_dist=None):
    catalog = Catalog([
        TableDef("customer",
                 [Column("c_custkey", INTEGER), Column("c_other", INTEGER)],
                 customer_dist or hash_distributed("c_other"),
                 row_count=200_000, primary_key=("c_custkey",)),
        TableDef("orders",
                 [Column("o_orderkey", INTEGER),
                  Column("o_custkey", INTEGER)],
                 orders_dist or hash_distributed("o_orderkey"),
                 row_count=1_000_000, primary_key=("o_orderkey",)),
        TableDef("tiny",
                 [Column("t_key", INTEGER), Column("t_label", varchar(10))],
                 hash_distributed("t_key"), row_count=50),
    ])
    shell = ShellDatabase(catalog, node_count=8)

    def put(table, column, rows, distinct):
        shell.set_column_stats(
            table, column, ColumnStats(rows, 0, distinct, 1, distinct, 4))

    put("customer", "c_custkey", 2e5, 2e5)
    put("customer", "c_other", 2e5, 1e3)
    put("orders", "o_orderkey", 1e6, 1e6)
    put("orders", "o_custkey", 1e6, 2e5)
    put("tiny", "t_key", 50, 50)
    put("tiny", "t_label", 50, 50)
    return shell


WORKLOAD = [
    WorkloadQuery(
        "SELECT c_custkey FROM customer, orders "
        "WHERE c_custkey = o_custkey"),
    WorkloadQuery(
        "SELECT t_label, COUNT(*) AS n FROM orders, tiny "
        "WHERE o_custkey = t_key GROUP BY t_label"),
]


class TestCandidates:
    def test_join_columns_are_candidates(self):
        advisor = PartitioningAdvisor(make_shell(), WORKLOAD)
        candidates = advisor.candidate_distributions()
        customer = {str(d) for d in candidates["customer"]}
        assert "HASH(c_custkey)" in customer
        orders = {str(d) for d in candidates["orders"]}
        assert "HASH(o_custkey)" in orders

    def test_replicated_always_candidate(self):
        advisor = PartitioningAdvisor(make_shell(), WORKLOAD)
        candidates = advisor.candidate_distributions()
        for options in candidates.values():
            assert REPLICATED in options

    def test_group_by_columns_are_candidates(self):
        advisor = PartitioningAdvisor(make_shell(), [WorkloadQuery(
            "SELECT c_other, COUNT(*) AS n FROM customer "
            "GROUP BY c_other")])
        candidates = advisor.candidate_distributions()
        assert "HASH(c_other)" in {
            str(d) for d in candidates["customer"]}

    def test_current_design_preserved_as_candidate(self):
        advisor = PartitioningAdvisor(make_shell(), WORKLOAD)
        candidates = advisor.candidate_distributions()
        assert "HASH(o_orderkey)" in {
            str(d) for d in candidates["orders"]}


class TestRecommendation:
    def test_never_worse_than_initial(self):
        advisor = PartitioningAdvisor(make_shell(), WORKLOAD)
        result = advisor.recommend()
        assert result.final.total_cost <= result.initial.total_cost

    def test_recovers_collocated_design_from_bad_start(self):
        # customer hashed on a non-join column; the advisor should move
        # it (or orders) onto the custkey class and kill the join moves.
        advisor = PartitioningAdvisor(make_shell(), WORKLOAD)
        result = advisor.recommend()
        assert result.improvement > 1.5
        design = {name: str(dist)
                  for name, dist in result.recommended.items()}
        custkey_aligned = (design["customer"] == "HASH(c_custkey)"
                           or design["orders"] == "HASH(o_custkey)")
        assert custkey_aligned

    def test_tiny_table_gets_replicated(self):
        # tiny joins two different key classes, so no single hash column
        # collocates both queries — replication is the only free option.
        workload = WORKLOAD + [
            WorkloadQuery(
                "SELECT t_label FROM orders, tiny "
                "WHERE o_orderkey = t_key"),
        ]
        advisor = PartitioningAdvisor(make_shell(), workload,
                                      replication_penalty_per_byte=1e-12)
        result = advisor.recommend()
        assert str(result.recommended["tiny"]) == "REPLICATED"

    def test_replication_penalty_deters(self):
        advisor = PartitioningAdvisor(make_shell(), WORKLOAD,
                                      replication_penalty_per_byte=1.0)
        result = advisor.recommend()
        # With an absurd penalty nothing gets replicated.
        assert all(str(d) != "REPLICATED"
                   for d in result.recommended.values())

    def test_evaluation_does_not_mutate_input_shell(self):
        shell = make_shell()
        before = {t.name: str(t.distribution) for t in shell.tables()}
        PartitioningAdvisor(shell, WORKLOAD).recommend()
        after = {t.name: str(t.distribution) for t in shell.tables()}
        assert before == after

    def test_steps_recorded(self):
        advisor = PartitioningAdvisor(make_shell(), WORKLOAD)
        result = advisor.recommend()
        assert result.designs_evaluated > 1
        assert len(result.steps) >= 1

    def test_describe_mentions_tables(self):
        result = PartitioningAdvisor(make_shell(), WORKLOAD).recommend()
        text = result.describe()
        assert "customer" in text and "orders" in text

    def test_empty_workload_rejected(self):
        with pytest.raises(PdwOptimizerError):
            PartitioningAdvisor(make_shell(), [])

    def test_weights_scale_costs(self):
        advisor = PartitioningAdvisor(make_shell(), [
            WorkloadQuery(WORKLOAD[0].sql, weight=10.0)])
        light = PartitioningAdvisor(make_shell(), [
            WorkloadQuery(WORKLOAD[0].sql, weight=1.0)])
        heavy_cost = advisor.evaluate(advisor.current_design()).total_cost
        light_cost = light.evaluate(light.current_design()).total_cost
        assert heavy_cost == pytest.approx(10 * light_cost)
