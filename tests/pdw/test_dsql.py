"""DSQL generation tests (§2.4, §3.4): step structure, temp tables,
re-parseable SQL."""

import pytest

from repro.catalog.schema import DistributionKind
from repro.pdw.dms import DmsOperation
from repro.pdw.dsql import StepKind
from repro.pdw.engine import PdwEngine
from repro.pdw.qrel import build_name_map
from repro.sql.parser import parse_select


@pytest.fixture()
def engine(mini_shell):
    return PdwEngine(mini_shell)


SEC24 = ("SELECT c_custkey, o_orderdate FROM orders, customer "
         "WHERE o_custkey = c_custkey AND o_totalprice > 100")


class TestStepStructure:
    def test_sec24_two_steps(self, engine):
        plan = engine.compile(SEC24).dsql_plan
        assert len(plan.steps) == 2
        assert plan.steps[0].kind is StepKind.DMS
        assert plan.steps[1].kind is StepKind.RETURN

    def test_sec24_first_step_shuffles_orders(self, engine):
        step = engine.compile(SEC24).dsql_plan.steps[0]
        assert step.movement.operation is DmsOperation.SHUFFLE_MOVE
        assert step.hash_column == "o_custkey"
        assert "orders" in step.sql.lower()

    def test_steps_numbered_sequentially(self, engine):
        plan = engine.compile(SEC24).dsql_plan
        assert [s.index for s in plan.steps] == list(range(len(plan.steps)))

    def test_return_step_is_last_and_unique(self, engine):
        plan = engine.compile(SEC24).dsql_plan
        kinds = [s.kind for s in plan.steps]
        assert kinds.count(StepKind.RETURN) == 1
        assert kinds[-1] is StepKind.RETURN

    def test_collocated_query_single_step(self, engine):
        plan = engine.compile(
            "SELECT o_orderdate FROM orders, lineitem "
            "WHERE o_orderkey = l_orderkey").dsql_plan
        assert len(plan.steps) == 1
        assert plan.steps[0].kind is StepKind.RETURN

    def test_describe_contains_sql(self, engine):
        plan = engine.compile(SEC24).dsql_plan
        text = plan.describe()
        assert "DSQL step 0" in text
        assert "SELECT" in text


class TestTempTables:
    def test_temp_table_named_and_typed(self, engine):
        step = engine.compile(SEC24).dsql_plan.steps[0]
        temp = step.destination_table
        assert temp.name == "TEMP_ID_1"
        assert temp.is_temp
        names = [c.name for c in temp.columns]
        assert "o_custkey" in names

    def test_shuffle_temp_is_hash_distributed(self, engine):
        temp = engine.compile(SEC24).dsql_plan.steps[0].destination_table
        assert temp.distribution.kind is DistributionKind.HASH
        assert temp.distribution.columns == ("o_custkey",)

    def test_broadcast_temp_is_replicated(self, engine):
        plan = engine.compile(
            "SELECT n_name FROM customer, orders, nation "
            "WHERE c_custkey = o_custkey AND c_nationkey = n_nationkey"
        ).dsql_plan
        moved = [s for s in plan.movement_steps
                 if s.movement.operation is DmsOperation.BROADCAST_MOVE]
        for step in moved:
            assert step.destination_table.distribution.kind is \
                DistributionKind.REPLICATED

    def test_later_steps_reference_earlier_temps(self, engine):
        plan = engine.compile(SEC24).dsql_plan
        assert "TEMP_ID_1" in plan.steps[1].sql


class TestGeneratedSql:
    def test_every_step_sql_reparses(self, engine):
        plan = engine.compile(SEC24).dsql_plan
        for step in plan.steps:
            parse_select(step.sql)  # must not raise

    def test_order_by_only_in_return_step(self, engine):
        plan = engine.compile(SEC24 + " ORDER BY o_orderdate").dsql_plan
        assert "ORDER BY" in plan.steps[-1].sql
        for step in plan.steps[:-1]:
            assert "ORDER BY" not in step.sql

    def test_top_preserved(self, engine):
        plan = engine.compile(
            "SELECT c_name FROM customer ORDER BY c_name LIMIT 7"
        ).dsql_plan
        assert plan.limit == 7
        assert "TOP 7" in plan.steps[-1].sql

    def test_output_aliases_are_user_names(self, engine):
        plan = engine.compile(
            "SELECT c_custkey AS the_key FROM customer").dsql_plan
        assert "the_key" in plan.steps[-1].sql
        assert plan.output_names == ["the_key"]

    def test_plan_generation_does_not_mutate_plan_tree(self, engine):
        compiled = engine.compile(SEC24)
        from repro.pdw.dms import DataMovement
        moves = [n for n in compiled.pdw_plan.root.walk()
                 if isinstance(n.op, DataMovement)]
        assert moves, "plan tree must retain its DataMovement nodes"


class TestNameMap:
    def _var(self, i, name):
        from repro.algebra.expressions import ColumnVar
        from repro.common.types import INTEGER
        return ColumnVar(i, name, INTEGER)

    def test_unique_names_kept(self):
        names = build_name_map([self._var(1, "a"), self._var(2, "b")])
        assert names == {1: "a", 2: "b"}

    def test_collisions_suffixed(self):
        names = build_name_map([self._var(1, "a"), self._var(2, "a")])
        assert names[1] != names[2]

    def test_keyword_names_sanitized(self):
        names = build_name_map([self._var(1, "count")])
        assert names[1].upper() not in ("COUNT",)

    def test_deterministic(self):
        vars_ = [self._var(i, f"c{i % 3}") for i in range(9)]
        assert build_name_map(vars_) == build_name_map(vars_)
