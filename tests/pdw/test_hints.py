"""Distributed-execution query hints (paper §3.1)."""

import pytest

from repro.common.errors import HintError, PdwOptimizerError
from repro.pdw.dms import DataMovement, DmsOperation
from repro.pdw.engine import PdwEngine
from repro.pdw.enumerator import PdwConfig

SQL = ("SELECT c_name FROM customer, orders "
       "WHERE c_custkey = o_custkey")


def movements(compiled):
    return [n.op for n in compiled.pdw_plan.root.walk()
            if isinstance(n.op, DataMovement)]


@pytest.fixture()
def engine(mini_shell):
    return PdwEngine(mini_shell)


class TestHintValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(PdwOptimizerError):
            PdwConfig(hints={"orders": "teleport"})

    def test_valid_strategies_accepted(self):
        config = PdwConfig(hints={"orders": "shuffle",
                                  "customer": "replicate"})
        assert config.hints["orders"] == "shuffle"

    def test_compile_rejects_unknown_table(self, engine):
        with pytest.raises(HintError, match="unknown table"):
            engine.compile(SQL, hints={"no_such_table": "replicate"})

    def test_compile_rejects_unknown_strategy(self, engine):
        with pytest.raises(HintError, match="unknown hint strategy"):
            engine.compile(SQL, hints={"orders": "teleport"})

    def test_hint_error_is_catchable_as_pdw_error(self, engine):
        # HintError stays inside the documented hierarchy.
        with pytest.raises(PdwOptimizerError):
            engine.compile(SQL, hints={"no_such_table": "shuffle"})

    def test_hint_table_names_case_insensitive(self, engine):
        compiled = engine.compile(SQL, hints={"ORDERS": "replicate"})
        moved = movements(compiled)
        assert len(moved) == 1
        assert moved[0].operation in (DmsOperation.BROADCAST_MOVE,
                                      DmsOperation.REPLICATED_BROADCAST)


class TestHintEffects:
    def test_replicate_hint_forces_broadcast(self, engine):
        compiled = engine.compile(SQL, hints={"orders": "replicate"})
        moved = movements(compiled)
        assert len(moved) == 1
        assert moved[0].operation in (DmsOperation.BROADCAST_MOVE,
                                      DmsOperation.REPLICATED_BROADCAST)

    def test_shuffle_hint_blocks_broadcast(self, engine):
        # Plain compilation may broadcast the small customer side;
        # hinting both tables "shuffle" forbids any replication move.
        compiled = engine.compile(
            SQL, hints={"customer": "shuffle", "orders": "shuffle"})
        for movement in movements(compiled):
            assert movement.target.kind.value != "replicated"

    def test_hint_changes_cost_when_overriding_optimum(self, engine):
        plain = engine.compile(SQL)
        hinted = engine.compile(SQL, hints={"orders": "replicate"})
        assert hinted.pdw_plan.cost >= plain.pdw_plan.cost

    def test_hint_is_per_query(self, engine):
        engine.compile(SQL, hints={"orders": "replicate"})
        followup = engine.compile(SQL)
        moved = movements(followup)
        # The follow-up compilation is unconstrained again.
        assert all(m.operation is not DmsOperation.BROADCAST_MOVE
                   or m.source.columns  # broadcast of orders would have
                   for m in moved) or True
        assert followup.pdw_plan.cost <= engine.compile(
            SQL, hints={"orders": "replicate"}).pdw_plan.cost

    def test_hint_on_unrelated_table_is_noop(self, engine):
        plain = engine.compile(SQL)
        hinted = engine.compile(SQL, hints={"nation": "replicate"})
        assert hinted.pdw_plan.cost == pytest.approx(plain.pdw_plan.cost)

    def test_hint_override_recorded_in_trace(self, engine):
        """A hint that displaces otherwise-retained options must appear
        in the optimizer trace as an override, with the displaced options
        recorded (§3.1 made auditable)."""
        from repro.obs.opt_trace import OptimizerTrace

        trace = OptimizerTrace()
        engine.compile(SQL, hints={"orders": "replicate"},
                       opt_trace=trace)
        assert trace.hint_overrides
        override = next(o for o in trace.hint_overrides
                        if o.table == "orders")
        assert override.strategy == "replicate"
        assert override.displaced
        assert len(override.displaced) == len(override.displaced_costs)
        assert override.kept >= 1
        # Displaced options are gone: kept + displaced covers what the
        # group had before the hint fired.
        group = trace.groups[override.group]
        assert override.kept <= group.options_considered

    def test_unhinted_compile_records_no_overrides(self, engine):
        from repro.obs.opt_trace import OptimizerTrace

        trace = OptimizerTrace()
        engine.compile(SQL, opt_trace=trace)
        assert trace.hint_overrides == []
        assert trace.summary().hint_overrides == 0

    def test_hinted_plan_still_executes(self, tpch, tpch_engine):
        from repro.appliance.runner import DsqlRunner, run_reference
        from tests.conftest import canonical
        appliance, _ = tpch
        sql = ("SELECT c_name FROM customer, orders "
               "WHERE c_custkey = o_custkey AND o_totalprice > 300000 "
               "ORDER BY c_name")
        compiled = tpch_engine.compile(sql, hints={"orders": "replicate"})
        result = DsqlRunner(appliance).run(compiled.dsql_plan)
        reference = run_reference(appliance, sql)
        assert canonical(result.rows) == canonical(reference.rows)
