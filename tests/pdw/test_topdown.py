"""Top-down enumerator tests: agreement with bottom-up, executability."""

import pytest

from repro.appliance.runner import DsqlRunner, run_reference
from repro.optimizer.search import SerialOptimizer
from repro.pdw.dms import DataMovement, DmsOperation
from repro.pdw.dsql import DsqlGenerator
from repro.pdw.enumerator import PdwOptimizer
from repro.pdw.topdown import TopDownPdwOptimizer

from tests.conftest import canonical

QUERIES = [
    "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey",
    "SELECT o_orderdate FROM orders, lineitem "
    "WHERE o_orderkey = l_orderkey",
    "SELECT c_nationkey, COUNT(*) FROM customer GROUP BY c_nationkey",
    "SELECT SUM(o_totalprice) FROM orders",
    "SELECT c_name FROM customer WHERE c_custkey IN "
    "(SELECT o_custkey FROM orders)",
    "SELECT c_name FROM customer, orders, lineitem "
    "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey",
    "SELECT n_name FROM nation",
    "SELECT c_custkey FROM customer UNION ALL "
    "SELECT o_custkey FROM orders",
]


def both(shell, sql):
    serial = SerialOptimizer(shell).optimize_sql(sql, extract_serial=False)
    bottom_up = PdwOptimizer(
        serial.memo, serial.root_group, shell.node_count,
        equivalence=serial.equivalence).optimize()
    top_down = TopDownPdwOptimizer(
        serial.memo, serial.root_group, shell.node_count,
        equivalence=serial.equivalence).optimize()
    return serial, bottom_up, top_down


class TestAgreement:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_same_optimal_cost(self, mini_shell, sql):
        _, bottom_up, top_down = both(mini_shell, sql)
        assert top_down.cost == pytest.approx(bottom_up.cost, rel=1e-9)

    def test_collocated_join_free_in_both(self, mini_shell):
        _, bottom_up, top_down = both(
            mini_shell,
            "SELECT o_orderdate FROM orders, lineitem "
            "WHERE o_orderkey = l_orderkey")
        assert bottom_up.cost == 0.0
        assert top_down.cost == 0.0

    def test_fig3_choice_matches(self, mini_shell):
        _, bottom_up, top_down = both(
            mini_shell,
            "SELECT c_custkey, o_orderdate FROM customer, orders "
            "WHERE c_custkey = o_custkey AND o_totalprice > 1000")
        td_moves = [n.op.operation for n in top_down.root.walk()
                    if isinstance(n.op, DataMovement)]
        bu_moves = [n.op.operation for n in bottom_up.root.walk()
                    if isinstance(n.op, DataMovement)]
        assert sorted(m.value for m in td_moves) == \
            sorted(m.value for m in bu_moves)


class TestExecution:
    def test_topdown_plan_executes_correctly(self, tpch, tpch_shell):
        appliance = tpch[0]
        sql = ("SELECT c_nationkey, COUNT(*) AS n "
               "FROM customer, orders WHERE c_custkey = o_custkey "
               "GROUP BY c_nationkey ORDER BY c_nationkey")
        serial = SerialOptimizer(tpch_shell).optimize_sql(
            sql, extract_serial=False)
        plan = TopDownPdwOptimizer(
            serial.memo, serial.root_group, tpch_shell.node_count,
            equivalence=serial.equivalence).optimize()
        query = serial.query
        dsql = DsqlGenerator().generate(
            plan.root,
            output_names=query.output_names,
            output_vars=query.output_columns(),
            order_by=query.order_by or None,
            limit=query.limit,
            final_distribution=plan.distribution,
        )
        result = DsqlRunner(appliance).run(dsql)
        reference = run_reference(appliance, sql)
        assert canonical(result.rows) == canonical(reference.rows)


class TestMemoization:
    def test_cells_are_reused(self, mini_shell):
        serial = SerialOptimizer(mini_shell).optimize_sql(
            QUERIES[5], extract_serial=False)
        optimizer = TopDownPdwOptimizer(
            serial.memo, serial.root_group, mini_shell.node_count,
            equivalence=serial.equivalence)
        optimizer.optimize()
        first = optimizer.cells_solved
        # Solving again hits the memo table only.
        optimizer.best(optimizer.root_group, None)
        assert optimizer.cells_solved == first
