"""PDW enumerator tests: Figure 4's bottom-up algorithm."""

import pytest

from repro.algebra.properties import DistKind
from repro.catalog.schema import (
    Catalog,
    Column,
    REPLICATED,
    TableDef,
    hash_distributed,
)
from repro.catalog.shell_db import ShellDatabase
from repro.common.types import INTEGER, varchar
from repro.optimizer.memo import topological_order
from repro.optimizer.search import SerialOptimizer
from repro.pdw.dms import DataMovement, DmsOperation
from repro.pdw.enumerator import PdwConfig, PdwOptimizer
from repro.pdw.interesting import derive_interesting_properties


def optimize(shell, sql, config=None):
    serial = SerialOptimizer(shell).optimize_sql(sql, extract_serial=False)
    pdw = PdwOptimizer(serial.memo, serial.root_group,
                       node_count=shell.node_count,
                       equivalence=serial.equivalence, config=config)
    plan = pdw.optimize()
    return pdw, plan


def movements(plan):
    return [node.op for node in plan.root.walk()
            if isinstance(node.op, DataMovement)]


class TestCollocation:
    def test_collocated_join_needs_no_movement(self, mini_shell):
        # orders and lineitem are both hashed on orderkey.
        _, plan = optimize(
            mini_shell,
            "SELECT o_orderdate FROM orders, lineitem "
            "WHERE o_orderkey = l_orderkey")
        assert movements(plan) == []
        assert plan.cost == 0.0

    def test_replicated_join_needs_no_movement(self, mini_shell):
        _, plan = optimize(
            mini_shell,
            "SELECT c_name FROM customer, nation "
            "WHERE c_nationkey = n_nationkey")
        assert movements(plan) == []

    def test_incompatible_join_moves_something(self, mini_shell):
        _, plan = optimize(
            mini_shell,
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        assert movements(plan)
        assert plan.cost > 0

    def test_local_aggregation_on_distribution_key(self, mini_shell):
        _, plan = optimize(
            mini_shell,
            "SELECT c_custkey, COUNT(*) FROM customer GROUP BY c_custkey")
        assert movements(plan) == []


class TestEnforcer:
    def test_shuffle_targets_join_column(self, mini_shell):
        _, plan = optimize(
            mini_shell,
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        shuffles = [m for m in movements(plan)
                    if m.operation is DmsOperation.SHUFFLE_MOVE]
        if shuffles:  # smaller side may be broadcast instead
            assert shuffles[0].hash_columns

    def test_small_side_broadcast(self):
        catalog = Catalog([
            TableDef("big", [Column("k", INTEGER), Column("v", INTEGER)],
                     hash_distributed("k"), row_count=1_000_000),
            TableDef("small", [Column("j", INTEGER), Column("w", INTEGER)],
                     hash_distributed("j"), row_count=50),
        ])
        shell = ShellDatabase(catalog, node_count=8)
        _, plan = optimize(shell,
                           "SELECT v FROM big, small WHERE v = w")
        ops = {m.operation for m in movements(plan)}
        assert ops == {DmsOperation.BROADCAST_MOVE}

    def test_large_side_shuffled(self):
        catalog = Catalog([
            TableDef("big", [Column("k", INTEGER), Column("v", INTEGER)],
                     hash_distributed("k"), row_count=1_000_000),
            TableDef("big2", [Column("j", INTEGER), Column("w", INTEGER)],
                     hash_distributed("j"), row_count=1_000_000),
        ])
        shell = ShellDatabase(catalog, node_count=8)
        _, plan = optimize(shell,
                           "SELECT v FROM big, big2 WHERE v = w")
        ops = [m.operation for m in movements(plan)]
        assert ops.count(DmsOperation.SHUFFLE_MOVE) == 2

    def test_scalar_aggregation_gathers(self, mini_shell):
        _, plan = optimize(mini_shell,
                           "SELECT SUM(o_totalprice) FROM orders")
        ops = {m.operation for m in movements(plan)}
        assert DmsOperation.PARTITION_MOVE in ops

    def test_scalar_agg_uses_local_global_split(self, mini_shell):
        from repro.algebra.logical import AggPhase, LogicalGroupBy
        _, plan = optimize(mini_shell,
                           "SELECT SUM(o_totalprice) FROM orders")
        phases = [node.op.phase for node in plan.root.walk()
                  if isinstance(node.op, LogicalGroupBy)]
        assert AggPhase.LOCAL in phases
        assert AggPhase.GLOBAL in phases


class TestPruning:
    def test_option_bound_respected(self, mini_shell):
        """Figure 4 step 06.ii: ≤ #interesting properties + 1 options."""
        serial = SerialOptimizer(mini_shell).optimize_sql(
            "SELECT c_name FROM customer, orders, lineitem "
            "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey",
            extract_serial=False)
        pdw = PdwOptimizer(serial.memo, serial.root_group, node_count=8,
                           equivalence=serial.equivalence)
        pdw.optimize()
        interesting = pdw.interesting
        for group_id, options in pdw.options.items():
            bound = len(interesting.get(group_id, ())) + 1
            assert len(options) <= bound

    def test_unpruned_mode_keeps_more_options(self, mini_shell):
        sql = ("SELECT c_name FROM customer, orders, lineitem "
               "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey")
        pruned_opt, pruned_plan = optimize(mini_shell, sql)
        config = PdwConfig(prune_per_property=False)
        full_opt, full_plan = optimize(mini_shell, sql, config)
        assert full_opt.options_considered >= pruned_opt.options_considered
        assert pruned_plan.cost == pytest.approx(full_plan.cost)

    def test_costs_are_monotone_in_options(self, mini_shell):
        pdw, plan = optimize(
            mini_shell,
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        for options in pdw.options.values():
            costs = [o.cost for o in options]
            assert costs == sorted(costs)


class TestInterestingProperties:
    def test_join_columns_interesting(self, mini_shell):
        serial = SerialOptimizer(mini_shell).optimize_sql(
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey", extract_serial=False)
        from repro.pdw.interesting import build_equivalence
        eq = build_equivalence(serial.memo, serial.root_group)
        props = derive_interesting_properties(
            serial.memo, serial.root_group, eq)
        hash_props = {
            key for keys in props.values() for key in keys
            if key[0] == "hash"
        }
        assert hash_props  # the custkey class is interesting somewhere

    def test_groupby_keys_interesting(self, mini_shell):
        serial = SerialOptimizer(mini_shell).optimize_sql(
            "SELECT c_nationkey, COUNT(*) FROM customer "
            "GROUP BY c_nationkey", extract_serial=False)
        from repro.pdw.interesting import build_equivalence
        eq = build_equivalence(serial.memo, serial.root_group)
        props = derive_interesting_properties(
            serial.memo, serial.root_group, eq)
        order = topological_order(serial.memo, serial.root_group)
        assert any(
            key[0] == "hash" for gid in order for key in props.get(gid, ())
        )


class TestOutputDistribution:
    def test_replicated_inputs_give_replicated_output(self, mini_shell):
        _, plan = optimize(mini_shell, "SELECT n_name FROM nation")
        assert plan.distribution.kind is DistKind.REPLICATED

    def test_hashed_passthrough(self, mini_shell):
        _, plan = optimize(mini_shell, "SELECT c_name FROM customer")
        assert plan.distribution.kind is DistKind.HASHED

    def test_left_join_right_must_be_replicated_or_aligned(self, mini_shell):
        # customer LEFT JOIN orders on custkey: orders must move (it is
        # hashed on orderkey); a broadcast of orders or shuffle works, but
        # replicating the *left* side would be wrong and must not happen.
        _, plan = optimize(
            mini_shell,
            "SELECT c_name FROM customer LEFT JOIN orders "
            "ON c_custkey = o_custkey")
        from repro.algebra.logical import JoinKind, LogicalJoin
        for node in plan.root.walk():
            if isinstance(node.op, LogicalJoin) \
                    and node.op.kind is JoinKind.LEFT:
                left_child = node.children[0]
                assert not (isinstance(left_child.op, DataMovement)
                            and left_child.op.target.kind
                            is DistKind.REPLICATED)
