"""PDW preprocessing tests (Figure 4 steps 02-03)."""

import pytest

from repro.algebra.logical import AggPhase, LogicalGroupBy
from repro.optimizer.search import SerialOptimizer
from repro.pdw.preprocess import (
    fix_partial_aggregate_cardinalities,
    pdw_expressions,
    preprocess,
)


def serial(shell, sql):
    return SerialOptimizer(shell).optimize_sql(sql, extract_serial=False)


def local_groups(memo):
    result = []
    for group in memo.canonical_groups():
        exprs = group.logical_expressions
        if exprs and all(
                isinstance(e.op, LogicalGroupBy)
                and e.op.phase is AggPhase.LOCAL for e in exprs):
            result.append(group)
    return result


class TestPartialAggregateFix:
    def test_local_groups_capped_by_groups_times_n(self, mini_shell):
        result = serial(
            mini_shell,
            "SELECT c_nationkey, COUNT(*) FROM customer "
            "GROUP BY c_nationkey")
        groups = local_groups(result.memo)
        assert groups
        before = groups[0].cardinality
        adjusted = fix_partial_aggregate_cardinalities(result.memo, 8)
        assert adjusted >= 1
        after = groups[0].cardinality
        # The serial estimate assumed one node (one partial row per
        # group); the appliance produces up to one partial per group per
        # node, so the fix *raises* it to min(input, groups x N).
        assert after == pytest.approx(min(15_000, before * 8))
        assert after < 15_000  # still a reduction vs the raw input

    def test_keyless_local_agg_caps_at_n(self, mini_shell):
        result = serial(mini_shell,
                        "SELECT SUM(o_totalprice) FROM orders")
        fix_partial_aggregate_cardinalities(result.memo, 8)
        groups = local_groups(result.memo)
        assert groups
        assert groups[0].cardinality <= 8

    def test_no_aggregates_nothing_adjusted(self, mini_shell):
        result = serial(mini_shell, "SELECT c_name FROM customer")
        assert fix_partial_aggregate_cardinalities(result.memo, 8) == 0

    def test_idempotent(self, mini_shell):
        result = serial(mini_shell,
                        "SELECT SUM(o_totalprice) FROM orders")
        fix_partial_aggregate_cardinalities(result.memo, 8)
        groups = local_groups(result.memo)
        first = groups[0].cardinality
        fix_partial_aggregate_cardinalities(result.memo, 8)
        assert groups[0].cardinality == first


class TestPdwExpressions:
    def test_only_logical_survive(self, mini_shell):
        result = serial(
            mini_shell,
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        per_group = pdw_expressions(result.memo)
        for group_id, exprs in per_group.items():
            for expr in exprs:
                assert expr.is_logical

    def test_counts_match_logical(self, mini_shell):
        result = serial(mini_shell, "SELECT c_name FROM customer")
        per_group = pdw_expressions(result.memo)
        total = sum(len(v) for v in per_group.values())
        assert total == result.memo.expression_count(logical_only=True)

    def test_preprocess_runs_both_steps(self, mini_shell):
        result = serial(mini_shell,
                        "SELECT SUM(o_totalprice) FROM orders")
        per_group = preprocess(result.memo, 8)
        assert per_group
        groups = local_groups(result.memo)
        assert groups[0].cardinality <= 8
