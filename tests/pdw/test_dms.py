"""DMS operation classification tests (the 7 operation types, §3.3.2)."""

import pytest

from repro.algebra.expressions import ColumnVar
from repro.algebra.properties import (
    DistKind,
    Distribution,
    ON_CONTROL_DIST,
    REPLICATED_DIST,
    SINGLE_NODE_DIST,
    hashed_on,
)
from repro.common.types import INTEGER
from repro.pdw.dms import DataMovement, DmsOperation, classify_movement

COL = ColumnVar(7, "k", INTEGER)


class TestClassification:
    def test_no_move_for_identical(self):
        assert classify_movement(hashed_on(7), hashed_on(7)) is None

    def test_hash_to_hash_is_shuffle(self):
        movement = classify_movement(hashed_on(1), hashed_on(7), (COL,))
        assert movement.operation is DmsOperation.SHUFFLE_MOVE
        assert movement.hash_columns == (COL,)

    def test_replicated_to_hash_is_trim(self):
        movement = classify_movement(REPLICATED_DIST, hashed_on(7), (COL,))
        assert movement.operation is DmsOperation.TRIM_MOVE

    def test_control_to_hash_is_shuffle(self):
        movement = classify_movement(ON_CONTROL_DIST, hashed_on(7), (COL,))
        assert movement.operation is DmsOperation.SHUFFLE_MOVE

    def test_hash_to_replicated_is_broadcast(self):
        movement = classify_movement(hashed_on(1), REPLICATED_DIST)
        assert movement.operation is DmsOperation.BROADCAST_MOVE

    def test_control_to_replicated_is_control_node_move(self):
        movement = classify_movement(ON_CONTROL_DIST, REPLICATED_DIST)
        assert movement.operation is DmsOperation.CONTROL_NODE_MOVE

    def test_single_node_to_replicated_is_replicated_broadcast(self):
        movement = classify_movement(SINGLE_NODE_DIST, REPLICATED_DIST)
        assert movement.operation is DmsOperation.REPLICATED_BROADCAST

    def test_hash_to_control_is_partition_move(self):
        movement = classify_movement(hashed_on(1), ON_CONTROL_DIST)
        assert movement.operation is DmsOperation.PARTITION_MOVE

    def test_replicated_to_control_is_remote_copy(self):
        movement = classify_movement(REPLICATED_DIST, ON_CONTROL_DIST)
        assert movement.operation is DmsOperation.REMOTE_COPY

    def test_single_to_control_is_remote_copy(self):
        movement = classify_movement(SINGLE_NODE_DIST, ON_CONTROL_DIST)
        assert movement.operation is DmsOperation.REMOTE_COPY

    def test_seven_operations_exist(self):
        assert len(DmsOperation) == 7


class TestDataMovementNode:
    def test_describe_with_columns(self):
        movement = DataMovement(DmsOperation.SHUFFLE_MOVE, hashed_on(1),
                                hashed_on(7), (COL,))
        assert movement.describe() == "ShuffleMove(k)"

    def test_describe_without_columns(self):
        movement = DataMovement(DmsOperation.BROADCAST_MOVE, hashed_on(1),
                                REPLICATED_DIST)
        assert movement.describe() == "BroadcastMove"

    def test_local_key_distinguishes_targets(self):
        shuffle_a = DataMovement(DmsOperation.SHUFFLE_MOVE, hashed_on(1),
                                 hashed_on(7), (COL,))
        shuffle_b = DataMovement(DmsOperation.SHUFFLE_MOVE, hashed_on(1),
                                 hashed_on(8),
                                 (ColumnVar(8, "j", INTEGER),))
        assert shuffle_a.local_key() != shuffle_b.local_key()

    def test_source_and_target_recorded(self):
        movement = DataMovement(DmsOperation.BROADCAST_MOVE, hashed_on(1),
                                REPLICATED_DIST)
        assert movement.source == hashed_on(1)
        assert movement.target == REPLICATED_DIST
