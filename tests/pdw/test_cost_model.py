"""DMS cost model tests (paper §3.3): byte formulas, max-composition,
λ structure."""

import pytest

from repro.algebra.properties import (
    DistKind,
    Distribution,
    ON_CONTROL_DIST,
    REPLICATED_DIST,
    hashed_on,
)
from repro.common.errors import PdwOptimizerError
from repro.pdw.cost_model import CostConstants, DmsCostModel
from repro.pdw.dms import DataMovement, DmsOperation

N = 8
Y = 80_000.0  # global rows
W = 10.0      # row width


@pytest.fixture()
def model():
    return DmsCostModel(N)


def move(op, source, target, cols=()):
    return DataMovement(op, source, target, cols)


class TestComponentBytes:
    def test_shuffle_all_components_per_node(self, model):
        movement = move(DmsOperation.SHUFFLE_MOVE, hashed_on(1),
                        hashed_on(2))
        per_node = Y * W / N
        assert model.component_bytes(movement, Y, W) == (
            per_node, per_node, per_node, per_node)

    def test_partition_move_target_sees_everything(self, model):
        movement = move(DmsOperation.PARTITION_MOVE, hashed_on(1),
                        ON_CONTROL_DIST)
        reader, network, writer, bulk = model.component_bytes(movement, Y, W)
        assert reader == Y * W / N
        assert writer == Y * W
        assert bulk == Y * W

    def test_broadcast_network_is_total(self, model):
        movement = move(DmsOperation.BROADCAST_MOVE, hashed_on(1),
                        REPLICATED_DIST)
        reader, network, writer, bulk = model.component_bytes(movement, Y, W)
        assert reader == Y * W / N
        assert network == Y * W
        assert writer == Y * W

    def test_trim_has_no_network(self, model):
        movement = move(DmsOperation.TRIM_MOVE, REPLICATED_DIST,
                        hashed_on(1))
        reader, network, writer, bulk = model.component_bytes(movement, Y, W)
        assert network == 0.0
        assert reader == Y * W          # full local replica scanned
        assert writer == Y * W / N      # keeps only its share

    def test_replicated_broadcast_network_scales_with_n(self, model):
        movement = move(DmsOperation.REPLICATED_BROADCAST,
                        Distribution(DistKind.SINGLE_NODE), REPLICATED_DIST)
        _, network, _, _ = model.component_bytes(movement, Y, W)
        assert network == Y * W * N

    def test_control_node_move_reads_full_table(self, model):
        movement = move(DmsOperation.CONTROL_NODE_MOVE, ON_CONTROL_DIST,
                        REPLICATED_DIST)
        reader, network, _, _ = model.component_bytes(movement, Y, W)
        assert reader == Y * W
        assert network == Y * W * N

    def test_remote_copy_from_distributed(self, model):
        movement = move(DmsOperation.REMOTE_COPY, hashed_on(1),
                        ON_CONTROL_DIST)
        reader, _, writer, _ = model.component_bytes(movement, Y, W)
        assert reader == Y * W / N
        assert writer == Y * W


class TestMaxComposition:
    def test_source_is_max_of_reader_network(self, model):
        movement = move(DmsOperation.BROADCAST_MOVE, hashed_on(1),
                        REPLICATED_DIST)
        breakdown = model.cost_breakdown(movement, Y, W)
        assert breakdown.source == max(breakdown.reader, breakdown.network)

    def test_target_is_max_of_writer_bulk(self, model):
        movement = move(DmsOperation.SHUFFLE_MOVE, hashed_on(1),
                        hashed_on(2))
        breakdown = model.cost_breakdown(movement, Y, W)
        assert breakdown.target == max(breakdown.writer,
                                       breakdown.bulk_copy)

    def test_total_is_max_of_source_target(self, model):
        movement = move(DmsOperation.PARTITION_MOVE, hashed_on(1),
                        ON_CONTROL_DIST)
        breakdown = model.cost_breakdown(movement, Y, W)
        assert breakdown.total == max(breakdown.source, breakdown.target)

    def test_cost_equals_breakdown_total(self, model):
        movement = move(DmsOperation.SHUFFLE_MOVE, hashed_on(1),
                        hashed_on(2))
        assert model.cost(movement, Y, W) == \
            model.cost_breakdown(movement, Y, W).total


class TestBreakdownComponents:
    """cost_breakdown component math: each component is its byte stream
    times its λ, with the reader picking λ_hash vs. λ_direct per op."""

    CONSTANTS = CostConstants(
        lambda_reader_direct=2.0e-9,
        lambda_reader_hash=7.0e-9,
        lambda_network=11.0e-9,
        lambda_writer=13.0e-9,
        lambda_bulk_copy=17.0e-9,
    )

    @pytest.fixture()
    def skewed(self):
        return DmsCostModel(N, self.CONSTANTS)

    def test_each_component_is_bytes_times_lambda(self, skewed):
        movement = move(DmsOperation.BROADCAST_MOVE, hashed_on(1),
                        REPLICATED_DIST)
        r_bytes, n_bytes, w_bytes, b_bytes = skewed.component_bytes(
            movement, Y, W)
        breakdown = skewed.cost_breakdown(movement, Y, W)
        c = self.CONSTANTS
        assert breakdown.reader == pytest.approx(
            r_bytes * c.lambda_reader_direct)
        assert breakdown.network == pytest.approx(n_bytes * c.lambda_network)
        assert breakdown.writer == pytest.approx(w_bytes * c.lambda_writer)
        assert breakdown.bulk_copy == pytest.approx(
            b_bytes * c.lambda_bulk_copy)

    def test_hashing_ops_pay_lambda_hash_through_breakdown(self, skewed):
        """Shuffle and Trim hash rows (λ_hash); Broadcast and Partition
        read directly (λ_direct) — visible in the reader component."""
        per_node = Y * W / N
        shuffle = skewed.cost_breakdown(
            move(DmsOperation.SHUFFLE_MOVE, hashed_on(1), hashed_on(2)),
            Y, W)
        assert shuffle.reader == pytest.approx(
            per_node * self.CONSTANTS.lambda_reader_hash)
        trim = skewed.cost_breakdown(
            move(DmsOperation.TRIM_MOVE, REPLICATED_DIST, hashed_on(1)),
            Y, W)
        assert trim.reader == pytest.approx(
            Y * W * self.CONSTANTS.lambda_reader_hash)
        broadcast = skewed.cost_breakdown(
            move(DmsOperation.BROADCAST_MOVE, hashed_on(1),
                 REPLICATED_DIST), Y, W)
        assert broadcast.reader == pytest.approx(
            per_node * self.CONSTANTS.lambda_reader_direct)
        partition = skewed.cost_breakdown(
            move(DmsOperation.PARTITION_MOVE, hashed_on(1),
                 ON_CONTROL_DIST), Y, W)
        assert partition.reader == pytest.approx(
            per_node * self.CONSTANTS.lambda_reader_direct)

    def test_source_target_split_under_skewed_constants(self):
        """With λ_network dominating, the source side carries the max;
        with λ_bulk_copy dominating, the target side does."""
        movement = move(DmsOperation.SHUFFLE_MOVE, hashed_on(1),
                        hashed_on(2))
        network_heavy = DmsCostModel(N, CostConstants(
            lambda_network=1.0e-6)).cost_breakdown(movement, Y, W)
        assert network_heavy.source == network_heavy.network
        assert network_heavy.total == network_heavy.source
        bulk_heavy = DmsCostModel(N, CostConstants(
            lambda_bulk_copy=1.0e-6)).cost_breakdown(movement, Y, W)
        assert bulk_heavy.target == bulk_heavy.bulk_copy
        assert bulk_heavy.total == bulk_heavy.target

    def test_breakdown_totals_consistent_for_every_operation(self, skewed):
        """cost() and cost_breakdown().total agree exactly for every DMS
        operation — the invariant the optimizer trace relies on."""
        movements = [
            move(DmsOperation.SHUFFLE_MOVE, hashed_on(1), hashed_on(2)),
            move(DmsOperation.PARTITION_MOVE, hashed_on(1),
                 ON_CONTROL_DIST),
            move(DmsOperation.CONTROL_NODE_MOVE, ON_CONTROL_DIST,
                 REPLICATED_DIST),
            move(DmsOperation.BROADCAST_MOVE, hashed_on(1),
                 REPLICATED_DIST),
            move(DmsOperation.TRIM_MOVE, REPLICATED_DIST, hashed_on(1)),
            move(DmsOperation.REPLICATED_BROADCAST,
                 Distribution(DistKind.SINGLE_NODE), REPLICATED_DIST),
            move(DmsOperation.REMOTE_COPY, hashed_on(1), ON_CONTROL_DIST),
        ]
        for movement in movements:
            breakdown = skewed.cost_breakdown(movement, Y, W)
            assert skewed.cost(movement, Y, W) == breakdown.total
            assert breakdown.total == max(breakdown.source,
                                          breakdown.target)


class TestLambdaStructure:
    def test_hashing_ops_use_lambda_hash(self):
        constants = CostConstants(lambda_reader_direct=1e-9,
                                  lambda_reader_hash=9e-9)
        assert constants.reader_lambda(True) == 9e-9
        assert constants.reader_lambda(False) == 1e-9

    def test_shuffle_and_trim_use_hashing(self):
        assert DmsOperation.SHUFFLE_MOVE.uses_hashing
        assert DmsOperation.TRIM_MOVE.uses_hashing
        assert not DmsOperation.BROADCAST_MOVE.uses_hashing

    def test_with_constants(self, model):
        other = model.with_constants(CostConstants(lambda_network=1.0))
        assert other.constants.lambda_network == 1.0
        assert other.node_count == model.node_count


class TestScaling:
    def test_cost_linear_in_rows(self, model):
        movement = move(DmsOperation.SHUFFLE_MOVE, hashed_on(1),
                        hashed_on(2))
        assert model.cost(movement, 2 * Y, W) == pytest.approx(
            2 * model.cost(movement, Y, W))

    def test_cost_linear_in_width(self, model):
        movement = move(DmsOperation.SHUFFLE_MOVE, hashed_on(1),
                        hashed_on(2))
        assert model.cost(movement, Y, 3 * W) == pytest.approx(
            3 * model.cost(movement, Y, W))

    def test_shuffle_cheaper_with_more_nodes(self):
        movement = move(DmsOperation.SHUFFLE_MOVE, hashed_on(1),
                        hashed_on(2))
        small = DmsCostModel(2).cost(movement, Y, W)
        big = DmsCostModel(16).cost(movement, Y, W)
        assert big < small

    def test_broadcast_cost_insensitive_to_n_in_bulk(self):
        # Broadcast target work (Y·w per node) does not shrink with N —
        # the crossover driver of benchmark E13.
        movement = move(DmsOperation.BROADCAST_MOVE, hashed_on(1),
                        REPLICATED_DIST)
        small = DmsCostModel(2).cost(movement, Y, W)
        big = DmsCostModel(16).cost(movement, Y, W)
        assert big >= small * 0.99

    def test_zero_rows_zero_cost(self, model):
        movement = move(DmsOperation.SHUFFLE_MOVE, hashed_on(1),
                        hashed_on(2))
        assert model.cost(movement, 0, W) == 0.0

    def test_invalid_node_count_rejected(self):
        with pytest.raises(PdwOptimizerError):
            DmsCostModel(0)


class TestShuffleVsBroadcastCrossover:
    def test_small_table_broadcast_wins(self):
        """The core §3.3 trade-off: broadcasting a small table beats
        shuffling a large one, and vice versa."""
        model = DmsCostModel(8)
        shuffle_big = model.cost(
            move(DmsOperation.SHUFFLE_MOVE, hashed_on(1), hashed_on(2)),
            1_000_000, 10)
        broadcast_small = model.cost(
            move(DmsOperation.BROADCAST_MOVE, hashed_on(1),
                 REPLICATED_DIST), 1_000, 10)
        assert broadcast_small < shuffle_big

    def test_large_table_shuffle_wins(self):
        model = DmsCostModel(8)
        shuffle = model.cost(
            move(DmsOperation.SHUFFLE_MOVE, hashed_on(1), hashed_on(2)),
            1_000_000, 10)
        broadcast = model.cost(
            move(DmsOperation.BROADCAST_MOVE, hashed_on(1),
                 REPLICATED_DIST), 1_000_000, 10)
        assert shuffle < broadcast
