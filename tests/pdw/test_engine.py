"""PdwEngine façade tests (the Figure 2 pipeline wiring)."""

import pytest

from repro.optimizer.memo_xml import memo_from_xml
from repro.pdw.engine import PdwEngine

SQL = ("SELECT c_name FROM customer, orders "
       "WHERE c_custkey = o_custkey")


@pytest.fixture()
def engine(mini_shell):
    return PdwEngine(mini_shell)


class TestCompile:
    def test_produces_all_artifacts(self, engine):
        compiled = engine.compile(SQL)
        assert compiled.serial.best_serial_plan is not None
        assert compiled.memo_xml.startswith("<memo")
        assert compiled.pdw_plan.root is not None
        assert compiled.dsql_plan.steps

    def test_xml_is_the_real_interface(self, engine, mini_shell):
        """The PDW memo must be reconstructible from the XML alone."""
        compiled = engine.compile(SQL)
        reparsed = memo_from_xml(compiled.memo_xml, mini_shell)
        assert len(reparsed.memo.canonical_groups()) == len(
            compiled.pdw_memo.canonical_groups())
        assert reparsed.root_group == compiled.pdw_root_group

    def test_plan_cost_property(self, engine):
        compiled = engine.compile(SQL)
        assert compiled.plan_cost == compiled.pdw_plan.cost

    def test_explain_sections(self, engine):
        text = engine.compile(SQL).explain()
        assert "Distributed plan" in text
        assert "DSQL plan" in text
        assert "DMS cost" in text

    def test_skip_serial_extraction(self, engine):
        compiled = engine.compile(SQL, extract_serial=False)
        assert compiled.serial.best_serial_plan is None
        assert compiled.dsql_plan.steps  # PDW side unaffected

    def test_dsql_order_and_limit_carried(self, engine):
        compiled = engine.compile(SQL + " ORDER BY c_name DESC LIMIT 3")
        plan = compiled.dsql_plan
        assert plan.limit == 3
        assert plan.order_by == [("c_name", False)]

    def test_compile_is_deterministic(self, engine):
        first = engine.compile(SQL)
        second = engine.compile(SQL)
        assert first.pdw_plan.cost == second.pdw_plan.cost
        assert first.dsql_plan.describe() == second.dsql_plan.describe()

    def test_replicated_only_query_single_step(self, engine):
        compiled = engine.compile("SELECT n_name FROM nation")
        assert len(compiled.dsql_plan.steps) == 1
