"""Unit tests for repro.telemetry: spans, counters, no-op tracer."""

import pytest

from repro.telemetry import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    counter_delta,
)


class TestSpanNesting:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("compile"):
            with tracer.span("serial"):
                with tracer.span("parse"):
                    pass
                with tracer.span("bind"):
                    pass
            with tracer.span("pdw"):
                pass
        assert len(tracer.roots) == 1
        compile_span = tracer.roots[0]
        assert compile_span.name == "compile"
        assert [c.name for c in compile_span.children] == ["serial", "pdw"]
        serial = compile_span.children[0]
        assert [c.name for c in serial.children] == ["parse", "bind"]

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("compile"):
            pass
        with tracer.span("execute"):
            pass
        assert [s.name for s in tracer.roots] == ["compile", "execute"]

    def test_durations_are_positive_and_nested_leq_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert inner.duration_seconds > 0.0
        assert outer.duration_seconds >= inner.duration_seconds

    def test_attributes(self):
        tracer = Tracer()
        with tracer.span("explore") as span:
            span.set("groups", 12)
        assert tracer.roots[0].attributes == {"groups": 12}

    def test_span_finishes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("fails"):
                raise ValueError("boom")
        assert tracer.current_span is None
        assert tracer.roots[0].duration_seconds > 0.0

    def test_find_depth_first(self):
        tracer = Tracer()
        with tracer.span("compile"):
            with tracer.span("serial"):
                with tracer.span("parse"):
                    pass
        assert tracer.find("parse") is not None
        assert tracer.find("parse").name == "parse"
        assert tracer.find("missing") is None

    def test_walk_and_tree_string(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b") as span:
                span.set("rows", 3)
        names = [s.name for s in tracer.roots[0].walk()]
        assert names == ["a", "b"]
        rendered = tracer.render_spans()
        assert "a" in rendered and "b" in rendered
        assert "rows=3" in rendered
        assert "ms" in rendered


class TestCounterAggregation:
    def test_counts_accumulate(self):
        tracer = Tracer()
        tracer.count("dms.bytes_moved", 100)
        tracer.count("dms.bytes_moved", 50)
        tracer.count("pdw.enforcers.added")
        assert tracer.counter("dms.bytes_moved") == 150
        assert tracer.counter("pdw.enforcers.added") == 1

    def test_missing_counter_reads_zero(self):
        assert Tracer().counter("nope") == 0.0

    def test_snapshot_is_independent(self):
        tracer = Tracer()
        tracer.count("x", 1)
        snapshot = tracer.counter_snapshot()
        tracer.count("x", 1)
        assert snapshot["x"] == 1
        assert tracer.counter("x") == 2

    def test_counter_delta(self):
        tracer = Tracer()
        tracer.count("a", 5)
        before = tracer.counter_snapshot()
        tracer.count("a", 3)
        tracer.count("b", 7)
        delta = counter_delta(before, tracer.counter_snapshot())
        assert delta == {"a": 3, "b": 7}

    def test_counter_delta_surfaces_new_zero_counters(self):
        # A counter first touched between the snapshots must appear even
        # when its accumulated change is zero — "ran but counted nothing"
        # is not the same as "never ran".
        tracer = Tracer()
        tracer.count("old", 5)
        before = tracer.counter_snapshot()
        tracer.count("fresh", 0)
        delta = counter_delta(before, tracer.counter_snapshot())
        assert delta == {"fresh": 0.0}

    def test_counter_delta_omits_unchanged_existing(self):
        before = {"a": 5.0, "b": 2.0}
        after = {"a": 5.0, "b": 3.0}
        assert counter_delta(before, after) == {"b": 1.0}

    def test_render_counters_sorted(self):
        tracer = Tracer()
        tracer.count("zeta", 2)
        tracer.count("alpha", 1)
        rendered = tracer.render_counters()
        assert rendered.index("alpha") < rendered.index("zeta")

    def test_reset(self):
        tracer = Tracer()
        tracer.count("x")
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.counters == {}
        assert tracer.roots == []


class TestNullTracer:
    """The disabled path must record nothing and allocate ~nothing."""

    def test_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is True

    def test_span_records_nothing(self):
        with NULL_TRACER.span("compile") as span:
            span.set("ignored", 1)
            with NULL_TRACER.span("inner"):
                pass
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.current_span is None

    def test_count_records_nothing(self):
        NULL_TRACER.count("x", 100)
        assert NULL_TRACER.counters == {}
        assert NULL_TRACER.counter("x") == 0.0

    def test_span_scope_is_shared_singleton(self):
        # The no-op path must not allocate per call.
        a = NULL_TRACER.span("a")
        b = NULL_TRACER.span("b")
        assert a is b

    def test_fresh_null_tracer_behaves_the_same(self):
        tracer = NullTracer()
        with tracer.span("s"):
            tracer.count("c")
        assert tracer.roots == []
        assert tracer.counters == {}


class TestSpanDirect:
    def test_span_records_wall_clock_start(self):
        span = Span("s")
        assert span.started_at > 0
        span.finish()
        assert span.duration_seconds >= 0.0


class TestStructuredExport:
    def test_span_to_dict_round_trips_tree(self):
        tracer = Tracer()
        with tracer.span("compile") as span:
            span.set("steps", 2)
            with tracer.span("serial"):
                pass
        data = tracer.roots[0].to_dict()
        assert data["name"] == "compile"
        assert data["attributes"] == {"steps": 2}
        assert [c["name"] for c in data["children"]] == ["serial"]
        assert data["duration_seconds"] > 0.0
        assert data["started_at"] > 0.0

    def test_tracer_to_dict_includes_counters(self):
        tracer = Tracer()
        tracer.count("zeta", 2)
        tracer.count("alpha", 1)
        with tracer.span("s"):
            pass
        data = tracer.to_dict()
        assert [s["name"] for s in data["spans"]] == ["s"]
        assert data["counters"] == {"alpha": 1.0, "zeta": 2.0}

    def test_to_json_parses(self):
        import json

        tracer = Tracer()
        with tracer.span("s") as span:
            span.set("obj", object())  # non-serializable → default=str
        parsed = json.loads(tracer.to_json())
        assert parsed["spans"][0]["name"] == "s"
        assert isinstance(parsed["spans"][0]["attributes"]["obj"], str)
