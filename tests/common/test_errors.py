"""Error hierarchy tests."""

import pytest

from repro.common import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.SqlSyntaxError("x"),
        errors.BindError("x"),
        errors.CatalogError("x"),
        errors.OptimizerError("x"),
        errors.PdwOptimizerError("x"),
        errors.ExecutionError("x"),
        errors.DmsError("x"),
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert isinstance(exc, errors.ReproError)

    def test_dms_error_is_execution_error(self):
        assert isinstance(errors.DmsError("x"), errors.ExecutionError)

    def test_syntax_error_carries_position(self):
        exc = errors.SqlSyntaxError("bad token", line=3, column=14)
        assert exc.line == 3
        assert exc.column == 14
        assert "line 3" in str(exc)

    def test_syntax_error_without_position(self):
        exc = errors.SqlSyntaxError("bad")
        assert "line" not in str(exc)

    def test_catchable_as_single_family(self):
        with pytest.raises(errors.ReproError):
            raise errors.BindError("nope")
