"""SQL type system tests."""

import datetime

import pytest

from repro.common import types as t


class TestWidths:
    @pytest.mark.parametrize("sql_type,width", [
        (t.INTEGER, 4),
        (t.BIGINT, 8),
        (t.DOUBLE, 8),
        (t.DATE, 4),
        (t.BOOLEAN, 1),
        (t.varchar(40), 40),
        (t.char(15), 15),
        (t.decimal(15, 2), 8),
    ])
    def test_raw_widths(self, sql_type, width):
        assert sql_type.width == width

    def test_varchar_without_length_defaults(self):
        assert t.SqlType(t.TypeKind.VARCHAR).width == 32


class TestPredicates:
    def test_numeric_kinds(self):
        assert t.INTEGER.is_numeric
        assert t.decimal().is_numeric
        assert not t.varchar(5).is_numeric

    def test_string_kinds(self):
        assert t.varchar(5).is_string
        assert t.char(5).is_string
        assert not t.DATE.is_string


class TestDisplay:
    def test_strs(self):
        assert str(t.varchar(25)) == "VARCHAR(25)"
        assert str(t.char(3)) == "CHAR(3)"
        assert str(t.decimal(10, 2)) == "DECIMAL(10, 2)"
        assert str(t.INTEGER) == "INTEGER"


class TestValueMatching:
    @pytest.mark.parametrize("value,sql_type,ok", [
        (5, t.INTEGER, True),
        (True, t.INTEGER, False),       # bool is not an int here
        (5.5, t.INTEGER, False),
        (5, t.decimal(), True),
        ("x", t.varchar(3), True),
        (datetime.date(2020, 1, 1), t.DATE, True),
        ("2020-01-01", t.DATE, False),
        (True, t.BOOLEAN, True),
        (None, t.INTEGER, True),        # NULL fits everywhere
        (None, t.varchar(1), True),
    ])
    def test_value_matches_type(self, value, sql_type, ok):
        assert t.value_matches_type(value, sql_type) is ok


class TestCommonSuperType:
    def test_same_kind(self):
        assert t.common_super_type(t.INTEGER, t.INTEGER) == t.INTEGER

    def test_numeric_widening(self):
        combined = t.common_super_type(t.INTEGER, t.DOUBLE)
        assert combined.kind is t.TypeKind.DOUBLE

    def test_string_widening(self):
        combined = t.common_super_type(t.varchar(5), t.char(9))
        assert combined.kind is t.TypeKind.VARCHAR
        assert combined.length == 9

    def test_incompatible_raises(self):
        with pytest.raises(TypeError):
            t.common_super_type(t.DATE, t.INTEGER)
