"""End-to-end profiling: PdwSession.profile over the TPC-H appliance.

Covers the full loop: DSQL generation annotates per-operator estimates,
the profiled runner collects per-node actuals and transfer matrices, the
profiler joins the two, and the exports validate against the event
schemas.
"""

import json

import pytest

from repro.appliance.interpreter import PlanInterpreter
from repro.obs.export import profile_to_events, validate_events
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import OperatorObserver
from repro.obs.report import render_profile_report
from repro.pdw.dsql import StepKind
from repro.service import ExecutionOptions
from repro.session import PdwSession

JOIN_SQL = (
    "SELECT l_returnflag, COUNT(*) AS n "
    "FROM lineitem, orders WHERE l_orderkey = o_orderkey "
    "GROUP BY l_returnflag"
)


@pytest.fixture(scope="module")
def session(tpch):
    appliance, shell = tpch
    return PdwSession(appliance=appliance, shell=shell)


@pytest.fixture(scope="module")
def profile(session):
    return session.profile(JOIN_SQL)


class TestProfileContents:
    def test_every_step_profiled(self, session, profile):
        compiled = session.compile(JOIN_SQL)
        assert len(profile.steps) == len(compiled.dsql_plan.steps)
        assert profile.node_count == session.appliance.node_count

    def test_source_rows_cover_nodes_and_sum_to_actual(self, profile):
        for step in profile.steps:
            assert step.source_rows, f"step {step.index} has no node rows"
            assert sum(step.source_rows.values()) == step.actual_rows

    def test_transfer_matrix_consistent(self, profile):
        # Row conservation: every transfer matrix sums to the rows the
        # step moved, and destinations match the movement's target.
        for step in profile.steps:
            assert step.transfers
            moved = sum(rows for rows, _ in step.transfers.values())
            assert moved == step.actual_rows

    def test_operators_joined_with_estimates(self, profile):
        ops = profile.operators
        assert ops, "no operators profiled"
        joined = [op for op in ops if op.q_error is not None]
        # The plan for this query is simple enough that every profiled
        # operator kind matches the winning plan fragment exactly.
        assert len(joined) == len(ops)
        for op in joined:
            assert op.q_error >= 1.0
            assert sum(op.node_rows.values()) == op.actual_rows

    def test_estimates_are_exact_on_foreign_key_join(self, profile):
        # Statistics are built from the loaded data, so the optimizer's
        # estimates on this join/group-by plan are essentially exact.
        summary = profile.q_error_summary()
        assert summary.count > 0
        assert summary.max < 1.5

    def test_skew_stats_present(self, profile):
        dms = [s for s in profile.steps if s.kind == "DMS"]
        assert dms
        for step in dms:
            assert step.source_skew.count == len(step.source_rows)
            assert step.source_skew.imbalance >= 1.0

    def test_metrics_registry_populated(self, session, profile):
        del profile  # computed by the fixture against the same session
        text = session.metrics.render_prometheus()
        assert "pdw_step_rows_total" in text
        assert "pdw_operator_rows_total" in text
        assert "pdw_q_error_bucket" in text

    def test_report_renders(self, profile):
        text = render_profile_report(profile)
        assert "q-err" in text
        assert "skew cov" in text
        assert "Get(lineitem)" in text

    def test_events_validate_and_round_trip(self, profile):
        events = profile_to_events(profile)
        assert validate_events(events) == []
        assert json.loads(json.dumps(events)) == events

    def test_profile_document_is_json_serializable(self, profile):
        document = profile.to_dict()
        parsed = json.loads(json.dumps(document))
        assert parsed["q_error"]["count"] == document["q_error"]["count"]
        assert len(parsed["steps"]) == len(profile.steps)


class TestResultsUnchanged:
    def test_profiled_run_returns_same_rows(self, session):
        plain = session.run(JOIN_SQL)
        compiled = session.compile(JOIN_SQL)
        profiled = session.runner.run(compiled.dsql_plan, profile=True)
        assert profiled.sorted_rows() == plain.sorted_rows()


class TestDisabledPathOverhead:
    def test_plain_run_collects_no_profiling_data(self, session):
        compiled = session.compile(JOIN_SQL)
        result = session.runner.run(compiled.dsql_plan)
        for stats in result.step_stats:
            assert stats.node_operators == {}
            assert stats.transfers == {}

    def test_plain_run_never_calls_observer(self, session, monkeypatch):
        # The per-operator hook must not fire at all when profiling is
        # off — not merely discard its argument.
        def boom(self, op, rows_out):
            raise AssertionError("observer fired on an unprofiled run")

        monkeypatch.setattr(OperatorObserver, "record", boom)
        compiled = session.compile(JOIN_SQL)
        result = session.runner.run(compiled.dsql_plan)
        assert result.rows

    def test_interpreter_without_observer_pays_one_test(self, session):
        # Sanity: PlanInterpreter defaults to observer=None and the
        # profiled path is opt-in per run.
        interpreter = PlanInterpreter(session.appliance.single_system_image())
        assert interpreter.observer is None

    def test_profiling_flag_resets_after_run(self, session):
        compiled = session.compile(JOIN_SQL)
        session.runner.run(compiled.dsql_plan, profile=True)
        assert session.runner.runtime.profiling is False


class TestSessionWiring:
    def test_trace_false_uses_null_metrics(self, tpch):
        appliance, shell = tpch
        quiet = PdwSession(appliance=appliance, shell=shell,
                           options=ExecutionOptions(trace=False))
        assert quiet.metrics.enabled is False
        quiet.profile(JOIN_SQL)  # still works, just records no metrics
        assert quiet.metrics.render_prometheus() == ""

    def test_explicit_registry_wins(self, tpch):
        appliance, shell = tpch
        registry = MetricsRegistry()
        explicit = PdwSession(appliance=appliance, shell=shell,
                              options=ExecutionOptions(trace=False),
                              metrics=registry)
        explicit.profile(JOIN_SQL)
        assert registry.snapshot()

    def test_return_step_estimates_annotated(self, session):
        compiled = session.compile(JOIN_SQL)
        for step in compiled.dsql_plan.steps:
            assert step.operator_estimates
            if step.kind is StepKind.RETURN:
                kinds = [e.kind for e in step.operator_estimates]
                assert "GroupBy" in kinds
