"""The Query Store: shape keys and plan digests, aggregation math,
regression detection, JSONL persistence round-trips, LRU bounds and the
NULL-store zero-overhead contract (booby-trapped constructors prove the
disabled path allocates nothing)."""

import json
import threading

import pytest

import repro.obs.query_store as qs
from repro import PdwSession
from repro.service import ExecutionOptions
from repro.obs.query_store import (
    NULL_QUERY_STORE,
    NullQueryStore,
    QueryStore,
    normalized_shape_key,
    plan_shape_digest,
)
from repro.workloads.tpch_datagen import build_tpch_appliance

SCALE = 0.001
NODES = 2

JOIN_SQL = ("SELECT c_custkey, o_orderdate FROM orders, customer "
            "WHERE o_custkey = c_custkey AND o_totalprice > 1000")
JOIN_SQL_OTHER_LITERAL = (
    "SELECT c_custkey, o_orderdate FROM orders, customer "
    "WHERE o_custkey = c_custkey AND o_totalprice > 50000")


@pytest.fixture(scope="module")
def store_env():
    """Private appliance — query-store stamping and system-view
    registration must not touch the suite-wide shared fixture."""
    return build_tpch_appliance(scale=SCALE, node_count=NODES)


def _record(store, shape="q", plan="p1", **overrides):
    kwargs = dict(example_sql="SELECT 1", schema_version=0,
                  cache_hit=False, rows=10, bytes_moved=100,
                  elapsed_seconds=1.0, wall_seconds=0.5,
                  queue_seconds=0.1, compile_seconds=0.2,
                  execute_seconds=0.2, steps=(), now=1000.0)
    kwargs.update(overrides)
    store.record_execution(shape, plan, **kwargs)


class TestShapeKeys:
    def test_literals_share_a_shape(self):
        assert normalized_shape_key(JOIN_SQL) \
            == normalized_shape_key(JOIN_SQL_OTHER_LITERAL)

    def test_whitespace_insensitive(self):
        assert normalized_shape_key("SELECT  1 ") \
            == normalized_shape_key("SELECT 1")

    def test_distinct_templates_distinct_shapes(self):
        assert normalized_shape_key("SELECT COUNT(*) AS n FROM nation") \
            != normalized_shape_key(JOIN_SQL)

    def test_plan_digest_literal_insensitive(self, store_env):
        appliance, shell = store_env
        session = PdwSession(appliance=appliance, shell=shell)
        a = session.compile(JOIN_SQL).dsql_plan
        b = session.compile(JOIN_SQL_OTHER_LITERAL).dsql_plan
        c = session.compile("SELECT COUNT(*) AS n FROM nation").dsql_plan
        assert plan_shape_digest(a) == plan_shape_digest(b)
        assert plan_shape_digest(a) != plan_shape_digest(c)
        assert len(plan_shape_digest(a)) == 12


class TestAggregation:
    def test_scalar_folding(self):
        store = QueryStore()
        _record(store, elapsed_seconds=1.0, wall_seconds=0.4, rows=10,
                bytes_moved=100, now=1000.0)
        _record(store, elapsed_seconds=3.0, wall_seconds=0.2, rows=20,
                bytes_moved=50, cache_hit=True, now=1001.0)
        shape = store.find("q")
        assert shape is not None
        plan = shape.plans["p1"]
        assert plan.execution_count == 2
        assert plan.cache_hits == 1
        assert plan.rows_returned_total == 30
        assert plan.bytes_moved_total == 150
        assert plan.elapsed_seconds_total == pytest.approx(4.0)
        assert plan.elapsed_seconds_min == pytest.approx(1.0)
        assert plan.elapsed_seconds_max == pytest.approx(3.0)
        assert plan.elapsed_seconds_last == pytest.approx(3.0)
        assert plan.mean_elapsed_seconds == pytest.approx(2.0)
        assert plan.wall_seconds_min == pytest.approx(0.2)
        assert plan.wall_seconds_max == pytest.approx(0.4)
        assert shape.first_seen == 1000.0
        assert shape.last_seen == 1001.0
        assert store.stats()["executions"] == 2

    def test_step_cardinalities_and_q_error(self):
        store = QueryStore()
        _record(store, steps=[(0, "DMS", "ShuffleMove", 100.0, 10)])
        _record(store, steps=[(0, "DMS", "ShuffleMove", 100.0, 400)])
        shape = store.find("q")
        plan = shape.plans["p1"]
        card = plan.steps[0]
        assert card.executions == 2
        assert card.actual_rows_total == 410
        assert card.actual_rows_last == 400
        assert card.mean_actual_rows == pytest.approx(205.0)
        # q-error is max(est/act, act/est): 100/10 = 10x dominates.
        assert card.max_q_error == pytest.approx(10.0)
        assert plan.max_q_error == pytest.approx(10.0)
        assert store.observed_cardinalities("q") \
            == {0: pytest.approx(205.0)}

    def test_current_plan_is_latest_observed(self):
        store = QueryStore()
        _record(store, plan="p1")
        _record(store, plan="p2")
        _record(store, plan="p1")
        shape = store.find("q")
        assert shape.current_plan().plan_hash == "p1"
        assert len(shape.plans) == 2
        assert shape.execution_count == 3

    def test_lru_eviction(self):
        store = QueryStore(max_shapes=2)
        _record(store, shape="a")
        _record(store, shape="b")
        _record(store, shape="a")  # refresh a; b is now oldest
        _record(store, shape="c")
        assert store.find("b") is None
        assert store.find("a") is not None
        assert store.find("c") is not None
        assert store.stats()["evicted_shapes"] == 1


class TestRegressions:
    def _two_plan_store(self, current_mean, baseline_mean=1.0,
                        **current_overrides):
        store = QueryStore()
        for _ in range(2):
            _record(store, plan="fast", elapsed_seconds=baseline_mean)
        for _ in range(2):
            _record(store, plan="slow", elapsed_seconds=current_mean,
                    **current_overrides)
        return store

    def test_flags_slow_current_plan(self):
        store = self._two_plan_store(current_mean=2.0)
        flagged = store.regressions()
        assert len(flagged) == 1
        reg = flagged[0]
        assert reg.plan_hash == "slow"
        assert reg.baseline_hash == "fast"
        assert reg.slowdown == pytest.approx(2.0)

    def test_factor_gate(self):
        store = self._two_plan_store(current_mean=1.4)
        assert store.regressions(factor=1.5) == []
        assert len(store.regressions(factor=1.2)) == 1

    def test_faster_current_plan_is_not_a_regression(self):
        store = self._two_plan_store(current_mean=0.5)
        assert store.regressions() == []

    def test_min_executions_gate(self):
        store = QueryStore()
        for _ in range(2):
            _record(store, plan="fast", elapsed_seconds=1.0)
        _record(store, plan="slow", elapsed_seconds=10.0)
        assert store.regressions() == []  # current has 1 execution
        assert len(store.regressions(min_executions=1)) == 1

    def test_schema_version_mismatch_excludes_baseline(self):
        store = QueryStore()
        for _ in range(2):
            _record(store, plan="fast", elapsed_seconds=1.0,
                    schema_version=1)
        for _ in range(2):
            _record(store, plan="slow", elapsed_seconds=10.0,
                    schema_version=2)
        # The fast plan predates the DDL: not a trustworthy baseline.
        assert store.regressions() == []
        # Re-observing it under the current version restores it.
        for _ in range(2):
            _record(store, plan="fast", elapsed_seconds=1.0,
                    schema_version=2)
        _record(store, plan="slow", elapsed_seconds=10.0,
                schema_version=2)
        assert len(store.regressions()) == 1


class TestPersistence:
    def test_save_load_round_trips_bit_identically(self, tmp_path):
        store = QueryStore()
        _record(store, shape="a", plan="p1", elapsed_seconds=1.0 / 3.0,
                steps=[(0, "DMS", "BroadcastMove", 7.0, 3)])
        _record(store, shape="a", plan="p2", elapsed_seconds=0.1)
        _record(store, shape="b", plan="p3", rows=5, cache_hit=True)
        path = tmp_path / "store.jsonl"
        assert store.save(str(path)) == 2
        reloaded = QueryStore()
        assert reloaded.load(str(path)) == 2
        assert reloaded.to_events() == store.to_events()
        # ...and the persisted bytes are stable across a round trip
        # (float repr exactness), including the 1/3 mean.
        path2 = tmp_path / "store2.jsonl"
        reloaded.save(str(path2))
        assert path2.read_bytes() == path.read_bytes()

    def test_saved_events_are_schema_checkable(self, tmp_path):
        from repro.obs.export import validate_events
        store = QueryStore()
        _record(store, steps=[(0, "Return", "Return", 2.0, 2)])
        path = tmp_path / "store.jsonl"
        store.save(str(path))
        events = [json.loads(line)
                  for line in path.read_text().splitlines()]
        assert len(events) == 1
        assert events[0]["event"] == "query_store_flush"
        assert validate_events(events) == []

    def test_load_under_new_schema_version_rekeys_baselines(
            self, tmp_path):
        store = QueryStore()
        for _ in range(2):
            _record(store, plan="fast", elapsed_seconds=1.0,
                    schema_version=3)
        for _ in range(2):
            _record(store, plan="slow", elapsed_seconds=10.0,
                    schema_version=3)
        assert len(store.regressions()) == 1
        path = tmp_path / "store.jsonl"
        store.save(str(path))

        survivor = QueryStore()
        survivor.load(str(path), schema_version=4)
        shape = survivor.find("q")
        # History intact...
        assert shape.execution_count == 4
        assert shape.plans["fast"].elapsed_seconds_total \
            == pytest.approx(2.0)
        # ...but stale-version plans lost baseline eligibility, so no
        # comparison against pre-DDL timings.
        assert not shape.plans["fast"].baseline_eligible
        assert survivor.regressions() == []
        # Live re-observation under the new version re-keys both plans.
        for _ in range(2):
            _record(survivor, plan="fast", elapsed_seconds=1.0,
                    schema_version=4)
        _record(survivor, plan="slow", elapsed_seconds=10.0,
                schema_version=4)
        assert len(survivor.regressions()) == 1

    def test_load_verbatim_keeps_eligibility_and_ids(self, tmp_path):
        store = QueryStore()
        _record(store, shape="a")
        _record(store, shape="b")
        path = tmp_path / "store.jsonl"
        store.save(str(path))
        reloaded = QueryStore()
        reloaded.load(str(path))
        # New shapes keep allocating past the loaded ids.
        _record(reloaded, shape="c")
        ids = [s.query_id for s in reloaded.shapes()]
        assert len(ids) == len(set(ids)) == 3


class TestNullStore:
    def test_shared_singleton_and_disabled(self):
        assert isinstance(NULL_QUERY_STORE, NullQueryStore)
        assert NULL_QUERY_STORE.enabled is False
        assert QueryStore().enabled is True

    def test_all_paths_are_no_ops(self, tmp_path):
        _record(NULL_QUERY_STORE)
        assert NULL_QUERY_STORE.shapes() == []
        assert NULL_QUERY_STORE.find("q") is None
        assert NULL_QUERY_STORE.regressions() == []
        assert NULL_QUERY_STORE.observed_cardinalities("q") == {}
        assert NULL_QUERY_STORE.to_events() == []
        assert NULL_QUERY_STORE.stats()["shapes"] == 0
        path = tmp_path / "null.jsonl"
        assert NULL_QUERY_STORE.save(str(path)) == 0

    def test_disabled_path_allocates_nothing(self, store_env,
                                             monkeypatch):
        """Booby-trap the record dataclasses: with the store off, a
        query must complete — with identical rows — without ever
        constructing store state."""
        appliance, shell = store_env
        enabled = PdwSession(appliance=appliance, shell=shell,
                             query_store=QueryStore())
        expected = enabled.run(JOIN_SQL).rows
        assert enabled.query_store.stats()["shapes"] == 1

        def boom(*args, **kwargs):
            raise AssertionError(
                "query-store state constructed while disabled")

        monkeypatch.setattr(qs, "ShapeStats", boom)
        monkeypatch.setattr(qs, "PlanStats", boom)
        monkeypatch.setattr(qs, "StepCardinality", boom)
        disabled = PdwSession(appliance=appliance, shell=shell,
                              options=ExecutionOptions(trace=False))
        assert disabled.query_store is NULL_QUERY_STORE
        assert disabled.run(JOIN_SQL).rows == expected


class TestConcurrency:
    def test_concurrent_recorders_and_readers(self):
        store = QueryStore()
        errors = []

        def writer(plan):
            try:
                for i in range(50):
                    _record(store, plan=plan, elapsed_seconds=0.01 * i,
                            steps=[(0, "DMS", "ShuffleMove",
                                    10.0, i)])
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        def reader():
            try:
                for _ in range(50):
                    store.regressions()
                    store.stats()
                    store.to_events()
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=writer, args=("p1",)),
                   threading.Thread(target=writer, args=("p2",)),
                   threading.Thread(target=reader),
                   threading.Thread(target=reader)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.stats()["executions"] == 100
