"""Unit tests for repro.obs.metrics: registry, labels, Prometheus text."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsError,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
)


class TestCountersAndGauges:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        rows = registry.counter("rows_total", labelnames=("node",))
        rows.labels(node=0).inc(10)
        rows.labels(node=0).inc(5)
        rows.labels(node=1).inc(2)
        snapshot = registry.snapshot()["rows_total"]
        assert snapshot[(("node", "0"),)] == 15
        assert snapshot[(("node", "1"),)] == 2

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        with pytest.raises(MetricsError):
            counter.inc(-1)

    def test_gauge_set_and_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", labelnames=("step",))
        gauge.labels(step=1).set(3.5)
        gauge.labels(step=1).inc(0.5)
        assert registry.snapshot()["g"][(("step", "1"),)] == 4.0

    def test_label_free_convenience(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        assert registry.snapshot()["hits"][()] == 3

    def test_unknown_label_names_rejected(self):
        registry = MetricsRegistry()
        metric = registry.counter("c", labelnames=("node",))
        with pytest.raises(MetricsError):
            metric.labels(node=1, extra=2)
        with pytest.raises(MetricsError):
            metric.labels()

    def test_reregistration_must_match(self):
        registry = MetricsRegistry()
        first = registry.counter("c", labelnames=("a",))
        assert registry.counter("c", labelnames=("a",)) is first
        with pytest.raises(MetricsError):
            registry.gauge("c", labelnames=("a",))
        with pytest.raises(MetricsError):
            registry.counter("c", labelnames=("b",))


class TestHistograms:
    def test_observations_land_in_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        child = hist.labels()
        assert child.count == 3
        assert child.total == 55.5
        assert child.cumulative() == [(1.0, 1), (10.0, 2)]

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestPrometheusRendering:
    def test_counter_series_lines(self):
        registry = MetricsRegistry()
        rows = registry.counter("pdw_rows_total", "Rows moved",
                                labelnames=("node", "op"))
        rows.labels(node=1, op="shuffle").inc(42)
        text = registry.render_prometheus()
        assert "# HELP pdw_rows_total Rows moved" in text
        assert "# TYPE pdw_rows_total counter" in text
        assert 'pdw_rows_total{node="1",op="shuffle"} 42' in text
        assert text.endswith("\n")

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        hist = registry.histogram("pdw_q_error", buckets=(1.0, 2.0))
        hist.observe(1.5)
        text = registry.render_prometheus()
        assert 'pdw_q_error_bucket{le="1"} 0' in text
        assert 'pdw_q_error_bucket{le="2"} 1' in text
        assert 'pdw_q_error_bucket{le="+Inf"} 1' in text
        assert "pdw_q_error_sum 1.5" in text
        assert "pdw_q_error_count 1" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        metric = registry.counter("c", labelnames=("op",))
        metric.labels(op='say "hi"\nback\\slash').inc()
        text = registry.render_prometheus()
        assert r'op="say \"hi\"\nback\\slash"' in text

    def test_help_text_escaped(self):
        # Exposition format: HELP text escapes backslash and newline
        # (and only those — quotes stay literal outside label values).
        registry = MetricsRegistry()
        registry.counter("c", 'multi\nline "quoted" back\\slash').inc()
        text = registry.render_prometheus()
        assert r'# HELP c multi\nline "quoted" back\\slash' in text
        help_lines = [line for line in text.splitlines()
                      if line.startswith("# HELP")]
        assert len(help_lines) == 1  # the newline must not split the line

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {}


class TestNullRegistry:
    """The disabled path must record nothing and allocate nothing."""

    def test_is_disabled(self):
        assert NULL_METRICS.enabled is False
        assert MetricsRegistry.enabled is True

    def test_records_nothing(self):
        NULL_METRICS.counter("c", labelnames=("node",)).labels(node=1).inc(5)
        NULL_METRICS.gauge("g").set(1)
        NULL_METRICS.histogram("h").observe(2)
        assert NULL_METRICS.snapshot() == {}
        assert NULL_METRICS.render_prometheus() == ""

    def test_shared_singletons(self):
        # No per-call allocation: every family and child is the same
        # shared no-op object.
        a = NULL_METRICS.counter("a")
        b = NULL_METRICS.histogram("b")
        assert a is b
        assert a.labels(x=1) is b.labels(y=2)

    def test_fresh_null_registry_behaves_the_same(self):
        registry = NullMetricsRegistry()
        registry.counter("c").inc()
        assert registry.snapshot() == {}
