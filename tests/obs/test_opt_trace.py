"""Optimizer search-space trace tests: the no-op contract, the enabled
recorder's bookkeeping, and the must-not-change-the-answer guarantee."""

import pytest

from repro.obs import opt_trace as opt_trace_module
from repro.obs.opt_trace import (
    MovementRecord,
    NULL_OPT_TRACE,
    NullOptimizerTrace,
    OptimizerTrace,
    format_property_key,
)
from repro.optimizer.search import SerialOptimizer
from repro.pdw.enumerator import PdwOptimizer
from repro.workloads.tpch_queries import TPCH_QUERIES

JOIN_SQL = ("SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")


def optimize(shell, sql, opt_trace=NULL_OPT_TRACE):
    result = SerialOptimizer(shell).optimize_sql(sql)
    return PdwOptimizer(result.memo, result.root_group,
                        node_count=shell.node_count,
                        equivalence=result.equivalence,
                        opt_trace=opt_trace).optimize()


def make_movement(group=0, chosen=False, context="enforce",
                  move_cost=1.0):
    return MovementRecord(
        group=group, operation="shuffle", movement="ShuffleMove(#1)",
        property_key="hash:1", source="hashed(#2)", target="hashed(#1)",
        rows=100.0, row_width=8.0, reader=0.1, network=0.2, writer=0.3,
        bulk_copy=0.4, move_cost=move_cost, total_cost=move_cost + 1.0,
        chosen=chosen, context=context)


class TestFormatPropertyKey:
    def test_tuple_joined(self):
        assert format_property_key(("hash", 5)) == "hash:5"

    def test_singleton(self):
        assert format_property_key(("replicated",)) == "replicated"

    def test_non_tuple_passthrough(self):
        assert format_property_key("control") == "control"


class TestNullTrace:
    def test_shared_singleton_disabled(self):
        assert NULL_OPT_TRACE.enabled is False
        assert isinstance(NULL_OPT_TRACE, NullOptimizerTrace)

    def test_all_hooks_are_noops(self):
        NULL_OPT_TRACE.begin_group(1, ("hash:1",))
        NULL_OPT_TRACE.record_enumeration(1, "Join", 4)
        NULL_OPT_TRACE.record_prune(1, "a", "hash:1", 2.0, "b", 1.0)
        NULL_OPT_TRACE.record_movement(make_movement())
        NULL_OPT_TRACE.record_hint_override(1, "orders", "replicate",
                                            ("x",), (1.0,), 1)
        NULL_OPT_TRACE.end_group(1, 4, ())
        NULL_OPT_TRACE.finish(1.0, "hashed(#1)", 0.5)
        assert NULL_OPT_TRACE.groups == {}
        assert NULL_OPT_TRACE.prunes == []
        assert NULL_OPT_TRACE.movements == []
        assert NULL_OPT_TRACE.hint_overrides == []
        assert NULL_OPT_TRACE.plan_cost == 0.0

    def test_summary_views_usable(self):
        summary = NULL_OPT_TRACE.summary()
        assert summary.groups == 0
        assert summary.options_considered == 0
        assert NULL_OPT_TRACE.rejected_movements() == []
        assert NULL_OPT_TRACE.prune_effectiveness() == {}

    def test_disabled_path_allocates_no_records(self, mini_shell,
                                                monkeypatch):
        """With the no-op trace, optimization must never construct a
        trace record: every record constructor is booby-trapped."""
        def boom(*args, **kwargs):
            raise AssertionError(
                "trace record allocated on the disabled path")

        for name in ("EnumerationRecord", "PruneRecord", "MovementRecord",
                     "HintOverrideRecord", "GroupTrace"):
            monkeypatch.setattr(opt_trace_module, name, boom)
        # enumerator.py imported MovementRecord by name — trap that too.
        from repro.pdw import enumerator as enumerator_module
        monkeypatch.setattr(enumerator_module, "MovementRecord", boom)

        plan = optimize(mini_shell, JOIN_SQL)
        assert plan.cost >= 0.0


class TestEnabledTrace:
    def test_groups_and_options_recorded(self, mini_shell):
        trace = OptimizerTrace()
        plan = optimize(mini_shell, JOIN_SQL, trace)
        summary = trace.summary()
        assert summary.groups > 0
        assert summary.options_considered > 0
        assert summary.options_considered == plan.options_considered
        assert summary.options_retained == plan.options_retained
        assert summary.plan_cost == plan.cost

    def test_every_group_has_enumeration(self, mini_shell):
        trace = OptimizerTrace()
        optimize(mini_shell, JOIN_SQL, trace)
        for group in trace.groups.values():
            assert group.enumerated, f"group {group.group} enumerated nothing"
            assert group.options_considered >= group.options_retained

    def test_prunes_reference_cheaper_survivors(self, mini_shell):
        trace = OptimizerTrace()
        optimize(mini_shell, JOIN_SQL, trace)
        assert trace.prunes
        for prune in trace.prunes:
            # A victim is only ever displaced by a no-worse survivor.
            assert prune.cost_delta >= -1e-12
            assert prune.survivor_cost <= prune.victim_cost + 1e-12

    def test_chosen_enforcers_counted(self, mini_shell):
        trace = OptimizerTrace()
        optimize(mini_shell, JOIN_SQL, trace)
        chosen = [m for m in trace.movements
                  if m.chosen and m.context == "enforce"]
        assert trace.enforcers_added == len(chosen)
        assert trace.enforcers_added > 0

    def test_movement_breakdown_composes_with_max(self, mini_shell):
        """Every recorded movement must satisfy the §3.3 max-composition:
        move_cost == max(max(reader, network), max(writer, bulk))."""
        trace = OptimizerTrace()
        optimize(mini_shell, JOIN_SQL, trace)
        assert trace.movements
        for move in trace.movements:
            expected = max(max(move.reader, move.network),
                           max(move.writer, move.bulk_copy))
            assert move.move_cost == expected

    def test_rejected_movements_sorted_desc(self):
        trace = OptimizerTrace()
        trace.record_movement(make_movement(move_cost=1.0))
        trace.record_movement(make_movement(move_cost=5.0))
        trace.record_movement(make_movement(move_cost=3.0, chosen=True))
        rejected = trace.rejected_movements()
        assert [m.move_cost for m in rejected] == [5.0, 1.0]
        assert trace.rejected_movements(top_k=1)[0].move_cost == 5.0

    def test_prune_effectiveness_stats(self):
        trace = OptimizerTrace()
        trace.record_prune(0, "a", "hash:1", 3.0, "b", 1.0)
        trace.record_prune(1, "c", "hash:1", 5.0, "d", 1.0)
        trace.record_prune(2, "e", "replicated", 2.0, "f", 2.0)
        eff = trace.prune_effectiveness()
        count, mean_delta, max_delta = eff["hash:1"]
        assert count == 2
        assert mean_delta == pytest.approx(3.0)
        assert max_delta == pytest.approx(4.0)
        assert eff["replicated"] == (1, 0.0, 0.0)

    def test_union_context_not_counted_as_enforcer(self):
        trace = OptimizerTrace()
        trace.record_movement(make_movement(chosen=True, context="union"))
        trace.record_movement(make_movement(chosen=True,
                                            context="enforce"))
        assert trace.enforcers_added == 1
        assert trace.summary().movements_considered == 2


class TestTracingChangesNothing:
    def test_traced_plan_identical_mini(self, mini_shell):
        untraced = optimize(mini_shell, JOIN_SQL)
        traced = optimize(mini_shell, JOIN_SQL, OptimizerTrace())
        assert traced.cost == untraced.cost
        assert traced.tree_string() == untraced.tree_string()

    @pytest.mark.parametrize("name", sorted(TPCH_QUERIES))
    def test_traced_plan_identical_tpch(self, tpch_engine, name):
        """Bit-identical winning plans across the full TPC-H suite."""
        sql = TPCH_QUERIES[name]
        untraced = tpch_engine.compile(sql)
        trace = OptimizerTrace()
        traced = tpch_engine.compile(sql, opt_trace=trace)
        assert traced.pdw_plan.cost == untraced.pdw_plan.cost
        assert traced.pdw_plan.tree_string() == \
            untraced.pdw_plan.tree_string()
        assert traced.dsql_plan.describe() == \
            untraced.dsql_plan.describe()
        assert trace.summary().options_considered == \
            untraced.pdw_plan.options_considered
