"""Unit tests for repro.obs.export: events, schema validation, sinks."""

import json

from repro.obs.export import (
    events_to_jsonl,
    profile_to_events,
    profile_to_metrics,
    validate_event,
    validate_events,
    validate_jsonl,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.profiler import (
    OperatorProfile,
    QueryProfile,
    StepProfile,
    skew_stats,
)


def make_profile() -> QueryProfile:
    operator = OperatorProfile(
        step=0, kind="Get", label="Get(a)",
        node_rows={0: 30, 1: 50}, actual_rows=80,
        estimated_rows=40.0, q_error=2.0,
        skew=skew_stats([30, 50]),
    )
    unjoined = OperatorProfile(
        step=0, kind="Join", label="J",
        node_rows={0: 1, 1: 1}, actual_rows=2,
        estimated_rows=None, q_error=None,
        skew=skew_stats([1, 1]),
    )
    step = StepProfile(
        index=0, kind="DMS", operation="ShuffleMove(c)",
        estimated_rows=40.0, actual_rows=80,
        estimated_bytes=400.0, actual_bytes=800,
        estimated_seconds=0.1, actual_seconds=0.2,
        q_error=2.0,
        source_rows={0: 30, 1: 50}, source_skew=skew_stats([30, 50]),
        received_bytes={0: 500, 1: 300},
        receive_skew=skew_stats([500, 300]),
        transfers={(0, 1): (30, 300), (1, 0): (50, 500)},
        operators=[operator, unjoined],
    )
    return QueryProfile(sql="SELECT 1", node_count=2, steps=[step],
                        elapsed_seconds=0.3, dms_seconds=0.2)


class TestEventLog:
    def test_events_validate_cleanly(self):
        events = profile_to_events(make_profile())
        assert [e["event"] for e in events] == \
            ["query", "step", "operator", "operator"]
        assert validate_events(events) == []

    def test_query_event_carries_summary(self):
        query = profile_to_events(make_profile())[0]
        assert query["node_count"] == 2
        assert query["steps"] == 1
        # one joined operator + one step; the unjoined operator has no
        # q_error and is excluded
        assert query["q_error_count"] == 2

    def test_jsonl_round_trip(self):
        events = profile_to_events(make_profile())
        text = events_to_jsonl(events)
        assert validate_jsonl(text) == []
        parsed = [json.loads(line) for line in text.splitlines()]
        assert parsed == json.loads(json.dumps(events))

    def test_write_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_jsonl(profile_to_events(make_profile()), str(path))
        assert validate_jsonl(path.read_text()) == []


class TestValidation:
    def test_unknown_event_type(self):
        assert validate_event({"event": "nope"}) == \
            ["unknown event type 'nope'"]

    def test_non_object_event(self):
        assert validate_event([1, 2]) != []

    def test_missing_field_reported(self):
        events = profile_to_events(make_profile())
        step = dict(events[1])
        del step["q_error"]
        assert any("missing field 'q_error'" in e
                   for e in validate_event(step))

    def test_unexpected_field_reported(self):
        events = profile_to_events(make_profile())
        query = dict(events[0])
        query["surprise"] = 1
        assert any("unexpected field" in e for e in validate_event(query))

    def test_wrong_type_reported(self):
        events = profile_to_events(make_profile())
        query = dict(events[0])
        query["node_count"] = "two"
        assert any("node_count" in e for e in validate_event(query))

    def test_bool_is_not_a_number(self):
        events = profile_to_events(make_profile())
        query = dict(events[0])
        query["elapsed_seconds"] = True
        assert any("elapsed_seconds" in e for e in validate_event(query))

    def test_node_map_keys_must_be_node_ids(self):
        events = profile_to_events(make_profile())
        step = dict(events[1])
        step["source_rows"] = {"node-zero": 1}
        assert any("non-node key" in e for e in validate_event(step))

    def test_transfer_entries_checked(self):
        events = profile_to_events(make_profile())
        step = dict(events[1])
        step["transfers"] = [{"src": 0, "dst": 1, "rows": "x", "bytes": 0}]
        assert any("transfers" in e for e in validate_event(step))

    def test_validate_jsonl_flags_bad_json(self):
        errors = validate_jsonl('{"event": "query"\nnot json\n')
        assert any("invalid JSON" in e for e in errors)

    def test_errors_carry_event_index(self):
        errors = validate_events([{"event": "nope"}, {"event": "what"}])
        assert errors[0].startswith("event 0:")
        assert errors[1].startswith("event 1:")


class TestMetricsSink:
    def test_families_populated(self):
        registry = MetricsRegistry()
        profile_to_metrics(make_profile(), registry)
        snapshot = registry.snapshot()
        assert snapshot["pdw_step_rows_total"][
            (("node", "0"), ("op", "ShuffleMove(c)"), ("step", "0"))] == 30
        assert snapshot["pdw_step_received_bytes_total"][
            (("node", "1"), ("step", "0"))] == 300
        assert snapshot["pdw_operator_rows_total"][
            (("node", "1"), ("op", "Get"), ("step", "0"))] == 50
        # histogram counts observations: step q_error + joined operator
        assert snapshot["pdw_q_error"][()] == 2
        text = registry.render_prometheus()
        assert "pdw_step_skew_cov" in text
        assert "pdw_q_error_bucket" in text

    def test_null_registry_is_a_no_op(self):
        profile_to_metrics(make_profile(), NULL_METRICS)
        assert NULL_METRICS.snapshot() == {}


def make_trace():
    from repro.obs.opt_trace import MovementRecord, OptimizerTrace

    trace = OptimizerTrace()
    trace.begin_group(0, ("hash:1", "replicated"))
    trace.record_enumeration(0, "Join[INNER]", 4)
    trace.record_prune(0, "Join @ hashed(#2)", "hash:1", 2.0,
                       "Join @ hashed(#1)", 1.0)
    trace.record_movement(MovementRecord(
        group=0, operation="shuffle", movement="ShuffleMove(#1)",
        property_key="hash:1", source="hashed(#2)", target="hashed(#1)",
        rows=100.0, row_width=8.0, reader=0.1, network=0.2, writer=0.15,
        bulk_copy=0.18, move_cost=0.2, total_cost=1.2, chosen=True))
    trace.record_movement(MovementRecord(
        group=0, operation="broadcast", movement="BroadcastMove",
        property_key="replicated", source="hashed(#2)",
        target="replicated", rows=100.0, row_width=8.0, reader=0.1,
        network=0.8, writer=0.6, bulk_copy=0.7, move_cost=0.8,
        total_cost=1.8, chosen=False))
    trace.record_hint_override(0, "orders", "replicate",
                               ("Join @ hashed(#1)",), (1.0,), 1)
    trace.end_group(0, considered=4,
                    retained=(("Join @ hashed(#1)", "hash:1", 1.0),))
    trace.finish(plan_cost=1.2, plan_distribution="hashed(#1)",
                 optimize_seconds=0.01)
    return trace


class FakePlanChoice:
    """Duck-typed stand-in for repro.pdw.why.PlanChoice (export must not
    import the pdw layer)."""

    baseline_cost = 1.5
    delta = 0.3

    def to_dict(self):
        return {
            "sql": "SELECT 1", "plan_cost": 1.2, "baseline_cost": 1.5,
            "delta": 0.3, "delta_pct": 25.0, "baseline_matches": False,
            "movements_plan": 1, "movements_baseline": 2,
            "movements_shared": 1,
        }


class TestOptimizerTraceEvents:
    def test_events_validate_cleanly(self):
        from repro.obs.export import optimizer_trace_to_events

        events = optimizer_trace_to_events(make_trace(),
                                           plan_choice=FakePlanChoice())
        assert [e["event"] for e in events] == [
            "optimizer_summary", "optimizer_group", "optimizer_prune",
            "optimizer_enforce", "optimizer_enforce", "optimizer_hint",
            "plan_choice"]
        assert validate_events(events) == []

    def test_summary_event_counts(self):
        from repro.obs.export import optimizer_trace_to_events

        summary = optimizer_trace_to_events(make_trace())[0]
        assert summary["groups"] == 1
        assert summary["options_considered"] == 4
        assert summary["options_retained"] == 1
        assert summary["options_pruned"] == 1
        assert summary["enforcers_added"] == 1
        assert summary["movements_rejected"] == 1
        assert summary["hint_overrides"] == 1
        assert summary["plan_distribution"] == "hashed(#1)"

    def test_jsonl_round_trip(self):
        from repro.obs.export import optimizer_trace_to_events

        events = optimizer_trace_to_events(make_trace(),
                                           plan_choice=FakePlanChoice())
        assert validate_jsonl(events_to_jsonl(events)) == []

    def test_validation_catches_bad_enforce(self):
        from repro.obs.export import optimizer_trace_to_events

        events = optimizer_trace_to_events(make_trace())
        enforce = next(e for e in events
                       if e["event"] == "optimizer_enforce")
        enforce["chosen"] = "yes"
        errors = validate_event(enforce)
        assert errors and "chosen" in errors[0]

    def test_validation_catches_bad_retained(self):
        event = {
            "event": "optimizer_group", "group": 0, "interesting": [],
            "expressions": 1, "options_considered": 1,
            "options_retained": 1,
            "retained": [{"option": "x", "property_key": "hash:1"}],
        }
        errors = validate_event(event)
        assert errors and "retained" in errors[0]


class TestOptimizerTraceMetrics:
    def test_families_populated(self):
        from repro.obs.export import optimizer_trace_to_metrics

        registry = MetricsRegistry()
        optimizer_trace_to_metrics(make_trace(), registry,
                                   plan_choice=FakePlanChoice())
        snapshot = registry.snapshot()
        assert snapshot["pdw_optimizer_options_considered"][()] == 4
        assert snapshot["pdw_optimizer_options_pruned"][()] == 1
        assert snapshot["pdw_optimizer_pruned_by_property_total"][
            (("key", "hash:1"),)] == 1
        assert snapshot["pdw_optimizer_enforcers_added_total"][
            (("op", "shuffle"),)] == 1
        assert snapshot["pdw_optimizer_movements_rejected_total"][()] == 1
        assert snapshot["pdw_optimizer_plan_cost_seconds"][()] == 1.2
        assert snapshot["pdw_optimizer_baseline_delta_seconds"][()] == 0.3

    def test_without_plan_choice_no_baseline_gauges(self):
        from repro.obs.export import optimizer_trace_to_metrics

        registry = MetricsRegistry()
        optimizer_trace_to_metrics(make_trace(), registry)
        snapshot = registry.snapshot()
        assert "pdw_optimizer_baseline_cost_seconds" not in snapshot
        assert "pdw_optimizer_plan_cost_seconds" in snapshot

    def test_null_registry_is_a_no_op(self):
        from repro.obs.export import optimizer_trace_to_metrics

        optimizer_trace_to_metrics(make_trace(), NULL_METRICS,
                                   plan_choice=FakePlanChoice())
        assert NULL_METRICS.snapshot() == {}
