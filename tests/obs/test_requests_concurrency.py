"""Concurrent observability reads (satellite of the request-lifecycle
layer): reader threads hammer the metrics renderer, registry stats and
DMV snapshot materialization while a multi-client service load runs.
Nothing may raise, and no reader may observe a torn row."""

import threading

import pytest

from repro.obs.export import requests_to_events, validate_events
from repro.obs.requests import REQUEST_STATES
from repro.service import PdwService
from repro.service.traffic import run_traffic
from repro.workloads.tpch_datagen import build_tpch_appliance

SCALE = 0.001
NODES = 4
READER_THREADS = 3
CLIENTS = 4
QUERIES_PER_CLIENT = 4


@pytest.fixture(scope="module")
def service():
    appliance, shell = build_tpch_appliance(scale=SCALE, node_count=NODES)
    svc = PdwService(appliance=appliance, shell=shell,
                     max_in_flight=CLIENTS)
    yield svc
    svc.close()


def _assert_untorn(service):
    """Invariants every concurrent snapshot must satisfy."""
    for record in service.requests.snapshot():
        assert record.status in REQUEST_STATES
        assert record.request_id.startswith("QID")
        for step in list(record.steps):
            assert step.kind in ("DMS", "Return")
    events = requests_to_events(service.requests)
    errors = validate_events(events)
    assert errors == [], errors
    stats = service.requests.stats()
    assert stats["retained"] <= stats["capacity"]
    text = service.metrics.render_prometheus()
    assert isinstance(text, str)
    service.refresh_system_views()


def test_concurrent_reads_during_service_hammer(service):
    stop = threading.Event()
    failures = []

    def reader():
        while not stop.is_set():
            try:
                _assert_untorn(service)
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(exc)
                return

    readers = [threading.Thread(target=reader, name=f"dmv-reader-{i}")
               for i in range(READER_THREADS)]
    for thread in readers:
        thread.start()
    try:
        report = run_traffic(service, clients=CLIENTS,
                             queries_per_client=QUERIES_PER_CLIENT,
                             seed=2012)
    finally:
        stop.set()
        for thread in readers:
            thread.join(timeout=30)
    assert failures == [], failures
    assert report.completed == CLIENTS * QUERIES_PER_CLIENT

    # Post-hammer: the recorder agrees with the traffic totals and the
    # DMV snapshot is internally consistent.
    finished = service.requests.stats()["finished"]
    assert sum(finished.values()) >= report.completed
    result = service.execute(
        "SELECT status, COUNT(*) AS n "
        "FROM sys.dm_pdw_exec_requests GROUP BY status")
    assert dict(result.rows).get("complete", 0) >= report.completed
