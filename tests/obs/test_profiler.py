"""Unit tests for repro.obs.profiler: skew math, Q-error, the join."""

import math

from repro.obs.profiler import (
    CONTROL_NODE,
    OperatorEstimate,
    OperatorObserver,
    build_query_profile,
    fragment_operator_estimates,
    operator_kind,
    q_error,
    skew_stats,
    summarize_q_errors,
)


class TestSkewStats:
    def test_balanced_distribution(self):
        stats = skew_stats([10, 10, 10, 10])
        assert stats.cov == 0.0
        assert stats.imbalance == 1.0
        assert stats.max_value == 10
        assert stats.mean == 10

    def test_skewed_distribution(self):
        stats = skew_stats([100, 0, 0, 0])
        assert stats.imbalance == 4.0  # max/mean = 100/25
        assert stats.cov == math.sqrt(3)  # population stdev 43.3 / mean 25

    def test_zeros_count_as_skew(self):
        # An idle node is the extreme of skew, not missing data.
        with_idle = skew_stats([10, 10, 0])
        without = skew_stats([10, 10])
        assert with_idle.cov > without.cov

    def test_empty_and_all_zero(self):
        assert skew_stats([]).count == 0
        assert skew_stats([]).imbalance == 1.0
        zero = skew_stats([0, 0])
        assert zero.cov == 0.0
        assert zero.imbalance == 1.0


class TestQError:
    def test_symmetric(self):
        assert q_error(10, 100) == 10.0
        assert q_error(100, 10) == 10.0

    def test_perfect(self):
        assert q_error(42, 42) == 1.0

    def test_floors_at_one_row(self):
        assert q_error(0, 0) == 1.0
        assert q_error(0, 5) == 5.0
        assert q_error(5, 0) == 5.0
        assert q_error(0.25, 1) == 1.0

    def test_summary_quantiles(self):
        values = [1.0, 1.0, 2.0, 4.0, 100.0]
        summary = summarize_q_errors(values)
        assert summary.count == 5
        assert summary.median == 2.0
        assert summary.p95 == 100.0
        assert summary.max == 100.0

    def test_summary_even_count_median(self):
        summary = summarize_q_errors([1.0, 3.0])
        assert summary.median == 2.0

    def test_summary_empty(self):
        summary = summarize_q_errors([])
        assert (summary.count, summary.median, summary.p95, summary.max) \
            == (0, 1.0, 1.0, 1.0)


# -- fakes mirroring the duck-typed surfaces ----------------------------------


class FakeOp:
    def __init__(self, describe="op"):
        self._describe = describe

    def describe(self):
        return self._describe


class LogicalGet(FakeOp):
    """Name chosen so operator_kind classifies it as a Get."""

    def __init__(self, describe="Get(t)", table=None):
        super().__init__(describe)
        self.table = table


class LogicalJoin(FakeOp):
    pass


class LogicalGroupBy(FakeOp):
    pass


class LogicalProject(FakeOp):
    pass


class FakeKind:
    def __init__(self, name):
        self.name = name


class FakeDistribution:
    def __init__(self, name):
        self.kind = FakeKind(name)


class FakeTable:
    def __init__(self, dist_name):
        self.distribution = FakeDistribution(dist_name)


class FakeNode:
    def __init__(self, op, children=(), cardinality=0.0):
        self.op = op
        self.children = list(children)
        self.cardinality = cardinality


class TestOperatorClassification:
    def test_profileable_kinds(self):
        assert operator_kind(LogicalGet()) == "Get"
        assert operator_kind(LogicalJoin()) == "Join"
        assert operator_kind(LogicalGroupBy()) == "GroupBy"

    def test_projects_excluded(self):
        assert operator_kind(LogicalProject()) is None
        assert operator_kind(FakeOp()) is None

    def test_observer_skips_unprofileable(self):
        observer = OperatorObserver()
        observer.record(LogicalGet("Get(a)"), 5)
        observer.record(LogicalProject(), 5)
        observer.record(LogicalJoin("Join"), 3)
        assert observer.records == [("Get", "Get(a)", 5),
                                    ("Join", "Join", 3)]


class TestFragmentEstimates:
    def test_postorder_with_projects_skipped(self):
        #      GroupBy(2)
        #        Project          <- skipped
        #          Join(10)
        #           /    \
        #   Get a(100)  Get b(4, replicated)
        tree = FakeNode(
            LogicalGroupBy("GB"),
            [FakeNode(
                LogicalProject(),
                [FakeNode(
                    LogicalJoin("J"),
                    [FakeNode(LogicalGet("Get(a)",
                                         table=FakeTable("HASHED")),
                              cardinality=100),
                     FakeNode(LogicalGet("Get(b)",
                                         table=FakeTable("REPLICATED")),
                              cardinality=4)],
                    cardinality=10)],
                cardinality=10)],
            cardinality=2)
        estimates = fragment_operator_estimates(tree)
        assert [(e.kind, e.rows, e.per_node) for e in estimates] == [
            ("Get", 100.0, False),
            ("Get", 4.0, True),
            ("Join", 10.0, False),
            ("GroupBy", 2.0, False),
        ]

    def test_fully_replicated_subtree_marks_per_node(self):
        # Join of two replicated scans runs identically on every node.
        tree = FakeNode(
            LogicalJoin("J"),
            [FakeNode(LogicalGet("Get(a)", table=FakeTable("REPLICATED")),
                      cardinality=5),
             FakeNode(LogicalGet("Get(b)", table=FakeTable("ON_CONTROL")),
                      cardinality=3)],
            cardinality=15)
        estimates = fragment_operator_estimates(tree)
        assert all(e.per_node for e in estimates)


class FakeMovement:
    def __init__(self, label="ShuffleMove(c)"):
        self._label = label

    def describe(self):
        return self._label


class FakeStep:
    def __init__(self, index, movement=None, estimated_rows=0.0,
                 estimated_bytes=0.0, estimated_cost=0.0,
                 operator_estimates=()):
        self.index = index
        self.movement = movement
        self.estimated_rows = estimated_rows
        self.estimated_bytes = estimated_bytes
        self.estimated_cost = estimated_cost
        self.operator_estimates = list(operator_estimates)


class FakeStats:
    def __init__(self, rows_moved=0, elapsed_seconds=0.0,
                 reader_bytes=None, network_bytes=None, node_rows=None,
                 transfers=None, node_operators=None):
        self.rows_moved = rows_moved
        self.elapsed_seconds = elapsed_seconds
        self.reader_bytes = reader_bytes or {}
        self.network_bytes = network_bytes or {}
        self.node_rows = node_rows or {}
        self.transfers = transfers or {}
        self.node_operators = node_operators or {}


class TestBuildQueryProfile:
    def test_step_level_join(self):
        step = FakeStep(0, movement=FakeMovement(), estimated_rows=50,
                        estimated_bytes=500, estimated_cost=0.25)
        stats = FakeStats(
            rows_moved=100, elapsed_seconds=0.5,
            reader_bytes={0: 600, 1: 400},
            node_rows={0: 60, 1: 40},
            transfers={(0, 1): [60, 600], (1, 0): [40, 400]},
        )
        profile = build_query_profile([step], [stats], node_count=2,
                                      sql="SELECT 1", elapsed_seconds=0.5,
                                      dms_seconds=0.4)
        assert profile.node_count == 2
        sp = profile.steps[0]
        assert sp.kind == "DMS"
        assert sp.operation == "ShuffleMove(c)"
        assert sp.actual_rows == 100
        assert sp.actual_bytes == 1000
        assert sp.q_error == 2.0
        assert sp.source_rows == {0: 60, 1: 40}
        assert sp.received_bytes == {0: 400, 1: 600}
        assert sp.transfers[(0, 1)] == (60, 600)

    def test_return_step_uses_network_bytes(self):
        step = FakeStep(1, estimated_rows=3)
        stats = FakeStats(rows_moved=3, network_bytes={0: 30, 1: 12},
                          node_rows={0: 2, 1: 1})
        profile = build_query_profile([step], [stats], node_count=2)
        sp = profile.steps[0]
        assert sp.kind == "Return"
        assert sp.actual_bytes == 42

    def test_received_bytes_zero_fills_idle_compute_nodes(self):
        step = FakeStep(0, movement=FakeMovement())
        stats = FakeStats(transfers={(0, 1): [10, 100]})
        profile = build_query_profile([step], [stats], node_count=4)
        assert profile.steps[0].received_bytes == {0: 0, 1: 100, 2: 0, 3: 0}

    def test_control_gather_stays_single_entry(self):
        step = FakeStep(0)
        stats = FakeStats(
            transfers={(0, CONTROL_NODE): [5, 50],
                       (1, CONTROL_NODE): [5, 50]})
        profile = build_query_profile([step], [stats], node_count=4)
        assert profile.steps[0].received_bytes == {CONTROL_NODE: 100}

    def test_operator_join_attaches_estimates(self):
        estimates = [OperatorEstimate("Get", "Get(a)", 80.0),
                     OperatorEstimate("GroupBy", "GB", 4.0)]
        step = FakeStep(0, movement=FakeMovement(),
                        operator_estimates=estimates)
        stats = FakeStats(node_operators={
            0: [("Get", "Get(a)", 50), ("GroupBy", "GB", 2)],
            1: [("Get", "Get(a)", 30), ("GroupBy", "GB", 2)],
        })
        profile = build_query_profile([step], [stats], node_count=2)
        ops = profile.steps[0].operators
        assert [(o.kind, o.actual_rows, o.estimated_rows) for o in ops] \
            == [("Get", 80, 80.0), ("GroupBy", 4, 4.0)]
        assert all(o.q_error == 1.0 for o in ops)
        assert ops[0].node_rows == {0: 50, 1: 30}

    def test_operator_join_count_mismatch_degrades(self):
        # Two Get estimates but one executed Get: actuals survive,
        # no Q-error is misattributed.
        estimates = [OperatorEstimate("Get", "Get(a)", 80.0),
                     OperatorEstimate("Get", "Get(b)", 9.0)]
        step = FakeStep(0, operator_estimates=estimates)
        stats = FakeStats(node_operators={0: [("Get", "Get(a)", 80)]})
        profile = build_query_profile([step], [stats], node_count=1)
        ops = profile.steps[0].operators
        assert len(ops) == 1
        assert ops[0].estimated_rows is None
        assert ops[0].q_error is None

    def test_replicated_estimate_compares_per_node_mean(self):
        # A replicated scan yields its full cardinality on *every* node;
        # summing across 4 nodes must not score a 4x Q-error.
        estimates = [OperatorEstimate("Get", "Get(r)", 10.0, per_node=True)]
        step = FakeStep(0, operator_estimates=estimates)
        stats = FakeStats(node_operators={
            n: [("Get", "Get(r)", 10)] for n in range(4)})
        profile = build_query_profile([step], [stats], node_count=4)
        op = profile.steps[0].operators[0]
        assert op.actual_rows == 40
        assert op.q_error == 1.0

    def test_unprofiled_stats_yield_step_level_only(self):
        # Stats from a plain (profile=False) run: no observers, no
        # transfer matrix — the profile degrades to step-level columns.
        step = FakeStep(0, movement=FakeMovement(), estimated_rows=10)
        stats = FakeStats(rows_moved=10)
        profile = build_query_profile([step], [stats], node_count=2)
        sp = profile.steps[0]
        assert sp.operators == []
        assert sp.transfers == {}
        assert sp.q_error == 1.0

    def test_q_error_summary_spans_steps_and_operators(self):
        estimates = [OperatorEstimate("Get", "Get(a)", 100.0)]
        step = FakeStep(0, movement=FakeMovement(), estimated_rows=20,
                        operator_estimates=estimates)
        stats = FakeStats(rows_moved=10,
                          node_operators={0: [("Get", "Get(a)", 50)]})
        profile = build_query_profile([step], [stats], node_count=1)
        summary = profile.q_error_summary()
        assert summary.count == 2  # one operator + one step
        assert summary.max == 2.0
