"""Unit tests for repro.obs.requests: lifecycle, flight recorder,
exports and the NULL_REQUESTS zero-overhead contract."""

import threading

import repro.obs.requests as requests_module
from repro import PdwSession
from repro.obs.export import (
    request_to_event,
    requests_to_events,
    requests_to_metrics,
    validate_events,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.requests import (
    NULL_REQUEST,
    NULL_REQUESTS,
    REQUEST_STATES,
    RequestRegistry,
    TERMINAL_STATES,
    plan_digest,
)
from repro.service.options import ExecutionOptions


# -- plan / stats stand-ins (the handle only duck-types its inputs) -----------


class FakeMovement:
    def __init__(self, description):
        self.description = description

    def describe(self):
        return self.description


class FakeStep:
    def __init__(self, index, sql, movement=None):
        self.index = index
        self.sql = sql
        self.movement = movement


class FakePlan:
    def __init__(self, steps):
        self.steps = steps


class FakeStats:
    def __init__(self, rows=10, nbytes=400, operation="Shuffle",
                 elapsed=0.25, wall=0.01):
        self.rows_moved = rows
        self.operation = operation
        self.elapsed_seconds = elapsed
        self.wall_seconds = wall
        self._bytes = nbytes
        self.network_bytes = {0: nbytes}

    def total_bytes(self):
        return self._bytes


def make_plan():
    return FakePlan([
        FakeStep(0, "SELECT * FROM t", FakeMovement("Shuffle on k")),
        FakeStep(1, "SELECT * FROM TEMP_ID_1"),
    ])


class TestLifecycle:
    def test_ids_are_sequential(self):
        registry = RequestRegistry()
        assert registry.begin("a").request_id == "QID1"
        assert registry.begin("b").request_id == "QID2"

    def test_full_walk(self):
        registry = RequestRegistry()
        handle = registry.begin("SELECT 1", tenant="t1", priority="high")
        record = handle.record
        assert record.status == "queued"
        assert record.is_active
        assert registry.active() == [record]

        handle.compiling()
        assert record.status == "compiling"

        handle.begin_plan(make_plan())
        assert record.status == "running"
        assert record.step_count == 2
        assert record.plan_digest == plan_digest(make_plan())
        assert [s.kind for s in record.steps] == ["DMS", "Return"]
        assert record.steps[0].operation == "Shuffle on k"

        handle.step_scheduled(0)
        assert record.steps[0].status == "scheduled"

        handle.begin_step(0)
        assert record.status == "moving data"  # DMS step
        assert record.current_step == 0

        handle.node_done(0, node_id=2, rows=7, nbytes=70,
                        wall_seconds=0.001)
        handle.node_done(0, node_id=2, rows=3, nbytes=30,
                        wall_seconds=0.001)
        assert record.steps[0].node_rows == {2: 10}
        assert record.steps[0].node_bytes == {2: 100}

        handle.end_step(0, FakeStats())
        assert record.status == "running"
        assert record.steps[0].status == "complete"
        assert record.steps[0].rows_moved == 10
        assert record.steps[0].bytes_moved == 400

        handle.begin_step(1)
        assert record.status == "running"  # Return step, not DMS
        handle.end_step(1, FakeStats(operation=None, nbytes=55))
        assert record.steps[1].bytes_moved == 55  # network bytes sum

        handle.complete(rows=4, cache_hit=True, queue_seconds=0.1,
                        compile_seconds=0.2, execute_seconds=0.3,
                        total_seconds=0.6)
        assert record.status == "complete"
        assert not record.is_active
        assert record.current_step == -1
        assert record.ended_at is not None
        assert registry.active() == []
        assert registry.completed() == [record]

    def test_every_status_is_a_known_state(self):
        registry = RequestRegistry()
        complete = registry.begin("a")
        complete.begin_plan(make_plan())
        complete.complete()
        registry.begin("b").failed("boom", total_seconds=0.1)
        registry.begin("c").rejected("queue full")
        live = registry.begin("d")
        for record in registry.snapshot():
            assert record.status in REQUEST_STATES
        assert registry.stats()["finished"] == {
            "complete": 1, "failed": 1, "rejected": 1}
        assert registry.find("QID4") is live.record
        assert registry.find("QID2").error == "boom"
        assert registry.find("QID999") is None

    def test_out_of_range_step_hooks_are_ignored(self):
        registry = RequestRegistry()
        handle = registry.begin("a")
        handle.step_scheduled(5)
        handle.begin_step(5)
        handle.node_done(5, 0, 1, 1, 0.0)
        handle.end_step(5, FakeStats())
        assert handle.record.steps == []


class TestFlightRecorder:
    def test_ring_buffer_bounds_retention(self):
        registry = RequestRegistry(capacity=3)
        for i in range(5):
            registry.begin(f"q{i}").complete()
        retained = registry.completed()
        assert [r.sql for r in retained] == ["q2", "q3", "q4"]
        stats = registry.stats()
        assert stats["retained"] == 3
        assert stats["capacity"] == 3
        # the lifetime counts survive eviction
        assert stats["finished"]["complete"] == 5

    def test_slow_threshold(self):
        registry = RequestRegistry(slow_threshold_seconds=0.5)
        fast = registry.begin("fast")
        fast.complete(total_seconds=0.1)
        slow = registry.begin("slow")
        slow.complete(total_seconds=0.9)
        assert registry.slow() == [slow.record]
        assert registry.stats()["slow"] == 1

    def test_snapshot_orders_active_then_retained(self):
        registry = RequestRegistry()
        done = registry.begin("done")
        done.complete()
        live = registry.begin("live")
        assert registry.snapshot() == [live.record, done.record]


class TestExports:
    def _completed_registry(self):
        registry = RequestRegistry(slow_threshold_seconds=0.5)
        handle = registry.begin("SELECT 1", tenant="t9")
        handle.begin_plan(make_plan())
        handle.begin_step(0)
        handle.end_step(0, FakeStats())
        handle.complete(rows=3, cache_hit=True, compile_seconds=0.1,
                        execute_seconds=0.6, total_seconds=0.7)
        registry.begin("bad").failed("oops")
        return registry

    def test_events_validate_against_schema(self):
        registry = self._completed_registry()
        events = requests_to_events(registry)
        assert len(events) == 2
        assert validate_events(events) == []
        first = events[0]
        assert first["event"] == "request_complete"
        assert first["request_id"] == "QID1"
        assert first["cache_hit"] is True
        assert first["slow"] is True   # 0.7s >= 0.5s threshold
        assert first["step_actuals"][0]["rows"] == 10
        assert events[1]["status"] == "failed"
        assert events[1]["error"] == "oops"

    def test_event_rejects_extra_fields(self):
        event = request_to_event(
            self._completed_registry().completed()[0], 1.0)
        event["surprise"] = 1
        assert validate_events([event]) != []

    def test_metrics_series(self):
        registry = self._completed_registry()
        registry.begin("live")  # in flight
        metrics = MetricsRegistry()
        requests_to_metrics(registry, metrics)
        snapshot = metrics.snapshot()
        totals = snapshot["pdw_request_total"]
        assert totals[(("status", "complete"), ("tenant", "t9"))] == 1
        assert totals[(("status", "failed"), ("tenant", "default"))] == 1
        assert snapshot["pdw_request_rows_total"][()] == 3
        assert snapshot["pdw_request_cache_hits_total"][()] == 1
        assert snapshot["pdw_request_slow_total"][()] == 1
        assert snapshot["pdw_request_in_flight"][()] == 1
        text = metrics.render_prometheus()
        assert 'pdw_request_seconds_bucket{le="+Inf",phase="total"} 2' \
            in text


class TestNullRegistry:
    """The disabled path must track nothing and allocate nothing."""

    def test_is_disabled(self):
        assert NULL_REQUESTS.enabled is False
        assert NULL_REQUEST.enabled is False
        assert RequestRegistry.enabled is True

    def test_begin_returns_shared_null_handle(self):
        handle = NULL_REQUESTS.begin("SELECT 1")
        assert handle is NULL_REQUEST
        assert handle.request_id is None

    def test_all_hooks_are_noops(self):
        NULL_REQUEST.compiling()
        NULL_REQUEST.begin_plan(make_plan())
        NULL_REQUEST.step_scheduled(0)
        NULL_REQUEST.begin_step(0)
        NULL_REQUEST.node_done(0, 1, 2, 3, 0.4)
        NULL_REQUEST.end_step(0, FakeStats())
        NULL_REQUEST.complete(rows=5)
        NULL_REQUEST.failed("x")
        NULL_REQUEST.rejected("y")
        assert NULL_REQUESTS.active() == []
        assert NULL_REQUESTS.completed() == []
        assert NULL_REQUESTS.slow() == []
        assert NULL_REQUESTS.snapshot() == []
        assert NULL_REQUESTS.find("QID1") is None
        assert NULL_REQUESTS.stats()["finished"] == {}

    def test_disabled_path_allocates_no_records(self, tpch, monkeypatch):
        """With tracking off, a full compile+run must never construct a
        request record: every record constructor is booby-trapped."""
        def boom(*args, **kwargs):
            raise AssertionError(
                "request record allocated on the disabled path")

        for name in ("RequestRecord", "StepProgress", "RequestHandle"):
            monkeypatch.setattr(requests_module, name, boom)
        monkeypatch.setattr(requests_module, "plan_digest", boom)

        appliance, shell = tpch
        session = PdwSession(appliance=appliance, shell=shell,
                             options=ExecutionOptions(trace=False))
        assert session.requests is NULL_REQUESTS
        result = session.run("SELECT COUNT(*) AS n FROM nation")
        assert result.rows == [(25,)]
        assert result.request_id is None


class TestConcurrentRegistry:
    def test_parallel_begin_complete_is_consistent(self):
        registry = RequestRegistry(capacity=1000)
        errors = []

        def worker(n):
            try:
                for i in range(50):
                    handle = registry.begin(f"w{n}-{i}")
                    handle.begin_plan(make_plan())
                    handle.begin_step(0)
                    handle.node_done(0, n, 1, 10, 0.0)
                    handle.end_step(0, FakeStats())
                    handle.complete(rows=1)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert registry.active() == []
        stats = registry.stats()
        assert stats["finished"]["complete"] == 200
        ids = [r.request_id for r in registry.completed()]
        assert len(set(ids)) == 200


class TestPlanDigest:
    def test_digest_is_stable_and_text_sensitive(self):
        plan_a = FakePlan([FakeStep(0, "SELECT a FROM t")])
        plan_b = FakePlan([FakeStep(0, "SELECT b FROM t")])
        assert plan_digest(plan_a) == plan_digest(plan_a)
        assert plan_digest(plan_a) != plan_digest(plan_b)
        assert len(plan_digest(plan_a)) == 12

    def test_terminal_states_subset_of_states(self):
        assert TERMINAL_STATES <= set(REQUEST_STATES)
