"""The sys.query_store_* views, queried through the ordinary
parse -> optimize -> execute path: schema-version neutrality, plan-cache
friendliness, cross-view consistency under self-observation, concurrent
readers, and a hint-forced plan change surfacing as two plans of one
shape plus a detected regression."""

import threading

import pytest

from repro import PdwService, PdwSession
from repro.obs.query_store import QueryStore, normalized_shape_key
from repro.workloads.tpch_datagen import build_tpch_appliance

SCALE = 0.001
NODES = 4

JOIN_SQL = ("SELECT c_custkey, o_orderdate FROM orders, customer "
            "WHERE o_custkey = c_custkey AND o_totalprice > 1000")


@pytest.fixture(scope="module")
def obs_env():
    """A private appliance: system-view registration and refreshes must
    not touch the suite-wide shared fixture."""
    return build_tpch_appliance(scale=SCALE, node_count=NODES)


@pytest.fixture()
def session(obs_env):
    appliance, shell = obs_env
    return PdwSession(appliance=appliance, shell=shell,
                      query_store=QueryStore())


@pytest.fixture()
def service(obs_env):
    appliance, shell = obs_env
    svc = PdwService(appliance=appliance, shell=shell,
                     query_store=QueryStore())
    yield svc
    svc.close()


class TestSessionPath:
    def test_views_reflect_recorded_executions(self, session):
        first = session.run("SELECT COUNT(*) AS n FROM nation")
        texts = session.run(
            "SELECT query_id, execution_count, plan_count "
            "FROM sys.query_store_query_texts")
        assert len(texts.rows) >= 1
        assert all(row[1] >= 1 and row[2] >= 1 for row in texts.rows)
        stats = session.run(
            "SELECT plan_hash, execution_count, rows_returned "
            "FROM sys.query_store_runtime_stats")
        assert any(row[2] == len(first.rows) for row in stats.rows)
        assert all(len(row[0]) == 12 for row in stats.rows)

    def test_view_query_is_schema_version_neutral(self, session):
        session.run("SELECT COUNT(*) AS n FROM region")
        before = session.appliance.schema_version
        session.run("SELECT COUNT(*) AS n "
                    "FROM sys.query_store_runtime_stats")
        session.run("SELECT COUNT(*) AS n FROM sys.query_store_plans")
        session.run("SELECT COUNT(*) AS n "
                    "FROM sys.query_store_query_texts")
        assert session.appliance.schema_version == before

    def test_view_queries_observe_themselves(self, session):
        """The store stamps every completed execution — including
        queries against its own views (like the DMVs, the observer is
        part of the observed system)."""
        session.run("SELECT COUNT(*) AS n "
                    "FROM sys.query_store_runtime_stats")
        texts = session.run(
            "SELECT example_sql FROM sys.query_store_query_texts")
        assert any("query_store_runtime_stats" in row[0]
                   for row in texts.rows)

    def test_cross_view_plan_counts_agree(self, session):
        session.run("SELECT COUNT(*) AS n FROM nation")
        session.run(JOIN_SQL)
        per_shape = session.run(
            "SELECT query_id, COUNT(*) AS n FROM sys.query_store_plans "
            "GROUP BY query_id")
        counts = {row[0]: row[1] for row in per_shape.rows}
        texts = session.run(
            "SELECT query_id, plan_count "
            "FROM sys.query_store_query_texts")
        # The second view query adds new shapes of its own, but every
        # shape present in the first snapshot keeps its plan count.
        for query_id, plan_count in texts.rows:
            if query_id in counts:
                assert counts[query_id] == plan_count


class TestServicePath:
    def test_view_query_does_not_flush_plan_cache(self, service):
        sql = "SELECT COUNT(*) AS n FROM supplier"
        service.execute(sql)
        service.execute("SELECT COUNT(*) AS n "
                        "FROM sys.query_store_runtime_stats")
        hits_before = service.plan_cache.stats()["hits"]
        service.execute(sql)
        assert service.plan_cache.stats()["hits"] == hits_before + 1
        # The view query itself re-parameterizes into a cacheable shape.
        service.execute("SELECT COUNT(*) AS n "
                        "FROM sys.query_store_runtime_stats")
        assert service.plan_cache.stats()["hits"] == hits_before + 2

    def test_hint_forced_plan_change_is_visible_and_flagged(
            self, service):
        hinted = service.options.override(hints={"customer": "shuffle"})
        for _ in range(2):
            service.execute(JOIN_SQL)
        for _ in range(2):
            service.execute(JOIN_SQL, options=hinted)
        shape = service.query_store.find(
            normalized_shape_key(JOIN_SQL))
        assert shape is not None and len(shape.plans) == 2

        plans = service.execute(
            "SELECT plan_hash, is_current, execution_count "
            "FROM sys.query_store_plans "
            "WHERE query_id = " + str(shape.query_id))
        assert len(plans.rows) == 2
        current = [row for row in plans.rows if row[1]]
        assert len(current) == 1
        assert current[0][0] == shape.current_plan().plan_hash

        # The shuffle-forced plan displaces the broadcast the optimizer
        # chose; at this scale it runs ~1.4x slower — flag at 1.2.
        flagged = service.query_store.regressions(factor=1.2)
        assert any(reg.query_id == shape.query_id for reg in flagged)

    def test_stats_surface(self, service):
        service.execute("SELECT COUNT(*) AS n FROM nation")
        stats = service.stats()
        assert stats["query_store"]["shapes"] >= 1
        assert stats["query_store"]["executions"] >= 1


class TestConcurrentReaders:
    def test_readers_hammer_while_traffic_runs(self, obs_env):
        appliance, shell = obs_env
        service = PdwService(appliance=appliance, shell=shell,
                             query_store=QueryStore(),
                             max_in_flight=8, max_queue=64)
        errors = []

        def writer():
            try:
                for i in range(6):
                    service.execute(
                        "SELECT COUNT(*) AS n FROM orders "
                        f"WHERE o_totalprice > {1000 + i}")
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        def reader():
            try:
                for _ in range(4):
                    result = service.execute(
                        "SELECT query_id, plan_hash, execution_count "
                        "FROM sys.query_store_runtime_stats")
                    for row in result.rows:
                        assert row[2] >= 1
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=writer) for _ in range(2)] \
            + [threading.Thread(target=reader) for _ in range(3)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            service.close()
        assert not errors
