"""The sys.dm_pdw_* system views, queried through the ordinary
parse -> optimize -> execute path from sessions, the service and the
CLI — including step-granularity visibility of in-flight queries."""

import threading

import pytest

from repro import PdwSession, PdwService
from repro.obs.requests import NULL_REQUEST, RequestRegistry
from repro.obs.system_views import (
    SYSTEM_VIEW_NAMES,
    mentions_system_views,
    register_system_views,
    system_view_defs,
)
from repro.workloads.tpch_datagen import build_tpch_appliance

SCALE = 0.001
NODES = 4

JOIN_SQL = ("SELECT COUNT(*) AS n FROM orders, customer "
            "WHERE o_custkey = c_custkey")


@pytest.fixture(scope="module")
def obs_env():
    """A private appliance: system-view registration and refreshes must
    not touch the suite-wide shared fixture."""
    return build_tpch_appliance(scale=SCALE, node_count=NODES)


@pytest.fixture()
def session(obs_env):
    appliance, shell = obs_env
    return PdwSession(appliance=appliance, shell=shell)


class TestRegistration:
    def test_defs_cover_all_views(self):
        defs = system_view_defs()
        assert tuple(t.name for t in defs) == SYSTEM_VIEW_NAMES
        for table in defs:
            assert table.is_system
            assert not table.is_temp

    def test_register_is_idempotent_and_version_neutral(self, obs_env):
        appliance, _shell = obs_env
        before = appliance.schema_version
        register_system_views(appliance)
        register_system_views(appliance)
        assert appliance.schema_version == before
        for name in SYSTEM_VIEW_NAMES:
            assert appliance.catalog.has_table(name)

    def test_mentions_marker(self):
        assert mentions_system_views(
            "select * from sys.dm_pdw_exec_requests")
        assert mentions_system_views("SELECT 1 FROM DM_PDW_ADMISSION")
        assert not mentions_system_views("SELECT 1 FROM lineitem")


class TestSessionPath:
    def test_dmv_query_sees_completed_and_itself(self, session):
        first = session.run("SELECT COUNT(*) AS n FROM nation")
        result = session.run(
            "SELECT request_id, status, total_steps, rows_returned "
            "FROM sys.dm_pdw_exec_requests")
        by_id = {row[0]: row for row in result.rows}
        # the earlier query is retained as complete...
        assert by_id[first.request_id][1] == "complete"
        assert by_id[first.request_id][2] >= 1
        assert by_id[first.request_id][3] == len(first.rows)
        # ...and the DMV query observes itself, snapshotted at intake.
        assert by_id[result.request_id][1] == "queued"

    def test_group_by_status_one_liner(self, session):
        session.run("SELECT COUNT(*) AS n FROM region")
        result = session.run(
            "SELECT status, COUNT(*) AS n "
            "FROM sys.dm_pdw_exec_requests GROUP BY status")
        counts = dict(result.rows)
        assert counts.get("complete", 0) >= 1
        assert counts.get("queued", 0) >= 1

    def test_request_steps_and_dms_workers(self, session):
        joined = session.run(JOIN_SQL)
        steps = session.run(
            "SELECT request_id, step_index, kind, status, row_count "
            "FROM sys.dm_pdw_request_steps")
        mine = [row for row in steps.rows if row[0] == joined.request_id]
        assert len(mine) == len(joined.plan.dsql_plan.steps)
        kinds = {row[2] for row in mine}
        assert "Return" in kinds
        assert "DMS" in kinds  # the join forces a movement step
        assert all(row[3] == "complete" for row in mine)

        workers = session.run(
            "SELECT request_id, step_index, pdw_node_id, rows_processed "
            "FROM sys.dm_pdw_dms_workers")
        my_workers = [row for row in workers.rows
                      if row[0] == joined.request_id]
        assert my_workers
        assert {row[2] for row in my_workers} <= set(range(NODES))

    def test_empty_service_views_exist_on_session_path(self, session):
        # The session has no plan cache / admission controller, so those
        # views are queryable but empty.
        assert session.run(
            "SELECT shape_key FROM sys.dm_pdw_plan_cache").rows == []
        assert session.run(
            "SELECT in_flight FROM sys.dm_pdw_admission").rows == []

    def test_refresh_does_not_bump_schema_version(self, session):
        session.run("SELECT COUNT(*) AS n FROM nation")
        version = session.appliance.schema_version
        session.run("SELECT COUNT(*) AS n FROM sys.dm_pdw_exec_requests")
        session.refresh_system_views()
        assert session.appliance.schema_version == version

    def test_explain_works_on_a_system_view(self, session):
        text = session.explain(
            "SELECT status FROM sys.dm_pdw_exec_requests")
        assert "dm_pdw_exec_requests" in text

    def test_failed_query_lands_in_recorder(self, session):
        with pytest.raises(Exception):
            session.run("SELECT no_such_column FROM nation")
        result = session.run(
            "SELECT status, error_text FROM sys.dm_pdw_exec_requests "
            "WHERE status = 'failed'")
        assert result.rows
        assert any("no_such_column" in row[1] for row in result.rows)

    def test_result_request_id_correlates(self, session):
        result = session.run("SELECT COUNT(*) AS n FROM nation")
        assert result.request_id is not None
        record = session.requests.find(result.request_id)
        assert record is not None
        assert record.rows_returned == 1


class TestInFlightVisibility:
    def test_running_query_visible_from_concurrent_session(self, obs_env,
                                                           monkeypatch):
        """While session A executes, session B (same appliance, shared
        registry) must see A's request live, at step granularity."""
        appliance, shell = obs_env
        registry = RequestRegistry()
        session_a = PdwSession(appliance=appliance, shell=shell,
                               requests=registry)
        session_b = PdwSession(appliance=appliance, shell=shell,
                               requests=registry)

        started = threading.Event()
        release = threading.Event()
        original = session_a.runner.runtime.execute_return

        def gated_return(step, request=NULL_REQUEST):
            started.set()
            assert release.wait(timeout=10), "reader never released us"
            return original(step, request=request)

        monkeypatch.setattr(session_a.runner.runtime, "execute_return",
                            gated_return)

        outcome = {}

        def run_query():
            outcome["result"] = session_a.run(
                "SELECT COUNT(*) AS n FROM nation")

        thread = threading.Thread(target=run_query)
        thread.start()
        try:
            assert started.wait(timeout=10)
            live = session_b.run(
                "SELECT request_id, status, current_step "
                "FROM sys.dm_pdw_exec_requests "
                "WHERE status = 'running'")
            assert live.rows, "in-flight request not visible"
            request_id, _status, current_step = live.rows[0]
            assert current_step >= 0
            steps = session_b.run(
                "SELECT request_id, step_index, status "
                "FROM sys.dm_pdw_request_steps "
                "WHERE status = 'running'")
            assert any(row[0] == request_id for row in steps.rows)
        finally:
            release.set()
            thread.join(timeout=10)
        assert outcome["result"].rows == [(25,)]
        record = registry.find(outcome["result"].request_id)
        assert record.status == "complete"


class TestServicePath:
    @pytest.fixture()
    def service(self, obs_env):
        appliance, shell = obs_env
        svc = PdwService(appliance=appliance, shell=shell)
        yield svc
        svc.close()

    def test_all_five_views_live_through_service_sql(self, service):
        warm = "SELECT COUNT(*) AS n FROM orders"
        service.execute(warm)
        service.execute(warm)  # plan-cache hit

        requests = service.execute(
            "SELECT request_id, status, cache_hit "
            "FROM sys.dm_pdw_exec_requests")
        assert len(requests.rows) >= 3
        assert any(row[2] for row in requests.rows)  # the hit is visible

        steps = service.execute(
            "SELECT request_id FROM sys.dm_pdw_request_steps")
        assert steps.rows

        workers = service.execute(
            "SELECT pdw_node_id FROM sys.dm_pdw_dms_workers")
        assert workers.rows

        cache = service.execute(
            "SELECT shape_key, hit_count, execution_count "
            "FROM sys.dm_pdw_plan_cache")
        warm_rows = [row for row in cache.rows if "orders" in row[0]]
        assert warm_rows and warm_rows[0][1] >= 1

        admission = service.execute(
            "SELECT in_flight, admitted_total FROM sys.dm_pdw_admission")
        assert len(admission.rows) == 1
        assert admission.rows[0][1] >= 1

    def test_dmv_query_does_not_flush_plan_cache(self, service):
        warm = "SELECT COUNT(*) AS n FROM supplier"
        service.execute(warm)
        service.execute(
            "SELECT status FROM sys.dm_pdw_exec_requests")
        result = service.execute(warm)
        assert result.cache_hit, \
            "querying a DMV invalidated the plan cache"

    def test_rejected_request_recorded(self, obs_env):
        appliance, shell = obs_env
        service = PdwService(appliance=appliance, shell=shell,
                             max_in_flight=1, max_queue=0)
        try:
            ticket = service.admission.admit()  # hog the only slot
            with pytest.raises(Exception):
                service.execute("SELECT COUNT(*) AS n FROM nation",
                                timeout_seconds=0.01)
            service.admission.release(ticket)
        finally:
            service.close()
        rejected = [r for r in service.requests.completed()
                    if r.status == "rejected"]
        assert rejected
        assert rejected[0].error

    def test_stats_include_requests(self, service):
        service.execute("SELECT COUNT(*) AS n FROM nation")
        stats = service.stats()
        assert stats["requests"]["finished"]["complete"] >= 1


class TestCli:
    def test_requests_subcommand(self, tmp_path, capsys):
        from repro.__main__ import main

        jsonl = tmp_path / "requests.jsonl"
        prom = tmp_path / "requests.prom"
        code = main(["--scale", "0.001", "--nodes", "4", "requests",
                     "--clients", "1", "--queries", "2",
                     "--jsonl", str(jsonl), "--prometheus", str(prom)])
        assert code == 0
        out = capsys.readouterr().out
        assert "sys.dm_pdw_exec_requests" in out
        assert "Flight recorder:" in out
        assert "QID1" in out
        from repro.obs.export import validate_jsonl
        text = jsonl.read_text(encoding="utf-8")
        assert validate_jsonl(text) == []
        assert '"event": "request_complete"' in text
        assert "pdw_request_total" in prom.read_text(encoding="utf-8")
