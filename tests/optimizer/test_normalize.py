"""Normalization tests: folding, contradictions, pushdown, semi-join
conversion, self-join elimination, column pruning."""

import pytest

from repro.algebra import expressions as ex
from repro.algebra.logical import (
    JoinKind,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalProject,
    LogicalSelect,
)
from repro.common.types import INTEGER
from repro.optimizer.binder import bind_query
from repro.optimizer.normalize import (
    fold_expression,
    normalize,
)


def normalized(catalog, sql):
    return normalize(bind_query(catalog, sql))


def walk(op):
    yield op
    for child in op.children:
        yield from walk(child)


def ops_of(root, kind):
    return [op for op in walk(root) if isinstance(op, kind)]


def var(i):
    return ex.ColumnVar(i, f"c{i}", INTEGER)


class TestConstantFolding:
    def test_arithmetic_folds(self):
        expr = ex.Arithmetic("*", ex.Constant(6), ex.Constant(7))
        assert fold_expression(expr) == ex.Constant(42)

    def test_true_conjunct_removed(self):
        expr = ex.BoolOp("AND", (ex.Constant(True),
                                 ex.Comparison("=", var(1), var(2))))
        folded = fold_expression(expr)
        assert isinstance(folded, ex.Comparison)

    def test_false_conjunct_collapses(self):
        expr = ex.BoolOp("AND", (ex.Constant(False), var(1)))
        assert fold_expression(expr) == ex.FALSE

    def test_true_disjunct_collapses(self):
        expr = ex.BoolOp("OR", (ex.Constant(True), var(1)))
        assert fold_expression(expr) == ex.TRUE

    def test_not_pushed_through_comparison(self):
        expr = ex.NotExpr(ex.Comparison("<", var(1), var(2)))
        folded = fold_expression(expr)
        assert isinstance(folded, ex.Comparison)
        assert folded.op == ">="

    def test_double_negation(self):
        expr = ex.NotExpr(ex.NotExpr(ex.Constant(True)))
        assert fold_expression(expr).value is True

    def test_folding_inside_projection(self, mini_catalog):
        query = normalized(mini_catalog,
                           "SELECT c_custkey + (1 + 1) FROM customer")
        project = query.root
        assert isinstance(project, LogicalProject)
        _, expr = project.outputs[0]
        assert ex.Constant(2) in expr.children()


class TestContradictions:
    def test_empty_range_detected(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT c_name FROM customer "
            "WHERE c_custkey > 10 AND c_custkey < 5")
        selects = ops_of(query.root, LogicalSelect)
        assert any(s.predicate == ex.FALSE for s in selects)

    def test_conflicting_equalities(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT c_name FROM customer "
            "WHERE c_custkey = 1 AND c_custkey = 2")
        selects = ops_of(query.root, LogicalSelect)
        assert any(s.predicate == ex.FALSE for s in selects)

    def test_touching_open_bounds(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT c_name FROM customer "
            "WHERE c_custkey >= 5 AND c_custkey < 5")
        selects = ops_of(query.root, LogicalSelect)
        assert any(s.predicate == ex.FALSE for s in selects)

    def test_satisfiable_range_untouched(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT c_name FROM customer "
            "WHERE c_custkey > 5 AND c_custkey < 10")
        selects = ops_of(query.root, LogicalSelect)
        assert all(s.predicate != ex.FALSE for s in selects)

    def test_equality_outside_range(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT c_name FROM customer "
            "WHERE c_custkey = 3 AND c_custkey > 10")
        selects = ops_of(query.root, LogicalSelect)
        assert any(s.predicate == ex.FALSE for s in selects)


class TestPushdown:
    def test_single_table_predicate_reaches_get(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey AND o_totalprice > 100")
        for select in ops_of(query.root, LogicalSelect):
            if "o_totalprice" in str(select.predicate):
                assert isinstance(select.child, LogicalGet)
                assert select.child.table.name == "orders"
                break
        else:
            pytest.fail("pushed predicate not found")

    def test_cross_join_upgraded_to_inner(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        join = ops_of(query.root, LogicalJoin)[0]
        assert join.kind is JoinKind.INNER
        assert join.predicate is not None

    def test_join_predicate_stays_at_join(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT c_name FROM customer JOIN orders "
            "ON c_custkey = o_custkey")
        join = ops_of(query.root, LogicalJoin)[0]
        assert "c_custkey" in str(join.predicate)

    def test_left_join_where_on_right_stays_above(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT c_name FROM customer LEFT JOIN orders "
            "ON c_custkey = o_custkey WHERE o_totalprice IS NULL")
        join = ops_of(query.root, LogicalJoin)[0]
        assert join.kind is JoinKind.LEFT
        # The IS NULL must not be under the join's right side.
        for select in ops_of(join, LogicalSelect):
            assert "o_totalprice" not in str(select.predicate)

    def test_left_join_on_right_conjunct_pushes_right(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT c_name FROM customer LEFT JOIN orders "
            "ON c_custkey = o_custkey AND o_totalprice > 100")
        join = ops_of(query.root, LogicalJoin)[0]
        selects_below_right = ops_of(join.right, LogicalSelect)
        assert any("o_totalprice" in str(s.predicate)
                   for s in selects_below_right)

    def test_groupby_key_filter_pushes_below(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT x, n FROM (SELECT c_nationkey AS x, COUNT(*) AS n "
            "FROM customer GROUP BY c_nationkey) AS d WHERE x = 3")
        group = ops_of(query.root, LogicalGroupBy)[0]
        below = ops_of(group.child, LogicalSelect)
        assert any("c_nationkey" in str(s.predicate) for s in below)

    def test_groupby_agg_filter_stays_above(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT x FROM (SELECT c_nationkey AS x, COUNT(*) AS n "
            "FROM customer GROUP BY c_nationkey) AS d WHERE n > 5")
        group = ops_of(query.root, LogicalGroupBy)[0]
        assert not any("count" in str(s.predicate).lower()
                       for s in ops_of(group.child, LogicalSelect))


class TestSemiJoinConversion:
    def test_equi_semi_becomes_inner_plus_distinct(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT c_name FROM customer WHERE c_custkey IN "
            "(SELECT o_custkey FROM orders)")
        joins = ops_of(query.root, LogicalJoin)
        assert joins[0].kind is JoinKind.INNER
        distinct = ops_of(joins[0].right, LogicalGroupBy)
        assert distinct and distinct[0].aggregates == []

    def test_anti_join_not_converted(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT c_name FROM customer WHERE c_custkey NOT IN "
            "(SELECT o_custkey FROM orders)")
        joins = ops_of(query.root, LogicalJoin)
        assert joins[0].kind is JoinKind.ANTI

    def test_already_distinct_right_not_rewrapped(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT c_name FROM customer WHERE c_nationkey IN "
            "(SELECT DISTINCT n_nationkey FROM nation)")
        join = ops_of(query.root, LogicalJoin)[0]
        groups = ops_of(join.right, LogicalGroupBy)
        assert len(groups) == 1  # the DISTINCT, not a second wrapper


class TestSelfJoinElimination:
    def test_pk_self_join_eliminated(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT a.c_name FROM customer a, customer b "
            "WHERE a.c_custkey = b.c_custkey AND b.c_nationkey = 3")
        gets = ops_of(query.root, LogicalGet)
        assert len(gets) == 1
        selects = ops_of(query.root, LogicalSelect)
        assert any("c_nationkey" in str(s.predicate) for s in selects)

    def test_non_pk_self_join_kept(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT a.c_name FROM customer a, customer b "
            "WHERE a.c_nationkey = b.c_nationkey")
        assert len(ops_of(query.root, LogicalGet)) == 2

    def test_different_tables_kept(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        assert len(ops_of(query.root, LogicalGet)) == 2


class TestColumnPruning:
    def test_get_narrowed_to_used_columns(self, mini_catalog):
        query = normalized(mini_catalog, "SELECT c_name FROM customer")
        get = ops_of(query.root, LogicalGet)[0]
        names = {v.name for v in get.columns}
        # c_name plus the distribution column (kept for placement info).
        assert names == {"c_name", "c_custkey"}

    def test_filter_only_columns_projected_away(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT o_orderdate FROM orders, customer "
            "WHERE o_custkey = c_custkey AND o_totalprice > 5")
        join = ops_of(query.root, LogicalJoin)[0]
        for side in join.children:
            for v in side.output_columns():
                assert v.name != "o_totalprice"

    def test_groupby_unused_aggregate_dropped(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT x FROM (SELECT c_nationkey AS x, COUNT(*) AS n "
            "FROM customer GROUP BY c_nationkey) AS d")
        group = ops_of(query.root, LogicalGroupBy)[0]
        assert group.aggregates == []

    def test_order_by_columns_survive(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT c_name FROM customer ORDER BY c_name DESC")
        assert {v.id for v, _ in query.order_by} <= {
            v.id for v in query.root.output_columns()}
