"""Serial optimizer search tests: join enumeration, rules, extraction."""

import pytest

from repro.algebra import physical as phys
from repro.algebra.logical import AggPhase, LogicalGroupBy, LogicalJoin
from repro.catalog.schema import Catalog, Column, TableDef, hash_distributed
from repro.catalog.shell_db import ShellDatabase
from repro.common.types import INTEGER
from repro.optimizer.search import OptimizerConfig, SerialOptimizer


@pytest.fixture()
def optimizer(mini_shell):
    return SerialOptimizer(mini_shell)


def logical_ops(memo, root):
    from repro.optimizer.memo import topological_order
    for gid in topological_order(memo, root):
        for expr in memo.group(gid).logical_expressions:
            yield expr


class TestJoinEnumeration:
    def test_two_way_join_has_one_join_group(self, optimizer):
        result = optimizer.optimize_sql(
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        joins = [e for e in logical_ops(result.memo, result.root_group)
                 if isinstance(e.op, LogicalJoin)]
        assert len(joins) >= 1

    def test_three_way_join_generates_alternatives(self, optimizer):
        result = optimizer.optimize_sql(
            "SELECT c_name FROM customer, orders, lineitem "
            "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey")
        joins = [e for e in logical_ops(result.memo, result.root_group)
                 if isinstance(e.op, LogicalJoin)]
        # (C⋈O)⋈L, C⋈(O⋈L) at least — intermediate groups for CO and OL.
        assert len(joins) >= 3

    def test_transitive_closure_adds_join_edge(self, mini_shell):
        # c_custkey = o_custkey and o_custkey = l_partkey implies
        # c_custkey = l_partkey, enabling the C⋈L decomposition.
        optimizer = SerialOptimizer(mini_shell)
        result = optimizer.optimize_sql(
            "SELECT c_name FROM customer, orders, lineitem "
            "WHERE c_custkey = o_custkey AND o_custkey = l_partkey")
        joins = [e for e in logical_ops(result.memo, result.root_group)
                 if isinstance(e.op, LogicalJoin)]
        assert len(joins) >= 3

    def test_cross_product_only_when_disconnected(self, optimizer):
        result = optimizer.optimize_sql(
            "SELECT c_name FROM customer, nation")
        joins = [e for e in logical_ops(result.memo, result.root_group)
                 if isinstance(e.op, LogicalJoin)]
        assert all(e.op.predicate is None for e in joins)

    def test_greedy_fallback_for_large_regions(self, mini_shell):
        config = OptimizerConfig(exhaustive_join_limit=2)
        optimizer = SerialOptimizer(mini_shell, config)
        result = optimizer.optimize_sql(
            "SELECT c_name FROM customer, orders, lineitem "
            "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey")
        assert result.best_serial_plan is not None

    def test_best_plan_filters_before_join(self, optimizer):
        result = optimizer.optimize_sql(
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey AND o_totalprice > 100")
        plan = result.best_serial_plan
        # The Filter must appear below the join, not above it.
        assert isinstance(plan.op, phys.ComputeScalar)
        join_node = plan.children[0]
        filters_below = [
            n for n in join_node.walk() if isinstance(n.op, phys.Filter)
        ]
        assert filters_below


class TestAggregateSplit:
    def test_local_global_alternative_present(self, optimizer):
        result = optimizer.optimize_sql(
            "SELECT c_nationkey, COUNT(*) FROM customer "
            "GROUP BY c_nationkey")
        phases = {
            e.op.phase for e in logical_ops(result.memo, result.root_group)
            if isinstance(e.op, LogicalGroupBy)
        }
        assert AggPhase.LOCAL in phases
        assert AggPhase.GLOBAL in phases

    def test_global_combines_count_with_sum(self, optimizer):
        result = optimizer.optimize_sql(
            "SELECT c_nationkey, COUNT(*) AS n FROM customer "
            "GROUP BY c_nationkey")
        global_gbs = [
            e.op for e in logical_ops(result.memo, result.root_group)
            if isinstance(e.op, LogicalGroupBy)
            and e.op.phase is AggPhase.GLOBAL
        ]
        assert global_gbs
        funcs = [agg.func for _, agg in global_gbs[0].aggregates]
        assert funcs == ["SUM"]

    def test_distinct_agg_not_split(self, optimizer):
        result = optimizer.optimize_sql(
            "SELECT c_nationkey, COUNT(DISTINCT c_name) FROM customer "
            "GROUP BY c_nationkey")
        phases = {
            e.op.phase for e in logical_ops(result.memo, result.root_group)
            if isinstance(e.op, LogicalGroupBy)
        }
        assert phases == {AggPhase.COMPLETE}

    def test_split_disabled_by_config(self, mini_shell):
        config = OptimizerConfig(enable_aggregate_split=False)
        result = SerialOptimizer(mini_shell, config).optimize_sql(
            "SELECT c_nationkey, COUNT(*) FROM customer "
            "GROUP BY c_nationkey")
        phases = {
            e.op.phase for e in logical_ops(result.memo, result.root_group)
            if isinstance(e.op, LogicalGroupBy)
        }
        assert phases == {AggPhase.COMPLETE}


class TestGroupByPushdown:
    def test_join_pushed_below_groupby(self, mini_shell):
        optimizer = SerialOptimizer(mini_shell)
        # lineitem grouped by l_orderkey then joined with orders (unique
        # on o_orderkey) — the rule adds GroupBy(join) alternatives.
        result = optimizer.optimize_sql(
            "SELECT o_orderdate, q FROM orders, "
            "(SELECT l_orderkey, SUM(l_quantity) AS q FROM lineitem "
            " GROUP BY l_orderkey) AS agg "
            "WHERE o_orderkey = agg.l_orderkey")
        group_children_joins = 0
        for expr in logical_ops(result.memo, result.root_group):
            if isinstance(expr.op, LogicalGroupBy):
                for child in expr.children:
                    child_group = result.memo.group(child)
                    if any(isinstance(e.op, LogicalJoin)
                           for e in child_group.logical_expressions):
                        group_children_joins += 1
        assert group_children_joins > 0

    def test_pushdown_disabled_by_config(self, mini_shell):
        config = OptimizerConfig(enable_groupby_pushdown=False,
                                 enable_aggregate_split=False)
        result = SerialOptimizer(mini_shell, config).optimize_sql(
            "SELECT o_orderdate, q FROM orders, "
            "(SELECT l_orderkey, SUM(l_quantity) AS q FROM lineitem "
            " GROUP BY l_orderkey) AS agg "
            "WHERE o_orderkey = agg.l_orderkey")
        for expr in logical_ops(result.memo, result.root_group):
            if isinstance(expr.op, LogicalGroupBy):
                for child in expr.children:
                    child_group = result.memo.group(child)
                    assert not any(
                        isinstance(e.op, LogicalJoin)
                        for e in child_group.logical_expressions)


class TestExtraction:
    def test_plan_cost_positive(self, optimizer):
        result = optimizer.optimize_sql("SELECT c_name FROM customer")
        assert result.best_serial_cost > 0

    def test_plan_is_tree_of_physical_ops(self, optimizer):
        result = optimizer.optimize_sql(
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        for node in result.best_serial_plan.walk():
            assert isinstance(node.op, phys.PhysicalOp)

    def test_best_cost_not_worse_than_any_alternative(self, optimizer):
        """Exhaustiveness sanity: the chosen plan beats a handcrafted
        alternative (NLJ everywhere)."""
        result = optimizer.optimize_sql(
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        plan = result.best_serial_plan
        hash_joins = [n for n in plan.walk()
                      if isinstance(n.op, phys.HashJoin)]
        assert hash_joins, "hash join must beat NLJ on an equi join"

    def test_serial_extraction_optional(self, optimizer):
        result = optimizer.optimize_sql(
            "SELECT c_name FROM customer", extract_serial=False)
        assert result.best_serial_plan is None


class TestSeededGreedy:
    def test_collocation_seed_runs(self):
        catalog = Catalog([
            TableDef(f"t{i}",
                     [Column("k", INTEGER), Column(f"v{i}", INTEGER)],
                     hash_distributed("k"), row_count=1000 * (i + 1))
            for i in range(5)
        ])
        shell = ShellDatabase(catalog, node_count=4)
        config = OptimizerConfig(exhaustive_join_limit=3,
                                 seed_collocated_joins=True)
        optimizer = SerialOptimizer(shell, config)
        sql = ("SELECT t0.v0 FROM t0, t1, t2, t3, t4 WHERE "
               "t0.k = t1.k AND t1.k = t2.k AND t2.k = t3.k "
               "AND t3.k = t4.k")
        result = optimizer.optimize_sql(sql)
        assert result.best_serial_plan is not None
