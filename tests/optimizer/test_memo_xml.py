"""MEMO ⇄ XML round-trip tests (the Figure 2 interface)."""

import datetime

import pytest

from repro.algebra import expressions as ex
from repro.catalog.shell_db import ShellDatabase
from repro.common.types import DATE, INTEGER, varchar
from repro.optimizer.memo_xml import (
    expr_from_element,
    expr_to_element,
    memo_from_xml,
    memo_to_xml,
)
from repro.optimizer.search import SerialOptimizer

QUERIES = [
    "SELECT c_name FROM customer",
    "SELECT c_name FROM customer WHERE c_custkey > 5",
    "SELECT c.c_custkey, o.o_orderdate FROM orders o, customer c "
    "WHERE o.o_custkey = c.c_custkey AND o.o_totalprice > 100",
    "SELECT c_nationkey, COUNT(*) AS n FROM customer GROUP BY c_nationkey",
    "SELECT c_name FROM customer WHERE c_custkey IN "
    "(SELECT o_custkey FROM orders)",
    "SELECT n_name FROM nation WHERE n_name LIKE 'C%' OR n_nationkey IN "
    "(1, 2, 3)",
]


@pytest.fixture()
def shell(mini_catalog):
    return ShellDatabase(mini_catalog, node_count=4)


def roundtrip(shell, sql):
    result = SerialOptimizer(shell).optimize_sql(sql, extract_serial=False)
    xml = memo_to_xml(result.memo, result.root_group, result.stats)
    parsed = memo_from_xml(xml, shell)
    return result, parsed


class TestMemoRoundTrip:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_group_count_preserved(self, shell, sql):
        result, parsed = roundtrip(shell, sql)
        assert len(parsed.memo.canonical_groups()) == len(
            result.memo.canonical_groups())

    @pytest.mark.parametrize("sql", QUERIES)
    def test_expression_structure_preserved(self, shell, sql):
        result, parsed = roundtrip(shell, sql)
        original = sorted(
            e.op.describe()
            for g in result.memo.canonical_groups()
            for e in g.expressions
            if result.memo.find(g.id) not in [
                result.memo.find(c) for c in e.children if
                result.memo.find(c) == result.memo.find(g.id)]
        )
        recovered = sorted(
            e.op.describe()
            for g in parsed.memo.canonical_groups()
            for e in g.expressions
        )
        assert recovered == original

    @pytest.mark.parametrize("sql", QUERIES)
    def test_cardinalities_preserved(self, shell, sql):
        result, parsed = roundtrip(shell, sql)
        original = sorted(g.cardinality
                          for g in result.memo.canonical_groups())
        recovered = sorted(g.cardinality
                           for g in parsed.memo.canonical_groups())
        assert recovered == pytest.approx(original)

    @pytest.mark.parametrize("sql", QUERIES)
    def test_widths_and_origins_preserved(self, shell, sql):
        result, parsed = roundtrip(shell, sql)
        for var_id, origin in result.stats.var_origins.items():
            assert parsed.stats.var_origins.get(var_id) == origin

    def test_root_tracks_original(self, shell):
        result, parsed = roundtrip(shell, QUERIES[2])
        root_group = parsed.memo.group(parsed.root_group)
        original_root = result.memo.group(result.root_group)
        assert {v.id for v in root_group.output_vars} == {
            v.id for v in original_root.output_vars}

    def test_double_roundtrip_stable(self, shell):
        result, parsed = roundtrip(shell, QUERIES[2])
        xml2 = memo_to_xml(parsed.memo, parsed.root_group, parsed.stats)
        parsed2 = memo_from_xml(xml2, shell)
        assert len(parsed2.memo.canonical_groups()) == len(
            parsed.memo.canonical_groups())


class TestExpressionSerialization:
    VARS = {
        1: ex.ColumnVar(1, "a", INTEGER),
        2: ex.ColumnVar(2, "s", varchar(10)),
    }

    @pytest.mark.parametrize("expr", [
        ex.Constant(42),
        ex.Constant(3.5),
        ex.Constant("text with 'quote'"),
        ex.Constant(None),
        ex.Constant(True),
        ex.Constant(datetime.date(1994, 1, 1)),
        ex.Comparison("<=", ex.ColumnVar(1, "a", INTEGER), ex.Constant(5)),
        ex.Arithmetic("*", ex.ColumnVar(1, "a", INTEGER), ex.Constant(2)),
        ex.BoolOp("OR", (ex.Constant(True), ex.Constant(False))),
        ex.NotExpr(ex.Constant(False)),
        ex.FuncExpr("DATEADD", (ex.Constant("year"), ex.Constant(1),
                                ex.Constant(datetime.date(1994, 1, 1)))),
        ex.CastExpr(ex.ColumnVar(1, "a", INTEGER), DATE),
        ex.CaseWhen(((ex.Constant(True), ex.Constant(1)),),
                    ex.Constant(0)),
        ex.LikeExpr(ex.ColumnVar(2, "s", varchar(10)), "fo%", True),
        ex.InListExpr(ex.ColumnVar(1, "a", INTEGER), (1, 2, 3)),
        ex.IsNullExpr(ex.ColumnVar(1, "a", INTEGER), negated=True),
        ex.AggExpr("SUM", ex.ColumnVar(1, "a", INTEGER)),
        ex.AggExpr("COUNT", None, distinct=False),
    ])
    def test_expr_roundtrip(self, expr):
        element = expr_to_element(expr)
        recovered = expr_from_element(element, self.VARS)
        assert recovered == expr
