"""Normalization over UNION ALL: pushdown and pruning."""

import pytest

from repro.algebra import expressions as ex
from repro.algebra.logical import (
    LogicalGet,
    LogicalSelect,
    LogicalUnionAll,
)
from repro.optimizer.binder import bind_query
from repro.optimizer.normalize import normalize


def walk(op):
    yield op
    for child in op.children:
        yield from walk(child)


def normalized(catalog, sql):
    return normalize(bind_query(catalog, sql))


class TestUnionPushdown:
    def test_filter_pushed_into_every_branch(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT v FROM (SELECT c_custkey AS v FROM customer "
            "UNION ALL SELECT o_custkey FROM orders) AS d WHERE v < 10")
        union = next(op for op in walk(query.root)
                     if isinstance(op, LogicalUnionAll))
        for child in union.children:
            selects = [op for op in walk(child)
                       if isinstance(op, LogicalSelect)]
            assert any("< 10" in str(s.predicate).replace("10)", "10)")
                       or "10" in str(s.predicate) for s in selects)

    def test_pushed_predicate_uses_branch_columns(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT v FROM (SELECT c_custkey AS v FROM customer "
            "UNION ALL SELECT o_custkey FROM orders) AS d WHERE v = 3")
        union = next(op for op in walk(query.root)
                     if isinstance(op, LogicalUnionAll))
        # The union's own output vars never leak into branch predicates.
        output_ids = {v.id for v in union.outputs}
        for child in union.children:
            for op in walk(child):
                if isinstance(op, LogicalSelect):
                    assert not (set(op.predicate.columns_used())
                                & output_ids)


class TestUnionPruning:
    def test_unused_output_dropped(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT a FROM (SELECT c_custkey AS a, c_nationkey AS b "
            "FROM customer UNION ALL SELECT o_custkey, o_orderkey "
            "FROM orders) AS d")
        union = next(op for op in walk(query.root)
                     if isinstance(op, LogicalUnionAll))
        assert len(union.outputs) == 1
        assert all(len(branch) == 1 for branch in union.branch_columns)

    def test_branch_gets_narrowed(self, mini_catalog):
        query = normalized(
            mini_catalog,
            "SELECT a FROM (SELECT c_custkey AS a, c_name AS b "
            "FROM customer UNION ALL SELECT o_custkey, c_name "
            "FROM orders, customer WHERE o_custkey = c_custkey) AS d")
        union = next(op for op in walk(query.root)
                     if isinstance(op, LogicalUnionAll))
        first_get = next(op for op in walk(union.children[0])
                         if isinstance(op, LogicalGet))
        names = {v.name for v in first_get.columns}
        assert "c_name" not in names

    def test_execution_after_normalization(self, tpch, tpch_engine):
        from repro.appliance.runner import DsqlRunner, run_reference
        from tests.conftest import canonical
        appliance, _ = tpch
        sql = ("SELECT v FROM (SELECT c_custkey AS v, c_name AS junk "
               "FROM customer UNION ALL SELECT o_custkey, o_clerk "
               "FROM orders) AS d WHERE v < 20 ORDER BY v")
        compiled = tpch_engine.compile(sql)
        result = DsqlRunner(appliance).run(compiled.dsql_plan)
        reference = run_reference(appliance, sql)
        assert canonical(result.rows) == canonical(reference.rows)
