"""Serial cost model tests."""

import pytest

from repro.algebra import physical as phys
from repro.algebra.expressions import ColumnVar, Comparison
from repro.algebra.logical import JoinKind
from repro.catalog.schema import Column, REPLICATED, TableDef
from repro.common.errors import OptimizerError
from repro.common.types import INTEGER
from repro.optimizer.cost import DEFAULT_SERIAL_COST_MODEL, SerialCostModel

MODEL = DEFAULT_SERIAL_COST_MODEL


def var(i):
    return ColumnVar(i, f"c{i}", INTEGER)


def pred():
    return Comparison("=", var(1), var(2))


def scan():
    return phys.TableScan(
        TableDef("t", [Column("a", INTEGER)], REPLICATED), [var(1)])


class TestOperatorCosts:
    def test_scan_linear_in_rows(self):
        assert MODEL.local_cost(scan(), 2000, ()) == \
            2 * MODEL.local_cost(scan(), 1000, ())

    def test_hash_join_build_side_weighted(self):
        join = phys.HashJoin(JoinKind.INNER, pred())
        small_build = MODEL.local_cost(join, 100, (1000, 10))
        big_build = MODEL.local_cost(join, 100, (10, 1000))
        assert small_build < big_build

    def test_nlj_quadratic(self):
        join = phys.NestedLoopJoin(JoinKind.INNER, pred())
        base = MODEL.local_cost(join, 0, (100, 100))
        double = MODEL.local_cost(join, 0, (200, 200))
        assert double == pytest.approx(4 * base)

    def test_hash_join_beats_nlj_at_scale(self):
        hj = MODEL.local_cost(phys.HashJoin(JoinKind.INNER, pred()),
                              1000, (10_000, 10_000))
        nlj = MODEL.local_cost(phys.NestedLoopJoin(JoinKind.INNER, pred()),
                               1000, (10_000, 10_000))
        assert hj < nlj

    def test_merge_join_includes_sorts(self):
        mj = MODEL.local_cost(phys.MergeJoin(JoinKind.INNER, pred()),
                              100, (10_000, 10_000))
        hj = MODEL.local_cost(phys.HashJoin(JoinKind.INNER, pred()),
                              100, (10_000, 10_000))
        assert mj > hj  # sorting both sides costs more here

    def test_stream_aggregate_pays_for_sort(self):
        hash_agg = MODEL.local_cost(phys.HashAggregate([var(1)], []),
                                    10, (10_000,))
        stream_agg = MODEL.local_cost(phys.StreamAggregate([var(1)], []),
                                      10, (10_000,))
        assert stream_agg > hash_agg

    def test_sort_superlinear(self):
        sort = phys.Sort([(var(1), True)])
        base = MODEL.local_cost(sort, 0, (1000,))
        ten_x = MODEL.local_cost(sort, 0, (10_000,))
        assert ten_x > 10 * base

    def test_unknown_operator_raises(self):
        class Weird:
            pass
        with pytest.raises(OptimizerError):
            MODEL.local_cost(Weird(), 1, (1,))

    def test_union_sums_children(self):
        union = phys.UnionAllOp([var(1)])
        assert MODEL.local_cost(union, 0, (100, 200, 300)) == \
            pytest.approx(MODEL.union_per_row * 600)

    def test_custom_coefficients(self):
        expensive_scan = SerialCostModel(scan_per_row=100.0)
        assert expensive_scan.local_cost(scan(), 10, ()) == 1000.0
