"""MEMO data structure tests: dedup, group merging, properties."""

import pytest

from repro.algebra import expressions as ex
from repro.algebra.logical import (
    JoinKind,
    detached_join,
    detached_select,
)
from repro.catalog.shell_db import ShellDatabase
from repro.optimizer.binder import bind_query
from repro.optimizer.cardinality import StatsContext
from repro.optimizer.memo import Memo, topological_order
from repro.optimizer.normalize import normalize


@pytest.fixture()
def memo_env(mini_catalog):
    shell = ShellDatabase(mini_catalog, node_count=4)

    def build(sql):
        query = normalize(bind_query(mini_catalog, sql))
        stats = StatsContext(shell)
        stats.register_tree(query.root)
        memo = Memo(stats)
        root = memo.insert_tree(query.root)
        return memo, root, query

    return build


class TestInsertion:
    def test_tree_insertion_creates_groups(self, memo_env):
        memo, root, _ = memo_env(
            "SELECT c_name FROM customer WHERE c_custkey > 5")
        assert len(memo.canonical_groups()) >= 3  # get, select, project

    def test_duplicate_subtrees_share_groups(self, memo_env):
        memo, root, query = memo_env("SELECT c_name FROM customer")
        before = len(memo.canonical_groups())
        memo.insert_tree(query.root)
        assert len(memo.canonical_groups()) == before

    def test_root_is_canonical(self, memo_env):
        memo, root, _ = memo_env("SELECT c_name FROM customer")
        assert memo.find(root) == root

    def test_group_properties_estimated(self, memo_env):
        memo, root, _ = memo_env("SELECT c_name FROM customer")
        group = memo.group(root)
        assert group.cardinality == 15_000
        assert group.row_width > 0


class TestDedupAndMerge:
    def test_same_expression_same_group(self, memo_env):
        memo, root, _ = memo_env(
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        join_groups = [
            g for g in memo.canonical_groups()
            if any("Join" in e.op.describe() for e in g.expressions)
        ]
        join_group = join_groups[0]
        join_expr = next(e for e in join_group.expressions
                         if "Join" in e.op.describe())
        result = memo.add_expression(join_group.id, join_expr.op,
                                     join_expr.children)
        assert result is join_expr  # no duplicate added

    def test_adding_expr_merges_groups(self, memo_env):
        memo, root, _ = memo_env("SELECT c_name FROM customer")
        # Create an artificial second group and force equivalence by
        # inserting a shared expression.
        group_a = memo.group(root)
        predicate = ex.Comparison(
            ">", group_a.output_vars[0], ex.Constant(1))
        select = detached_select(predicate)
        first = memo.group_for_expression(select, (root,))
        second_holder = memo._new_group(group_a.output_vars, 1.0, 4.0)
        memo.add_expression(second_holder.id, select, (root,))
        assert memo.find(second_holder.id) == memo.find(first)

    def test_self_reference_rejected(self, memo_env):
        memo, root, _ = memo_env("SELECT c_name FROM customer")
        select = detached_select(
            ex.Comparison(">", memo.group(root).output_vars[0],
                          ex.Constant(0)))
        group_id = memo.group_for_expression(select, (root,))
        # Adding an expression whose child is its own group is refused.
        result = memo.add_expression(group_id, select, (group_id,))
        assert result is None

    def test_merge_is_idempotent(self, memo_env):
        memo, root, _ = memo_env("SELECT c_name FROM customer")
        assert memo.merge_equivalent(root, root) == memo.find(root)


class TestTopologicalOrder:
    def test_children_before_parents(self, memo_env):
        memo, root, _ = memo_env(
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey AND o_totalprice > 10")
        order = topological_order(memo, root)
        position = {gid: i for i, gid in enumerate(order)}
        for gid in order:
            for expr in memo.group(gid).expressions:
                for child in expr.children:
                    child = memo.find(child)
                    if child != gid:
                        assert position[child] < position[gid]

    def test_root_is_last(self, memo_env):
        memo, root, _ = memo_env("SELECT c_name FROM customer")
        order = topological_order(memo, root)
        assert order[-1] == memo.find(root)

    def test_only_reachable_groups(self, memo_env):
        memo, root, _ = memo_env("SELECT c_name FROM customer")
        memo._new_group([], 0.0, 0.0)  # unreachable garbage group
        order = topological_order(memo, root)
        assert len(order) == len(memo.canonical_groups()) - 1


class TestDump:
    def test_dump_mentions_groups(self, memo_env):
        memo, root, _ = memo_env("SELECT c_name FROM customer")
        dump = memo.dump(root)
        assert "Group" in dump
        assert "(root)" in dump

    def test_expression_count(self, memo_env):
        memo, root, _ = memo_env("SELECT c_name FROM customer")
        assert memo.expression_count() == memo.expression_count(
            logical_only=True)  # nothing implemented yet
