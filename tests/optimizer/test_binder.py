"""Binder / algebrizer tests: name resolution, aggregation rules,
subquery unnesting."""

import pytest

from repro.algebra import expressions as ex
from repro.algebra.logical import (
    JoinKind,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalProject,
    LogicalSelect,
    collect_gets,
)
from repro.common.errors import BindError
from repro.optimizer.binder import bind_query


def bind(catalog, sql):
    return bind_query(catalog, sql)


class TestResolution:
    def test_unqualified_column(self, mini_catalog):
        query = bind(mini_catalog, "SELECT c_name FROM customer")
        assert query.output_names == ["c_name"]

    def test_qualified_column(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT c.c_name FROM customer AS c")
        assert query.output_names == ["c_name"]

    def test_unknown_column_raises(self, mini_catalog):
        with pytest.raises(BindError):
            bind(mini_catalog, "SELECT nope FROM customer")

    def test_unknown_table_raises(self, mini_catalog):
        from repro.common.errors import CatalogError
        with pytest.raises(CatalogError):
            bind(mini_catalog, "SELECT a FROM missing")

    def test_ambiguous_column_raises(self, mini_catalog):
        with pytest.raises(BindError):
            bind(mini_catalog,
                 "SELECT c_custkey FROM customer a, customer b")

    def test_duplicate_alias_raises(self, mini_catalog):
        with pytest.raises(BindError):
            bind(mini_catalog, "SELECT 1 FROM customer c, orders c")

    def test_unknown_alias_qualifier_raises(self, mini_catalog):
        with pytest.raises(BindError):
            bind(mini_catalog, "SELECT zz.c_name FROM customer c")

    def test_star_expansion(self, mini_catalog):
        query = bind(mini_catalog, "SELECT * FROM customer")
        assert query.output_names == ["c_custkey", "c_name", "c_nationkey"]

    def test_qualified_star(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT c.* FROM customer c, nation")
        assert query.output_names == ["c_custkey", "c_name", "c_nationkey"]

    def test_same_table_twice_distinct_vars(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT a.c_custkey, b.c_custkey FROM "
                     "customer a, customer b")
        vars_ = query.output_columns()
        assert vars_[0].id != vars_[1].id

    def test_expression_gets_generated_name(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT c_custkey + 1 FROM customer")
        assert query.output_names == ["col1"]


class TestJoins:
    def test_comma_becomes_cross(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT c_name FROM customer, orders")
        joins = [op for op in _walk(query.root)
                 if isinstance(op, LogicalJoin)]
        assert joins[0].kind is JoinKind.CROSS

    def test_inner_join_on(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT c_name FROM customer JOIN orders "
                     "ON c_custkey = o_custkey")
        joins = [op for op in _walk(query.root)
                 if isinstance(op, LogicalJoin)]
        assert joins[0].kind is JoinKind.INNER
        assert joins[0].predicate is not None

    def test_right_join_becomes_left_swapped(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT c_name FROM customer RIGHT JOIN orders "
                     "ON c_custkey = o_custkey")
        join = [op for op in _walk(query.root)
                if isinstance(op, LogicalJoin)][0]
        assert join.kind is JoinKind.LEFT
        assert isinstance(join.left, LogicalGet)
        assert join.left.table.name == "orders"

    def test_derived_table(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT x FROM (SELECT c_custkey AS x "
                     "FROM customer) AS d")
        assert query.output_names == ["x"]


class TestAggregation:
    def test_group_by_builds_groupby(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT c_nationkey, COUNT(*) FROM customer "
                     "GROUP BY c_nationkey")
        group = [op for op in _walk(query.root)
                 if isinstance(op, LogicalGroupBy)][0]
        assert len(group.keys) == 1
        assert group.aggregates[0][1].func == "COUNT"

    def test_ungrouped_column_rejected(self, mini_catalog):
        with pytest.raises(BindError):
            bind(mini_catalog,
                 "SELECT c_name, COUNT(*) FROM customer "
                 "GROUP BY c_nationkey")

    def test_aggregate_without_group_by(self, mini_catalog):
        query = bind(mini_catalog, "SELECT SUM(o_totalprice) FROM orders")
        group = [op for op in _walk(query.root)
                 if isinstance(op, LogicalGroupBy)][0]
        assert group.keys == []

    def test_avg_decomposed_into_sum_count(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT AVG(o_totalprice) FROM orders")
        group = [op for op in _walk(query.root)
                 if isinstance(op, LogicalGroupBy)][0]
        funcs = sorted(agg.func for _, agg in group.aggregates)
        assert funcs == ["COUNT", "SUM"]

    def test_avg_distinct_rejected(self, mini_catalog):
        with pytest.raises(BindError):
            bind(mini_catalog,
                 "SELECT AVG(DISTINCT o_totalprice) FROM orders")

    def test_duplicate_aggregates_shared(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT SUM(o_totalprice), SUM(o_totalprice) + 1 "
                     "FROM orders")
        group = [op for op in _walk(query.root)
                 if isinstance(op, LogicalGroupBy)][0]
        assert len(group.aggregates) == 1

    def test_having_becomes_select_above_groupby(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT c_nationkey FROM customer "
                     "GROUP BY c_nationkey HAVING COUNT(*) > 5")
        select = [op for op in _walk(query.root)
                  if isinstance(op, LogicalSelect)]
        assert select, "HAVING should bind to a Select"

    def test_aggregate_in_where_rejected(self, mini_catalog):
        with pytest.raises(BindError):
            bind(mini_catalog,
                 "SELECT c_name FROM customer WHERE SUM(c_custkey) > 3")

    def test_distinct_becomes_groupby(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT DISTINCT c_nationkey FROM customer")
        groups = [op for op in _walk(query.root)
                  if isinstance(op, LogicalGroupBy)]
        assert groups and groups[0].aggregates == []

    def test_group_by_expression_rejected(self, mini_catalog):
        with pytest.raises(BindError):
            bind(mini_catalog,
                 "SELECT c_nationkey + 1 FROM customer "
                 "GROUP BY c_nationkey + 1")


class TestOrderBy:
    def test_order_by_alias(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT c_custkey AS k FROM customer ORDER BY k")
        assert query.order_by[0][0].id == query.output_columns()[0].id

    def test_order_by_ordinal(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT c_name, c_custkey FROM customer ORDER BY 2")
        assert query.order_by[0][0].id == query.output_columns()[1].id

    def test_order_by_ordinal_out_of_range(self, mini_catalog):
        with pytest.raises(BindError):
            bind(mini_catalog, "SELECT c_name FROM customer ORDER BY 5")

    def test_order_by_direction(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT c_name FROM customer ORDER BY c_name DESC")
        assert query.order_by[0][1] is False

    def test_order_by_missing_from_output_rejected(self, mini_catalog):
        with pytest.raises(BindError):
            bind(mini_catalog,
                 "SELECT c_name FROM customer ORDER BY c_custkey")


class TestSubqueryUnnesting:
    def test_in_subquery_becomes_semi_join(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT c_name FROM customer WHERE c_custkey IN "
                     "(SELECT o_custkey FROM orders)")
        join = [op for op in _walk(query.root)
                if isinstance(op, LogicalJoin)][0]
        assert join.kind is JoinKind.SEMI

    def test_not_in_becomes_anti_join(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT c_name FROM customer WHERE c_custkey NOT IN "
                     "(SELECT o_custkey FROM orders)")
        join = [op for op in _walk(query.root)
                if isinstance(op, LogicalJoin)][0]
        assert join.kind is JoinKind.ANTI

    def test_correlated_exists(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT c_name FROM customer c WHERE EXISTS "
                     "(SELECT 1 FROM orders o "
                     "WHERE o.o_custkey = c.c_custkey)")
        join = [op for op in _walk(query.root)
                if isinstance(op, LogicalJoin)][0]
        assert join.kind is JoinKind.SEMI
        assert join.predicate is not None

    def test_uncorrelated_exists_rejected(self, mini_catalog):
        with pytest.raises(BindError):
            bind(mini_catalog,
                 "SELECT c_name FROM customer WHERE EXISTS "
                 "(SELECT 1 FROM orders)")

    def test_correlated_scalar_agg_decorrelated(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT o_orderkey FROM orders o WHERE "
                     "o_totalprice > (SELECT SUM(l_quantity) FROM lineitem"
                     " WHERE l_orderkey = o.o_orderkey)")
        groups = [op for op in _walk(query.root)
                  if isinstance(op, LogicalGroupBy)]
        assert groups, "decorrelation must introduce a GroupBy"
        join = [op for op in _walk(query.root)
                if isinstance(op, LogicalJoin)][0]
        assert join.kind is JoinKind.INNER

    def test_scalar_subquery_without_agg_rejected(self, mini_catalog):
        with pytest.raises(BindError):
            bind(mini_catalog,
                 "SELECT c_name FROM customer c WHERE c_custkey > "
                 "(SELECT o_custkey FROM orders "
                 "WHERE o_custkey = c.c_custkey)")

    def test_in_subquery_multiple_columns_rejected(self, mini_catalog):
        with pytest.raises(BindError):
            bind(mini_catalog,
                 "SELECT c_name FROM customer WHERE c_custkey IN "
                 "(SELECT o_custkey, o_orderkey FROM orders)")

    def test_in_subquery_with_groupby_having(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT o_orderkey FROM orders WHERE o_orderkey IN "
                     "(SELECT l_orderkey FROM lineitem GROUP BY l_orderkey"
                     " HAVING SUM(l_quantity) > 100)")
        join = [op for op in _walk(query.root)
                if isinstance(op, LogicalJoin)][0]
        assert join.kind is JoinKind.SEMI


class TestShapes:
    def test_gets_in_order(self, mini_catalog):
        query = bind(mini_catalog,
                     "SELECT c_name FROM customer, orders, nation")
        names = [g.table.name for g in collect_gets(query.root)]
        assert names == ["customer", "orders", "nation"]

    def test_projection_on_top(self, mini_catalog):
        query = bind(mini_catalog, "SELECT c_name FROM customer")
        assert isinstance(query.root, LogicalProject)

    def test_limit_recorded(self, mini_catalog):
        assert bind(mini_catalog,
                    "SELECT c_name FROM customer LIMIT 5").limit == 5


def _walk(op):
    yield op
    for child in op.children:
        yield from _walk(child)
