"""Implementation-phase tests: physical alternatives per logical op."""

import pytest

from repro.algebra import physical as phys
from repro.catalog.shell_db import ShellDatabase
from repro.optimizer.binder import bind_query
from repro.optimizer.cardinality import StatsContext
from repro.optimizer.implementation import implement_memo
from repro.optimizer.memo import Memo
from repro.optimizer.normalize import normalize


@pytest.fixture()
def implemented(mini_catalog):
    shell = ShellDatabase(mini_catalog, node_count=4)

    def build(sql):
        query = normalize(bind_query(mini_catalog, sql))
        stats = StatsContext(shell)
        stats.register_tree(query.root)
        memo = Memo(stats)
        root = memo.insert_tree(query.root)
        implement_memo(memo)
        return memo, root

    return build


def physical_ops(memo, cls):
    return [
        e.op for g in memo.canonical_groups()
        for e in g.physical_expressions if isinstance(e.op, cls)
    ]


class TestImplementations:
    def test_get_becomes_table_scan(self, implemented):
        memo, _ = implemented("SELECT c_name FROM customer")
        assert physical_ops(memo, phys.TableScan)

    def test_equi_join_gets_three_algorithms(self, implemented):
        memo, _ = implemented(
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        assert physical_ops(memo, phys.HashJoin)
        assert physical_ops(memo, phys.MergeJoin)
        assert physical_ops(memo, phys.NestedLoopJoin)

    def test_inner_hash_join_has_both_build_orders(self, implemented):
        memo, _ = implemented(
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey")
        join_exprs = [
            e for g in memo.canonical_groups()
            for e in g.physical_expressions
            if isinstance(e.op, phys.HashJoin)
        ]
        child_orders = {e.children for e in join_exprs}
        assert len(child_orders) == 2

    def test_non_equi_join_gets_only_nlj(self, implemented):
        memo, _ = implemented(
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey < o_custkey")
        assert physical_ops(memo, phys.NestedLoopJoin)
        assert not physical_ops(memo, phys.HashJoin)

    def test_groupby_gets_hash_and_stream(self, implemented):
        memo, _ = implemented(
            "SELECT c_nationkey, COUNT(*) FROM customer "
            "GROUP BY c_nationkey")
        assert physical_ops(memo, phys.HashAggregate)
        assert physical_ops(memo, phys.StreamAggregate)

    def test_every_logical_expr_has_physical_peer(self, implemented):
        memo, _ = implemented(
            "SELECT c_nationkey, COUNT(*) FROM customer "
            "WHERE c_custkey > 5 GROUP BY c_nationkey")
        for group in memo.canonical_groups():
            if group.logical_expressions:
                assert group.physical_expressions

    def test_implementation_idempotent(self, implemented):
        memo, _ = implemented("SELECT c_name FROM customer")
        before = memo.expression_count()
        added = implement_memo(memo)
        assert added == 0
        assert memo.expression_count() == before
