"""Cardinality / selectivity estimation tests."""

import pytest

from repro.algebra import expressions as ex
from repro.catalog.schema import Catalog, Column, TableDef, hash_distributed
from repro.catalog.shell_db import ShellDatabase
from repro.catalog.statistics import ColumnStats
from repro.common.types import INTEGER, varchar
from repro.optimizer.binder import bind_query
from repro.optimizer.cardinality import (
    StatsContext,
    predicate_selectivity,
)
from repro.optimizer.normalize import normalize
from repro.optimizer.memo import Memo


@pytest.fixture()
def env():
    catalog = Catalog([
        TableDef("facts",
                 [Column("id", INTEGER), Column("grp", INTEGER),
                  Column("val", INTEGER), Column("tag", varchar(10))],
                 hash_distributed("id"), row_count=10_000),
        TableDef("dims",
                 [Column("d_id", INTEGER), Column("d_name", varchar(10))],
                 hash_distributed("d_id"), row_count=100),
    ])
    shell = ShellDatabase(catalog, node_count=4)
    shell.set_column_stats("facts", "id",
                           ColumnStats.build(range(10_000)))
    shell.set_column_stats("facts", "grp",
                           ColumnStats.build([i % 50 for i in range(10_000)]))
    shell.set_column_stats("facts", "val",
                           ColumnStats.build([i % 1000 for i in range(10_000)]))
    shell.set_column_stats("dims", "d_id", ColumnStats.build(range(100)))
    return catalog, shell


def group_card(catalog, shell, sql):
    query = normalize(bind_query(catalog, sql))
    stats = StatsContext(shell)
    stats.register_tree(query.root)
    memo = Memo(stats)
    root = memo.insert_tree(query.root)
    return memo.group(root).cardinality


class TestBaseAndFilter:
    def test_base_table(self, env):
        catalog, shell = env
        assert group_card(catalog, shell,
                          "SELECT id FROM facts") == 10_000

    def test_equality_selectivity(self, env):
        catalog, shell = env
        card = group_card(catalog, shell,
                          "SELECT id FROM facts WHERE grp = 7")
        assert card == pytest.approx(200, rel=0.3)

    def test_range_selectivity(self, env):
        catalog, shell = env
        card = group_card(catalog, shell,
                          "SELECT id FROM facts WHERE val < 100")
        assert card == pytest.approx(1000, rel=0.3)

    def test_conjunction_multiplies(self, env):
        catalog, shell = env
        card = group_card(
            catalog, shell,
            "SELECT id FROM facts WHERE grp = 7 AND val < 100")
        assert card == pytest.approx(20, rel=0.5)

    def test_impossible_predicate_zero(self, env):
        catalog, shell = env
        card = group_card(catalog, shell,
                          "SELECT id FROM facts WHERE val > 99999")
        assert card < 10

    def test_or_selectivity_additive(self, env):
        catalog, shell = env
        card = group_card(
            catalog, shell,
            "SELECT id FROM facts WHERE grp = 1 OR grp = 2")
        assert card == pytest.approx(400, rel=0.4)


class TestJoins:
    def test_fk_join_estimate(self, env):
        catalog, shell = env
        card = group_card(
            catalog, shell,
            "SELECT id FROM facts, dims WHERE grp = d_id")
        # 10_000 * 100 / max(50, 100) = 10_000
        assert card == pytest.approx(10_000, rel=0.3)

    def test_cross_join_is_product(self, env):
        catalog, shell = env
        card = group_card(catalog, shell, "SELECT id FROM facts, dims")
        assert card == pytest.approx(1_000_000)

    def test_semi_join_bounded_by_left(self, env):
        catalog, shell = env
        card = group_card(
            catalog, shell,
            "SELECT d_id FROM dims WHERE d_id NOT IN "
            "(SELECT grp FROM facts)")
        assert 0 <= card <= 100


class TestGroupBy:
    def test_groupby_distinct_keys(self, env):
        catalog, shell = env
        card = group_card(
            catalog, shell,
            "SELECT grp, COUNT(*) FROM facts GROUP BY grp")
        assert card == pytest.approx(50, rel=0.1)

    def test_scalar_agg_one_row(self, env):
        catalog, shell = env
        card = group_card(catalog, shell,
                          "SELECT COUNT(*) FROM facts")
        assert card == 1

    def test_groupby_capped_by_input(self, env):
        catalog, shell = env
        card = group_card(
            catalog, shell,
            "SELECT id, COUNT(*) FROM facts GROUP BY id")
        assert card <= 10_000


class TestSelectivityHelpers:
    def test_null_predicate_is_one(self, env):
        _, shell = env
        context = StatsContext(shell)
        assert predicate_selectivity(None, context, 100) == 1.0

    def test_false_constant_zero(self, env):
        _, shell = env
        context = StatsContext(shell)
        sel = predicate_selectivity(ex.FALSE, context, 100)
        assert sel == pytest.approx(0.0, abs=1e-6)

    def test_selectivity_clamped(self, env):
        _, shell = env
        context = StatsContext(shell)
        var = ex.ColumnVar(1, "x", INTEGER)
        pred = ex.make_conjunction([
            ex.Comparison("=", var, ex.Constant(i)) for i in range(50)
        ])
        sel = predicate_selectivity(pred, context, 100)
        assert sel > 0  # floored, never exactly zero from stacking
