"""Parallel runtime scheduling layer: StepDag, WorkerPool, run_dag,
routing fast path, broadcast sharing and the parallel/serial knob."""

from __future__ import annotations

import threading

import pytest

from repro.algebra.properties import DistKind, Distribution
from repro.appliance.dms_runtime import DmsRuntime, route_batch_fast
from repro.appliance.scheduler import (
    PARALLEL_ENV_VAR,
    StepDag,
    WorkerPool,
    resolve_parallel,
    run_dag,
)
from repro.appliance.storage import (
    Appliance,
    CONTROL_NODE,
    NodeStorage,
    pdw_hash,
    row_bytes,
)
from repro.catalog.schema import Column, ON_CONTROL, TableDef
from repro.common.errors import ExecutionError
from repro.common.types import INTEGER
from repro.pdw.dms import DmsOperation
from repro.pdw.dsql import DsqlPlan, DsqlStep, StepKind


def _temp(name: str) -> TableDef:
    return TableDef(name, [Column("a", INTEGER)], ON_CONTROL, is_temp=True)


def _dms_step(index: int, sql: str, dest: str) -> DsqlStep:
    return DsqlStep(
        index=index, kind=StepKind.DMS, sql=sql,
        source_location=Distribution(DistKind.ON_CONTROL),
        destination_table=_temp(dest),
    )


def _return_step(index: int, sql: str) -> DsqlStep:
    return DsqlStep(
        index=index, kind=StepKind.RETURN, sql=sql,
        source_location=Distribution(DistKind.ON_CONTROL),
    )


def bushy_plan() -> DsqlPlan:
    """A hand-built TPC-H-Q5-style bushy shape: two independent leaf
    moves feeding a join move feeding the Return."""
    return DsqlPlan(
        steps=[
            _dms_step(0, "SELECT c_custkey FROM customer", "TEMP_ID_1"),
            _dms_step(1, "SELECT o_custkey FROM orders", "TEMP_ID_2"),
            _dms_step(2, "SELECT * FROM TEMP_ID_1, TEMP_ID_2 "
                         "WHERE c_custkey = o_custkey", "TEMP_ID_3"),
            _return_step(3, "SELECT * FROM TEMP_ID_3"),
        ],
        output_names=["c_custkey", "o_custkey"],
    )


class TestStepDag:
    def test_bushy_dependencies_and_waves(self):
        dag = StepDag(bushy_plan())
        assert dag.dependencies == {0: (), 1: (), 2: (0, 1), 3: (2,)}
        assert dag.dependents == {0: (2,), 1: (2,), 2: (3,), 3: ()}
        assert dag.waves() == [[0, 1], [2], [3]]
        assert dag.max_width == 2

    def test_linear_plan_is_a_chain(self):
        plan = DsqlPlan(
            steps=[
                _dms_step(0, "SELECT a FROM t", "TEMP_ID_1"),
                _dms_step(1, "SELECT a FROM TEMP_ID_1", "TEMP_ID_2"),
                _return_step(2, "SELECT a FROM TEMP_ID_2"),
            ],
            output_names=["a"],
        )
        dag = StepDag(plan)
        assert dag.waves() == [[0], [1], [2]]
        assert dag.max_width == 1

    def test_temp_name_prefix_is_not_a_match(self):
        # TEMP_ID_1 must not match inside TEMP_ID_10: build a plan whose
        # 10th temp is read by the Return while TEMP_ID_1 feeds only an
        # intermediate join.
        steps = [
            _dms_step(i, f"SELECT a FROM base_{i}", f"TEMP_ID_{i + 1}")
            for i in range(10)
        ]
        steps.append(_return_step(10, "SELECT a FROM TEMP_ID_10"))
        dag = StepDag(DsqlPlan(steps=steps, output_names=["a"]))
        # Return (index 10) reads TEMP_ID_10 = step 9's output, and
        # nothing else — in particular not TEMP_ID_1 (step 0).
        assert dag.dependencies[10] == (9,)

    def test_case_insensitive_temp_reference(self):
        plan = DsqlPlan(
            steps=[
                _dms_step(0, "SELECT a FROM t", "TEMP_ID_1"),
                _return_step(1, "select a from temp_id_1"),
            ],
            output_names=["a"],
        )
        assert StepDag(plan).dependencies[1] == (0,)

    def test_empty_plan(self):
        dag = StepDag(DsqlPlan(steps=[], output_names=[]))
        assert dag.waves() == []
        assert dag.max_width == 0


class TestRunDag:
    def test_executes_every_step_respecting_dependencies(self):
        dag = StepDag(bushy_plan())
        order: list = []
        lock = threading.Lock()

        def execute(index: int) -> int:
            with lock:
                order.append(index)
            return index * 10

        pool = WorkerPool(4, "test-dag")
        try:
            results = run_dag(dag, execute, pool)
        finally:
            pool.close()
        assert results == {0: 0, 1: 10, 2: 20, 3: 30}
        position = {index: i for i, index in enumerate(order)}
        for index, deps in dag.dependencies.items():
            for dep in deps:
                assert position[dep] < position[index], (
                    f"step {index} ran before its dependency {dep}: "
                    f"{order}")

    def test_failure_propagates_after_draining(self):
        dag = StepDag(bushy_plan())

        def execute(index: int) -> int:
            if index == 1:
                raise ExecutionError("node 1 exploded")
            return index

        pool = WorkerPool(4, "test-dag-fail")
        try:
            with pytest.raises(ExecutionError, match="node 1 exploded"):
                run_dag(dag, execute, pool)
        finally:
            pool.close()

    def test_empty_dag(self):
        pool = WorkerPool(2, "test-dag-empty")
        try:
            assert run_dag(StepDag(DsqlPlan(steps=[], output_names=[])),
                           lambda i: i, pool) == {}
        finally:
            pool.close()


class TestWorkerPool:
    def test_map_ordered_preserves_input_order(self):
        pool = WorkerPool(4, "test-pool")
        try:
            results = pool.map_ordered(lambda x: x * x, range(64))
        finally:
            pool.close()
        assert results == [x * x for x in range(64)]

    def test_map_ordered_single_item_runs_inline(self):
        pool = WorkerPool(4, "test-pool-inline")
        thread_names = []

        def record(x):
            thread_names.append(threading.current_thread().name)
            return x

        try:
            assert pool.map_ordered(record, [7]) == [7]
        finally:
            pool.close()
        assert thread_names == [threading.current_thread().name]

    def test_map_ordered_raises_first_failure_in_input_order(self):
        pool = WorkerPool(4, "test-pool-err")

        def flaky(x):
            if x % 2:
                raise ValueError(f"bad {x}")
            return x

        try:
            with pytest.raises(ValueError, match="bad 1"):
                pool.map_ordered(flaky, range(6))
        finally:
            pool.close()

    def test_single_worker_pool_runs_inline(self):
        pool = WorkerPool(1, "test-pool-serial")
        try:
            assert pool.map_ordered(lambda x: -x, [1, 2, 3]) == [-1, -2, -3]
            assert pool._executor is None  # never materialized a thread
        finally:
            pool.close()


class TestResolveParallel:
    def test_explicit_beats_everything(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV_VAR, "1")
        assert resolve_parallel(False, default=True) is False
        monkeypatch.setenv(PARALLEL_ENV_VAR, "0")
        assert resolve_parallel(True, default=False) is True

    def test_env_overrides_default(self, monkeypatch):
        for value in ("1", "true", "YES", " on "):
            monkeypatch.setenv(PARALLEL_ENV_VAR, value)
            assert resolve_parallel(None, default=False) is True
        for value in ("0", "false", "No", "off", ""):
            monkeypatch.setenv(PARALLEL_ENV_VAR, value)
            assert resolve_parallel(None, default=True) is False

    def test_default_applies_without_env(self, monkeypatch):
        monkeypatch.delenv(PARALLEL_ENV_VAR, raising=False)
        assert resolve_parallel(None, default=True) is True
        assert resolve_parallel(None, default=False) is False

    def test_garbage_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV_VAR, "maybe")
        with pytest.raises(ExecutionError, match="maybe"):
            resolve_parallel(None, default=False)


# -- routing fast path vs. reference ------------------------------------------


def _as_routing_map(deliveries):
    return {target: (batch, nbytes) for target, batch, nbytes in deliveries}


@pytest.fixture()
def routing_runtime():
    return DmsRuntime(Appliance(4))


ROWS = [(i, f"value-{i}", i * 1.5) for i in range(200)]
SIZES = [row_bytes(r) for r in ROWS]


class TestRoutingFastPath:
    @pytest.mark.parametrize("source_id", [0, 1, 3, CONTROL_NODE])
    @pytest.mark.parametrize("operation", [
        DmsOperation.SHUFFLE_MOVE,
        DmsOperation.BROADCAST_MOVE,
        DmsOperation.CONTROL_NODE_MOVE,
        DmsOperation.REPLICATED_BROADCAST,
        DmsOperation.PARTITION_MOVE,
        DmsOperation.REMOTE_COPY,
    ])
    def test_matches_reference(self, routing_runtime, operation, source_id):
        fast, fast_sent = route_batch_fast(
            operation, ROWS, SIZES, 0, 4, source_id)
        ref, ref_sent = routing_runtime._route_batch_reference(
            operation, ROWS, SIZES, 0, 4, source_id)
        assert _as_routing_map(fast) == _as_routing_map(ref)
        assert fast_sent == ref_sent

    @pytest.mark.parametrize("source_id", [0, 2])
    def test_trim_matches_reference(self, routing_runtime, source_id):
        fast, fast_sent = route_batch_fast(
            DmsOperation.TRIM_MOVE, ROWS, SIZES, 0, 4, source_id)
        ref, ref_sent = routing_runtime._route_batch_reference(
            DmsOperation.TRIM_MOVE, ROWS, SIZES, 0, 4, source_id)
        assert _as_routing_map(fast) == _as_routing_map(ref)
        assert fast_sent == ref_sent == 0
        for _, batch, _ in fast:
            for row in batch:
                assert pdw_hash(row[0]) % 4 == source_id

    def test_shuffle_deliveries_partition_the_batch(self):
        deliveries, sent = route_batch_fast(
            DmsOperation.SHUFFLE_MOVE, ROWS, SIZES, 0, 4, 1)
        routed = [row for _, batch, _ in deliveries for row in batch]
        assert sorted(routed) == sorted(ROWS)
        local = sum(nbytes for target, _, nbytes in deliveries
                    if target == 1)
        assert sent == sum(SIZES) - local

    def test_broadcast_shares_one_row_list(self):
        deliveries, sent = route_batch_fast(
            DmsOperation.BROADCAST_MOVE, ROWS, SIZES, 0, 4, 0)
        assert len(deliveries) == 4
        first = deliveries[0][1]
        for _, batch, nbytes in deliveries:
            assert batch is first          # no per-target copies
            assert nbytes == sum(SIZES)
        # source node 0 keeps its copy local: 3 remote targets
        assert sent == 3 * sum(SIZES)

    def test_empty_batch_routes_nothing(self):
        assert route_batch_fast(
            DmsOperation.SHUFFLE_MOVE, [], [], 0, 4, 0) == ([], 0)

    def test_shuffle_without_hash_column_raises(self):
        from repro.common.errors import DmsError
        with pytest.raises(DmsError):
            route_batch_fast(DmsOperation.SHUFFLE_MOVE, ROWS, SIZES,
                             None, 4, 0)


class TestAdoptCopyOnWrite:
    def test_adopt_aliases_then_insert_copies(self):
        node = NodeStorage(0)
        node.create("TEMP_ID_1")
        shared = [(1,), (2,)]
        node.adopt("TEMP_ID_1", shared)
        assert node.rows("TEMP_ID_1") is shared
        node.insert("TEMP_ID_1", [(3,)])
        # mutation materialized a private copy; the shared list is intact
        assert shared == [(1,), (2,)]
        assert node.rows("TEMP_ID_1") == [(1,), (2,), (3,)]
        assert node.rows("TEMP_ID_1") is not shared

    def test_adopt_into_nonempty_fragment_copies(self):
        node = NodeStorage(0)
        node.create("TEMP_ID_1")
        node.insert("TEMP_ID_1", [(0,)])
        shared = [(1,)]
        node.adopt("TEMP_ID_1", shared)
        assert node.rows("TEMP_ID_1") == [(0,), (1,)]
        assert shared == [(1,)]  # untouched

    def test_drop_clears_adoption(self):
        node = NodeStorage(0)
        node.create("TEMP_ID_1")
        shared = [(1,)]
        node.adopt("TEMP_ID_1", shared)
        node.drop("TEMP_ID_1")
        node.create("TEMP_ID_1")
        node.insert("TEMP_ID_1", [(2,)])
        assert shared == [(1,)]
        assert node.rows("TEMP_ID_1") == [(2,)]
