"""Calibration harness tests (§3.3.3)."""

import pytest

from repro.appliance.calibration import Calibrator
from repro.appliance.dms_runtime import GroundTruthConstants
from repro.pdw.dms import DmsOperation


@pytest.fixture(scope="module")
def result():
    return Calibrator(node_count=4).calibrate(
        sizes=((500, 1), (2000, 2)))


class TestFit:
    def test_reader_direct_recovered(self, result):
        truth = GroundTruthConstants()
        assert result.constants.lambda_reader_direct == pytest.approx(
            truth.reader_direct, rel=0.05)

    def test_reader_hash_recovered(self, result):
        truth = GroundTruthConstants()
        assert result.constants.lambda_reader_hash == pytest.approx(
            truth.reader_hash, rel=0.05)

    def test_writer_recovered(self, result):
        truth = GroundTruthConstants()
        assert result.constants.lambda_writer == pytest.approx(
            truth.writer, rel=0.05)

    def test_bulk_recovered(self, result):
        truth = GroundTruthConstants()
        assert result.constants.lambda_bulk_copy == pytest.approx(
            truth.bulk_copy, rel=0.05)

    def test_network_fit_close_but_conservative(self, result):
        # Shuffle keeps 1/N of rows locally and trim sends nothing, so the
        # fitted network λ lands slightly below the ground truth — the
        # model-vs-reality gap calibration exists to absorb.
        truth = GroundTruthConstants()
        assert 0.5 * truth.network < result.constants.lambda_network \
            <= truth.network * 1.01

    def test_perturbed_truth_tracked(self):
        truth = GroundTruthConstants(writer=5e-8)
        result = Calibrator(node_count=4, truth=truth).calibrate(
            sizes=((1000, 1),))
        assert result.constants.lambda_writer == pytest.approx(
            5e-8, rel=0.05)


class TestSamples:
    def test_all_operations_sampled(self, result):
        operations = {s.operation for s in result.samples}
        assert operations == set(DmsOperation)

    def test_lambda_spread_reported(self, result):
        spread = result.implied_lambda_spread()
        assert "reader" in spread and "writer" in spread
        low, high = spread["writer"]
        assert low <= high

    def test_single_operation_run(self):
        sample = Calibrator(node_count=4).run_one(
            DmsOperation.SHUFFLE_MOVE, 1000, 1)
        assert sample.rows == 1000
        assert sample.model_bytes[0] > 0
        assert sample.measured_times[0] > 0
