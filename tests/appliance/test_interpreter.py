"""Node-local interpreter tests: every operator, SQL semantics edges."""

import pytest

from repro.appliance.interpreter import InterpreterStats, PlanInterpreter
from repro.catalog.schema import Catalog, Column, TableDef, REPLICATED
from repro.common.errors import ExecutionError
from repro.common.types import INTEGER, varchar
from repro.optimizer.binder import bind_query


@pytest.fixture()
def catalog():
    return Catalog([
        TableDef("t", [Column("a", INTEGER), Column("b", INTEGER),
                       Column("s", varchar(8))], REPLICATED),
        TableDef("u", [Column("x", INTEGER), Column("y", INTEGER)],
                 REPLICATED),
    ])


@pytest.fixture()
def tables():
    return {
        "t": [(1, 10, "one"), (2, 20, "two"), (3, 30, "three"),
              (4, None, "four")],
        "u": [(1, 100), (1, 101), (3, 300), (9, 900)],
    }


def run(catalog, tables, sql):
    query = bind_query(catalog, sql)
    return PlanInterpreter(tables).run_query(query)


class TestScanFilterProject:
    def test_scan_all(self, catalog, tables):
        assert len(run(catalog, tables, "SELECT a FROM t")) == 4

    def test_filter(self, catalog, tables):
        rows = run(catalog, tables, "SELECT a FROM t WHERE a > 2")
        assert sorted(rows) == [(3,), (4,)]

    def test_filter_null_is_not_true(self, catalog, tables):
        rows = run(catalog, tables, "SELECT a FROM t WHERE b > 0")
        assert sorted(rows) == [(1,), (2,), (3,)]

    def test_projection_expression(self, catalog, tables):
        rows = run(catalog, tables, "SELECT a * 10 FROM t WHERE a = 2")
        assert rows == [(20,)]

    def test_missing_table_raises(self, catalog):
        with pytest.raises(ExecutionError):
            run(catalog, {}, "SELECT a FROM t")

    def test_like_filter(self, catalog, tables):
        rows = run(catalog, tables, "SELECT a FROM t WHERE s LIKE 't%'")
        assert sorted(rows) == [(2,), (3,)]


class TestJoins:
    def test_inner_join(self, catalog, tables):
        rows = run(catalog, tables,
                   "SELECT a, y FROM t, u WHERE a = x")
        assert sorted(rows) == [(1, 100), (1, 101), (3, 300)]

    def test_left_join_pads_nulls(self, catalog, tables):
        rows = run(catalog, tables,
                   "SELECT a, y FROM t LEFT JOIN u ON a = x ORDER BY a")
        assert (2, None) in rows
        assert (4, None) in rows

    def test_cross_join_count(self, catalog, tables):
        rows = run(catalog, tables, "SELECT a FROM t CROSS JOIN u")
        assert len(rows) == 16

    def test_semi_join_via_in(self, catalog, tables):
        rows = run(catalog, tables,
                   "SELECT a FROM t WHERE a IN (SELECT x FROM u)")
        assert sorted(rows) == [(1,), (3,)]

    def test_semi_join_no_duplicates(self, catalog, tables):
        # x=1 appears twice in u; the semi join must not duplicate a=1.
        rows = run(catalog, tables,
                   "SELECT a FROM t WHERE a IN (SELECT x FROM u)")
        assert len(rows) == 2

    def test_anti_join_via_not_in(self, catalog, tables):
        rows = run(catalog, tables,
                   "SELECT a FROM t WHERE a NOT IN (SELECT x FROM u)")
        assert sorted(rows) == [(2,), (4,)]

    def test_non_equi_join_falls_back_to_loops(self, catalog, tables):
        rows = run(catalog, tables,
                   "SELECT a, x FROM t, u WHERE a < x")
        assert rows
        assert all(a < x for a, x in rows)

    def test_null_keys_never_match(self, catalog, tables):
        rows = run(catalog, tables,
                   "SELECT a FROM t, u WHERE b = y")
        assert rows == []


class TestGroupBy:
    def test_group_counts(self, catalog, tables):
        rows = run(catalog, tables,
                   "SELECT x, COUNT(*) FROM u GROUP BY x ORDER BY x")
        assert rows == [(1, 2), (3, 1), (9, 1)]

    def test_sum_skips_nulls(self, catalog, tables):
        rows = run(catalog, tables, "SELECT SUM(b) FROM t")
        assert rows == [(60,)]

    def test_count_column_skips_nulls(self, catalog, tables):
        assert run(catalog, tables, "SELECT COUNT(b) FROM t") == [(3,)]

    def test_count_star_counts_all(self, catalog, tables):
        assert run(catalog, tables, "SELECT COUNT(*) FROM t") == [(4,)]

    def test_scalar_agg_on_empty_input(self, catalog, tables):
        rows = run(catalog, tables,
                   "SELECT COUNT(*), SUM(a) FROM t WHERE a > 100")
        assert rows == [(0, None)]

    def test_group_by_on_empty_input_no_rows(self, catalog, tables):
        rows = run(catalog, tables,
                   "SELECT a, COUNT(*) FROM t WHERE a > 100 GROUP BY a")
        assert rows == []

    def test_min_max(self, catalog, tables):
        assert run(catalog, tables,
                   "SELECT MIN(a), MAX(a) FROM t") == [(1, 4)]

    def test_avg(self, catalog, tables):
        rows = run(catalog, tables, "SELECT AVG(b) FROM t")
        assert rows == [(pytest.approx(20.0),)]

    def test_count_distinct(self, catalog, tables):
        assert run(catalog, tables,
                   "SELECT COUNT(DISTINCT x) FROM u") == [(3,)]

    def test_distinct(self, catalog, tables):
        rows = run(catalog, tables, "SELECT DISTINCT x FROM u")
        assert sorted(rows) == [(1,), (3,), (9,)]

    def test_having(self, catalog, tables):
        rows = run(catalog, tables,
                   "SELECT x FROM u GROUP BY x HAVING COUNT(*) > 1")
        assert rows == [(1,)]

    def test_null_groups_together(self, catalog):
        tables = {"t": [(1, None, "a"), (2, None, "b"), (3, 5, "c")],
                  "u": []}
        rows = run(catalog, tables,
                   "SELECT b, COUNT(*) FROM t GROUP BY b")
        assert sorted(rows, key=str) == sorted([(None, 2), (5, 1)], key=str)


class TestOrderLimit:
    def test_order_desc(self, catalog, tables):
        rows = run(catalog, tables, "SELECT a FROM t ORDER BY a DESC")
        assert rows == [(4,), (3,), (2,), (1,)]

    def test_limit(self, catalog, tables):
        rows = run(catalog, tables, "SELECT a FROM t ORDER BY a LIMIT 2")
        assert rows == [(1,), (2,)]

    def test_order_by_multiple(self, catalog, tables):
        rows = run(catalog, tables,
                   "SELECT x, y FROM u ORDER BY x ASC, y DESC")
        assert rows == [(1, 101), (1, 100), (3, 300), (9, 900)]


class TestStats:
    def test_rows_scanned_counted(self, catalog, tables):
        query = bind_query(catalog, "SELECT a FROM t")
        stats = InterpreterStats()
        PlanInterpreter(tables, stats).run_query(query)
        assert stats.rows_scanned == 4
