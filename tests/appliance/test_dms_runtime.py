"""DMS runtime tests: each of the 7 operations moves rows correctly and
accounts bytes."""

import pytest

from repro.algebra.expressions import ColumnVar
from repro.algebra.properties import (
    DistKind,
    Distribution,
    ON_CONTROL_DIST,
    REPLICATED_DIST,
    hashed_on,
)
from repro.appliance.dms_runtime import DmsRuntime, GroundTruthConstants
from repro.appliance.storage import Appliance, node_for_row
from repro.catalog.schema import (
    Column,
    ON_CONTROL,
    REPLICATED,
    TableDef,
    hash_distributed,
)
from repro.common.types import INTEGER
from repro.pdw.dms import DataMovement, DmsOperation
from repro.pdw.dsql import DsqlStep, StepKind

KVAR = ColumnVar(1, "k", INTEGER)
ROWS = [(i, i * 10) for i in range(60)]


def appliance_with(distribution, rows=ROWS, nodes=4):
    appliance = Appliance(nodes)
    appliance.create_table(TableDef(
        "src", [Column("k", INTEGER), Column("v", INTEGER)], distribution))
    appliance.load_rows("src", rows)
    return appliance


def step_for(operation, source, target, hash_column=None):
    movement = DataMovement(operation, source, target,
                            (KVAR,) if hash_column else ())
    return DsqlStep(
        index=0, kind=StepKind.DMS,
        sql="SELECT k, v FROM src",
        source_location=source,
        movement=movement,
        destination_table=TableDef(
            "TEMP_ID_1", [Column("k", INTEGER), Column("v", INTEGER)],
            hash_distributed("k") if target.kind is DistKind.HASHED
            else (REPLICATED if target.kind is DistKind.REPLICATED
                  else ON_CONTROL),
            is_temp=True),
        hash_column=hash_column,
    )


class TestShuffle:
    def test_rows_land_on_hash_owner(self):
        appliance = appliance_with(hash_distributed("v"))
        runtime = DmsRuntime(appliance)
        runtime.execute_movement(step_for(
            DmsOperation.SHUFFLE_MOVE, hashed_on(2), hashed_on(1), "k"))
        for node in appliance.compute:
            for row in node.rows("TEMP_ID_1"):
                assert node_for_row(row, [0], 4) == node.node_id

    def test_no_rows_lost(self):
        appliance = appliance_with(hash_distributed("v"))
        DmsRuntime(appliance).execute_movement(step_for(
            DmsOperation.SHUFFLE_MOVE, hashed_on(2), hashed_on(1), "k"))
        total = sum(len(n.rows("TEMP_ID_1")) for n in appliance.compute)
        assert total == len(ROWS)

    def test_bytes_accounted(self):
        appliance = appliance_with(hash_distributed("v"))
        stats = DmsRuntime(appliance).execute_movement(step_for(
            DmsOperation.SHUFFLE_MOVE, hashed_on(2), hashed_on(1), "k"))
        assert sum(stats.reader_bytes.values()) == len(ROWS) * 8
        assert stats.rows_moved == len(ROWS)
        assert stats.elapsed_seconds > 0


class TestBroadcast:
    def test_every_node_gets_everything(self):
        appliance = appliance_with(hash_distributed("k"))
        DmsRuntime(appliance).execute_movement(step_for(
            DmsOperation.BROADCAST_MOVE, hashed_on(1), REPLICATED_DIST))
        for node in appliance.compute:
            assert sorted(node.rows("TEMP_ID_1")) == sorted(ROWS)

    def test_network_bytes_exclude_local_copy(self):
        appliance = appliance_with(hash_distributed("k"))
        stats = DmsRuntime(appliance).execute_movement(step_for(
            DmsOperation.BROADCAST_MOVE, hashed_on(1), REPLICATED_DIST))
        sent = sum(stats.network_bytes.values())
        # Each row goes to N-1 remote nodes.
        assert sent == len(ROWS) * 8 * 3


class TestPartitionMove:
    def test_all_rows_reach_control(self):
        appliance = appliance_with(hash_distributed("k"))
        DmsRuntime(appliance).execute_movement(step_for(
            DmsOperation.PARTITION_MOVE, hashed_on(1), ON_CONTROL_DIST))
        assert sorted(appliance.control.rows("TEMP_ID_1")) == sorted(ROWS)


class TestTrimMove:
    def test_replicated_trimmed_to_hash_shares(self):
        appliance = appliance_with(REPLICATED)
        DmsRuntime(appliance).execute_movement(step_for(
            DmsOperation.TRIM_MOVE, REPLICATED_DIST, hashed_on(1), "k"))
        total = []
        for node in appliance.compute:
            share = node.rows("TEMP_ID_1")
            for row in share:
                assert node_for_row(row, [0], 4) == node.node_id
            total.extend(share)
        assert sorted(total) == sorted(ROWS)

    def test_trim_has_no_network_bytes(self):
        appliance = appliance_with(REPLICATED)
        stats = DmsRuntime(appliance).execute_movement(step_for(
            DmsOperation.TRIM_MOVE, REPLICATED_DIST, hashed_on(1), "k"))
        assert sum(stats.network_bytes.values()) == 0


class TestRemoteCopyAndReplicatedBroadcast:
    def test_remote_copy_reads_one_replica(self):
        appliance = appliance_with(REPLICATED)
        stats = DmsRuntime(appliance).execute_movement(step_for(
            DmsOperation.REMOTE_COPY, REPLICATED_DIST, ON_CONTROL_DIST))
        assert sorted(appliance.control.rows("TEMP_ID_1")) == sorted(ROWS)
        assert stats.rows_moved == len(ROWS)  # not N copies

    def test_replicated_broadcast_from_single_node(self):
        appliance = appliance_with(REPLICATED)
        DmsRuntime(appliance).execute_movement(step_for(
            DmsOperation.REPLICATED_BROADCAST,
            Distribution(DistKind.SINGLE_NODE), REPLICATED_DIST))
        for node in appliance.compute:
            assert sorted(node.rows("TEMP_ID_1")) == sorted(ROWS)


class TestControlNodeMove:
    def test_control_table_replicated_to_computes(self):
        appliance = Appliance(4)
        appliance.create_table(TableDef(
            "src", [Column("k", INTEGER), Column("v", INTEGER)],
            ON_CONTROL))
        appliance.load_rows("src", ROWS)
        DmsRuntime(appliance).execute_movement(step_for(
            DmsOperation.CONTROL_NODE_MOVE, ON_CONTROL_DIST,
            REPLICATED_DIST))
        for node in appliance.compute:
            assert sorted(node.rows("TEMP_ID_1")) == sorted(ROWS)


class TestTiming:
    def test_max_composition(self):
        appliance = appliance_with(hash_distributed("k"))
        truth = GroundTruthConstants(relational_per_row=0.0)
        stats = DmsRuntime(appliance, truth).execute_movement(step_for(
            DmsOperation.SHUFFLE_MOVE, hashed_on(1), hashed_on(2), "k"))
        reader, network, writer, bulk = stats.component_times(truth, True)
        assert stats.elapsed_seconds == pytest.approx(
            max(max(reader, network), max(writer, bulk)))

    def test_source_sql_filter_applies(self):
        appliance = appliance_with(hash_distributed("k"))
        step = step_for(DmsOperation.PARTITION_MOVE, hashed_on(1),
                        ON_CONTROL_DIST)
        step.sql = "SELECT k, v FROM src WHERE k < 10"
        stats = DmsRuntime(appliance).execute_movement(step)
        assert stats.rows_moved == 10
