"""Concurrent hammers for the caches the parallel runtime shares across
node/step worker threads: the DMS parse/bind cache, the appliance's
single-system image, the expression-compiler identity memo, and the
telemetry/metrics counters."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.algebra import expressions as ex
from repro.algebra.compiler import clear_cache, compile_expr
from repro.appliance.dms_runtime import DmsRuntime
from repro.appliance.storage import Appliance
from repro.catalog.schema import Column, TableDef, hash_distributed
from repro.common.types import INTEGER
from repro.obs.metrics import MetricsRegistry
from repro.telemetry import Tracer

THREADS = 8
ROUNDS = 25


def _hammer(work, threads: int = THREADS) -> None:
    """Run ``work(thread_index)`` on every thread, released together so
    the racy window actually overlaps."""
    barrier = threading.Barrier(threads)
    errors: list = []

    def runner(index: int) -> None:
        barrier.wait()
        try:
            work(index)
        except BaseException as error:  # noqa: BLE001 - re-raised below
            errors.append(error)

    with ThreadPoolExecutor(max_workers=threads) as executor:
        list(executor.map(runner, range(threads)))
    if errors:
        raise errors[0]


class TestBindCacheThreadSafety:
    def test_concurrent_bind_hits_like_serial(self, mini_appliance):
        tracer = Tracer()
        runtime = DmsRuntime(mini_appliance, tracer=tracer, parallel=True)
        sqls = [
            "SELECT a FROM t WHERE a < 10",
            "SELECT b FROM t WHERE b = 3",
            "SELECT k, label FROM dim",
            "SELECT a, s FROM t WHERE a > 50",
        ]
        expected = {
            sql: runtime._bind_step(sql).output_names for sql in sqls
        }
        runtime._step_cache.clear()
        runtime._parse_cache.clear()
        tracer.reset()

        def work(index: int) -> None:
            for _ in range(ROUNDS):
                for sql in sqls:
                    query = runtime._bind_step(sql)
                    assert query.output_names == expected[sql]

        _hammer(work)
        # The lock is held across bind, so exactly one miss per distinct
        # SQL — identical hit/miss accounting to the serial backend.
        total = THREADS * ROUNDS * len(sqls)
        assert tracer.counter("exec.compile_cache_miss") == len(sqls)
        assert tracer.counter("exec.compile_cache_hit") == total - len(sqls)

    def test_concurrent_bind_with_eviction(self, mini_appliance):
        runtime = DmsRuntime(mini_appliance, parallel=True)
        sql = "SELECT a FROM t WHERE a < 42"

        def work(index: int) -> None:
            for round_no in range(ROUNDS):
                query = runtime._bind_step(sql)
                assert query.output_names == ["a"]
                if index == 0 and round_no % 5 == 0:
                    runtime._evict_cached("t")

        _hammer(work)


class TestApplianceImageThreadSafety:
    @staticmethod
    def _make_appliance() -> Appliance:
        appliance = Appliance(4)
        appliance.create_table(TableDef(
            "t", [Column("a", INTEGER)], hash_distributed("a")))
        appliance.load_rows("t", [(i,) for i in range(100)])
        return appliance

    def test_concurrent_image_reads_agree(self):
        appliance = self._make_appliance()
        images: list = []
        lock = threading.Lock()

        def work(index: int) -> None:
            for _ in range(ROUNDS):
                image = appliance.single_system_image()
                with lock:
                    images.append(image)

        _hammer(work)
        reference = images[0]
        assert all(image == reference for image in images)
        assert sorted(reference["t"]) == [(i,) for i in range(100)]

    def test_image_rebuilds_after_concurrent_loads(self):
        appliance = self._make_appliance()

        def work(index: int) -> None:
            for round_no in range(ROUNDS):
                if index == 0:
                    appliance.load_rows(
                        "t", [(1000 + round_no,)])
                else:
                    image = appliance.single_system_image()
                    assert len(image["t"]) >= 100
        _hammer(work)
        final = appliance.single_system_image()
        assert len(final["t"]) == 100 + ROUNDS

    def test_concurrent_temp_ddl(self):
        appliance = self._make_appliance()

        def work(index: int) -> None:
            name = f"TEMP_ID_{index + 1}"
            table = TableDef(name, [Column("a", INTEGER)],
                             hash_distributed("a"), is_temp=True)
            for _ in range(ROUNDS):
                appliance.create_temp_table(table)
                appliance.drop_table(name)

        _hammer(work)
        assert not [table for table in appliance.catalog.tables()
                    if table.is_temp]


class TestCompilerMemoThreadSafety:
    def test_concurrent_identity_memo(self):
        clear_cache()
        column = ex.ColumnVar(1, "a", INTEGER)
        shared = ex.Arithmetic("+", column, ex.Constant(1, INTEGER))
        env = {1: 41}
        compiled: list = []
        lock = threading.Lock()

        def work(index: int) -> None:
            # mix of one shared tree (memo hits) and private trees
            # (memo inserts) racing on the same dict
            private = ex.Arithmetic(
                "*", column, ex.Constant(index + 1, INTEGER))
            for _ in range(ROUNDS):
                fn = compile_expr(shared)
                assert fn(env) == 42
                assert compile_expr(private)(env) == 41 * (index + 1)
                with lock:
                    compiled.append(fn)

        _hammer(work)
        # identity memo: every caller got one compiled closure object
        assert len(set(map(id, compiled))) == 1
        clear_cache()


class TestTelemetryThreadSafety:
    def test_tracer_counter_increments_are_atomic(self):
        tracer = Tracer()

        def work(index: int) -> None:
            for _ in range(500):
                tracer.count("hammer.total")
                tracer.count("hammer.bytes", 3)

        _hammer(work)
        assert tracer.counter("hammer.total") == THREADS * 500
        assert tracer.counter("hammer.bytes") == THREADS * 500 * 3

    def test_metrics_counters_and_histograms_are_atomic(self):
        registry = MetricsRegistry()

        def work(index: int) -> None:
            counter = registry.counter(
                "hammer_rows_total", "rows", labelnames=("node",))
            histogram = registry.histogram("hammer_seconds", "time")
            gauge = registry.gauge("hammer_level", "level")
            for _ in range(200):
                counter.labels(node=str(index % 2)).inc()
                histogram.observe(0.25)
                gauge.inc()

        _hammer(work)
        counter = registry.get("hammer_rows_total")
        total = sum(child.value for _, child in counter.series())
        assert total == THREADS * 200
        histogram = registry.get("hammer_seconds").labels()
        assert histogram.count == THREADS * 200
        assert histogram.total == THREADS * 200 * 0.25
        assert registry.get("hammer_level").labels().value == THREADS * 200

    def test_concurrent_registration_returns_one_family(self):
        registry = MetricsRegistry()
        seen: list = []
        lock = threading.Lock()

        def work(index: int) -> None:
            for _ in range(ROUNDS):
                metric = registry.counter(
                    "hammer_shared_total", "shared",
                    labelnames=("node",))
                with lock:
                    seen.append(metric)

        _hammer(work)
        assert len(set(map(id, seen))) == 1
