"""Appliance storage tests: placement, hashing, statistics pipeline."""

import pytest

from repro.appliance.storage import (
    Appliance,
    CONTROL_NODE,
    node_for_row,
    pdw_hash,
    row_bytes,
    value_bytes,
)
from repro.catalog.schema import (
    Column,
    ON_CONTROL,
    REPLICATED,
    TableDef,
    hash_distributed,
)
from repro.common.errors import ExecutionError
from repro.common.types import INTEGER, varchar


def make_appliance(nodes=4):
    appliance = Appliance(nodes)
    appliance.create_table(TableDef(
        "h", [Column("k", INTEGER), Column("v", varchar(8))],
        hash_distributed("k")))
    appliance.create_table(TableDef(
        "r", [Column("k", INTEGER)], REPLICATED))
    appliance.create_table(TableDef(
        "c", [Column("k", INTEGER)], ON_CONTROL))
    return appliance


class TestHashing:
    def test_deterministic(self):
        assert pdw_hash(42) == pdw_hash(42)
        assert pdw_hash("abc") == pdw_hash("abc")

    def test_none_hashes_to_zero_bucket(self):
        assert pdw_hash(None) == 0

    def test_spread(self):
        buckets = {pdw_hash(i) % 8 for i in range(1000)}
        assert len(buckets) == 8

    def test_node_for_row_stable(self):
        row = (5, "x")
        assert node_for_row(row, [0], 4) == node_for_row(row, [0], 4)

    def test_multi_column_hash(self):
        assert node_for_row((1, 2), [0, 1], 4) in range(4)


class TestPlacement:
    def test_hash_rows_partitioned_disjoint(self):
        appliance = make_appliance()
        appliance.load_rows("h", [(i, f"v{i}") for i in range(200)])
        per_node = [len(n.rows("h")) for n in appliance.compute]
        assert sum(per_node) == 200
        assert all(count > 0 for count in per_node)

    def test_hash_row_on_owning_node(self):
        appliance = make_appliance()
        appliance.load_rows("h", [(7, "x")])
        owner = node_for_row((7, "x"), [0], 4)
        assert appliance.compute[owner].rows("h") == [(7, "x")]

    def test_replicated_on_every_node(self):
        appliance = make_appliance()
        appliance.load_rows("r", [(1,), (2,)])
        for node in appliance.compute:
            assert node.rows("r") == [(1,), (2,)]

    def test_control_table_on_control_only(self):
        appliance = make_appliance()
        appliance.load_rows("c", [(9,)])
        assert appliance.control.rows("c") == [(9,)]
        for node in appliance.compute:
            with pytest.raises(ExecutionError):
                node.rows("c")

    def test_row_count_updated(self):
        appliance = make_appliance()
        appliance.load_rows("h", [(i, "") for i in range(10)])
        assert appliance.catalog.table("h").row_count == 10

    def test_single_system_image(self):
        appliance = make_appliance()
        rows = [(i, f"v{i}") for i in range(50)]
        appliance.load_rows("h", rows)
        assert sorted(appliance.table_rows_everywhere("h")) == rows

    def test_replicated_image_not_duplicated(self):
        appliance = make_appliance()
        appliance.load_rows("r", [(1,), (2,)])
        assert sorted(appliance.table_rows_everywhere("r")) == [(1,), (2,)]


class TestTempTables:
    def test_temp_created_everywhere(self):
        appliance = make_appliance()
        temp = TableDef("TEMP_ID_1", [Column("x", INTEGER)],
                        hash_distributed("x"), is_temp=True)
        appliance.create_temp_table(temp)
        for node in appliance.compute:
            assert node.rows("TEMP_ID_1") == []
        assert appliance.control.rows("TEMP_ID_1") == []

    def test_drop_temp_tables(self):
        appliance = make_appliance()
        temp = TableDef("TEMP_ID_1", [Column("x", INTEGER)],
                        hash_distributed("x"), is_temp=True)
        appliance.create_temp_table(temp)
        appliance.drop_temp_tables()
        assert not appliance.catalog.has_table("TEMP_ID_1")

    def test_drop_keeps_base_tables(self):
        appliance = make_appliance()
        appliance.drop_temp_tables()
        assert appliance.catalog.has_table("h")


class TestStatisticsPipeline:
    def test_shell_has_global_counts(self):
        appliance = make_appliance()
        appliance.load_rows("h", [(i, f"v{i}") for i in range(120)])
        shell = appliance.compute_shell_database()
        stats = shell.column_stats("h", "k")
        assert stats.row_count == 120
        assert stats.distinct_count == 120

    def test_replicated_stats_not_multiplied(self):
        appliance = make_appliance()
        appliance.load_rows("r", [(i,) for i in range(30)])
        shell = appliance.compute_shell_database()
        assert shell.column_stats("r", "k").row_count == 30

    def test_histogram_merged_across_nodes(self):
        appliance = make_appliance()
        appliance.load_rows("h", [(i, "") for i in range(1000)])
        shell = appliance.compute_shell_database()
        hist = shell.column_stats("h", "k").histogram
        assert hist.estimate_le(499) == pytest.approx(500, rel=0.2)


class TestByteAccounting:
    def test_value_bytes(self):
        assert value_bytes(1) == 4
        assert value_bytes(2**40) == 8
        assert value_bytes("abcd") == 4
        assert value_bytes(None) == 1
        assert value_bytes(1.5) == 8

    def test_row_bytes_sums(self):
        assert row_bytes((1, "ab")) == 6

    def test_invalid_node_count(self):
        with pytest.raises(ExecutionError):
            Appliance(0)
