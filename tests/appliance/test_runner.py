"""DSQL runner tests: step sequencing, control-node merge, temp
lifecycle."""

import pytest

from repro.appliance.runner import DsqlRunner, QueryResult, run_reference
from repro.appliance.dms_runtime import StepExecutionStats
from repro.common.errors import ExecutionError
from repro.pdw.dsql import DsqlPlan, DsqlStep, StepKind


class TestFinalize:
    def _runner(self, mini_appliance):
        return DsqlRunner(mini_appliance)

    def _plan(self, order_by=(), limit=None):
        return DsqlPlan(steps=[], output_names=["a", "b"],
                        order_by=list(order_by), limit=limit)

    def test_order_by_single_column(self, mini_appliance):
        runner = self._runner(mini_appliance)
        rows = runner._finalize(self._plan(order_by=[("a", False)]),
                                ["a", "b"], [(1, "x"), (3, "y"), (2, "z")])
        assert [r[0] for r in rows] == [3, 2, 1]

    def test_order_by_two_columns(self, mini_appliance):
        runner = self._runner(mini_appliance)
        rows = runner._finalize(
            self._plan(order_by=[("a", True), ("b", False)]),
            ["a", "b"],
            [(1, "x"), (1, "z"), (0, "q")])
        assert rows == [(0, "q"), (1, "z"), (1, "x")]

    def test_limit_applied_after_sort(self, mini_appliance):
        runner = self._runner(mini_appliance)
        rows = runner._finalize(
            self._plan(order_by=[("a", False)], limit=1),
            ["a", "b"], [(1, "x"), (9, "y")])
        assert rows == [(9, "y")]

    def test_nulls_sort_first(self, mini_appliance):
        runner = self._runner(mini_appliance)
        rows = runner._finalize(self._plan(order_by=[("a", True)]),
                                ["a", "b"], [(2, "x"), (None, "n")])
        assert rows[0][0] is None

    def test_missing_order_column_raises(self, mini_appliance):
        runner = self._runner(mini_appliance)
        with pytest.raises(ExecutionError):
            runner._finalize(self._plan(order_by=[("zz", True)]),
                             ["a", "b"], [(1, "x")])


class TestExecutionLifecycle:
    def _compile(self, mini_appliance, sql):
        from repro.pdw.engine import PdwEngine
        shell = mini_appliance.compute_shell_database()
        return PdwEngine(shell).compile(sql)

    def test_keep_temps_flag(self, mini_appliance):
        # x.b = y.a misaligns with t's hash on a, forcing a movement.
        compiled = self._compile(
            mini_appliance,
            "SELECT x.s FROM t x, t y WHERE x.b = y.a")
        assert compiled.dsql_plan.movement_steps
        runner = DsqlRunner(mini_appliance)
        runner.run(compiled.dsql_plan, keep_temps=True)
        temps = [t for t in mini_appliance.catalog.tables() if t.is_temp]
        assert temps
        mini_appliance.drop_temp_tables()

    def test_temps_dropped_by_default(self, mini_appliance):
        compiled = self._compile(
            mini_appliance,
            "SELECT s FROM t, dim WHERE b = k")
        DsqlRunner(mini_appliance).run(compiled.dsql_plan)
        assert not any(t.is_temp for t in mini_appliance.catalog.tables())

    def test_result_columns_named(self, mini_appliance):
        compiled = self._compile(mini_appliance,
                                 "SELECT a AS alpha, b beta FROM t")
        result = DsqlRunner(mini_appliance).run(compiled.dsql_plan)
        assert result.columns == ["alpha", "beta"]

    def test_reference_matches_direct(self, mini_appliance):
        sql = "SELECT a, s FROM t WHERE b = 2 ORDER BY a"
        compiled = self._compile(mini_appliance, sql)
        result = DsqlRunner(mini_appliance).run(compiled.dsql_plan)
        reference = run_reference(mini_appliance, sql)
        assert result.rows == reference.rows


class TestQueryResult:
    def test_dms_seconds_excludes_relational(self):
        dms = StepExecutionStats(0, None)
        dms.operation = object()  # truthy marker
        dms.movement_seconds = 1.0
        dms.relational_seconds = 5.0
        dms.elapsed_seconds = 6.0
        result = QueryResult(["a"], [], 6.0, [dms])
        assert result.dms_seconds == 1.0
        assert result.relational_seconds == 5.0

    def test_sorted_rows_canonical(self):
        result = QueryResult(["a"], [(3,), (1,), (None,)], 0.0)
        assert result.sorted_rows() == [(None,), (1,), (3,)]
