"""Compiled-backend integration tests.

* both executor backends produce identical multisets on the full TPC-H
  workload (the compiled backend's correctness contract);
* the per-step plan cache parses/binds each DSQL step's SQL exactly once
  per execution (telemetry counters) and survives temp-table name reuse
  across queries (eviction regression);
* the DISTINCT-aggregation dedup and the appliance's cached
  single-system image behave.
"""

import pytest

from repro.algebra import expressions as ex
from repro.appliance.interpreter import _aggregate, _distinct
from repro.appliance.runner import DsqlRunner, run_reference
from repro.appliance.storage import Appliance
from repro.catalog.schema import Column, TableDef, hash_distributed
from repro.common.types import INTEGER
from repro.pdw.dsql import StepKind
from repro.telemetry import Tracer
from repro.workloads.tpch_queries import TPCH_QUERIES, query_names

from tests.conftest import canonical


@pytest.mark.parametrize("name", query_names())
def test_backends_agree_on_tpch_suite(name, tpch, tpch_engine):
    """Compiled and interpreted execution: identical result multisets."""
    appliance, _ = tpch
    plan = tpch_engine.compile(TPCH_QUERIES[name]).dsql_plan
    compiled = DsqlRunner(appliance, compiled=True).run(plan)
    interpreted = DsqlRunner(appliance, compiled=False).run(plan)
    assert compiled.columns == interpreted.columns
    assert compiled.sorted_rows() == interpreted.sorted_rows()


def test_count_distinct_agrees_across_backends(tpch):
    appliance, _ = tpch
    sql = ("SELECT COUNT(DISTINCT o_custkey) AS n, "
           "COUNT(DISTINCT o_orderpriority) AS p FROM orders")
    assert (run_reference(appliance, sql, compiled=True).rows
            == run_reference(appliance, sql, compiled=False).rows)


class TestStepCache:
    def test_each_step_bound_once_per_execution(self, tpch, tpch_engine):
        appliance, _ = tpch
        # Misaligned join → at least one DMS step before the Return step.
        plan = tpch_engine.compile(
            "SELECT c.c_custkey, o.o_custkey FROM customer c, orders o "
            "WHERE c.c_custkey = o.o_custkey").dsql_plan
        assert plan.movement_steps
        tracer = Tracer()
        runner = DsqlRunner(appliance, tracer=tracer)
        runner.run(plan)
        misses = tracer.counter("exec.compile_cache_miss")
        hits = tracer.counter("exec.compile_cache_hit")
        # Every step's SQL parsed + bound exactly once...
        assert misses == len(plan.steps)
        # ...and re-run from cache on the remaining source nodes.
        assert hits > 0

    def test_base_table_steps_cached_across_runs(self, tpch, tpch_engine):
        appliance, _ = tpch
        plan = tpch_engine.compile(
            "SELECT c.c_custkey, o.o_custkey FROM customer c, orders o "
            "WHERE c.c_custkey = o.o_custkey").dsql_plan
        tracer = Tracer()
        runner = DsqlRunner(appliance, tracer=tracer)
        runner.run(plan)
        first_misses = tracer.counter("exec.compile_cache_miss")
        runner.run(plan)
        # Steps reading only base tables stay cached; steps reading a
        # re-created TEMP_ID_k are re-bound (schema may have changed).
        temp_steps = sum(1 for step in plan.steps
                         if "TEMP_ID_" in step.sql)
        assert (tracer.counter("exec.compile_cache_miss")
                == first_misses + temp_steps)
        assert temp_steps < len(plan.steps)

    def test_temp_name_reuse_across_queries_is_evicted(self, tpch,
                                                       tpch_engine):
        """Two queries whose plans both create TEMP_ID_1 with different
        schemas must not cross-contaminate through the step cache."""
        appliance, _ = tpch
        first = ("SELECT c.c_custkey, o.o_custkey FROM customer c, "
                 "orders o WHERE c.c_custkey = o.o_custkey "
                 "AND c.c_acctbal < 0")
        second = ("SELECT s_name FROM supplier WHERE s_suppkey IN "
                  "(SELECT ps_suppkey FROM partsupp "
                  "WHERE ps_availqty > 5000) ORDER BY s_name")
        plans = {sql: tpch_engine.compile(sql).dsql_plan
                 for sql in (first, second)}
        for plan in plans.values():
            assert plan.movement_steps
        runner = DsqlRunner(appliance)  # one shared cache across queries
        for sql in (first, second, first):
            result = runner.run(plans[sql])
            reference = run_reference(appliance, sql)
            assert canonical(result.rows) == canonical(reference.rows)

    def test_reference_backend_bypasses_cache(self, tpch, tpch_engine):
        appliance, _ = tpch
        plan = tpch_engine.compile(
            "SELECT COUNT(*) AS n FROM lineitem").dsql_plan
        tracer = Tracer()
        DsqlRunner(appliance, tracer=tracer, compiled=False).run(plan)
        assert tracer.counter("exec.compile_cache_miss") == 0
        assert tracer.counter("exec.compile_cache_hit") == 0

    def test_return_step_results_identical_after_caching(self, tpch,
                                                         tpch_engine):
        appliance, _ = tpch
        plan = tpch_engine.compile(
            "SELECT n_name FROM nation ORDER BY n_name").dsql_plan
        runner = DsqlRunner(appliance)
        assert runner.run(plan).rows == runner.run(plan).rows


VAR_X = ex.ColumnVar(1, "x", INTEGER)


class TestDistinctAggregation:
    def test_distinct_hashable_dedup(self):
        values = [3, 1, 3, 2, 1, True, 1, 2.0]
        # Same first-occurrence semantics as the old quadratic scan.
        reference = []
        for value in values:
            if value not in reference:
                reference.append(value)
        assert _distinct(values) == reference

    def test_distinct_unhashable_fallback(self):
        values = [[1, 2], [3], [1, 2], [3], [4]]
        assert _distinct(values) == [[1, 2], [3], [4]]

    def test_count_distinct_through_aggregate(self):
        agg = ex.AggExpr("COUNT", VAR_X, distinct=True)
        members = [{1: v} for v in [5, 5, None, 7, 5, 7, 9]]
        assert _aggregate(agg, members) == 3

    def test_sum_distinct_with_unhashable_values(self):
        # Unhashable aggregate values take the linear-scan fallback.
        agg = ex.AggExpr("COUNT", VAR_X, distinct=True)
        members = [{1: [1]}, {1: [1]}, {1: [2]}]
        assert _aggregate(agg, members) == 2

    def test_large_distinct_is_fast(self):
        import time
        agg = ex.AggExpr("COUNT", VAR_X, distinct=True)
        members = [{1: i % 5000} for i in range(20000)]
        started = time.perf_counter()
        assert _aggregate(agg, members) == 5000
        # The old list-membership scan took quadratic time here.
        assert time.perf_counter() - started < 1.0


class TestSingleSystemImage:
    def _appliance(self):
        appliance = Appliance(2)
        appliance.create_table(TableDef(
            "t", [Column("a", INTEGER)], hash_distributed("a")))
        appliance.load_rows("t", [(i,) for i in range(10)])
        return appliance

    def test_image_cached_between_calls(self):
        appliance = self._appliance()
        assert (appliance.single_system_image()
                is appliance.single_system_image())

    def test_invalidated_on_load(self):
        appliance = self._appliance()
        first = appliance.single_system_image()
        appliance.load_rows("t", [(100,)])
        second = appliance.single_system_image()
        assert second is not first
        assert sorted(second["t"]) == [(i,) for i in range(10)] + [(100,)]

    def test_invalidated_on_drop(self):
        appliance = self._appliance()
        assert "t" in appliance.single_system_image()
        appliance.drop_table("t")
        assert "t" not in appliance.single_system_image()

    def test_temp_tables_do_not_invalidate_or_appear(self):
        appliance = self._appliance()
        image = appliance.single_system_image()
        appliance.create_temp_table(TableDef(
            "TEMP_ID_1", [Column("a", INTEGER)], hash_distributed("a"),
            is_temp=True))
        assert appliance.single_system_image() is image
        assert "TEMP_ID_1" not in image
        appliance.drop_temp_tables()
        assert appliance.single_system_image() is image

    def test_run_reference_sees_fresh_rows(self):
        appliance = self._appliance()
        before = run_reference(appliance, "SELECT COUNT(*) AS n FROM t")
        appliance.load_rows("t", [(200,), (201,)])
        after = run_reference(appliance, "SELECT COUNT(*) AS n FROM t")
        assert before.rows == [(10,)]
        assert after.rows == [(12,)]


def test_return_only_plans_have_no_dms_steps(tpch, tpch_engine):
    """Sanity: the counter assertions above rely on multi-step plans, so
    pin that a replicated-table query really is Return-only."""
    plan = tpch_engine.compile("SELECT n_name FROM nation").dsql_plan
    assert [s.kind for s in plan.steps] == [StepKind.RETURN]
