"""Shared fixtures: a tiny TPC-H appliance and small custom schemas."""

from __future__ import annotations

import pytest

from repro import PdwEngine
from repro.appliance.storage import Appliance
from repro.catalog.schema import (
    Catalog,
    Column,
    REPLICATED,
    TableDef,
    hash_distributed,
)
from repro.catalog.shell_db import ShellDatabase
from repro.common.types import DATE, INTEGER, decimal, varchar
from repro.workloads.tpch_datagen import build_tpch_appliance

TPCH_SCALE = 0.002
TPCH_NODES = 4


@pytest.fixture(scope="session")
def tpch():
    """(appliance, shell) for a tiny but complete TPC-H instance.

    Session-scoped: tests must not mutate base tables (temp tables are
    dropped by the runner after every query).
    """
    return build_tpch_appliance(scale=TPCH_SCALE, node_count=TPCH_NODES)


@pytest.fixture(scope="session")
def tpch_appliance(tpch):
    return tpch[0]


@pytest.fixture(scope="session")
def tpch_shell(tpch):
    return tpch[1]


@pytest.fixture(scope="session")
def tpch_engine(tpch_shell):
    return PdwEngine(tpch_shell)


def make_mini_catalog() -> Catalog:
    """The paper's running example schema: customer/orders (+ nation)."""
    return Catalog([
        TableDef(
            "customer",
            [
                Column("c_custkey", INTEGER),
                Column("c_name", varchar(25)),
                Column("c_nationkey", INTEGER),
            ],
            hash_distributed("c_custkey"),
            row_count=15_000,
            primary_key=("c_custkey",),
        ),
        TableDef(
            "orders",
            [
                Column("o_orderkey", INTEGER),
                Column("o_custkey", INTEGER),
                Column("o_totalprice", decimal()),
                Column("o_orderdate", DATE),
            ],
            hash_distributed("o_orderkey"),
            row_count=150_000,
            primary_key=("o_orderkey",),
        ),
        TableDef(
            "lineitem",
            [
                Column("l_orderkey", INTEGER),
                Column("l_partkey", INTEGER),
                Column("l_quantity", decimal()),
            ],
            hash_distributed("l_orderkey"),
            row_count=600_000,
        ),
        TableDef(
            "nation",
            [
                Column("n_nationkey", INTEGER),
                Column("n_name", varchar(25)),
            ],
            REPLICATED,
            row_count=25,
            primary_key=("n_nationkey",),
        ),
    ])


@pytest.fixture()
def mini_catalog() -> Catalog:
    return make_mini_catalog()


@pytest.fixture()
def mini_shell(mini_catalog) -> ShellDatabase:
    return ShellDatabase(mini_catalog, node_count=8)


@pytest.fixture()
def mini_appliance() -> Appliance:
    """A loaded 3-node appliance over a two-table schema."""
    appliance = Appliance(3)
    appliance.create_table(TableDef(
        "t",
        [Column("a", INTEGER), Column("b", INTEGER),
         Column("s", varchar(10))],
        hash_distributed("a"),
    ))
    appliance.create_table(TableDef(
        "dim",
        [Column("k", INTEGER), Column("label", varchar(10))],
        REPLICATED,
    ))
    appliance.load_rows(
        "t", [(i, i % 7, f"s{i % 3}") for i in range(100)])
    appliance.load_rows("dim", [(k, f"label{k}") for k in range(7)])
    return appliance


def canonical(rows):
    """Rows as a sorted list with floats rounded (comparison helper)."""
    from repro.catalog.statistics import sort_key

    def canon_row(row):
        return tuple(
            round(v, 6) if isinstance(v, float) else v for v in row)

    return sorted((canon_row(r) for r in rows),
                  key=lambda row: tuple(sort_key(v) for v in row))
