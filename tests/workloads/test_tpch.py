"""TPC-H workload tests: schema, generator determinism, placement."""

import pytest

from repro.catalog.schema import DistributionKind
from repro.workloads.tpch_datagen import TpchGenerator, build_tpch_appliance
from repro.workloads.tpch_queries import TPCH_QUERIES, query_names
from repro.workloads.tpch_schema import (
    SF1_ROW_COUNTS,
    scaled_row_count,
    tpch_tables,
)


class TestSchema:
    def test_eight_tables(self):
        assert len(tpch_tables()) == 8

    def test_paper_distribution_design(self):
        tables = {t.name: t for t in tpch_tables()}
        assert tables["customer"].distribution.columns == ("c_custkey",)
        assert tables["orders"].distribution.columns == ("o_orderkey",)
        assert tables["lineitem"].distribution.columns == ("l_orderkey",)
        assert tables["partsupp"].distribution.columns == ("ps_partkey",)
        assert tables["part"].distribution.columns == ("p_partkey",)
        assert tables["supplier"].distribution.kind is \
            DistributionKind.REPLICATED
        assert tables["nation"].distribution.kind is \
            DistributionKind.REPLICATED

    def test_scaling_keeps_dimensions_fixed(self):
        assert scaled_row_count("nation", 0.001) == 25
        assert scaled_row_count("region", 0.001) == 5

    def test_scaling_is_linear(self):
        assert scaled_row_count("orders", 0.01) == \
            SF1_ROW_COUNTS["orders"] // 100


class TestGenerator:
    def test_deterministic(self):
        a = TpchGenerator(scale=0.001, seed=1).customer_rows()
        b = TpchGenerator(scale=0.001, seed=1).customer_rows()
        assert a == b

    def test_seed_changes_data(self):
        a = TpchGenerator(scale=0.001, seed=1).orders_rows()
        b = TpchGenerator(scale=0.001, seed=2).orders_rows()
        assert a != b

    def test_orders_reference_valid_customers(self):
        generator = TpchGenerator(scale=0.001)
        customers = generator.counts["customer"]
        for order in generator.orders_rows():
            assert 1 <= order[1] <= customers

    def test_lineitems_match_partsupp_pairs(self):
        generator = TpchGenerator(scale=0.001)
        pairs = {(ps[0], ps[1]) for ps in generator.partsupp_rows()}
        orders = generator.orders_rows()
        for line in generator.lineitem_rows(orders[:50]):
            assert (line[1], line[2]) in pairs

    def test_forest_parts_exist_at_scale(self):
        generator = TpchGenerator(scale=0.01)
        names = [row[1] for row in generator.part_rows()]
        assert any("forest" in n for n in names)

    def test_dates_in_spec_range(self):
        import datetime
        generator = TpchGenerator(scale=0.001)
        for order in generator.orders_rows():
            assert datetime.date(1992, 1, 1) <= order[4] \
                <= datetime.date(1998, 12, 31)


class TestApplianceBuild:
    def test_build_returns_consistent_shell(self, tpch):
        appliance, shell = tpch
        assert shell.node_count == appliance.node_count
        for table in shell.tables():
            assert table.row_count == len(
                appliance.table_rows_everywhere(table.name))

    def test_stats_present_for_all_columns(self, tpch):
        _, shell = tpch
        for table in shell.tables():
            if table.is_system:
                # dm_pdw_* views are runtime state registered lazily by
                # tracked sessions, not part of the TPC-H build; they
                # carry no merged stats (the shell synthesizes defaults).
                continue
            for column in table.columns:
                assert shell.has_column_stats(table.name, column.name)


class TestQueries:
    def test_fifteen_queries(self):
        assert len(query_names()) == 15

    @pytest.mark.parametrize("name", query_names())
    def test_queries_parse(self, name):
        from repro.sql.parser import parse_select
        parse_select(TPCH_QUERIES[name])

    @pytest.mark.parametrize("name", query_names())
    def test_queries_compile(self, name, tpch_engine):
        compiled = tpch_engine.compile(TPCH_QUERIES[name])
        assert compiled.dsql_plan.steps
