"""Typed-array column representation: sniffing, NULL masks, round-trips
and the vectorized CRC32 hash's parity with ``pdw_hash``."""

from __future__ import annotations

import datetime
import random

import pytest

from repro.appliance.storage import pdw_hash

np = pytest.importorskip("numpy")

from repro.vector.column_batch import ColumnBatch  # noqa: E402
from repro.vector.np_batch import (  # noqa: E402
    ArrayBatch,
    column_from_list,
    crc32_int64,
    from_column_batch,
    int_key_owners,
)

ROUND_TRIPS = [
    [1, 2, 3],
    [None, 1, None, -7],
    [1.5, -0.0, 2.75],
    [None, 1.25, float("nan")],
    [True, False, None],
    ["a", None, "bc"],
    [datetime.date(1994, 1, 1), None, datetime.date(1998, 12, 31)],
    [1, "mixed", None, 2.5],
    [None, None],
    [],
    [2 ** 80, 1],   # beyond int64 → object column
    [1, 2.5],       # mixed numeric → object column (exact semantics)
]


class TestColumnRoundTrip:
    @pytest.mark.parametrize("values", ROUND_TRIPS,
                             ids=[str(i) for i in range(len(ROUND_TRIPS))])
    def test_pylist_restores_native_values(self, values):
        got = column_from_list(values).pylist()
        assert len(got) == len(values)
        for out, want in zip(got, values):
            if isinstance(want, float) and want != want:  # NaN
                assert out != out
                continue
            assert out == want and type(out) is type(want)

    def test_typed_kinds(self):
        assert column_from_list([1, 2]).kind == "i"
        assert column_from_list([1.0, None]).kind == "f"
        assert column_from_list([True]).kind == "b"
        assert column_from_list([datetime.date(2000, 1, 1)]).kind == "d"
        assert column_from_list(["x"]).kind == "o"
        # datetime.datetime is NOT a date column (ordinal would drop
        # the time part) — it stays object.
        assert column_from_list(
            [datetime.datetime(2000, 1, 1, 12)]).kind == "o"

    def test_bool_not_conflated_with_int(self):
        assert column_from_list([True, 1]).kind == "o"
        got = column_from_list([True, 1]).pylist()
        assert got[0] is True and type(got[1]) is int

    def test_null_mask_positions(self):
        column = column_from_list([None, 5, None, 7])
        assert column.null_mask().tolist() == [True, False, True, False]

    def test_take_and_compress(self):
        column = column_from_list([10, None, 30, 40])
        assert column.take(np.array([2, 0])).pylist() == [30, 10]
        keep = np.array([True, True, False, True])
        assert column.compress(keep).pylist() == [10, None, 40]


class TestBatchConversion:
    def test_from_column_batch_preserves_shape(self):
        batch = ColumnBatch({1: [1, 2], 2: ["a", None]}, 2)
        converted = from_column_batch(batch)
        assert isinstance(converted, ArrayBatch)
        assert converted.length == 2
        assert converted.list_batch().columns == batch.columns

    def test_list_batch_is_cached(self):
        converted = from_column_batch(ColumnBatch({1: [1, 2, 3]}, 3))
        assert converted.list_batch() is converted.list_batch()


class TestVectorizedHash:
    def test_crc_matches_pdw_hash_on_boundaries(self):
        keys = [0, 1, -1, 42, -42, 2 ** 31, -2 ** 31,
                2 ** 63 - 1, -2 ** 63]
        crcs = crc32_int64(np.array(keys, dtype=np.int64))
        assert crcs.tolist() == [pdw_hash(k) for k in keys]

    def test_crc_matches_pdw_hash_randomized(self):
        rng = random.Random(20120520)
        keys = [rng.randint(-2 ** 63, 2 ** 63 - 1) for _ in range(2000)]
        crcs = crc32_int64(np.array(keys, dtype=np.int64))
        assert crcs.tolist() == [pdw_hash(k) for k in keys]

    @pytest.mark.parametrize("node_count", [1, 2, 4, 8, 13])
    def test_owner_vector_matches_modulo(self, node_count):
        keys = list(range(-50, 50)) + [2 ** 62, -2 ** 62]
        owners = int_key_owners(keys, node_count)
        assert owners is not None
        assert owners.tolist() == [pdw_hash(k) % node_count
                                   for k in keys]

    @pytest.mark.parametrize("keys", [
        [1, 2, None],
        [1.0, 2.0],
        ["a", "b"],
        [True, False],
        [1, 2 ** 80],
        [],
    ])
    def test_non_pure_int_columns_decline(self, keys):
        assert int_key_owners(keys, 4) is None
