"""Columnar and numpy DMS routing ⇄ row routers: bit-identical
deliveries and byte accounting across all four code paths."""

from __future__ import annotations

import pytest

from repro.appliance.dms_runtime import (
    DmsOperation,
    DmsRuntime,
    route_batch_columnar,
    route_batch_fast,
    route_batch_numpy,
)
from repro.appliance.storage import (
    Appliance,
    CONTROL_NODE,
    pdw_hash,
    row_bytes,
)
from repro.common.errors import DmsError

ROWS = [(i, f"value-{i}", i * 1.5) for i in range(200)]
SIZES = [row_bytes(r) for r in ROWS]

#: Same shape, but the distribution key is a string — the numpy router
#: cannot vectorize the hash and must fall back to the columnar path.
STRING_KEY_ROWS = [(f"key-{i}", i, i * 1.5) for i in range(200)]
STRING_KEY_SIZES = [row_bytes(r) for r in STRING_KEY_ROWS]

#: Keys beyond int64 — ``int_key_owners`` must decline these too.
BIG_KEY_ROWS = [(2 ** 80 + i, i) for i in range(50)]
BIG_KEY_SIZES = [row_bytes(r) for r in BIG_KEY_ROWS]


def as_map(deliveries):
    return {target: (batch, nbytes) for target, batch, nbytes in deliveries}


@pytest.fixture()
def routing_runtime():
    return DmsRuntime(Appliance(4))


class TestColumnarRouting:
    @pytest.mark.parametrize("source_id", [0, 1, 3, CONTROL_NODE])
    @pytest.mark.parametrize("operation", [
        DmsOperation.SHUFFLE_MOVE,
        DmsOperation.BROADCAST_MOVE,
        DmsOperation.CONTROL_NODE_MOVE,
        DmsOperation.REPLICATED_BROADCAST,
        DmsOperation.PARTITION_MOVE,
        DmsOperation.REMOTE_COPY,
    ])
    def test_matches_all_row_routers(self, routing_runtime, operation,
                                     source_id):
        columnar, columnar_sent = route_batch_columnar(
            operation, ROWS, SIZES, 0, 4, source_id)
        vectorized, vectorized_sent = route_batch_numpy(
            operation, ROWS, SIZES, 0, 4, source_id)
        fast, fast_sent = route_batch_fast(
            operation, ROWS, SIZES, 0, 4, source_id)
        ref, ref_sent = routing_runtime._route_batch_reference(
            operation, ROWS, SIZES, 0, 4, source_id)
        assert (as_map(columnar) == as_map(vectorized)
                == as_map(fast) == as_map(ref))
        assert columnar_sent == vectorized_sent == fast_sent == ref_sent

    @pytest.mark.parametrize("source_id", [0, 2])
    def test_trim_matches_row_routers(self, routing_runtime, source_id):
        columnar, sent = route_batch_columnar(
            DmsOperation.TRIM_MOVE, ROWS, SIZES, 0, 4, source_id)
        vectorized, np_sent = route_batch_numpy(
            DmsOperation.TRIM_MOVE, ROWS, SIZES, 0, 4, source_id)
        fast, fast_sent = route_batch_fast(
            DmsOperation.TRIM_MOVE, ROWS, SIZES, 0, 4, source_id)
        assert as_map(columnar) == as_map(vectorized) == as_map(fast)
        assert sent == np_sent == fast_sent == 0
        for _, batch, _ in columnar:
            for row in batch:
                assert pdw_hash(row[0]) % 4 == source_id

    def test_shuffle_partitions_the_batch(self):
        deliveries, sent = route_batch_columnar(
            DmsOperation.SHUFFLE_MOVE, ROWS, SIZES, 0, 4, 1)
        routed = [row for _, batch, _ in deliveries for row in batch]
        assert sorted(routed) == sorted(ROWS)
        local = sum(nbytes for target, _, nbytes in deliveries
                    if target == 1)
        assert sent == sum(SIZES) - local

    def test_empty_batch_routes_nothing(self):
        assert route_batch_columnar(
            DmsOperation.SHUFFLE_MOVE, [], [], 0, 4, 0) == ([], 0)
        assert route_batch_numpy(
            DmsOperation.SHUFFLE_MOVE, [], [], 0, 4, 0) == ([], 0)

    def test_shuffle_without_hash_column_raises(self):
        with pytest.raises(DmsError):
            route_batch_columnar(DmsOperation.SHUFFLE_MOVE, ROWS, SIZES,
                                 None, 4, 0)
        with pytest.raises(DmsError):
            route_batch_numpy(DmsOperation.SHUFFLE_MOVE, ROWS, SIZES,
                              None, 4, 0)

    def test_trim_without_hash_column_raises(self):
        with pytest.raises(DmsError):
            route_batch_columnar(DmsOperation.TRIM_MOVE, ROWS, SIZES,
                                 None, 4, 0)
        with pytest.raises(DmsError):
            route_batch_numpy(DmsOperation.TRIM_MOVE, ROWS, SIZES,
                              None, 4, 0)


class TestNumpyRouterFallbacks:
    """Non-int (or oversized-int) distribution keys can't take the
    vectorized CRC32 pass; the numpy router must fall back to the
    columnar path and still match the row routers exactly."""

    @pytest.mark.parametrize("rows,sizes", [
        (STRING_KEY_ROWS, STRING_KEY_SIZES),
        (BIG_KEY_ROWS, BIG_KEY_SIZES),
    ])
    @pytest.mark.parametrize("operation", [
        DmsOperation.SHUFFLE_MOVE,
        DmsOperation.TRIM_MOVE,
    ])
    def test_non_int64_keys_fall_back(self, operation, rows, sizes):
        vectorized, np_sent = route_batch_numpy(
            operation, rows, sizes, 0, 4, 1)
        fast, fast_sent = route_batch_fast(
            operation, rows, sizes, 0, 4, 1)
        assert as_map(vectorized) == as_map(fast)
        assert np_sent == fast_sent

    def test_bool_keys_fall_back(self):
        # bool is an int subclass but hashes differently (pdw_hash
        # special-cases it), so the type-exact guard must decline.
        rows = [(i % 2 == 0, i) for i in range(40)]
        sizes = [row_bytes(r) for r in rows]
        vectorized, np_sent = route_batch_numpy(
            DmsOperation.SHUFFLE_MOVE, rows, sizes, 0, 4, 0)
        fast, fast_sent = route_batch_fast(
            DmsOperation.SHUFFLE_MOVE, rows, sizes, 0, 4, 0)
        assert as_map(vectorized) == as_map(fast)
        assert np_sent == fast_sent

    def test_int64_boundary_keys_vectorize_exactly(self):
        rows = [(k, i) for i, k in enumerate(
            [0, 1, -1, 2 ** 63 - 1, -2 ** 63, 42, -42])]
        sizes = [row_bytes(r) for r in rows]
        vectorized, np_sent = route_batch_numpy(
            DmsOperation.SHUFFLE_MOVE, rows, sizes, 0, 4, 0)
        fast, fast_sent = route_batch_fast(
            DmsOperation.SHUFFLE_MOVE, rows, sizes, 0, 4, 0)
        assert as_map(vectorized) == as_map(fast)
        assert np_sent == fast_sent


class TestRuntimeRouterSelection:
    def test_columnar_runtimes_route_columnar_in_serial_mode(self, tpch,
                                                             tpch_engine):
        """The columnar route paths apply whenever the backend is
        vectorized or numpy — serial and parallel runtimes alike — and
        produce the same step accounting as the row paths."""
        appliance, _ = tpch
        plan = tpch_engine.compile(
            "SELECT c.c_custkey, o.o_custkey FROM customer c, orders o "
            "WHERE c.c_custkey = o.o_custkey").dsql_plan
        assert plan.movement_steps
        from repro.appliance.runner import DsqlRunner

        results = {}
        for executor, parallel in (("compiled", False),
                                   ("vectorized", False),
                                   ("vectorized", True),
                                   ("numpy", False),
                                   ("numpy", True)):
            result = DsqlRunner(appliance, executor=executor,
                                parallel=parallel).run(plan)
            results[(executor, parallel)] = result
        base = results[("compiled", False)]
        for key, result in results.items():
            assert result.sorted_rows() == base.sorted_rows(), key
            assert [s.rows_moved for s in result.step_stats] == \
                [s.rows_moved for s in base.step_stats], key
            assert [s.network_bytes for s in result.step_stats] == \
                [s.network_bytes for s in base.step_stats], key
