"""Columnar backends ⇄ row backends equivalence on the full TPC-H
workload.

The vectorized and numpy executors change *how* step SQL is evaluated
(columnar batches / typed ndarrays instead of rows), never *what* is
computed: rows, row order under ORDER BY, per-step byte/row accounting
and the interpreter counters must all be identical to the compiled
backend's.  The runner tests leave ``parallel`` unset, so the suite
exercises the serial walk normally and the DAG runtime under
``REPRO_PARALLEL_RUNTIME=1`` (CI runs tier-1 both ways); explicit
``parallel=True`` cases keep the serial CI leg honest too.
"""

from __future__ import annotations

import pytest

from repro.appliance.interpreter import InterpreterStats, PlanInterpreter
from repro.appliance.runner import DsqlRunner, run_reference
from repro.common.executors import EXECUTORS
from repro.optimizer.binder import Binder
from repro.optimizer.normalize import normalize
from repro.sql.parser import parse_query
from repro.vector.executor import VectorInterpreter
from repro.vector.np_executor import NumpyInterpreter
from repro.workloads.tpch_queries import TPCH_QUERIES, query_names

from tests.conftest import canonical
from tests.integration.test_parallel_equivalence import stats_view

#: The two columnar backends; each must be indistinguishable from the
#: compiled row backend in everything but speed.
COLUMNAR = ("vectorized", "numpy")


@pytest.mark.parametrize("executor", COLUMNAR)
@pytest.mark.parametrize("name", query_names())
def test_columnar_matches_compiled_on_tpch_suite(name, executor, tpch,
                                                 tpch_engine):
    appliance, _ = tpch
    plan = tpch_engine.compile(TPCH_QUERIES[name]).dsql_plan
    compiled = DsqlRunner(appliance, executor="compiled").run(plan)
    columnar = DsqlRunner(appliance, executor=executor).run(plan)
    assert columnar.columns == compiled.columns
    assert columnar.sorted_rows() == compiled.sorted_rows()
    if plan.order_by:
        assert columnar.rows == compiled.rows
    # Byte/row accounting, per-node operator actuals and simulated
    # times are merged identically — exact floats, not approximations.
    assert (stats_view(columnar.step_stats)
            == stats_view(compiled.step_stats))
    assert columnar.elapsed_seconds == compiled.elapsed_seconds
    assert columnar.dms_seconds == compiled.dms_seconds


@pytest.mark.parametrize("name", ["Q1", "Q3", "Q5", "Q12"])
def test_all_four_backends_agree(name, tpch, tpch_engine):
    appliance, _ = tpch
    plan = tpch_engine.compile(TPCH_QUERIES[name]).dsql_plan
    results = {
        executor: DsqlRunner(appliance, executor=executor).run(plan)
        for executor in EXECUTORS
    }
    reference = results["reference"]
    for executor, result in results.items():
        assert result.columns == reference.columns, executor
        assert result.sorted_rows() == reference.sorted_rows(), executor


@pytest.mark.parametrize("executor", COLUMNAR)
@pytest.mark.parametrize("name", ["Q1", "Q5"])
def test_columnar_parallel_matches_serial(name, executor, tpch,
                                          tpch_engine):
    appliance, _ = tpch
    plan = tpch_engine.compile(TPCH_QUERIES[name]).dsql_plan
    serial = DsqlRunner(appliance, executor=executor,
                        parallel=False).run(plan)
    parallel = DsqlRunner(appliance, executor=executor,
                          parallel=True).run(plan)
    assert parallel.sorted_rows() == serial.sorted_rows()
    if plan.order_by:
        assert parallel.rows == serial.rows
    assert (stats_view(parallel.step_stats)
            == stats_view(serial.step_stats))


@pytest.mark.parametrize("executor", COLUMNAR)
def test_run_reference_columnar_backends(executor, tpch):
    appliance, _ = tpch
    sql = ("SELECT COUNT(DISTINCT o_custkey) AS n, "
           "COUNT(DISTINCT o_orderpriority) AS p FROM orders")
    assert (run_reference(appliance, sql, executor=executor).rows
            == run_reference(appliance, sql, executor="reference").rows)


def test_empty_scalar_aggregate_neutral_row(tpch):
    appliance, _ = tpch
    sql = ("SELECT COUNT(*) AS n, SUM(l_quantity) AS q FROM lineitem "
           "WHERE l_quantity < -1")
    for executor in EXECUTORS:
        assert run_reference(appliance, sql,
                             executor=executor).rows == [(0, None)]


def test_empty_group_by_result(tpch):
    appliance, _ = tpch
    sql = ("SELECT l_returnflag, COUNT(*) AS n FROM lineitem "
           "WHERE l_quantity < -1 GROUP BY l_returnflag")
    for executor in ("compiled", "vectorized", "numpy"):
        assert run_reference(appliance, sql, executor=executor).rows == []


def columnar_interpreter(executor):
    return NumpyInterpreter if executor == "numpy" else VectorInterpreter


class TestInterpreterStatsParity:
    """The columnar interpreters must feed the same counters into the
    simulated relational-time model as the row interpreters — Union
    adds nothing, Get counts scans, everything else rows_processed."""

    def run_both(self, tpch, sql, executor):
        appliance, _ = tpch
        image = appliance.single_system_image()
        query = normalize(Binder(appliance.catalog).bind(
            parse_query(sql)))
        row_stats = InterpreterStats()
        vec_stats = InterpreterStats()
        rows = PlanInterpreter(image, stats=row_stats,
                               compiled=True).run_query(query)
        interpreter = columnar_interpreter(executor)
        vec_rows = interpreter(image, stats=vec_stats).run_query(query)
        assert canonical(vec_rows) == canonical(rows)
        return row_stats, vec_stats

    @pytest.mark.parametrize("executor", COLUMNAR)
    @pytest.mark.parametrize("sql", [
        "SELECT COUNT(*) AS n FROM lineitem WHERE l_discount > 0.01",
        ("SELECT c_name FROM customer, orders "
         "WHERE c_custkey = o_custkey AND o_totalprice > 1000"),
        ("SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS q "
         "FROM lineitem GROUP BY l_returnflag, l_linestatus"),
        "SELECT n_name FROM nation ORDER BY n_name LIMIT 5",
    ])
    def test_counters_match(self, tpch, sql, executor):
        row_stats, vec_stats = self.run_both(tpch, sql, executor)
        assert vec_stats.rows_scanned == row_stats.rows_scanned
        assert vec_stats.rows_processed == row_stats.rows_processed


class TestObserverParity:
    @pytest.mark.parametrize("executor", COLUMNAR)
    def test_postorder_operator_counts_match(self, tpch, executor):
        appliance, _ = tpch
        image = appliance.single_system_image()
        sql = ("SELECT c_name FROM customer, orders "
               "WHERE c_custkey = o_custkey AND o_totalprice > 1000")
        query = normalize(Binder(appliance.catalog).bind(
            parse_query(sql)))

        class Recorder:
            def __init__(self):
                self.events = []

            def record(self, op, rows_out):
                self.events.append((type(op).__name__, rows_out))

        row_rec, vec_rec = Recorder(), Recorder()
        PlanInterpreter(image, compiled=True,
                        observer=row_rec).run_query(query)
        interpreter = columnar_interpreter(executor)
        interpreter(image, observer=vec_rec).run_query(query)
        assert vec_rec.events == row_rec.events
        assert vec_rec.events  # something was actually observed
