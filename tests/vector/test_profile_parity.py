"""Observability under the columnar backends.

``profile=True`` must keep collecting per-node / per-operator actuals
when steps execute on columnar batches or typed ndarrays: the full
structured profile — skew coverage, Q-errors, transfer matrices,
operator postorder — is bit-identical to the compiled backend's, and
the ``profile`` CLI works end to end with ``--executor vectorized`` and
``--executor numpy``.
"""

from __future__ import annotations

import pytest

from repro.appliance.runner import DsqlRunner
from repro.obs.profiler import build_query_profile
from repro.workloads.tpch_queries import TPCH_QUERIES


def profile_for(appliance, plan, sql, executor):
    result = DsqlRunner(appliance, executor=executor).run(
        plan, profile=True)
    return build_query_profile(
        plan.steps, result.step_stats,
        node_count=appliance.node_count,
        sql=sql,
        elapsed_seconds=result.elapsed_seconds,
        dms_seconds=result.dms_seconds,
    )


@pytest.mark.parametrize("executor", ["vectorized", "numpy"])
@pytest.mark.parametrize("name", ["Q1", "Q5", "Q12"])
def test_columnar_profile_matches_compiled(name, executor, tpch,
                                           tpch_engine):
    appliance, _ = tpch
    sql = TPCH_QUERIES[name]
    plan = tpch_engine.compile(sql).dsql_plan
    compiled = profile_for(appliance, plan, sql, "compiled")
    columnar = profile_for(appliance, plan, sql, executor)
    # Identical operator postorder (same joins, same shapes), identical
    # Q-error and skew tables — the whole structured export matches.
    assert columnar.to_dict() == compiled.to_dict()


def test_vectorized_profile_has_join_operator_actuals(tpch, tpch_engine):
    appliance, _ = tpch
    sql = ("SELECT COUNT(*) AS n FROM lineitem, orders "
           "WHERE l_orderkey = o_orderkey")
    plan = tpch_engine.compile(sql).dsql_plan
    profile = profile_for(appliance, plan, sql, "vectorized")
    labels = [operator.label for operator in profile.operators]
    assert any("Join" in label for label in labels), labels
    assert profile.operators
    for operator in profile.operators:
        assert operator.actual_rows >= 0


@pytest.mark.parametrize("executor", ["vectorized", "numpy"])
def test_profile_cli_runs_columnar(capsys, executor):
    from repro.__main__ import main

    code = main([
        "--scale", "0.001", "--nodes", "4", "--executor", executor,
        "profile",
        "SELECT COUNT(*) AS n FROM lineitem, orders "
        "WHERE l_orderkey = o_orderkey",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "Per-operator profile" in out
    assert "InnerJoin" in out
    assert "q-err" in out


def test_run_cli_vectorized_matches_compiled(capsys):
    from repro.__main__ import main

    sql = "SELECT n_name FROM nation ORDER BY n_name LIMIT 3"
    outputs = {}
    for executor in ("compiled", "vectorized", "numpy"):
        code = main(["--scale", "0.001", "--nodes", "4",
                     "--executor", executor, "run", sql])
        assert code == 0
        outputs[executor] = capsys.readouterr().out.splitlines()[:4]
    assert outputs["vectorized"] == outputs["compiled"]
    assert outputs["numpy"] == outputs["compiled"]
