"""The ``executor`` option surface: normalization, overrides, session
shims, runner caching, bind-cache participation and service wiring."""

from __future__ import annotations

import warnings

import pytest

from repro import ExecutionOptions, PdwSession
from repro.common.errors import ReproError
from repro.common.executors import EXECUTORS, resolve_executor
from repro.appliance.runner import DsqlRunner
from repro.telemetry import Tracer

SQL = ("SELECT l_returnflag, COUNT(*) AS n FROM lineitem "
       "GROUP BY l_returnflag ORDER BY l_returnflag")


class TestResolveExecutor:
    def test_none_derives_from_compiled(self):
        assert resolve_executor(None, True) == "compiled"
        assert resolve_executor(None, False) == "reference"

    def test_explicit_name_wins(self):
        for name in EXECUTORS:
            assert resolve_executor(name, True) == name
            assert resolve_executor(name, False) == name

    def test_unknown_name_raises(self):
        with pytest.raises(ReproError):
            resolve_executor("jit", True)


class TestExecutionOptions:
    def test_default_is_compiled(self):
        opts = ExecutionOptions()
        assert opts.executor == "compiled"
        assert opts.compiled is True

    def test_executor_rederives_compiled(self):
        assert ExecutionOptions(executor="reference").compiled is False
        assert ExecutionOptions(executor="vectorized").compiled is True

    def test_legacy_compiled_false_means_reference(self):
        opts = ExecutionOptions(compiled=False)
        assert opts.executor == "reference"

    def test_unknown_executor_raises(self):
        with pytest.raises(ReproError):
            ExecutionOptions(executor="gpu")

    def test_override_compiled_translates_to_executor(self):
        opts = ExecutionOptions(executor="vectorized")
        flipped = opts.override(compiled=False)
        assert flipped.executor == "reference"
        assert flipped.compiled is False
        back = flipped.override(compiled=True)
        assert back.executor == "compiled"

    def test_override_executor_rederives_compiled(self):
        opts = ExecutionOptions().override(executor="reference")
        assert opts.compiled is False


class TestSessionWiring:
    @pytest.fixture(scope="class")
    def session(self):
        return PdwSession(
            scale=0.001, node_count=4,
            options=ExecutionOptions(executor="vectorized"))

    def test_session_exposes_executor(self, session):
        assert session.executor == "vectorized"
        assert session.compiled is True
        assert session.runner.executor == "vectorized"

    def test_runner_cache_keyed_by_executor(self, session):
        base = session.run(SQL)
        other = session.run(
            SQL, options=session.options.override(executor="compiled"))
        assert list(base.rows) == list(other.rows)
        keys = set(session._runners)
        assert ("vectorized", True) in keys
        assert ("compiled", True) in keys

    def test_run_compiled_shim_single_warning(self, session):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = session.run(SQL, compiled=False)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "executor='reference'" in str(deprecations[0].message)
        assert "via options= instead" in str(deprecations[0].message)
        assert list(result.rows) == list(session.run(SQL).rows)
        assert ("reference", True) in session._runners

    def test_constructor_compiled_shim_single_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session = PdwSession(scale=0.001, node_count=4,
                                 compiled=False)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert session.executor == "reference"

    def test_options_path_emits_no_warnings(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session = PdwSession(
                scale=0.001, node_count=4,
                options=ExecutionOptions(executor="vectorized"))
            session.run(SQL)
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]


class TestBindCache:
    def test_vectorized_backend_uses_step_bind_cache(self, tpch,
                                                     tpch_engine):
        """Only the reference backend bypasses the per-step plan cache;
        vectorized shares the parse-and-bind-once contract."""
        appliance, _ = tpch
        plan = tpch_engine.compile(
            "SELECT COUNT(*) AS n FROM lineitem").dsql_plan
        tracer = Tracer()
        DsqlRunner(appliance, tracer=tracer,
                   executor="vectorized").run(plan)
        assert tracer.counter("exec.compile_cache_miss") == len(plan.steps)
        assert tracer.counter("exec.compile_cache_hit") > 0

    def test_reference_backend_still_bypasses_cache(self, tpch,
                                                    tpch_engine):
        appliance, _ = tpch
        plan = tpch_engine.compile(
            "SELECT COUNT(*) AS n FROM lineitem").dsql_plan
        tracer = Tracer()
        DsqlRunner(appliance, tracer=tracer,
                   executor="reference").run(plan)
        assert tracer.counter("exec.compile_cache_miss") == 0


class TestServiceWiring:
    def test_cached_plans_rebind_into_vectorized_backend(self):
        """A plan-cache hit executes on whichever backend the service
        was configured with — plans are backend-agnostic."""
        from repro.service import PdwService

        sql = "SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < 30"
        rows = {}
        for executor in ("compiled", "vectorized"):
            service = PdwService(
                scale=0.001, node_count=4,
                options=ExecutionOptions(executor=executor))
            try:
                assert service.runner.executor == executor
                first = service.execute(sql)
                second = service.execute(sql)
                assert second.cache_hit
                assert list(first.rows) == list(second.rows)
                rows[executor] = list(second.rows)
            finally:
                service.close()
        assert rows["vectorized"] == rows["compiled"]
