"""Vector kernel ⇄ evaluator differential tests.

A kernel applied to a column batch must produce, row for row, exactly
what the tree-walking evaluator produces on each row's environment —
values, NULL propagation and error behaviour alike.  The one documented
divergence (kernels evaluate column-major, so when *different operands*
would error on *different rows* the surfaced error may be another row's)
is pinned by asserting the raised error class is one some row would
raise.

The randomized sweep reuses the compiler suite's expression generator;
environments become batches by fixing the bound-column set once per
batch (a batch either has a column for every row or for none — exactly
the shape the executor feeds kernels).

Every differential case runs against BOTH column compilers: the
pure-Python list kernels and (when numpy is importable) the typed
ndarray kernels of :mod:`repro.vector.np_kernels` — same expression,
same batch, outputs compared value-for-value (``pylist()`` restores
native Python values, so identity checks like ``value is None`` apply
unchanged).
"""

from __future__ import annotations

import pytest

from repro.algebra import expressions as ex
from repro.algebra.evaluator import UnboundColumn, evaluate
from repro.common.errors import ExecutionError
from repro.common.executors import numpy_available
from repro.common.types import BOOLEAN
from repro.vector import (
    ColumnBatch,
    clear_kernel_cache,
    compile_kernel,
    compile_selection,
)

from tests.algebra.test_compiler import (
    DBL_C,
    INT_A,
    INT_B,
    STR_S,
    STR_T,
    ExprGen,
    outcome,
)

HAVE_NUMPY = numpy_available()
if HAVE_NUMPY:
    import numpy as np

    from repro.vector.np_batch import from_column_batch
    from repro.vector.np_kernels import (
        clear_np_kernel_cache,
        compile_np_kernel,
        compile_np_selection,
    )


def list_compiler(expr):
    """Compile with the list kernels: ``ColumnBatch -> list``."""
    return compile_kernel(expr)


def np_compiler(expr):
    """Compile with the numpy kernels, adapted to the same signature —
    the batch is sniffed into typed arrays and the result column comes
    back as native Python values."""
    kernel = compile_np_kernel(expr)
    return lambda batch: kernel(from_column_batch(batch)).pylist()


def run_list_kernel(expr, batch):
    return list_compiler(expr)(batch)


def run_np_kernel(expr, batch):
    return np_compiler(expr)(batch)


def run_list_selection(predicate, batch):
    return compile_selection(predicate)(batch)


def run_np_selection(predicate, batch):
    mask = compile_np_selection(predicate)(from_column_batch(batch))
    return np.flatnonzero(mask).tolist()


#: Each runner maps (expr, ColumnBatch) to a plain list of native
#: Python values; each compiler maps expr to a ``ColumnBatch -> list``
#: callable (for tests that pin compile-time vs batch-time behaviour).
KERNEL_RUNNERS = [pytest.param(run_list_kernel, id="list")]
KERNEL_COMPILERS = [pytest.param(list_compiler, id="list")]
SELECTION_RUNNERS = [pytest.param(run_list_selection, id="list")]
if HAVE_NUMPY:
    KERNEL_RUNNERS.append(pytest.param(run_np_kernel, id="numpy"))
    KERNEL_COMPILERS.append(pytest.param(np_compiler, id="numpy"))
    SELECTION_RUNNERS.append(pytest.param(run_np_selection, id="numpy"))

NULL = ex.Constant(None)
ONE = ex.Constant(1)
TWO = ex.Constant(2)

COLUMN_VALUES = [
    (INT_A, [None, -3, 0, 1, 2, 7]),
    (INT_B, [None, 0, 1, 5, 100]),
    (DBL_C, [None, -1.5, 0.0, 2.25, 9.5]),
    (STR_S, [None, "", "a", "abc", "bcb", "zebra"]),
    (STR_T, [None, "a", "abz", "xyz"]),
]


def batch_of(rows_envs):
    """A ColumnBatch from per-row environments sharing one key set."""
    if not rows_envs:
        return ColumnBatch({}, 0)
    ids = rows_envs[0].keys()
    assert all(env.keys() == ids for env in rows_envs)
    return ColumnBatch(
        {cid: [env[cid] for env in rows_envs] for cid in ids},
        len(rows_envs))


def assert_batch_agrees(expr, rows_envs):
    """Every kernel compiler's column must match the evaluator row by
    row; if any row errors, the kernel must raise an error some row
    raises."""
    expected = [outcome(evaluate, expr, env) for env in rows_envs]
    batch = batch_of(rows_envs)
    error_tags = {tag for tag, *_ in expected if tag != "ok"}
    for param in KERNEL_RUNNERS:
        run, which = param.values[0], param.id
        got = outcome(run, expr, batch)
        if error_tags:
            assert got[0] in error_tags, (
                f"{which} kernel outcome {got} not among per-row errors "
                f"{error_tags} for {expr}")
            continue
        assert got[0] == "ok", (
            f"{which} kernel errored ({got}) on error-free {expr}")
        values = got[1]
        assert len(values) == len(rows_envs)
        for value, (_, want) in zip(values, expected):
            assert value == want and (value is None) == (want is None), (
                f"{which} kernel disagrees on {expr}: "
                f"got {value!r} want {want!r}")


# -- targeted three-valued logic --------------------------------------------------


class TestThreeValuedLogic:
    @pytest.mark.parametrize("op", ["=", "<>", "<", "<=", ">", ">="])
    def test_comparison_null_propagation(self, op):
        expr = ex.Comparison(op, INT_A, INT_B)
        envs = [{1: a, 2: b}
                for a in (None, 0, 1, 2)
                for b in (None, 0, 1, 5)]
        assert_batch_agrees(expr, envs)

    @pytest.mark.parametrize("op", ["+", "-", "*", "||"])
    def test_arithmetic_null_propagation(self, op):
        expr = ex.Arithmetic(op, INT_A, INT_B)
        envs = [{1: a, 2: b}
                for a in (None, 1, 3) for b in (None, 2, 5)]
        assert_batch_agrees(expr, envs)

    @pytest.mark.parametrize("run", KERNEL_RUNNERS)
    @pytest.mark.parametrize("args,expected", [
        ((True, True), True), ((True, None), None), ((True, False), False),
        ((None, None), None), ((False, None), False),
    ])
    def test_kleene_and(self, args, expected, run):
        expr = ex.BoolOp("AND", tuple(ex.Constant(a, BOOLEAN) for a in args))
        column = run(expr, ColumnBatch({}, 3))
        assert column == [expected] * 3
        assert all(value is expected for value in column)

    @pytest.mark.parametrize("run", KERNEL_RUNNERS)
    @pytest.mark.parametrize("args,expected", [
        ((False, False), False), ((False, None), None),
        ((True, None), True), ((None, None), None),
    ])
    def test_kleene_or(self, args, expected, run):
        expr = ex.BoolOp("OR", tuple(ex.Constant(a, BOOLEAN) for a in args))
        column = run(expr, ColumnBatch({}, 2))
        assert column == [expected] * 2
        assert all(value is expected for value in column)

    def test_boolop_over_columns(self):
        expr = ex.BoolOp("AND", (
            ex.Comparison(">", INT_A, ex.Constant(0)),
            ex.Comparison("<", INT_B, ex.Constant(10)),
            ex.IsNullExpr(STR_S, negated=True),
        ))
        envs = [{1: a, 2: b, 4: s}
                for a in (None, -1, 1)
                for b in (None, 5, 50)
                for s in (None, "x")]
        assert_batch_agrees(expr, envs)

    def test_non_bool_operands_normalize(self):
        # evaluate() folds truthy/falsy non-bools through its `is True`
        # checks; kernels must land on the identical True/False/None.
        for op in ("AND", "OR"):
            for value in (0, 1, "", "x"):
                expr = ex.BoolOp(op, (ex.Constant(value),
                                      ex.Constant(False, BOOLEAN)))
                assert_batch_agrees(expr, [{}])

    def test_case_without_match_is_null(self):
        expr = ex.CaseWhen(
            whens=((ex.Comparison("=", INT_A, TWO), ex.Constant("two")),))
        assert_batch_agrees(expr, [{1: v} for v in (1, 2, None)])

    def test_not_like_in_isnull_parity(self):
        exprs = [
            ex.NotExpr(ex.Comparison("=", INT_A, ONE)),
            ex.LikeExpr(STR_S, "a%"),
            ex.LikeExpr(STR_S, "%b_", negated=True),
            ex.InListExpr(INT_A, (1, 2, 3)),
            ex.InListExpr(INT_A, (1, 2), negated=True),
            ex.IsNullExpr(INT_A),
            ex.IsNullExpr(INT_A, negated=True),
        ]
        for expr in exprs:
            envs = [{1: a, 4: s}
                    for a in (None, 1, 7) for s in (None, "abc", "zb")]
            assert_batch_agrees(expr, envs)


# -- short-circuit parity via selection narrowing ---------------------------------


class TestNarrowing:
    def test_and_guard_shields_division(self):
        # Rows excluded by the guard must never reach the division —
        # x = 0 rows would otherwise raise.
        guard = ex.BoolOp("AND", (
            ex.Comparison("<>", INT_A, ex.Constant(0)),
            ex.Comparison(">", ex.Arithmetic("/", ex.Constant(10), INT_A),
                          ONE),
        ))
        envs = [{1: v} for v in (0, 2, None, 5, 0, 20)]
        assert_batch_agrees(guard, envs)

    def test_or_guard_shields_division(self):
        guard = ex.BoolOp("OR", (
            ex.Comparison("=", INT_A, ex.Constant(0)),
            ex.Comparison(">", ex.Arithmetic("/", ex.Constant(10), INT_A),
                          ONE),
        ))
        envs = [{1: v} for v in (0, 2, None, 5, 0)]
        assert_batch_agrees(guard, envs)

    def test_case_arms_shield_division(self):
        expr = ex.CaseWhen(
            whens=((ex.Comparison("<>", INT_A, ex.Constant(0)),
                    ex.Arithmetic("/", ex.Constant(10), INT_A)),),
            otherwise=ex.Constant(-1))
        envs = [{1: v} for v in (0, 2, 0, 5, None)]
        assert_batch_agrees(expr, envs)

    @pytest.mark.parametrize("run", KERNEL_RUNNERS)
    def test_all_rows_decided_skips_later_args(self, run):
        # Second argument would raise unconditionally, but every row is
        # decided by the first — the row backends never evaluate it.
        never = ex.Arithmetic("/", ONE, ex.Constant(0))
        expr = ex.BoolOp("AND", (ex.Constant(False, BOOLEAN), never))
        assert run(expr, ColumnBatch({}, 4)) == [False] * 4
        expr = ex.BoolOp("OR", (ex.Constant(True, BOOLEAN), never))
        assert run(expr, ColumnBatch({}, 4)) == [True] * 4


# -- error parity -----------------------------------------------------------------


class TestErrorParity:
    @pytest.mark.parametrize("compiler", KERNEL_COMPILERS)
    def test_division_by_zero_raises_at_batch_time(self, compiler):
        for op in ("/", "%"):
            expr = ex.Arithmetic(op, ONE, ex.Constant(0))
            kernel = compiler(expr)  # compiling must not raise
            with pytest.raises(ExecutionError):
                kernel(ColumnBatch({}, 2))

    def test_division_error_beats_null_left_operand(self):
        assert_batch_agrees(ex.Arithmetic("/", NULL, ex.Constant(0)), [{}])

    @pytest.mark.parametrize("run", KERNEL_RUNNERS)
    def test_unbound_column_raises(self, run):
        expr = ex.Arithmetic("+", INT_A, ONE)
        with pytest.raises(UnboundColumn):
            run(expr, ColumnBatch({}, 1))

    @pytest.mark.parametrize("run", KERNEL_RUNNERS)
    def test_null_constant_comparison_still_binds_other_side(self, run):
        # `a = NULL` is uniformly NULL, but the column side must still
        # be evaluated so a missing column raises exactly as in a row
        # backend.
        expr = ex.Comparison("=", INT_A, NULL)
        with pytest.raises(UnboundColumn):
            run(expr, ColumnBatch({}, 1))
        assert_batch_agrees(expr, [{1: v} for v in (None, 1, 2)])

    @pytest.mark.parametrize("compiler", KERNEL_COMPILERS)
    def test_aggregate_raises_at_batch_time_not_compile_time(self,
                                                             compiler):
        kernel = compiler(ex.AggExpr("SUM", INT_A))
        with pytest.raises(ExecutionError):
            kernel(ColumnBatch({1: [3]}, 1))

    @pytest.mark.parametrize("compiler", KERNEL_COMPILERS)
    def test_unknown_function_raises_at_batch_time(self, compiler):
        kernel = compiler(ex.FuncExpr("NO_SUCH_FN", (ONE,)))
        with pytest.raises(ExecutionError):
            kernel(ColumnBatch({}, 1))


# -- selection vectors ------------------------------------------------------------


class TestSelection:
    @pytest.mark.parametrize("select", SELECTION_RUNNERS)
    def test_none_predicate_selects_all(self, select):
        assert select(None, ColumnBatch({}, 4)) == [0, 1, 2, 3]

    @pytest.mark.parametrize("select", SELECTION_RUNNERS)
    def test_null_counts_as_false(self, select):
        predicate = ex.Comparison("=", INT_A, ONE)
        batch = ColumnBatch({1: [1, 2, None, 1]}, 4)
        assert select(predicate, batch) == [0, 3]

    @pytest.mark.parametrize("select", SELECTION_RUNNERS)
    def test_matches_evaluator_is_true_filter(self, select):
        gen = ExprGen(777)
        for _ in range(60):
            predicate = gen.boolean(3)
            envs = make_envs(gen, 7)
            expected = [outcome(lambda e: evaluate(predicate, e) is True,
                                env) for env in envs]
            got = outcome(select, predicate, batch_of(envs))
            tags = {tag for tag, *_ in expected if tag != "ok"}
            if tags:
                assert got[0] in tags
            else:
                assert got == ("ok", [i for i, (_, keep)
                                      in enumerate(expected) if keep])


# -- memoization ------------------------------------------------------------------


class TestKernelCache:
    def test_memoized_per_expression_object(self):
        clear_kernel_cache()
        expr = ex.Comparison("<", INT_A, TWO)
        assert compile_kernel(expr) is compile_kernel(expr)

    def test_memo_distinguishes_equal_but_typed_constants(self):
        # Constant(0) == Constant(False) under dataclass equality, but
        # the `is True` Kleene checks must tell them apart.
        clear_kernel_cache()
        zero = ex.BoolOp("AND", (ex.Constant(0),))
        false = ex.BoolOp("AND", (ex.Constant(False),))
        env_zero = compile_kernel(zero)(ColumnBatch({}, 1))[0]
        env_false = compile_kernel(false)(ColumnBatch({}, 1))[0]
        assert env_zero is evaluate(zero, {})
        assert env_false is evaluate(false, {})

    def test_empty_batch_yields_empty_column(self):
        expr = ex.Arithmetic("+", INT_A, ONE)
        assert compile_kernel(expr)(ColumnBatch({1: []}, 0)) == []

    @pytest.mark.skipif(not HAVE_NUMPY, reason="requires numpy")
    def test_np_kernels_memoized_per_expression_object(self):
        clear_np_kernel_cache()
        expr = ex.Comparison("<", INT_A, TWO)
        assert compile_np_kernel(expr) is compile_np_kernel(expr)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="requires numpy")
    def test_np_empty_batch_yields_empty_column(self):
        expr = ex.Arithmetic("+", INT_A, ONE)
        assert run_np_kernel(expr, ColumnBatch({1: []}, 0)) == []


# -- randomized differential sweep ------------------------------------------------


def make_envs(gen: ExprGen, count: int):
    """``count`` single-row environments sharing one bound-column set."""
    bound = [pair for pair in COLUMN_VALUES if gen.rng.random() < 0.9]
    return [
        {var.id: gen.rng.choice(values) for var, values in bound}
        for _ in range(count)
    ]


@pytest.mark.parametrize("seed", range(40))
def test_random_expressions_batch_differential(seed):
    gen = ExprGen(seed)
    for _ in range(20):
        expr = gen.rng.choice(
            [gen.boolean, gen.num, gen.string])(gen.rng.randint(1, 4))
        assert_batch_agrees(expr, make_envs(gen, 10))
