"""Graceful degradation when numpy is absent.

``executor="numpy"`` must never be a hard requirement: on a machine
without numpy the request silently (well — with exactly one
``RuntimeWarning``) becomes ``executor="vectorized"``, and
``ExecutionOptions.resolved()`` reports the backend that will actually
run.  Since the test image ships numpy, absence is simulated with an
import hook that blocks ``import numpy`` and temporarily hides the
already-imported module — which is why :func:`numpy_available`
deliberately re-probes on every call instead of caching.
"""

from __future__ import annotations

import builtins
import sys
import warnings

import pytest

from repro import ExecutionOptions
from repro.appliance.runner import DsqlRunner
from repro.common.executors import (
    effective_executor,
    numpy_available,
    resolve_executor,
)


@pytest.fixture
def no_numpy(monkeypatch):
    """Make ``import numpy`` fail for the duration of a test."""
    hidden = [name for name in sys.modules
              if name == "numpy" or name.startswith("numpy.")]
    for name in hidden:
        monkeypatch.delitem(sys.modules, name)
    real_import = builtins.__import__

    def blocked(name, *args, **kwargs):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError(f"{name} blocked by no_numpy fixture")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", blocked)


class TestAvailabilityProbe:
    def test_available_in_this_image(self):
        assert numpy_available()

    def test_probe_respects_import_hook(self, no_numpy):
        assert not numpy_available()

    def test_probe_recovers_after_hook(self):
        # The fixture restored the import machinery: no caching bug.
        assert numpy_available()


class TestEffectiveExecutor:
    def test_numpy_passes_through_when_available(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert effective_executor("numpy") == "numpy"

    def test_numpy_degrades_with_one_warning(self, no_numpy):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert effective_executor("numpy") == "vectorized"
        assert len(caught) == 1
        assert issubclass(caught[0].category, RuntimeWarning)
        assert "numpy" in str(caught[0].message)

    @pytest.mark.parametrize("executor",
                             ["reference", "compiled", "vectorized"])
    def test_other_backends_untouched(self, executor, no_numpy):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert effective_executor(executor) == executor

    def test_resolve_does_not_degrade(self, no_numpy):
        # Degradation happens at resolution time (resolved() / runner
        # construction), not during plain name normalization.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_executor("numpy", True) == "numpy"


class TestOptionsReportActualBackend:
    def test_resolved_keeps_numpy_when_available(self):
        options = ExecutionOptions(executor="numpy").resolved()
        assert options.executor == "numpy"

    def test_resolved_reports_fallback(self, no_numpy):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            options = ExecutionOptions(executor="numpy").resolved()
        assert options.executor == "vectorized"
        assert options.compiled is True
        assert [w for w in caught
                if issubclass(w.category, RuntimeWarning)]

    def test_resolved_is_idempotent(self, no_numpy):
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            options = ExecutionOptions(executor="numpy").resolved()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert options.resolved() is options


class TestRunnerFallback:
    def test_runner_downgrades_once_and_matches_vectorized(
            self, no_numpy, tpch, tpch_engine):
        appliance, _ = tpch
        plan = tpch_engine.compile(
            "SELECT o_orderpriority, COUNT(*) AS n FROM orders "
            "GROUP BY o_orderpriority ORDER BY o_orderpriority").dsql_plan
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            runner = DsqlRunner(appliance, executor="numpy")
        # One warning for the whole runner stack: DsqlRunner downgrades
        # and hands the already-resolved name to DmsRuntime.
        runtime_warnings = [w for w in caught
                            if issubclass(w.category, RuntimeWarning)]
        assert len(runtime_warnings) == 1
        assert runner.executor == "vectorized"
        assert runner.runtime.executor == "vectorized"
        degraded = runner.run(plan)
        vectorized = DsqlRunner(appliance,
                                executor="vectorized").run(plan)
        assert degraded.rows == vectorized.rows
        assert degraded.columns == vectorized.columns

    def test_runner_keeps_numpy_when_available(self, tpch):
        appliance, _ = tpch
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            runner = DsqlRunner(appliance, executor="numpy")
        assert runner.executor == "numpy"
        assert runner.runtime.executor == "numpy"
