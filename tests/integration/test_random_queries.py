"""Property-based end-to-end test: randomly generated queries produce
identical results distributed and on the single-system image.

The generator composes filters, joins (on hash-compatible or
hash-incompatible columns), aggregations and ORDER BY over a small fixed
appliance, so the whole compile→move→execute pipeline is exercised on
query shapes nobody hand-wrote.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.appliance.runner import DsqlRunner, run_reference
from repro.appliance.storage import Appliance
from repro.catalog.schema import (
    Column,
    REPLICATED,
    TableDef,
    hash_distributed,
)
from repro.common.types import INTEGER, varchar
from repro.pdw.engine import PdwEngine

from tests.conftest import canonical


@pytest.fixture(scope="module")
def random_env():
    appliance = Appliance(3)
    appliance.create_table(TableDef(
        "fact",
        [Column("fk", INTEGER), Column("grp", INTEGER),
         Column("val", INTEGER), Column("tag", varchar(4))],
        hash_distributed("fk")))
    appliance.create_table(TableDef(
        "other",
        [Column("ok", INTEGER), Column("ref", INTEGER),
         Column("amount", INTEGER)],
        hash_distributed("ok")))
    appliance.create_table(TableDef(
        "dim", [Column("dk", INTEGER), Column("label", varchar(4))],
        REPLICATED))
    appliance.load_rows("fact", [
        (i, i % 5, (i * 7) % 40, f"t{i % 3}") for i in range(80)
    ])
    appliance.load_rows("other", [
        (i, i % 17, (i * 3) % 25) for i in range(60)
    ])
    appliance.load_rows("dim", [(k, f"d{k}") for k in range(5)])
    shell = appliance.compute_shell_database()
    return appliance, PdwEngine(shell)


FILTERS = [
    "",
    "WHERE grp = 2",
    "WHERE val BETWEEN 5 AND 25",
    "WHERE tag LIKE 't1%'",
    "WHERE grp <> 3 AND val > 10",
]

comparison_columns = st.sampled_from(["grp", "val"])


@st.composite
def single_table_queries(draw):
    columns = draw(st.lists(
        st.sampled_from(["fk", "grp", "val", "tag"]),
        min_size=1, max_size=3, unique=True))
    where = draw(st.sampled_from(FILTERS))
    distinct = draw(st.booleans())
    order = columns[0]
    select = ", ".join(columns)
    head = "SELECT DISTINCT" if distinct else "SELECT"
    return f"{head} {select} FROM fact {where} ORDER BY {order}"


@st.composite
def join_queries(draw):
    join_col = draw(st.sampled_from(
        [("fk", "ok"), ("fk", "ref"), ("grp", "ref"), ("val", "amount")]))
    left, right = join_col
    where = draw(st.sampled_from(["", "AND amount > 5", "AND grp = 1"]))
    return (f"SELECT fact.fk, other.amount FROM fact, other "
            f"WHERE fact.{left} = other.{right} {where} "
            f"ORDER BY fact.fk, other.amount")


@st.composite
def aggregate_queries(draw):
    key = draw(st.sampled_from(["grp", "tag"]))
    agg = draw(st.sampled_from(
        ["COUNT(*)", "SUM(val)", "MIN(val)", "MAX(val)", "AVG(val)"]))
    where = draw(st.sampled_from(FILTERS))
    return (f"SELECT {key}, {agg} AS a FROM fact {where} "
            f"GROUP BY {key} ORDER BY {key}")


@st.composite
def dim_join_queries(draw):
    agg = draw(st.booleans())
    if agg:
        return ("SELECT label, COUNT(*) AS n FROM fact, dim "
                "WHERE grp = dk GROUP BY label ORDER BY label")
    return ("SELECT fk, label FROM fact, dim WHERE grp = dk "
            "ORDER BY fk")


any_query = st.one_of(single_table_queries(), join_queries(),
                      aggregate_queries(), dim_join_queries())


@given(sql=any_query)
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_random_query_distributed_equals_reference(random_env, sql):
    appliance, engine = random_env
    compiled = engine.compile(sql)
    result = DsqlRunner(appliance).run(compiled.dsql_plan)
    reference = run_reference(appliance, sql)
    assert canonical(result.rows) == canonical(reference.rows), sql
