"""Property: query results are independent of the appliance's node count.

The same data distributed over 1, 2, 3 or 7 nodes must produce identical
results for every query — the strongest statement that plan choice and
data movement never change semantics.
"""

import pytest

from repro.appliance.runner import DsqlRunner
from repro.appliance.storage import Appliance
from repro.catalog.schema import (
    Column,
    REPLICATED,
    TableDef,
    hash_distributed,
)
from repro.common.types import INTEGER, varchar
from repro.pdw.engine import PdwEngine

from tests.conftest import canonical

NODE_COUNTS = (1, 2, 3, 7)

QUERIES = [
    "SELECT a, b FROM t ORDER BY a",
    "SELECT grp, COUNT(*) AS n, SUM(b) AS s FROM t GROUP BY grp "
    "ORDER BY grp",
    "SELECT t.a, u.y FROM t, u WHERE t.b = u.x ORDER BY t.a, u.y",
    "SELECT a FROM t WHERE a NOT IN (SELECT x FROM u) ORDER BY a",
    "SELECT label, MAX(b) AS m FROM t, dim WHERE grp = k "
    "GROUP BY label ORDER BY label",
    "SELECT a AS v FROM t UNION ALL SELECT x FROM u ORDER BY v",
    "SELECT COUNT(DISTINCT grp) AS g FROM t",
]


def build(node_count):
    appliance = Appliance(node_count)
    appliance.create_table(TableDef(
        "t", [Column("a", INTEGER), Column("b", INTEGER),
              Column("grp", INTEGER)],
        hash_distributed("a")))
    appliance.create_table(TableDef(
        "u", [Column("x", INTEGER), Column("y", INTEGER)],
        hash_distributed("x")))
    appliance.create_table(TableDef(
        "dim", [Column("k", INTEGER), Column("label", varchar(8))],
        REPLICATED))
    appliance.load_rows("t", [(i, (i * 3) % 11, i % 4)
                              for i in range(60)])
    appliance.load_rows("u", [(i % 13, i) for i in range(40)])
    appliance.load_rows("dim", [(k, f"lab{k}") for k in range(4)])
    return appliance, PdwEngine(appliance.compute_shell_database())


@pytest.fixture(scope="module")
def environments():
    return {n: build(n) for n in NODE_COUNTS}


@pytest.mark.parametrize("sql", QUERIES)
def test_results_invariant_in_node_count(environments, sql):
    results = {}
    for node_count, (appliance, engine) in environments.items():
        compiled = engine.compile(sql)
        result = DsqlRunner(appliance).run(compiled.dsql_plan)
        results[node_count] = canonical(result.rows)
    baseline = results[NODE_COUNTS[0]]
    for node_count, rows in results.items():
        assert rows == baseline, f"N={node_count} diverged on: {sql}"


def test_plans_may_differ_but_results_do_not(environments):
    """Different N can legitimately pick different movements; only the
    result is pinned."""
    sql = "SELECT t.a FROM t, u WHERE t.b = u.x ORDER BY t.a"
    step_shapes = set()
    for node_count, (appliance, engine) in environments.items():
        compiled = engine.compile(sql)
        step_shapes.add(tuple(
            s.movement.operation.name for s in
            compiled.dsql_plan.movement_steps))
    assert step_shapes  # at least one shape; divergence is allowed
