"""The paper's worked examples, verified structurally.

* Figure 3 — the Customer ⋈ Orders example: the augmented MEMO holds
  Shuffle and Replicate move alternatives, and the chosen plan shuffles
  the filtered Orders onto o_custkey.
* §2.4 — the two-step DSQL plan (DMS shuffle + Return).
* §2.5 — "parallelizing the best serial plan is not enough": the serial
  join order differs from the PDW pick, and the PDW plan is cheaper.
* §4 / Figure 7 — TPC-H Q20: four DSQL steps, part broadcast with a
  duplicate-eliminating group-by, partkey shuffle, suppkey shuffle with a
  local/global distinct, and a Return step.
"""

import pytest

from repro.algebra.logical import AggPhase, LogicalGroupBy, LogicalJoin
from repro.appliance.runner import DsqlRunner, run_reference
from repro.catalog.schema import Catalog, Column, TableDef, hash_distributed
from repro.catalog.shell_db import ShellDatabase
from repro.common.types import DATE, INTEGER, decimal, varchar
from repro.pdw.baseline import parallelize_serial_plan
from repro.pdw.dms import DataMovement, DmsOperation
from repro.pdw.dsql import StepKind
from repro.pdw.engine import PdwEngine
from repro.pdw.enumerator import PdwOptimizer
from repro.workloads.tpch_queries import SEC24_JOIN, SEC25_JOIN, TPCH_QUERIES

from tests.conftest import canonical


def movements(plan):
    return [n.op for n in plan.root.walk()
            if isinstance(n.op, DataMovement)]


class TestFigure3:
    """SELECT * FROM Customer, Orders WHERE custkeys match AND
    o_totalprice > 1000."""

    SQL = ("SELECT c_custkey, o_orderdate FROM customer, orders "
           "WHERE c_custkey = o_custkey AND o_totalprice > 1000")

    def test_augmented_memo_offers_shuffle_and_replicate(self, mini_shell):
        engine = PdwEngine(mini_shell)
        compiled = engine.compile(self.SQL)
        serial = compiled.serial
        pdw = PdwOptimizer(compiled.pdw_memo, compiled.pdw_root_group,
                           node_count=mini_shell.node_count)
        pdw.optimize()
        seen_ops = set()
        for options in pdw.options.values():
            for option in options:
                if isinstance(option.op, DataMovement):
                    seen_ops.add(option.op.operation)
        assert DmsOperation.SHUFFLE_MOVE in seen_ops
        assert DmsOperation.BROADCAST_MOVE in seen_ops
        del serial

    def test_chosen_plan_shuffles_filtered_orders(self, mini_shell):
        compiled = PdwEngine(mini_shell).compile(self.SQL)
        moves = movements(compiled.pdw_plan)
        assert len(moves) == 1
        assert moves[0].operation is DmsOperation.SHUFFLE_MOVE
        assert moves[0].hash_columns[0].name == "o_custkey"

    def test_join_is_local_after_move(self, mini_shell):
        compiled = PdwEngine(mini_shell).compile(self.SQL)
        joins = [node for node in compiled.pdw_plan.root.walk()
                 if isinstance(node.op, LogicalJoin)]
        assert len(joins) == 1
        # Exactly one side moved (the filtered Orders); the customer side
        # stays put.
        moved_children = [
            child for child in joins[0].children
            if isinstance(child.op, DataMovement)
        ]
        assert len(moved_children) == 1
        moved_columns = {
            v.name for v in moved_children[0].output_columns}
        assert "o_custkey" in moved_columns


class TestSection24:
    def test_two_step_dsql_plan(self, mini_shell):
        plan = PdwEngine(mini_shell).compile(SEC24_JOIN).dsql_plan
        assert [s.kind for s in plan.steps] == [StepKind.DMS,
                                                StepKind.RETURN]

    def test_step_zero_extracts_filtered_orders(self, mini_shell):
        plan = PdwEngine(mini_shell).compile(SEC24_JOIN).dsql_plan
        step = plan.steps[0]
        assert "o_totalprice" in step.sql
        assert "customer" not in step.sql.lower()
        assert step.hash_column == "o_custkey"

    def test_return_step_joins_against_temp(self, mini_shell):
        plan = PdwEngine(mini_shell).compile(SEC24_JOIN).dsql_plan
        final = plan.steps[-1].sql.lower()
        assert "temp_id_1" in final
        assert "customer" in final

    def test_executes_correctly(self, tpch, tpch_engine):
        appliance, _ = tpch
        compiled = tpch_engine.compile(SEC24_JOIN)
        result = DsqlRunner(appliance).run(compiled.dsql_plan)
        reference = run_reference(appliance, SEC24_JOIN)
        assert canonical(result.rows) == canonical(reference.rows)


def make_sec25_shell():
    """Customer ⋈ Orders ⋈ Lineitem sized so the serial order (C⋈O
    first) diverges from the collocated O⋈L-first parallel plan."""
    from repro.catalog.statistics import ColumnStats

    catalog = Catalog([
        TableDef("customer",
                 [Column("c_custkey", INTEGER),
                  Column("c_name", varchar(25))],
                 hash_distributed("c_custkey"), row_count=1_000_000,
                 primary_key=("c_custkey",)),
        TableDef("orders",
                 [Column("o_orderkey", INTEGER),
                  Column("o_custkey", INTEGER)],
                 hash_distributed("o_orderkey"), row_count=1_500_000,
                 primary_key=("o_orderkey",)),
        TableDef("lineitem",
                 [Column("l_orderkey", INTEGER),
                  Column("l_quantity", decimal())],
                 hash_distributed("l_orderkey"), row_count=3_000_000),
    ])
    shell = ShellDatabase(catalog, node_count=8)

    def put(table, column, rows, distinct, width):
        shell.set_column_stats(
            table, column,
            ColumnStats(rows, 0.0, distinct, 0, distinct, width))

    put("customer", "c_custkey", 1e6, 1e6, 4)
    put("customer", "c_name", 1e6, 1e6, 25)
    put("orders", "o_orderkey", 1.5e6, 1.5e6, 4)
    put("orders", "o_custkey", 1.5e6, 1e6, 4)
    put("lineitem", "l_orderkey", 3e6, 1.5e6, 4)
    put("lineitem", "l_quantity", 3e6, 50, 8)
    return shell


class TestSection25:
    SQL = ("SELECT c_name, l_quantity "
           "FROM customer, orders, lineitem "
           "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey")

    @pytest.fixture()
    def shell(self):
        return make_sec25_shell()

    def test_serial_plan_joins_customer_orders_first(self, shell):
        compiled = PdwEngine(shell).compile(self.SQL)
        assert _serial_joins_customer_first(compiled)

    def test_pdw_joins_orders_lineitem_first(self, shell):
        """The paper's better parallel order: O⋈L collocated, then the
        result shuffled on custkey."""
        compiled = PdwEngine(shell).compile(self.SQL)
        moves = movements(compiled.pdw_plan)
        assert len(moves) == 1
        assert moves[0].operation is DmsOperation.SHUFFLE_MOVE
        assert moves[0].hash_columns[0].name == "o_custkey"
        # Lineitem itself never moves.
        for node in compiled.pdw_plan.root.walk():
            if isinstance(node.op, DataMovement):
                child = node.children[0]
                assert not (hasattr(child.op, "table")
                            and child.op.table.name == "lineitem")

    def test_pdw_beats_parallelized_serial_plan(self, shell):
        compiled = PdwEngine(shell).compile(self.SQL)
        baseline = parallelize_serial_plan(compiled.serial, shell)
        assert compiled.pdw_plan.cost < baseline.cost


class TestFigure7Q20:
    def test_four_dsql_steps(self, tpch_engine):
        plan = tpch_engine.compile(TPCH_QUERIES["Q20"]).dsql_plan
        assert len(plan.steps) == 4
        assert plan.steps[-1].kind is StepKind.RETURN

    def test_part_is_broadcast_with_distinct(self, tpch_engine):
        compiled = tpch_engine.compile(TPCH_QUERIES["Q20"])
        broadcast_steps = [
            s for s in compiled.dsql_plan.movement_steps
            if s.movement.operation is DmsOperation.BROADCAST_MOVE
        ]
        assert broadcast_steps
        step = broadcast_steps[0]
        assert "part" in step.sql.lower()
        assert "GROUP BY" in step.sql  # dup-elimination like Figure 7

    def test_partkey_and_suppkey_shuffles(self, tpch_engine):
        compiled = tpch_engine.compile(TPCH_QUERIES["Q20"])
        shuffle_columns = [
            s.hash_column for s in compiled.dsql_plan.movement_steps
            if s.movement.operation is DmsOperation.SHUFFLE_MOVE
        ]
        assert len(shuffle_columns) == 2
        assert any("partkey" in c for c in shuffle_columns)
        assert any("suppkey" in c for c in shuffle_columns)

    def test_join_pushed_below_aggregation(self, tpch_engine):
        """Figure 7 joins part with lineitem *below* the partial
        aggregation — the group-by pushdown transformation."""
        compiled = tpch_engine.compile(TPCH_QUERIES["Q20"])
        for node in compiled.pdw_plan.root.walk():
            if isinstance(node.op, LogicalGroupBy) and node.op.aggregates:
                join_below = any(
                    isinstance(d.op, LogicalJoin)
                    for d in node.walk() if d is not node
                )
                if join_below:
                    return
        pytest.fail("no aggregation with a join beneath it")

    def test_local_global_distinct_on_suppkey(self, tpch_engine):
        compiled = tpch_engine.compile(TPCH_QUERIES["Q20"])
        phases = [
            node.op.phase for node in compiled.pdw_plan.root.walk()
            if isinstance(node.op, LogicalGroupBy)
        ]
        assert AggPhase.LOCAL in phases
        assert AggPhase.GLOBAL in phases

    def test_q20_result_correct(self, tpch, tpch_engine):
        appliance, _ = tpch
        compiled = tpch_engine.compile(TPCH_QUERIES["Q20"])
        result = DsqlRunner(appliance).run(compiled.dsql_plan)
        reference = run_reference(appliance, TPCH_QUERIES["Q20"])
        assert canonical(result.rows) == canonical(reference.rows)

    def test_q20_variant_with_rows_correct(self, tpch, tpch_engine):
        """A relaxed Q20 (lower quantity threshold, no nation filter)
        that actually produces rows at test scale, so the equality check
        is not vacuous."""
        sql = (TPCH_QUERIES["Q20"]
               .replace("0.5 * SUM", "0.001 * SUM")
               .replace("AND n_name = 'CANADA'", ""))
        appliance, _ = tpch
        compiled = tpch_engine.compile(sql)
        result = DsqlRunner(appliance).run(compiled.dsql_plan)
        reference = run_reference(appliance, sql)
        assert result.rows, "variant should produce rows at this scale"
        assert canonical(result.rows) == canonical(reference.rows)


def _serial_joins_customer_first(compiled):
    from repro.algebra import physical as phys
    plan = compiled.serial.best_serial_plan
    joins = [n for n in plan.walk()
             if isinstance(n.op, (phys.HashJoin, phys.MergeJoin,
                                  phys.NestedLoopJoin))]
    if not joins:
        return False
    deepest = joins[-1]
    names = set()
    for node in deepest.walk():
        if isinstance(node.op, phys.TableScan):
            names.add(node.op.table.name)
    return names == {"customer", "orders"}
