"""UNION ALL: parser, binder, optimizer, and distributed execution."""

import pytest

from repro.algebra.logical import LogicalUnionAll
from repro.appliance.runner import DsqlRunner, run_reference
from repro.appliance.storage import Appliance
from repro.catalog.schema import Column, TableDef, hash_distributed
from repro.common.errors import BindError, SqlSyntaxError
from repro.common.types import INTEGER
from repro.optimizer.binder import bind_query
from repro.pdw.engine import PdwEngine
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse

from tests.conftest import canonical


@pytest.fixture(scope="module")
def union_env():
    appliance = Appliance(3)
    appliance.create_table(TableDef(
        "t", [Column("a", INTEGER), Column("b", INTEGER)],
        hash_distributed("a")))
    appliance.create_table(TableDef(
        "u", [Column("x", INTEGER), Column("y", INTEGER)],
        hash_distributed("x")))
    appliance.load_rows("t", [(i, i % 5) for i in range(40)])
    appliance.load_rows("u", [(i % 20, i % 3) for i in range(30)])
    shell = appliance.compute_shell_database()
    return appliance, PdwEngine(shell)


class TestParser:
    def test_union_all_parses(self):
        stmt = parse("SELECT a FROM t UNION ALL SELECT x FROM u")
        assert isinstance(stmt, ast.UnionSelect)
        assert len(stmt.selects) == 2

    def test_three_branches(self):
        stmt = parse("SELECT a FROM t UNION ALL SELECT x FROM u "
                     "UNION ALL SELECT b FROM t")
        assert len(stmt.selects) == 3

    def test_order_by_lifted_to_union(self):
        stmt = parse("SELECT a FROM t UNION ALL SELECT x FROM u "
                     "ORDER BY a LIMIT 3")
        assert stmt.order_by and stmt.limit == 3
        assert not stmt.selects[-1].order_by
        assert stmt.selects[-1].limit is None

    def test_union_without_all_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t UNION SELECT x FROM u")

    def test_inner_order_by_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t ORDER BY a UNION ALL SELECT x FROM u")

    def test_roundtrip(self):
        sql = "SELECT a FROM t UNION ALL SELECT x FROM u ORDER BY a ASC"
        assert parse(parse(sql).to_sql()).to_sql() == parse(sql).to_sql()

    def test_union_in_derived_table(self):
        stmt = parse("SELECT v FROM (SELECT a AS v FROM t UNION ALL "
                     "SELECT x FROM u) AS d")
        derived = stmt.from_items[0]
        assert isinstance(derived.subquery, ast.UnionSelect)


class TestBinder:
    def test_union_builds_logical_union(self, mini_catalog):
        query = bind_query(
            mini_catalog,
            "SELECT c_custkey FROM customer UNION ALL "
            "SELECT o_custkey FROM orders")
        assert isinstance(query.root, LogicalUnionAll)
        assert len(query.root.branch_columns) == 2

    def test_output_names_from_first_branch(self, mini_catalog):
        query = bind_query(
            mini_catalog,
            "SELECT c_custkey AS k FROM customer UNION ALL "
            "SELECT o_custkey FROM orders")
        assert query.output_names == ["k"]

    def test_arity_mismatch_rejected(self, mini_catalog):
        with pytest.raises(BindError):
            bind_query(
                mini_catalog,
                "SELECT c_custkey, c_name FROM customer UNION ALL "
                "SELECT o_custkey FROM orders")

    def test_order_by_name(self, mini_catalog):
        query = bind_query(
            mini_catalog,
            "SELECT c_custkey AS k FROM customer UNION ALL "
            "SELECT o_custkey FROM orders ORDER BY k DESC")
        assert query.order_by[0][1] is False

    def test_order_by_unknown_rejected(self, mini_catalog):
        with pytest.raises(BindError):
            bind_query(
                mini_catalog,
                "SELECT c_custkey AS k FROM customer UNION ALL "
                "SELECT o_custkey FROM orders ORDER BY zz")


EXECUTION_QUERIES = [
    "SELECT a AS v FROM t WHERE b = 1 UNION ALL SELECT x FROM u "
    "ORDER BY v",
    "SELECT a, b FROM t UNION ALL SELECT x, y FROM u "
    "UNION ALL SELECT b, a FROM t ORDER BY 1, 2 LIMIT 10",
    "SELECT v, COUNT(*) AS c FROM (SELECT b AS v FROM t UNION ALL "
    "SELECT y FROM u) AS d GROUP BY v ORDER BY v",
    "SELECT a FROM t WHERE a IN (SELECT x FROM u UNION ALL "
    "SELECT b FROM t WHERE b > 2) ORDER BY a",
    "SELECT SUM(v) AS total FROM (SELECT a AS v FROM t UNION ALL "
    "SELECT x FROM u) AS d",
]


class TestExecution:
    @pytest.mark.parametrize("sql", EXECUTION_QUERIES)
    def test_union_distributed_equals_reference(self, union_env, sql):
        appliance, engine = union_env
        compiled = engine.compile(sql)
        result = DsqlRunner(appliance).run(compiled.dsql_plan)
        reference = run_reference(appliance, sql)
        assert canonical(result.rows) == canonical(reference.rows)

    def test_union_step_sql_reparses(self, union_env):
        _, engine = union_env
        compiled = engine.compile(EXECUTION_QUERIES[0])
        from repro.sql.parser import parse_query
        for step in compiled.dsql_plan.steps:
            parse_query(step.sql)

    def test_aligned_union_needs_no_movement(self, union_env):
        # Both branches hashed on the column feeding output position 0.
        _, engine = union_env
        compiled = engine.compile(
            "SELECT a FROM t UNION ALL SELECT x FROM u")
        from repro.pdw.dms import DataMovement
        moves = [n for n in compiled.pdw_plan.root.walk()
                 if isinstance(n.op, DataMovement)]
        assert moves == []
