"""Parallel runtime ⇄ serial backend equivalence on the full TPC-H
workload.

The schedulers never change *what* is computed, only *when*: rows,
per-step byte/row accounting, simulated times and profiler output must
be identical between the two backends.  Only the measured wall-clock
fields (``node_wall_seconds`` / ``wall_seconds``) may differ."""

from __future__ import annotations

import pytest

from repro.appliance.runner import DsqlRunner
from repro.appliance.scheduler import StepDag
from repro.obs.profiler import build_query_profile
from repro.workloads.tpch_queries import TPCH_QUERIES, query_names

from tests.conftest import canonical

#: The simulated/accounting fields of StepExecutionStats — everything
#: except the measured wall clocks, which legitimately differ between
#: backends.
COMPARED_FIELDS = (
    "step_index", "operation",
    "reader_bytes", "network_bytes", "writer_bytes", "bulk_bytes",
    "rows_moved", "relational_rows",
    "movement_seconds", "relational_seconds", "elapsed_seconds",
    "node_rows", "transfers", "node_operators",
)


def stats_view(stats):
    return [
        {name: getattr(step, name) for name in COMPARED_FIELDS}
        for step in stats
    ]


@pytest.mark.parametrize("name", query_names())
def test_tpch_parallel_matches_serial(name, tpch, tpch_engine):
    appliance, _ = tpch
    plan = tpch_engine.compile(TPCH_QUERIES[name]).dsql_plan
    serial = DsqlRunner(appliance, parallel=False).run(plan)
    parallel = DsqlRunner(appliance, parallel=True).run(plan)

    assert parallel.columns == serial.columns
    # row multisets must match; the global ORDER BY rows match exactly
    assert parallel.sorted_rows() == serial.sorted_rows()
    if plan.order_by:
        assert parallel.rows == serial.rows
    # per-step accounting is merged in node/step order → identical
    # floats, not merely approximately equal
    assert stats_view(parallel.step_stats) == stats_view(serial.step_stats)
    assert parallel.elapsed_seconds == serial.elapsed_seconds
    assert parallel.dms_seconds == serial.dms_seconds


@pytest.mark.parametrize("name", ["Q1", "Q5", "Q12"])
def test_tpch_profile_matches_serial(name, tpch, tpch_engine):
    appliance, _ = tpch
    sql = TPCH_QUERIES[name]
    plan = tpch_engine.compile(sql).dsql_plan

    def profiled(parallel: bool):
        result = DsqlRunner(appliance, parallel=parallel).run(
            plan, profile=True)
        return build_query_profile(
            plan.steps, result.step_stats,
            node_count=appliance.node_count,
            sql=sql,
            elapsed_seconds=result.elapsed_seconds,
            dms_seconds=result.dms_seconds,
        )

    serial = profiled(parallel=False)
    parallel = profiled(parallel=True)
    # Full structured export — skew tables, transfer matrices and
    # Q-errors — is bit-identical across backends.
    assert parallel.to_dict() == serial.to_dict()


def test_bushy_tpch_plan_exposes_step_parallelism(tpch_engine):
    """At least one TPC-H plan must have a DAG wider than a chain —
    otherwise DAG scheduling never overlaps anything."""
    widths = {}
    for name in query_names():
        plan = tpch_engine.compile(TPCH_QUERIES[name]).dsql_plan
        dag = StepDag(plan)
        widths[name] = dag.max_width
        # every step must be reachable and the Return must come last
        waves = dag.waves()
        assert sum(len(wave) for wave in waves) == len(plan.steps)
        if len(plan.steps) > 1:
            assert waves[-1] == [len(plan.steps) - 1]
    assert max(widths.values()) >= 2, widths


def test_parallel_runtime_with_interpreter_backend(tpch, tpch_engine):
    """parallel=True composes with compiled=False (re-parse per node)."""
    appliance, _ = tpch
    plan = tpch_engine.compile(TPCH_QUERIES["Q12"]).dsql_plan
    serial = DsqlRunner(appliance, parallel=False, compiled=False).run(plan)
    parallel = DsqlRunner(appliance, parallel=True, compiled=False).run(plan)
    assert canonical(parallel.rows) == canonical(serial.rows)
    assert stats_view(parallel.step_stats) == stats_view(serial.step_stats)
