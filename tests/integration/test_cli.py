"""CLI (`python -m repro`) tests."""

import json

import pytest

from repro.__main__ import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestCli:
    def test_explain(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "explain", "SELECT n_name FROM nation ORDER BY n_name")
        assert code == 0
        assert "DSQL plan" in out
        assert "Distributed plan" in out

    def test_run_prints_rows(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "run", "SELECT n_name FROM nation ORDER BY n_name LIMIT 3")
        assert code == 0
        assert "ALGERIA" in out
        assert "3 rows" in out

    def test_run_truncates(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "run", "--max-rows", "2",
            "SELECT n_name FROM nation ORDER BY n_name")
        assert code == 0
        assert "more rows" in out

    def test_memo(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "memo", "SELECT n_name FROM nation")
        assert code == 0
        assert "Group" in out and "(root)" in out

    def test_calibrate(self, capsys):
        code, out = run_cli(capsys, "--nodes", "4", "calibrate")
        assert code == 0
        assert "reader_hash" in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_join_query_roundtrip(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "run", "SELECT c_name FROM customer, orders "
                   "WHERE c_custkey = o_custkey LIMIT 1")
        assert code == 0
        assert "DSQL steps" in out

    def test_stats_json_parses(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "stats", "--json", "SELECT COUNT(*) AS n FROM nation")
        assert code == 0
        parsed = json.loads(out)
        assert [s["name"] for s in parsed["spans"]] == ["compile"]
        assert parsed["counters"]


class TestProfileCli:
    SQL = ("SELECT l_returnflag, COUNT(*) AS n FROM lineitem "
           "GROUP BY l_returnflag")

    def test_profile_renders_tables(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "profile", self.SQL)
        assert code == 0
        assert "skew cov" in out
        assert "q-err" in out
        assert "Q-error:" in out
        assert "Get(lineitem)" in out

    def test_profile_json_parses(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "profile", "--json", self.SQL)
        assert code == 0
        parsed = json.loads(out)
        assert parsed["node_count"] == 4
        assert parsed["steps"]
        assert parsed["operators"]
        assert parsed["q_error"]["count"] > 0

    def test_profile_jsonl_and_prometheus_sinks(self, capsys, tmp_path):
        from repro.obs.export import validate_jsonl

        jsonl = tmp_path / "events.jsonl"
        prom = tmp_path / "metrics.prom"
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "profile", self.SQL,
            "--jsonl", str(jsonl), "--prometheus", str(prom))
        assert code == 0
        assert validate_jsonl(jsonl.read_text()) == []
        assert "pdw_step_rows_total" in prom.read_text()

    def test_schema_check_module(self, capsys, tmp_path):
        from repro.obs.schema_check import main as check_main

        jsonl = tmp_path / "events.jsonl"
        run_cli(capsys, "--scale", "0.001", "--nodes", "4",
                "profile", self.SQL, "--jsonl", str(jsonl))
        assert check_main([str(jsonl)]) == 0
        jsonl.write_text('{"event": "bogus"}\n')
        assert check_main([str(jsonl)]) == 1


class TestWhyCli:
    SQL = ("SELECT c_name FROM customer, orders "
           "WHERE c_custkey = o_custkey")

    def test_why_renders_diff_and_trace(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4", "why", self.SQL)
        assert code == 0
        assert "Why this plan?" in out
        assert "Search space:" in out
        assert "Per-group enumeration:" in out

    def test_why_jsonl_validates_with_required_events(self, capsys,
                                                      tmp_path):
        from repro.obs.schema_check import main as check_main

        jsonl = tmp_path / "opt.jsonl"
        prom = tmp_path / "opt.prom"
        code, _out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4", "why", self.SQL,
            "--jsonl", str(jsonl), "--prometheus", str(prom))
        assert code == 0
        assert check_main([str(jsonl), "--require", "optimizer_summary",
                           "--require", "plan_choice"]) == 0
        text = prom.read_text()
        assert "pdw_optimizer_options_considered" in text
        # The smoke contract: a nonzero considered count was exported.
        line = next(l for l in text.splitlines()
                    if l.startswith("pdw_optimizer_options_considered "))
        assert float(line.split()[-1]) > 0

    def test_why_with_hint(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4", "why", self.SQL,
            "--hint", "orders=replicate")
        assert code == 0
        assert "Hint override" in out

    def test_why_bad_hint_errors(self, capsys):
        code = main(["--scale", "0.001", "--nodes", "4", "why", self.SQL,
                     "--hint", "orders"])
        assert code == 1

    def test_schema_check_require_missing_fails(self, capsys, tmp_path):
        from repro.obs.schema_check import main as check_main

        jsonl = tmp_path / "events.jsonl"
        run_cli(capsys, "--scale", "0.001", "--nodes", "4",
                "profile", "SELECT n_name FROM nation",
                "--jsonl", str(jsonl))
        # Profile logs contain no optimizer events.
        assert check_main([str(jsonl),
                           "--require", "optimizer_summary"]) == 1

    def test_schema_check_require_unknown_type_rejected(self, tmp_path):
        from repro.obs.schema_check import main as check_main

        jsonl = tmp_path / "events.jsonl"
        jsonl.write_text("")
        with pytest.raises(SystemExit):
            check_main([str(jsonl), "--require", "no_such_event"])

    def test_explain_optimizer_flag(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "explain", "--optimizer", self.SQL)
        assert code == 0
        assert "DSQL plan" in out
        assert "Why this plan?" in out
        assert "Search space:" in out


class TestQuerystoreCli:
    ARGS = ("--scale", "0.001", "--nodes", "2", "querystore",
            "--clients", "1", "--queries", "2",
            "--hint", "customer=shuffle", "--factor", "1.2")

    def test_report_and_dogfood_rows(self, capsys):
        code, out = run_cli(capsys, *self.ARGS)
        assert code == 0
        assert "Query store:" in out
        assert "sys.query_store_runtime_stats (top 10):" in out
        assert "plan regression(s) detected" in out

    def test_regressions_only(self, capsys):
        code, out = run_cli(capsys, *self.ARGS, "--regressions")
        assert code == 0
        assert "plan regression(s) detected" in out
        assert "slower than prior plan" in out

    def test_jsonl_schema_checks_and_save_round_trip(self, capsys,
                                                     tmp_path):
        from repro.obs.query_store import QueryStore
        from repro.obs.schema_check import main as check_main

        jsonl = tmp_path / "store.jsonl"
        saved = tmp_path / "saved.jsonl"
        prom = tmp_path / "store.prom"
        code, _out = run_cli(capsys, *self.ARGS,
                             "--jsonl", str(jsonl),
                             "--prometheus", str(prom),
                             "--save", str(saved))
        assert code == 0
        assert check_main([str(jsonl),
                           "--require", "query_store_flush"]) == 0
        capsys.readouterr()
        shapes = [line for line in prom.read_text().splitlines()
                  if line.startswith("pdw_query_store_shapes ")]
        assert shapes and float(shapes[0].split()[1]) > 0
        reloaded = QueryStore()
        assert reloaded.load(str(saved)) > 0
        assert len(reloaded.regressions(factor=1.2)) >= 1

    def test_bad_hint_errors(self):
        code = main(["--scale", "0.001", "--nodes", "2", "querystore",
                     "--hint", "customer"])
        assert code == 1
