"""CLI (`python -m repro`) tests."""

import pytest

from repro.__main__ import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestCli:
    def test_explain(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "explain", "SELECT n_name FROM nation ORDER BY n_name")
        assert code == 0
        assert "DSQL plan" in out
        assert "Distributed plan" in out

    def test_run_prints_rows(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "run", "SELECT n_name FROM nation ORDER BY n_name LIMIT 3")
        assert code == 0
        assert "ALGERIA" in out
        assert "3 rows" in out

    def test_run_truncates(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "run", "--max-rows", "2",
            "SELECT n_name FROM nation ORDER BY n_name")
        assert code == 0
        assert "more rows" in out

    def test_memo(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "memo", "SELECT n_name FROM nation")
        assert code == 0
        assert "Group" in out and "(root)" in out

    def test_calibrate(self, capsys):
        code, out = run_cli(capsys, "--nodes", "4", "calibrate")
        assert code == 0
        assert "reader_hash" in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_join_query_roundtrip(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "run", "SELECT c_name FROM customer, orders "
                   "WHERE c_custkey = o_custkey LIMIT 1")
        assert code == 0
        assert "DSQL steps" in out
