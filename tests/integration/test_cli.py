"""CLI (`python -m repro`) tests."""

import json

import pytest

from repro.__main__ import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestCli:
    def test_explain(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "explain", "SELECT n_name FROM nation ORDER BY n_name")
        assert code == 0
        assert "DSQL plan" in out
        assert "Distributed plan" in out

    def test_run_prints_rows(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "run", "SELECT n_name FROM nation ORDER BY n_name LIMIT 3")
        assert code == 0
        assert "ALGERIA" in out
        assert "3 rows" in out

    def test_run_truncates(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "run", "--max-rows", "2",
            "SELECT n_name FROM nation ORDER BY n_name")
        assert code == 0
        assert "more rows" in out

    def test_memo(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "memo", "SELECT n_name FROM nation")
        assert code == 0
        assert "Group" in out and "(root)" in out

    def test_calibrate(self, capsys):
        code, out = run_cli(capsys, "--nodes", "4", "calibrate")
        assert code == 0
        assert "reader_hash" in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_join_query_roundtrip(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "run", "SELECT c_name FROM customer, orders "
                   "WHERE c_custkey = o_custkey LIMIT 1")
        assert code == 0
        assert "DSQL steps" in out

    def test_stats_json_parses(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "stats", "--json", "SELECT COUNT(*) AS n FROM nation")
        assert code == 0
        parsed = json.loads(out)
        assert [s["name"] for s in parsed["spans"]] == ["compile"]
        assert parsed["counters"]


class TestProfileCli:
    SQL = ("SELECT l_returnflag, COUNT(*) AS n FROM lineitem "
           "GROUP BY l_returnflag")

    def test_profile_renders_tables(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "profile", self.SQL)
        assert code == 0
        assert "skew cov" in out
        assert "q-err" in out
        assert "Q-error:" in out
        assert "Get(lineitem)" in out

    def test_profile_json_parses(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "profile", "--json", self.SQL)
        assert code == 0
        parsed = json.loads(out)
        assert parsed["node_count"] == 4
        assert parsed["steps"]
        assert parsed["operators"]
        assert parsed["q_error"]["count"] > 0

    def test_profile_jsonl_and_prometheus_sinks(self, capsys, tmp_path):
        from repro.obs.export import validate_jsonl

        jsonl = tmp_path / "events.jsonl"
        prom = tmp_path / "metrics.prom"
        code, out = run_cli(
            capsys, "--scale", "0.001", "--nodes", "4",
            "profile", self.SQL,
            "--jsonl", str(jsonl), "--prometheus", str(prom))
        assert code == 0
        assert validate_jsonl(jsonl.read_text()) == []
        assert "pdw_step_rows_total" in prom.read_text()

    def test_schema_check_module(self, capsys, tmp_path):
        from repro.obs.schema_check import main as check_main

        jsonl = tmp_path / "events.jsonl"
        run_cli(capsys, "--scale", "0.001", "--nodes", "4",
                "profile", self.SQL, "--jsonl", str(jsonl))
        assert check_main([str(jsonl)]) == 0
        jsonl.write_text('{"event": "bogus"}\n')
        assert check_main([str(jsonl)]) == 1
