"""PdwSession / EXPLAIN ANALYZE integration tests.

The per-step "actual" columns of ``explain(analyze=True)`` must agree
with what an independent ``DsqlRunner`` execution of the same plan
measures, and the rendered report must carry the estimated-vs-actual
table the ISSUE's acceptance criteria describe.
"""

import pytest

from repro import ExecutionOptions, PdwSession, TPCH_QUERIES
from repro.appliance.runner import DsqlRunner
from repro.common.errors import ReproError
from repro.pdw.dsql import StepKind

ANALYZE_QUERIES = ["Q1", "Q12", "Q14"]


@pytest.fixture(scope="module")
def session(tpch):
    appliance, shell = tpch
    return PdwSession(appliance=appliance, shell=shell)


class TestExplainAnalyze:
    @pytest.mark.parametrize("name", ANALYZE_QUERIES)
    def test_actuals_match_runner(self, session, tpch, name):
        appliance, _shell = tpch
        compiled = session.compile(TPCH_QUERIES[name])
        analyses, result = session.analyze_plan(compiled)

        reference = DsqlRunner(appliance).run(compiled.dsql_plan)
        assert len(analyses) == len(compiled.dsql_plan.steps)
        assert len(reference.step_stats) == len(analyses)

        for analysis, stats, step in zip(analyses, reference.step_stats,
                                         compiled.dsql_plan.steps):
            assert analysis.index == step.index
            assert analysis.actual_rows == stats.rows_moved
            if step.kind is StepKind.DMS:
                assert analysis.kind == "DMS"
                assert analysis.actual_bytes == stats.total_bytes()
            else:
                assert analysis.kind == "Return"
                assert analysis.actual_bytes == sum(
                    stats.network_bytes.values())
            assert analysis.actual_seconds == pytest.approx(
                stats.elapsed_seconds)
            assert analysis.estimated_rows == step.estimated_rows
            assert analysis.estimated_seconds == step.estimated_cost

        # The joined result rows equal a plain run of the same plan.
        assert result.sorted_rows() == reference.sorted_rows()

    @pytest.mark.parametrize("name", ANALYZE_QUERIES)
    def test_estimates_present_for_movement_steps(self, session, name):
        compiled = session.compile(TPCH_QUERIES[name])
        analyses, _result = session.analyze_plan(compiled)
        for analysis in analyses:
            if analysis.kind == "DMS" and analysis.actual_rows:
                assert analysis.estimated_rows > 0
                assert analysis.estimated_bytes > 0

    def test_rendered_table(self, session):
        text = session.explain(TPCH_QUERIES["Q12"], analyze=True)
        assert "est rows" in text and "act rows" in text
        assert "est bytes" in text and "act bytes" in text
        assert "est s" in text and "act s" in text
        assert "result rows" in text

    def test_explain_without_analyze_does_not_execute(self, session):
        text = session.explain(TPCH_QUERIES["Q12"])
        assert "DSQL plan" in text
        assert "act rows" not in text

    def test_explain_verbose_includes_counters(self, session):
        text = session.explain(TPCH_QUERIES["Q12"], verbose=True)
        assert "Compilation counters" in text
        assert "serial.memo.groups" in text
        assert "pdw.alternatives.retained" in text


class TestSessionApi:
    def test_bound_query(self, tpch):
        appliance, shell = tpch
        session = PdwSession("SELECT n_name FROM nation ORDER BY n_name",
                             appliance=appliance, shell=shell)
        result = session.run()
        assert result.rows[0][0] == "ALGERIA"
        text = session.explain(analyze=True)
        assert "act rows" in text

    def test_missing_sql_raises(self, tpch):
        appliance, shell = tpch
        session = PdwSession(appliance=appliance, shell=shell)
        with pytest.raises(ReproError):
            session.compile()

    def test_mismatched_appliance_shell_raises(self, tpch):
        appliance, _shell = tpch
        with pytest.raises(ReproError):
            PdwSession(appliance=appliance)

    def test_trace_covers_pipeline_and_execution(self, tpch):
        appliance, shell = tpch
        session = PdwSession(appliance=appliance, shell=shell)
        session.run(TPCH_QUERIES["Q12"])
        report = session.trace_report()
        for phase in ("compile", "parse", "serial", "xml.serialize",
                      "xml.parse", "pdw.optimize", "dsql.generate",
                      "execute"):
            assert phase in report
        compile_span = session.tracer.find("compile")
        assert compile_span.duration_seconds > 0.0
        execute_span = session.tracer.find("execute")
        assert execute_span.duration_seconds > 0.0

    def test_stats_report(self, tpch):
        appliance, shell = tpch
        session = PdwSession(appliance=appliance, shell=shell)
        session.compile(TPCH_QUERIES["Q12"])
        report = session.stats_report()
        assert "Phase timings" in report
        assert "pdw.alternatives.generated" in report

    def test_untraced_session_still_works(self, tpch):
        appliance, shell = tpch
        session = PdwSession(appliance=appliance, shell=shell,
                             options=ExecutionOptions(trace=False))
        result = session.run("SELECT COUNT(*) AS n FROM nation")
        assert result.rows == [(25,)]
        assert session.trace_report() == "(no spans recorded)"
        # Derived counters still available without a tracer.
        compiled = session.compile("SELECT COUNT(*) AS n FROM nation")
        counters = compiled.compile_counters()
        assert counters["serial.memo.groups"] > 0
        assert "pdw.alternatives.retained" in counters
