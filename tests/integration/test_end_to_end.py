"""End-to-end correctness: every compiled DSQL plan, executed on the
simulated appliance, matches the single-system-image reference."""

import pytest

from repro.appliance.runner import DsqlRunner, run_reference
from repro.workloads.tpch_queries import TPCH_QUERIES, query_names

from tests.conftest import canonical


@pytest.mark.parametrize("name", query_names())
def test_tpch_query_distributed_equals_reference(name, tpch, tpch_engine):
    appliance, _ = tpch
    sql = TPCH_QUERIES[name]
    compiled = tpch_engine.compile(sql)
    result = DsqlRunner(appliance).run(compiled.dsql_plan)
    reference = run_reference(appliance, sql)
    assert result.columns == reference.columns
    assert canonical(result.rows) == canonical(reference.rows)


AD_HOC = [
    # projection / filter shapes
    "SELECT c_custkey FROM customer WHERE c_custkey < 50",
    "SELECT c_custkey + 1 AS k1, c_acctbal * 2 AS doubled FROM customer "
    "WHERE c_acctbal > 0",
    # replicated-only query
    "SELECT n_name FROM nation WHERE n_regionkey = 2 ORDER BY n_name",
    # join on distribution keys (collocated)
    "SELECT o_orderkey, l_linenumber FROM orders, lineitem "
    "WHERE o_orderkey = l_orderkey AND o_totalprice > 300000",
    # join requiring movement, with duplicate column names on both sides
    "SELECT c.c_custkey, o.o_custkey FROM customer c, orders o "
    "WHERE c.c_custkey = o.o_custkey AND c.c_acctbal < 0",
    # aggregation over a moved join
    "SELECT c_mktsegment, COUNT(*) AS n, SUM(o_totalprice) AS total "
    "FROM customer, orders WHERE c_custkey = o_custkey "
    "GROUP BY c_mktsegment ORDER BY c_mktsegment",
    # distinct over non-key column
    "SELECT DISTINCT o_orderpriority FROM orders ORDER BY o_orderpriority",
    # scalar aggregate
    "SELECT MIN(o_orderdate), MAX(o_orderdate) FROM orders",
    # semi join with extra filters both sides
    "SELECT s_name FROM supplier WHERE s_suppkey IN "
    "(SELECT ps_suppkey FROM partsupp WHERE ps_availqty > 5000) "
    "ORDER BY s_name",
    # anti join
    "SELECT p_partkey FROM part WHERE p_partkey NOT IN "
    "(SELECT l_partkey FROM lineitem) ORDER BY p_partkey",
    # left outer join with null-padding visible in output
    "SELECT n_name, s_suppkey FROM nation LEFT JOIN supplier "
    "ON n_nationkey = s_nationkey ORDER BY n_name, s_suppkey",
    # correlated EXISTS
    "SELECT o_orderkey FROM orders o WHERE EXISTS "
    "(SELECT 1 FROM lineitem l WHERE l.l_orderkey = o.o_orderkey "
    "AND l.l_quantity > 49) ORDER BY o_orderkey",
    # case expression in aggregate
    "SELECT SUM(CASE WHEN o_orderstatus = 'F' THEN 1 ELSE 0 END) AS f "
    "FROM orders",
    # three-way join with group by over replicated dimension
    "SELECT n_name, COUNT(*) AS customers FROM customer, nation "
    "WHERE c_nationkey = n_nationkey GROUP BY n_name ORDER BY n_name",
    # IN list + BETWEEN
    "SELECT COUNT(*) AS n FROM lineitem WHERE l_shipmode IN "
    "('MAIL', 'SHIP') AND l_quantity BETWEEN 10 AND 20",
    # top-k over computed expression
    "SELECT o_orderkey, o_totalprice * 0.1 AS tax FROM orders "
    "ORDER BY tax DESC LIMIT 5",
]


@pytest.mark.parametrize("sql", AD_HOC)
def test_ad_hoc_query_distributed_equals_reference(sql, tpch, tpch_engine):
    appliance, _ = tpch
    compiled = tpch_engine.compile(sql)
    result = DsqlRunner(appliance).run(compiled.dsql_plan)
    reference = run_reference(appliance, sql)
    assert canonical(result.rows) == canonical(reference.rows)


def test_temp_tables_cleaned_up(tpch, tpch_engine):
    appliance, _ = tpch
    compiled = tpch_engine.compile(
        "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey")
    DsqlRunner(appliance).run(compiled.dsql_plan)
    assert not any(t.is_temp for t in appliance.catalog.tables())


def test_repeated_execution_is_stable(tpch, tpch_engine):
    appliance, _ = tpch
    sql = "SELECT COUNT(*) AS n FROM lineitem"
    compiled = tpch_engine.compile(sql)
    first = DsqlRunner(appliance).run(compiled.dsql_plan)
    second = DsqlRunner(appliance).run(compiled.dsql_plan)
    assert first.rows == second.rows


def test_execution_reports_dms_time(tpch, tpch_engine):
    appliance, _ = tpch
    compiled = tpch_engine.compile(
        "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey")
    result = DsqlRunner(appliance).run(compiled.dsql_plan)
    assert result.dms_seconds > 0
    assert result.elapsed_seconds >= result.dms_seconds
