"""PdwService end to end: caching, concurrency, accounting, correctness.

The hammer tests are the PR's acceptance gate: many threads, same and
distinct shapes, exactly one compilation per normalized key, and results
identical to an uncached serial session across the TPC-H suite.
"""

from __future__ import annotations

import random
import threading

import pytest

from tests.conftest import canonical
from repro import ExecutionOptions, PdwSession
from repro.service import PdwService, run_traffic
from repro.workloads.tpch_queries import TPCH_QUERIES

#: The suite subset whose plans materialize temp tables and stress every
#: movement kind; the full-suite equivalence test below covers the rest.
HAMMER_TEMPLATES = [
    "SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < {}",
    "SELECT n_name FROM nation WHERE n_nationkey < {} ORDER BY n_name",
    "SELECT c_custkey, o_orderdate FROM orders, customer "
    "WHERE o_custkey = c_custkey AND o_totalprice > {}",
]


@pytest.fixture(scope="module")
def baseline_session(tpch):
    appliance, shell = tpch
    return PdwSession(appliance=appliance, shell=shell,
                      options=ExecutionOptions(trace=False))


class TestQueryResultSurface:
    def test_fields_on_miss_and_hit(self, service):
        sql = "SELECT COUNT(*) AS n FROM orders WHERE o_orderkey < 100"
        miss = service.execute(sql)
        assert miss.cache_hit is False
        assert miss.plan is not None and miss.plan.dsql_plan.steps
        assert miss.timing is not None
        assert miss.timing.compile_seconds > 0
        hit = service.execute(sql)
        assert hit.cache_hit is True
        assert hit.timing.compile_seconds == 0.0
        assert hit.rows == miss.rows
        assert list(hit) == hit.rows and len(hit) == len(hit.rows)

    def test_columns_preserved(self, service, baseline_session):
        sql = "SELECT n_name, n_nationkey FROM nation ORDER BY n_name"
        result = service.execute(sql)
        expected = baseline_session.run(sql)
        assert result.columns == expected.columns
        assert result.rows == expected.rows

    def test_plan_cache_opt_out(self, service):
        sql = ("SELECT COUNT(*) AS n FROM supplier "
               "WHERE s_suppkey < 5")
        first = service.execute(
            sql, options=ExecutionOptions(use_plan_cache=False))
        second = service.execute(
            sql, options=ExecutionOptions(use_plan_cache=False))
        assert first.cache_hit is False and second.cache_hit is False
        assert first.rows == second.rows


class TestMetricsAccounting:
    def test_cache_and_tenant_series(self, tpch):
        appliance, shell = tpch
        service = PdwService(appliance=appliance, shell=shell)
        try:
            sql = "SELECT COUNT(*) AS n FROM region WHERE r_regionkey < {}"
            service.execute(sql.format(3), tenant="acme")
            service.execute(sql.format(4), tenant="acme")
            text = service.metrics_text()
            assert "pdw_service_plan_cache_hits 1" in text
            assert "pdw_service_plan_cache_misses 1" in text
            assert ('pdw_service_queries_total{outcome="ok",'
                    'priority="normal",tenant="acme"} 2') in text
            assert 'pdw_service_tenant_seconds_total{tenant="acme"}' \
                in text
            assert "pdw_service_latency_seconds_bucket" in text
        finally:
            service.close()

    def test_failed_queries_accounted(self, tpch):
        appliance, shell = tpch
        service = PdwService(appliance=appliance, shell=shell)
        try:
            with pytest.raises(Exception):
                service.execute("SELECT nope FROM nowhere")
            assert 'outcome="failed"' in service.metrics_text()
            assert service.admission.in_flight == 0, \
                "a failed query must release its slot"
        finally:
            service.close()


class TestConcurrencyHammer:
    def test_single_compilation_per_shape(self, tpch):
        appliance, shell = tpch
        service = PdwService(appliance=appliance, shell=shell,
                             max_in_flight=4, max_queue=256)
        compile_calls = []
        inner_compile = service.engine.compile

        def counting_compile(sql, **kwargs):
            compile_calls.append(sql)
            return inner_compile(sql, **kwargs)

        service.engine.compile = counting_compile
        try:
            # Distinct integer literals per arrival — every execution
            # after the first per template is a bind-and-substitute hit.
            expected = {}
            arrivals = []
            rng = random.Random(7)
            for i in range(24):
                template = HAMMER_TEMPLATES[i % len(HAMMER_TEMPLATES)]
                sql = template.format(10 + i + rng.randint(0, 3) * 100)
                arrivals.append(sql)
            baseline = PdwSession(appliance=appliance, shell=shell,
                                  options=ExecutionOptions(trace=False))
            for sql in set(arrivals):
                expected[sql] = canonical(baseline.run(sql).rows)

            failures = []

            def client(worker_id):
                for index, sql in enumerate(arrivals):
                    if index % 4 != worker_id % 4:
                        continue
                    result = service.execute(sql)
                    if canonical(result.rows) != expected[sql]:
                        failures.append((sql, result.rows))

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
                assert not thread.is_alive()
            assert not failures, failures[:2]
            # One compile per distinct shape, no duplicate single-flight
            # losers, no ambiguity recompiles for these literal choices.
            assert len(compile_calls) == len(HAMMER_TEMPLATES)
            for entry in service.plan_cache.entries():
                assert entry.compile_count == 1
            # A racer that misses lookup but loses the single-flight
            # race still counts a miss, so misses may exceed the
            # template count — but every arrival is accounted.
            stats = service.plan_cache.stats()
            assert stats["hits"] + stats["misses"] == 24
            assert stats["misses"] >= len(HAMMER_TEMPLATES)
            assert stats["hits"] >= 24 - 2 * len(HAMMER_TEMPLATES)
        finally:
            service.close()

    def test_no_temp_tables_leak(self, tpch):
        appliance, shell = tpch
        service = PdwService(appliance=appliance, shell=shell,
                             max_in_flight=4)
        try:
            sql = TPCH_QUERIES["Q3"]  # multi-step plan with temps

            def client():
                service.execute(sql)

            threads = [threading.Thread(target=client) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
                assert not thread.is_alive()
            leftovers = [t.name for t in appliance.catalog.tables()
                         if t.is_temp]
            assert leftovers == [], \
                f"executions must drop exactly their own temps: {leftovers}"
        finally:
            service.close()

    def test_submit_and_execute_many(self, service):
        statements = [
            "SELECT COUNT(*) AS n FROM nation WHERE n_nationkey < 5",
            "SELECT COUNT(*) AS n FROM nation WHERE n_nationkey < 9",
            "SELECT COUNT(*) AS n FROM nation WHERE n_nationkey < 21",
        ]
        results = service.execute_many(statements)
        assert [r.rows[0][0] for r in results] == [5, 9, 21]

    def test_traffic_run_is_clean(self, tpch):
        appliance, shell = tpch
        service = PdwService(appliance=appliance, shell=shell,
                             max_in_flight=4, max_queue=128)
        try:
            report = run_traffic(service, clients=3,
                                 queries_per_client=4, seed=99)
        finally:
            service.close()
        assert report.errors == 0
        assert report.completed + report.rejected == 12
        assert report.completed > 0
        assert report.p99 >= report.p95 >= report.p50 > 0
        assert report.queries_per_second > 0


class TestTpchSuiteEquivalence:
    """Cached execution is row-identical to an uncached serial session
    across the whole TPC-H suite (miss path AND pure-hit path)."""

    def test_suite_cached_equals_uncached(self, tpch):
        appliance, shell = tpch
        service = PdwService(appliance=appliance, shell=shell)
        baseline = PdwSession(appliance=appliance, shell=shell,
                              options=ExecutionOptions(trace=False,
                                                       parallel=False))
        try:
            for name, sql in TPCH_QUERIES.items():
                expected = canonical(baseline.run(sql).rows)
                miss = service.execute(sql)
                hit = service.execute(sql)
                assert hit.cache_hit is True, name
                assert canonical(miss.rows) == expected, name
                assert canonical(hit.rows) == expected, name
        finally:
            service.close()
        stats = service.plan_cache.stats()
        assert stats["misses"] == len(TPCH_QUERIES)
        assert stats["hits"] == len(TPCH_QUERIES)


class TestSlowThreshold:
    """The slow-query threshold resolves ctor arg > options field >
    module default; an explicitly passed registry keeps its own."""

    def test_resolution_order(self, tpch):
        from repro.obs.requests import (DEFAULT_SLOW_SECONDS,
                                        RequestRegistry)
        appliance, shell = tpch
        default = PdwService(appliance=appliance, shell=shell)
        via_options = PdwService(
            appliance=appliance, shell=shell,
            options=ExecutionOptions(slow_seconds=5.0))
        via_ctor = PdwService(
            appliance=appliance, shell=shell,
            options=ExecutionOptions(slow_seconds=5.0),
            slow_seconds=0.25)
        shared = RequestRegistry(slow_threshold_seconds=9.0)
        via_registry = PdwService(appliance=appliance, shell=shell,
                                  slow_seconds=0.25, requests=shared)
        try:
            assert default.requests.slow_threshold_seconds \
                == DEFAULT_SLOW_SECONDS
            assert via_options.requests.slow_threshold_seconds == 5.0
            assert via_ctor.requests.slow_threshold_seconds == 0.25
            assert via_registry.requests.slow_threshold_seconds == 9.0
        finally:
            for svc in (default, via_options, via_ctor, via_registry):
                svc.close()

    def test_slow_request_counted(self, tpch):
        appliance, shell = tpch
        service = PdwService(appliance=appliance, shell=shell,
                             slow_seconds=0.0)
        try:
            service.execute("SELECT COUNT(*) AS n FROM nation")
            # Threshold zero: every completed request is slow.
            assert service.requests.stats()["slow"] >= 1
        finally:
            service.close()
