"""Parameterized plan cache: normalization, binding, LRU, invalidation.

The correctness-critical properties live here: literals lift to markers
(so templates are shared), *except* where a constant is structural —
``TOP``/``LIMIT``, interval arithmetic, stable functions — and a cached
plan re-bound with wildly different literals returns exactly the rows a
fresh compilation would.
"""

from __future__ import annotations

import re

import pytest

from tests.conftest import canonical
from repro import PdwSession
from repro.service import ExecutionOptions, PlanCache, parameterize
from repro.service.plan_cache import (
    CacheEntry,
    bind_params,
    instantiate_plan,
)
from repro.workloads.tpch_queries import TPCH_QUERIES


class TestParameterize:
    def test_same_shape_same_key(self):
        a = parameterize("SELECT n_name FROM nation "
                         "WHERE n_nationkey < 5")
        b = parameterize("SELECT n_name FROM nation "
                         "WHERE n_nationkey < 17")
        assert a.key == b.key
        assert a.params == (("int", 5, False),)
        assert b.params == (("int", 17, False),)

    def test_date_literals_lift(self):
        a = parameterize(TPCH_QUERIES["Q1"])
        b = parameterize(TPCH_QUERIES["Q1"].replace(
            "1998-09-02", "1993-01-01"))
        assert a.key == b.key
        assert ("str", "1998-09-02", True) in a.params

    def test_different_shape_different_key(self):
        a = parameterize("SELECT n_name FROM nation "
                         "WHERE n_nationkey < 5")
        b = parameterize("SELECT n_name FROM nation "
                         "WHERE n_nationkey <= 5")
        assert a.key != b.key

    def test_limit_stays_in_key(self):
        base = ("SELECT l_orderkey FROM lineitem WHERE l_quantity < 10 "
                "ORDER BY l_orderkey LIMIT {}")
        a = parameterize(base.format(10))
        b = parameterize(base.format(1000))
        assert a.key != b.key
        assert "10" in a.key  # the limit is part of the template
        # The predicate literal still lifted.
        assert a.params == b.params == (("int", 10, False),)

    def test_dateadd_arguments_stay_structural(self):
        shape = parameterize(
            "SELECT s_suppkey FROM supplier "
            "WHERE s_suppkey < 9 "
            "AND DATEADD(year, 1, DATE '1994-01-01') > DATE '1995-01-01'")
        assert ("int", 1, False) in shape.structural
        assert ("str", "1994-01-01", True) in shape.structural
        # Only the comparison literals were lifted.
        assert shape.params == (("int", 9, False),
                                ("str", "1995-01-01", True))
        assert "DATEADD" in shape.key and "1994-01-01" in shape.key

    def test_substring_arguments_stay_structural(self):
        shape = parameterize(
            "SELECT c_custkey FROM customer "
            "WHERE SUBSTRING(c_phone, 1, 2) = '13'")
        assert ("int", 1, False) in shape.structural
        assert ("int", 2, False) in shape.structural
        assert shape.params == (("str", "13", False),)

    def test_hints_participate_in_key(self):
        sql = "SELECT n_name FROM nation WHERE n_nationkey < 5"
        bare = parameterize(sql)
        hinted = parameterize(sql, hints=(("nation", "replicate"),))
        assert bare.key != hinted.key

    def test_null_and_bool_stay_structural(self):
        shape = parameterize(
            "SELECT n_name FROM nation WHERE n_name IS NULL")
        assert shape.params == ()


class TestBindParams:
    def test_identical_vector_pure_hit(self):
        params = (("int", 5, False),)
        assert bind_params(params, params, frozenset()) == {}

    def test_changed_values_map(self):
        template = (("int", 5, False), ("str", "A", False))
        requested = (("int", 9, False), ("str", "A", False))
        mapping = bind_params(template, requested, frozenset())
        assert mapping == {("int", 5, False): ("int", 9, False)}

    def test_diverging_duplicates_ambiguous(self):
        template = (("int", 5, False), ("int", 5, False))
        requested = (("int", 5, False), ("int", 9, False))
        assert bind_params(template, requested, frozenset()) is None

    def test_consistent_duplicates_fine(self):
        template = (("int", 5, False), ("int", 5, False))
        requested = (("int", 9, False), ("int", 9, False))
        mapping = bind_params(template, requested, frozenset())
        assert mapping == {("int", 5, False): ("int", 9, False)}

    def test_structural_collision_ambiguous(self):
        template = (("int", 5, False),)
        requested = (("int", 9, False),)
        structural = frozenset({("int", 5, False)})
        assert bind_params(template, requested, structural) is None

    def test_length_mismatch_refused(self):
        assert bind_params((("int", 5, False),), (), frozenset()) is None


class TestPlanCacheStructure:
    @staticmethod
    def _entry(key: str, version: int = 0) -> CacheEntry:
        shape = parameterize(key)
        return CacheEntry(shape=shape, compiled=None,
                          schema_version=version)

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        first = self._entry("SELECT n_name FROM nation "
                            "WHERE n_nationkey < 1")
        second = self._entry("SELECT n_name FROM nation "
                             "WHERE n_nationkey > 1")
        third = self._entry("SELECT n_regionkey FROM nation "
                            "WHERE n_nationkey < 1")
        cache.insert(first)
        cache.insert(second)
        # Touch `first` so `second` is the LRU victim.
        assert cache.lookup(first.shape, 0) is first
        cache.insert(third)
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        assert cache.peek(second.shape.key) is None
        assert cache.peek(first.shape.key) is first

    def test_schema_version_invalidates(self):
        cache = PlanCache(capacity=4)
        entry = self._entry("SELECT n_name FROM nation "
                            "WHERE n_nationkey < 1", version=1)
        cache.insert(entry)
        assert cache.lookup(entry.shape, 1) is entry
        assert cache.lookup(entry.shape, 2) is None  # DDL happened
        stats = cache.stats()
        assert stats["invalidations"] == 1
        assert len(cache) == 0

    def test_invalidate_all(self):
        cache = PlanCache(capacity=4)
        cache.insert(self._entry("SELECT n_name FROM nation "
                                 "WHERE n_nationkey < 1"))
        cache.insert(self._entry("SELECT n_name FROM nation "
                                 "WHERE n_nationkey > 1"))
        assert cache.invalidate_all() == 2
        assert len(cache) == 0

    def test_hit_miss_counters(self):
        cache = PlanCache(capacity=4)
        entry = self._entry("SELECT n_name FROM nation "
                            "WHERE n_nationkey < 1")
        assert cache.lookup(entry.shape, 0) is None
        cache.insert(entry)
        cache.lookup(entry.shape, 0)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1


class TestInstantiation:
    def test_temp_namespacing(self, tpch_engine):
        compiled = tpch_engine.compile(TPCH_QUERIES["Q3"])
        plan, temps = instantiate_plan(compiled, None, execution_id=42)
        assert temps, "Q3 must materialize temp tables"
        assert all(name.endswith("_E42") for name in temps)
        # Every renamed destination is consistently referenced.
        for step in plan.steps:
            if step.destination_table is not None:
                assert step.destination_table.name.endswith("_E42")
        original_names = [s.destination_table.name
                          for s in compiled.dsql_plan.steps
                          if s.destination_table is not None]
        final_sql = plan.steps[-1].sql
        for name in original_names:
            # Token match: TEMP_ID_1_E42 must not count as TEMP_ID_1
            # (underscore is a word character, so \b excludes it).
            assert re.search(rf"\b{name}\b", final_sql) is None

    def test_original_plan_untouched(self, tpch_engine):
        compiled = tpch_engine.compile(TPCH_QUERIES["Q3"])
        before = [s.sql for s in compiled.dsql_plan.steps]
        instantiate_plan(compiled, None, execution_id=7)
        assert [s.sql for s in compiled.dsql_plan.steps] == before


class TestCachedExecutionCorrectness:
    """Regression for the headline bug class: a cached plan re-bound
    with different literals must return exactly what a fresh
    compilation returns."""

    def test_q1_wildly_different_date(self, service, tpch):
        appliance, shell = tpch
        sql_late = TPCH_QUERIES["Q1"]           # DATE '1998-09-02'
        sql_early = sql_late.replace("1998-09-02", "1992-03-01")
        miss = service.execute(sql_late)
        assert miss.cache_hit is False
        hit = service.execute(sql_early)
        assert hit.cache_hit is True, \
            "same shape, different date must hit the cache"
        fresh = PdwSession(appliance=appliance, shell=shell,
                           options=ExecutionOptions(trace=False))
        expected = fresh.run(sql_early)
        assert canonical(hit.rows) == canonical(expected.rows)
        assert canonical(hit.rows) != canonical(miss.rows), \
            "the two date cutoffs must actually differ at this scale"

    def test_limit_not_folded_at_execution(self, service):
        base = ("SELECT l_orderkey FROM lineitem WHERE l_quantity < 50 "
                "ORDER BY l_orderkey LIMIT {}")
        ten = service.execute(base.format(10))
        thousand = service.execute(base.format(1000))
        assert len(ten.rows) == 10
        assert len(thousand.rows) > 10, \
            "LIMIT 1000 must not reuse the LIMIT 10 plan"

    def test_ambiguous_binding_recompiles_correctly(self, service, tpch):
        appliance, shell = tpch
        # Template has one value in two positions; the new call splits
        # them — substitution is ambiguous, so the service must
        # recompile rather than guess.
        base = ("SELECT COUNT(*) AS n FROM lineitem "
                "WHERE l_quantity > {} AND l_linenumber < {}")
        service.execute(base.format(3, 3))
        split = service.execute(base.format(10, 4))
        assert split.cache_hit is False
        fresh = PdwSession(appliance=appliance, shell=shell,
                           options=ExecutionOptions(trace=False))
        expected = fresh.run(base.format(10, 4))
        assert split.rows == expected.rows

    def test_dateadd_query_cached_safely(self, service, tpch):
        appliance, shell = tpch
        # Q20's inner shape: DATEADD bounds the window; only the
        # comparison literals may float.
        sql = TPCH_QUERIES["Q20"]
        first = service.execute(sql)
        second = service.execute(sql)
        assert second.cache_hit is True
        fresh = PdwSession(appliance=appliance, shell=shell,
                           options=ExecutionOptions(trace=False))
        expected = fresh.run(sql)
        assert canonical(second.rows) == canonical(expected.rows)


class TestDdlInvalidation:
    def test_load_invalidates_cached_plans(self):
        from repro.workloads.tpch_datagen import build_tpch_appliance

        appliance, shell = build_tpch_appliance(scale=0.001,
                                                node_count=2)
        from repro.service import PdwService

        service = PdwService(appliance=appliance, shell=shell)
        try:
            sql = "SELECT COUNT(*) AS n FROM nation"
            before = service.execute(sql)
            assert service.execute(sql).cache_hit is True
            # DDL/data change: row count moves, schema_version bumps.
            appliance.load_rows("nation", [(99, "ATLANTIS", 0)])
            after = service.execute(sql)
            assert after.cache_hit is False, \
                "a load must invalidate cached templates"
            assert after.rows[0][0] == before.rows[0][0] + 1
            assert service.plan_cache.stats()["invalidations"] >= 1
        finally:
            service.close()

    def test_version_tracks_base_tables_not_temps(self, tpch_engine,
                                                  tpch):
        appliance, _shell = tpch
        version = appliance.schema_version
        compiled = tpch_engine.compile(TPCH_QUERIES["Q3"])
        plan, temps = instantiate_plan(compiled, None, execution_id=999)
        from repro.appliance.runner import DsqlRunner

        DsqlRunner(appliance).run(plan, keep_temps=True)
        for name in temps:
            appliance.drop_table(name)
        assert appliance.schema_version == version, \
            "temp-table churn must not invalidate the plan cache"
