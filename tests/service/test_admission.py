"""Admission control: slots, bounded queue, priorities, timeouts."""

from __future__ import annotations

import threading
import time

import pytest

from repro.common.errors import (
    AdmissionTimeoutError,
    QueueFullError,
    ServiceClosedError,
)
from repro.obs.metrics import MetricsRegistry
from repro.service import AdmissionController


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return False


class TestFastPath:
    def test_grant_and_release(self):
        controller = AdmissionController(max_in_flight=2)
        a = controller.admit()
        b = controller.admit(priority="interactive", tenant="acme")
        assert controller.in_flight == 2
        assert b.tenant == "acme" and b.priority == "interactive"
        controller.release(a)
        controller.release(b)
        assert controller.in_flight == 0
        assert controller.stats()["admitted_total"] == 2

    def test_release_is_idempotent(self):
        controller = AdmissionController(max_in_flight=1)
        ticket = controller.admit()
        controller.release(ticket)
        controller.release(ticket)
        assert controller.in_flight == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_in_flight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)


class TestQueueFull:
    def test_zero_queue_rejects_immediately(self):
        controller = AdmissionController(max_in_flight=1, max_queue=0)
        holder = controller.admit()
        with pytest.raises(QueueFullError) as info:
            controller.admit(tenant="acme", priority="batch")
        assert info.value.tenant == "acme"
        assert info.value.priority == "batch"
        assert controller.stats()["rejected_total"]["queue_full"] == 1
        controller.release(holder)

    def test_bounded_queue_overflow(self):
        controller = AdmissionController(max_in_flight=1, max_queue=1)
        holder = controller.admit()
        queued_error = []

        def waiter():
            try:
                ticket = controller.admit(timeout_seconds=5.0)
                controller.release(ticket)
            except Exception as error:  # pragma: no cover - fail path
                queued_error.append(error)

        thread = threading.Thread(target=waiter)
        thread.start()
        assert _wait_until(lambda: controller.queue_depth == 1)
        with pytest.raises(QueueFullError):
            controller.admit()  # queue already holds its one waiter
        controller.release(holder)
        thread.join(timeout=5.0)
        assert not thread.is_alive() and not queued_error


class TestTimeout:
    def test_waiter_times_out(self):
        controller = AdmissionController(max_in_flight=1)
        holder = controller.admit()
        started = time.monotonic()
        with pytest.raises(AdmissionTimeoutError):
            controller.admit(timeout_seconds=0.05)
        assert time.monotonic() - started < 2.0
        assert controller.stats()["rejected_total"]["timeout"] == 1
        # The timed-out waiter must not leak queue accounting.
        assert controller.queue_depth == 0
        controller.release(holder)
        # And the slot still works afterwards.
        ticket = controller.admit(timeout_seconds=0.05)
        controller.release(ticket)

    def test_default_timeout_applies(self):
        controller = AdmissionController(max_in_flight=1,
                                         default_timeout_seconds=0.05)
        holder = controller.admit()
        with pytest.raises(AdmissionTimeoutError):
            controller.admit()
        controller.release(holder)


class TestPriorityOrdering:
    def test_interactive_beats_batch(self):
        controller = AdmissionController(max_in_flight=1, max_queue=8)
        holder = controller.admit()
        grants = []

        def waiter(priority):
            ticket = controller.admit(priority=priority,
                                      timeout_seconds=10.0)
            grants.append(priority)
            controller.release(ticket)

        batch = threading.Thread(target=waiter, args=("batch",))
        batch.start()
        assert _wait_until(lambda: controller.queue_depth == 1)
        normal = threading.Thread(target=waiter, args=("normal",))
        normal.start()
        assert _wait_until(lambda: controller.queue_depth == 2)
        interactive = threading.Thread(target=waiter,
                                       args=("interactive",))
        interactive.start()
        assert _wait_until(lambda: controller.queue_depth == 3)
        controller.release(holder)
        for thread in (batch, normal, interactive):
            thread.join(timeout=10.0)
            assert not thread.is_alive()
        assert grants == ["interactive", "normal", "batch"]

    def test_fifo_within_class(self):
        controller = AdmissionController(max_in_flight=1, max_queue=8)
        holder = controller.admit()
        grants = []
        threads = []
        for label in ("first", "second", "third"):
            def waiter(tag=label):
                ticket = controller.admit(timeout_seconds=10.0)
                grants.append(tag)
                controller.release(ticket)

            thread = threading.Thread(target=waiter)
            threads.append(thread)
            depth = len(threads)
            thread.start()
            assert _wait_until(
                lambda want=depth: controller.queue_depth == want)
        controller.release(holder)
        for thread in threads:
            thread.join(timeout=10.0)
        assert grants == ["first", "second", "third"]


class TestClose:
    def test_close_wakes_waiters(self):
        controller = AdmissionController(max_in_flight=1)
        holder = controller.admit()
        errors = []

        def waiter():
            try:
                controller.admit(timeout_seconds=10.0)
            except ServiceClosedError as error:
                errors.append(error)

        thread = threading.Thread(target=waiter)
        thread.start()
        assert _wait_until(lambda: controller.queue_depth == 1)
        controller.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert len(errors) == 1
        with pytest.raises(ServiceClosedError):
            controller.admit()
        controller.release(holder)


class TestMetrics:
    def test_series_exported(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(max_in_flight=1, max_queue=0,
                                         metrics=metrics)
        ticket = controller.admit(priority="interactive")
        with pytest.raises(QueueFullError):
            controller.admit()
        controller.release(ticket)
        text = metrics.render_prometheus()
        assert 'pdw_service_admitted_total{priority="interactive"} 1' \
            in text
        assert 'pdw_service_rejected_total{priority="normal",' \
               'reason="queue_full"} 1' in text
        assert "pdw_service_in_flight 0" in text
