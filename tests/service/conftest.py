"""Service-layer fixtures: one shared PdwService over the session TPC-H
appliance.

The service never mutates base tables (every execution runs in a private
temp namespace and drops exactly its own temps), so sharing the
session-scoped appliance is safe — and keeps the concurrency tests
honest, since they all contend on one catalog.
"""

from __future__ import annotations

import pytest

from repro.service import PdwService


@pytest.fixture(scope="module")
def service(tpch):
    appliance, shell = tpch
    svc = PdwService(appliance=appliance, shell=shell,
                     max_in_flight=4, max_queue=64)
    yield svc
    svc.close()
