"""ExecutionOptions: the unified options surface and its shims."""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro import ExecutionOptions, PdwSession
from repro.common.errors import ReproError
from repro.service.options import PRIORITY_CLASSES, normalize_hints


class TestDefaults:
    def test_defaults(self):
        opts = ExecutionOptions()
        assert opts.compiled is True
        assert opts.parallel is None
        assert opts.trace is True
        assert opts.profile is False
        assert opts.hints is None
        assert opts.use_plan_cache is True
        assert opts.priority == "normal"
        assert opts.tenant == "default"
        assert opts.timeout_seconds is None
        assert opts.env_resolved is False

    def test_frozen(self):
        opts = ExecutionOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            opts.compiled = False

    def test_equal_and_hashable(self):
        a = ExecutionOptions(hints={"orders": "replicate"})
        b = ExecutionOptions(hints=(("orders", "replicate"),))
        assert a == b
        assert hash(a) == hash(b)

    def test_unknown_priority_rejected(self):
        with pytest.raises(ReproError, match="priority"):
            ExecutionOptions(priority="urgent")

    def test_negative_timeout_rejected(self):
        with pytest.raises(ReproError, match="timeout"):
            ExecutionOptions(timeout_seconds=-1.0)

    def test_negative_slow_seconds_rejected(self):
        with pytest.raises(ReproError, match="slow_seconds"):
            ExecutionOptions(slow_seconds=-0.5)

    def test_slow_seconds_default_and_override(self):
        assert ExecutionOptions().slow_seconds is None
        assert ExecutionOptions(slow_seconds=0.0).slow_seconds == 0.0
        opts = ExecutionOptions().override(slow_seconds=2.5)
        assert opts.slow_seconds == 2.5

    def test_priority_rank_order(self):
        ranks = [ExecutionOptions(priority=p).priority_rank
                 for p in ("interactive", "normal", "batch")]
        assert ranks == sorted(ranks)
        assert len(set(ranks)) == len(PRIORITY_CLASSES)


class TestHints:
    def test_mapping_normalized_sorted_lowercase(self):
        normalized = normalize_hints({"Orders": "replicate",
                                      "customer": "shuffle"})
        assert normalized == (("customer", "shuffle"),
                              ("orders", "replicate"))

    def test_empty_is_none(self):
        assert normalize_hints({}) is None
        assert normalize_hints(None) is None

    def test_hints_dict_round_trip(self):
        opts = ExecutionOptions(hints={"orders": "replicate"})
        assert opts.hints_dict == {"orders": "replicate"}
        assert ExecutionOptions().hints_dict is None

    def test_with_hints_and_override(self):
        base = ExecutionOptions()
        hinted = base.with_hints({"orders": "replicate"})
        assert hinted.hints == (("orders", "replicate"),)
        assert base.hints is None  # frozen: original untouched
        overridden = hinted.override(tenant="acme", priority="batch")
        assert overridden.tenant == "acme"
        assert overridden.hints == hinted.hints


class TestEnvResolution:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_RUNTIME", "0")
        assert ExecutionOptions(parallel=True).resolved().parallel is True

    def test_env_wins_over_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_RUNTIME", "0")
        resolved = ExecutionOptions().resolved(default_parallel=True)
        assert resolved.parallel is False

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_RUNTIME", raising=False)
        assert ExecutionOptions().resolved(
            default_parallel=True).parallel is True
        assert ExecutionOptions().resolved(
            default_parallel=False).parallel is False

    def test_resolution_is_idempotent(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_RUNTIME", raising=False)
        resolved = ExecutionOptions().resolved(default_parallel=True)
        assert resolved.env_resolved is True
        # A resolved object never re-reads the environment.
        monkeypatch.setenv("REPRO_PARALLEL_RUNTIME", "0")
        assert resolved.resolved(default_parallel=False) is resolved


class TestDeprecationShims:
    """The old kwarg spellings still work, but warn."""

    def test_session_ctor_kwargs_warn_and_apply(self, tpch):
        appliance, shell = tpch
        with pytest.warns(DeprecationWarning, match="compiled"):
            session = PdwSession(appliance=appliance, shell=shell,
                                 compiled=False)
        assert session.options.compiled is False
        with pytest.warns(DeprecationWarning, match="trace"):
            session = PdwSession(appliance=appliance, shell=shell,
                                 trace=False)
        assert session.options.trace is False
        assert not session.metrics.enabled
        with pytest.warns(DeprecationWarning, match="parallel"):
            session = PdwSession(appliance=appliance, shell=shell,
                                 parallel=False)
        assert session.options.parallel is False

    def test_per_call_hints_kwarg_warns(self, tpch):
        appliance, shell = tpch
        session = PdwSession(appliance=appliance, shell=shell)
        with pytest.warns(DeprecationWarning, match="hints"):
            compiled = session.compile(
                "SELECT COUNT(*) AS n FROM orders, customer "
                "WHERE o_custkey = c_custkey",
                hints={"customer": "replicate"})
        assert compiled is not None

    def test_options_spelling_is_clean(self, tpch):
        appliance, shell = tpch
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = PdwSession(
                appliance=appliance, shell=shell,
                options=ExecutionOptions(
                    hints={"customer": "replicate"}))
            result = session.run(
                "SELECT COUNT(*) AS n FROM orders, customer "
                "WHERE o_custkey = c_custkey")
        assert result.rows


class TestSessionOptionsIntegration:
    def test_run_attaches_plan_and_timing(self, tpch):
        appliance, shell = tpch
        session = PdwSession(appliance=appliance, shell=shell,
                             options=ExecutionOptions(trace=False))
        result = session.run("SELECT COUNT(*) AS n FROM lineitem")
        assert result.plan is not None
        assert result.plan.dsql_plan.steps
        assert result.cache_hit is False
        assert result.timing is not None
        assert result.timing.compile_seconds > 0
        assert result.timing.execute_seconds > 0
        assert (result.timing.total_seconds
                >= result.timing.compile_seconds)

    def test_result_iter_and_len(self, tpch):
        appliance, shell = tpch
        session = PdwSession(appliance=appliance, shell=shell,
                             options=ExecutionOptions(trace=False))
        result = session.run(
            "SELECT n_name FROM nation ORDER BY n_name LIMIT 5")
        assert len(result) == 5
        assert list(result) == result.rows

    def test_per_call_options_flip_runtime(self, tpch):
        appliance, shell = tpch
        session = PdwSession(appliance=appliance, shell=shell,
                             options=ExecutionOptions(trace=False))
        serial = session.run(
            "SELECT COUNT(*) AS n FROM lineitem",
            options=ExecutionOptions(parallel=False))
        parallel = session.run(
            "SELECT COUNT(*) AS n FROM lineitem",
            options=ExecutionOptions(parallel=True))
        assert serial.rows == parallel.rows
        # Variant runners are cached, not rebuilt per call.
        assert len(session._runners) <= 3
