"""Bound scalar expression tests."""

import pytest

from repro.algebra import expressions as ex
from repro.common.types import BOOLEAN, DOUBLE, INTEGER, varchar


def var(i, name="c", sql_type=INTEGER):
    return ex.ColumnVar(i, name, sql_type)


class TestColumnsUsed:
    def test_column_var(self):
        assert var(3).columns_used() == {3}

    def test_constant(self):
        assert ex.Constant(5).columns_used() == frozenset()

    def test_nested(self):
        expr = ex.BoolOp("AND", (
            ex.Comparison("=", var(1), var(2)),
            ex.Arithmetic("+", var(3), ex.Constant(1)),
        ))
        assert expr.columns_used() == {1, 2, 3}

    def test_case(self):
        expr = ex.CaseWhen(
            ((ex.Comparison(">", var(1), ex.Constant(0)), var(2)),),
            var(3))
        assert expr.columns_used() == {1, 2, 3}

    def test_agg_count_star(self):
        assert ex.AggExpr("COUNT", None).columns_used() == frozenset()


class TestSubstitute:
    def test_column_replaced(self):
        assert var(1).substitute({1: var(9)}) == var(9)

    def test_column_unmapped_kept(self):
        assert var(1).substitute({2: var(9)}) == var(1)

    def test_deep_substitution(self):
        expr = ex.Comparison("=", var(1), ex.Arithmetic("*", var(2),
                                                        ex.Constant(2)))
        replaced = expr.substitute({1: var(7), 2: var(8)})
        assert replaced.columns_used() == {7, 8}

    def test_substitute_is_pure(self):
        expr = ex.Comparison("=", var(1), var(2))
        expr.substitute({1: var(9)})
        assert expr.columns_used() == {1, 2}


class TestEqualityAndHash:
    def test_identical_comparisons_equal(self):
        a = ex.Comparison("=", var(1), var(2))
        b = ex.Comparison("=", var(1), var(2))
        assert a == b
        assert hash(a) == hash(b)

    def test_column_identity_is_id_only(self):
        # Names do not participate in equality.
        assert var(1, "x") == var(1, "y")

    def test_agg_identity(self):
        a = ex.AggExpr("SUM", var(1))
        b = ex.AggExpr("SUM", var(1))
        assert a == b
        assert a != ex.AggExpr("SUM", var(1), distinct=True)


class TestConjunctions:
    def test_conjuncts_of_none(self):
        assert ex.conjuncts(None) == ()

    def test_conjuncts_flatten_nested_and(self):
        expr = ex.BoolOp("AND", (
            ex.BoolOp("AND", (var(1), var(2))),
            var(3),
        ))
        assert len(ex.conjuncts(expr)) == 3

    def test_or_is_single_conjunct(self):
        expr = ex.BoolOp("OR", (var(1), var(2)))
        assert ex.conjuncts(expr) == (expr,)

    def test_make_conjunction_empty(self):
        assert ex.make_conjunction([]) is None

    def test_make_conjunction_single(self):
        pred = ex.Comparison("=", var(1), var(2))
        assert ex.make_conjunction([pred]) is pred

    def test_make_conjunction_drops_true(self):
        pred = ex.Comparison("=", var(1), var(2))
        assert ex.make_conjunction([ex.TRUE, pred]) is pred

    def test_roundtrip_conjunct_make(self):
        parts = [ex.Comparison("=", var(i), var(i + 1)) for i in range(3)]
        combined = ex.make_conjunction(parts)
        assert list(ex.conjuncts(combined)) == parts


class TestEquiJoinPairs:
    def test_simple_pair(self):
        pred = ex.Comparison("=", var(1), var(2))
        pairs = ex.equi_join_pairs(pred, frozenset({1}), frozenset({2}))
        assert pairs == [(var(1), var(2))]

    def test_orientation_normalized(self):
        pred = ex.Comparison("=", var(2), var(1))
        pairs = ex.equi_join_pairs(pred, frozenset({1}), frozenset({2}))
        assert pairs == [(var(1), var(2))]

    def test_single_side_equality_ignored(self):
        pred = ex.Comparison("=", var(1), var(3))
        assert ex.equi_join_pairs(pred, frozenset({1, 3}),
                                  frozenset({2})) == []

    def test_non_equality_ignored(self):
        pred = ex.Comparison("<", var(1), var(2))
        assert ex.equi_join_pairs(pred, frozenset({1}),
                                  frozenset({2})) == []

    def test_expression_sides_ignored(self):
        pred = ex.Comparison(
            "=", ex.Arithmetic("+", var(1), ex.Constant(1)), var(2))
        assert ex.equi_join_pairs(pred, frozenset({1}),
                                  frozenset({2})) == []

    def test_multiple_pairs_from_conjunction(self):
        pred = ex.BoolOp("AND", (
            ex.Comparison("=", var(1), var(3)),
            ex.Comparison("=", var(2), var(4)),
        ))
        pairs = ex.equi_join_pairs(pred, frozenset({1, 2}),
                                   frozenset({3, 4}))
        assert len(pairs) == 2


class TestComparisonFlip:
    @pytest.mark.parametrize("op,flipped", [
        ("=", "="), ("<>", "<>"), ("<", ">"), ("<=", ">="),
        (">", "<"), (">=", "<="),
    ])
    def test_flip_table(self, op, flipped):
        cmp = ex.Comparison(op, var(1), var(2))
        assert cmp.flipped().op == flipped
        assert cmp.flipped().left == var(2)


class TestExpressionType:
    def test_comparison_is_boolean(self):
        expr = ex.Comparison("=", var(1), var(2))
        assert ex.expression_type(expr) == BOOLEAN

    def test_column_type_passthrough(self):
        assert ex.expression_type(var(1, "s", varchar(5))) == varchar(5)

    def test_agg_count_integer(self):
        assert ex.expression_type(ex.AggExpr("COUNT", var(1))) == INTEGER

    def test_agg_avg_double(self):
        assert ex.AggExpr("AVG", var(1)).result_type == DOUBLE
