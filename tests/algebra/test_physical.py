"""Physical operator and PlanNode utility tests."""

import pytest

from repro.algebra import physical as phys
from repro.algebra.expressions import ColumnVar, Comparison, Constant
from repro.algebra.logical import JoinKind
from repro.catalog.schema import Column, REPLICATED, TableDef
from repro.common.types import INTEGER


def table():
    return TableDef("t", [Column("a", INTEGER)], REPLICATED)


def var(i):
    return ColumnVar(i, f"c{i}", INTEGER)


class TestLocalKeys:
    def test_scan_key_includes_table_and_columns(self):
        scan = phys.TableScan(table(), [var(1)])
        assert scan.local_key() == ("TableScan", "t", (1,))

    def test_join_kind_distinguishes(self):
        pred = Comparison("=", var(1), var(2))
        inner = phys.HashJoin(JoinKind.INNER, pred)
        semi = phys.HashJoin(JoinKind.SEMI, pred)
        assert inner.local_key() != semi.local_key()

    def test_aggregate_phase_distinguishes(self):
        complete = phys.HashAggregate([var(1)], [], "complete")
        local = phys.HashAggregate([var(1)], [], "local")
        assert complete.local_key() != local.local_key()

    def test_join_implementations_distinguish(self):
        pred = Comparison("=", var(1), var(2))
        keys = {
            phys.HashJoin(JoinKind.INNER, pred).local_key(),
            phys.MergeJoin(JoinKind.INNER, pred).local_key(),
            phys.NestedLoopJoin(JoinKind.INNER, pred).local_key(),
        }
        assert len(keys) == 3

    def test_describe_is_readable(self):
        scan = phys.TableScan(table(), [var(1)], alias="x")
        assert scan.describe() == "TableScan(x)"
        top = phys.Top(5)
        assert top.describe() == "Top(5)"


class TestPlanNode:
    def _tree(self):
        leaf_a = phys.PlanNode(phys.TableScan(table(), [var(1)]),
                               cardinality=10, cost=1.0)
        leaf_b = phys.PlanNode(phys.TableScan(table(), [var(2)]),
                               cardinality=20, cost=2.0)
        join = phys.PlanNode(
            phys.HashJoin(JoinKind.INNER,
                          Comparison("=", var(1), var(2))),
            [leaf_a, leaf_b], cardinality=15, cost=5.0)
        return join

    def test_walk_preorder(self):
        nodes = list(self._tree().walk())
        assert len(nodes) == 3
        assert isinstance(nodes[0].op, phys.HashJoin)

    def test_clone_is_deep_for_nodes(self):
        tree = self._tree()
        clone = tree.clone_tree()
        clone.children[0].cardinality = 999
        assert tree.children[0].cardinality == 10

    def test_clone_shares_operators(self):
        tree = self._tree()
        clone = tree.clone_tree()
        assert clone.op is tree.op

    def test_tree_string_contains_rows_and_cost(self):
        text = self._tree().tree_string()
        assert "rows=15" in text
        assert "cost=5.00" in text

    def test_total_cost(self):
        assert self._tree().total_cost() == 5.0


class TestSortAndConstantOps:
    def test_sort_key(self):
        sort = phys.Sort([(var(1), True), (var(2), False)])
        assert sort.local_key() == ("Sort", ((1, True), (2, False)))

    def test_filter_key_uses_predicate(self):
        a = phys.Filter(Comparison(">", var(1), Constant(5)))
        b = phys.Filter(Comparison(">", var(1), Constant(6)))
        assert a.local_key() != b.local_key()
