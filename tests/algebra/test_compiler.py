"""Compiler ⇄ evaluator differential tests.

The closure compiler must agree with the tree-walking evaluator on every
expression — values, NULL propagation, and error behaviour alike.  A
deterministic random generator produces NULL-laden expression trees
(comparisons, arithmetic, LIKE, IN, CASE, boolean logic) and every tree
is checked on many environments, including ones with missing columns.
"""

import datetime
import random

import pytest

from repro.algebra import expressions as ex
from repro.algebra.compiler import (
    clear_cache,
    compile_expr,
    compile_predicate,
    compile_projection,
)
from repro.algebra.evaluator import UnboundColumn, evaluate
from repro.common.errors import ExecutionError
from repro.common.types import BOOLEAN, DOUBLE, INTEGER, varchar

INT_A = ex.ColumnVar(1, "a", INTEGER)
INT_B = ex.ColumnVar(2, "b", INTEGER)
DBL_C = ex.ColumnVar(3, "c", DOUBLE)
STR_S = ex.ColumnVar(4, "s", varchar(20))
STR_T = ex.ColumnVar(5, "t", varchar(20))


def outcome(fn, *args):
    """(tag, value) summary of a call, folding errors into the tag."""
    try:
        return ("ok", fn(*args))
    except ExecutionError:
        return ("execution-error",)
    except UnboundColumn:
        return ("unbound-column",)


def assert_agree(expr, env):
    interpreted = outcome(evaluate, expr, env)
    compiled = outcome(compile_expr(expr), env)
    assert compiled == interpreted, (
        f"backends disagree on {expr} with env {env}: "
        f"compiled={compiled} interpreted={interpreted}")


# -- targeted three-valued-logic cases --------------------------------------------

NULL = ex.Constant(None)
ONE = ex.Constant(1)
TWO = ex.Constant(2)


class TestThreeValuedLogic:
    @pytest.mark.parametrize("op", ["=", "<>", "<", "<=", ">", ">="])
    def test_comparison_with_null_is_null(self, op):
        for pair in [(NULL, ONE), (ONE, NULL), (NULL, NULL)]:
            expr = ex.Comparison(op, *pair)
            assert compile_expr(expr)({}) is None
            assert_agree(expr, {})

    @pytest.mark.parametrize("op", ["+", "-", "*", "/", "%", "||"])
    def test_arithmetic_with_null_is_null(self, op):
        expr = ex.Arithmetic(op, NULL, TWO)
        assert compile_expr(expr)({}) is None
        assert_agree(expr, {})

    @pytest.mark.parametrize("args,expected", [
        ((True, True), True), ((True, None), None), ((True, False), False),
        ((None, None), None), ((False, None), False),
    ])
    def test_kleene_and(self, args, expected):
        expr = ex.BoolOp("AND", tuple(ex.Constant(a, BOOLEAN) for a in args))
        assert compile_expr(expr)({}) is expected
        assert_agree(expr, {})

    @pytest.mark.parametrize("args,expected", [
        ((False, False), False), ((False, None), None),
        ((True, None), True), ((None, None), None),
    ])
    def test_kleene_or(self, args, expected):
        expr = ex.BoolOp("OR", tuple(ex.Constant(a, BOOLEAN) for a in args))
        assert compile_expr(expr)({}) is expected
        assert_agree(expr, {})

    def test_not_null_is_null(self):
        expr = ex.NotExpr(NULL)
        assert compile_expr(expr)({}) is None
        assert_agree(expr, {})

    def test_like_null_operand(self):
        expr = ex.LikeExpr(STR_S, "a%")
        assert compile_expr(expr)({4: None}) is None
        assert_agree(expr, {4: None})

    def test_in_list_null_operand(self):
        expr = ex.InListExpr(INT_A, (1, 2, 3), negated=True)
        assert compile_expr(expr)({1: None}) is None
        assert_agree(expr, {1: None})

    def test_is_null_and_negation(self):
        for negated in (False, True):
            expr = ex.IsNullExpr(INT_A, negated=negated)
            for value in (None, 7):
                assert_agree(expr, {1: value})

    def test_case_without_match_is_null(self):
        expr = ex.CaseWhen(
            whens=((ex.Comparison("=", INT_A, TWO), ex.Constant("two")),))
        assert compile_expr(expr)({1: 1}) is None
        assert_agree(expr, {1: 1})

    def test_case_null_condition_not_taken(self):
        expr = ex.CaseWhen(
            whens=((ex.Comparison("=", INT_A, TWO), ex.Constant("two")),),
            otherwise=ex.Constant("other"))
        assert compile_expr(expr)({1: None}) == "other"
        assert_agree(expr, {1: None})


class TestErrorParity:
    def test_division_by_zero_raises(self):
        for op in ("/", "%"):
            expr = ex.Arithmetic(op, ONE, ex.Constant(0))
            with pytest.raises(ExecutionError):
                compile_expr(expr)({})
            assert_agree(expr, {})

    def test_unbound_column_raises(self):
        expr = ex.Arithmetic("+", INT_A, ONE)
        with pytest.raises(UnboundColumn):
            compile_expr(expr)({})
        assert_agree(expr, {})

    def test_aggregate_raises_at_row_time_not_compile_time(self):
        expr = ex.AggExpr("SUM", INT_A)
        fn = compile_expr(expr)  # compiling must not raise
        with pytest.raises(ExecutionError):
            fn({1: 3})
        assert_agree(expr, {1: 3})

    def test_division_error_beats_null_left_operand(self):
        # evaluate() computes both operands before the NULL check, so a
        # zero divisor raises even when the other side is NULL.
        expr = ex.Arithmetic("/", NULL, ex.Constant(0))
        assert_agree(expr, {})


class TestScalarFunctions:
    def test_dateadd_parity(self):
        base = ex.Constant(datetime.date(2020, 1, 31))
        for unit, amount in (("day", 3), ("month", 1), ("year", 2)):
            expr = ex.FuncExpr(
                "DATEADD", (ex.Constant(unit), ex.Constant(amount), base))
            assert_agree(expr, {})

    def test_substring_and_year(self):
        assert_agree(ex.FuncExpr("SUBSTRING", (
            STR_S, ex.Constant(2), ex.Constant(3))), {4: "abcdef"})
        assert_agree(ex.FuncExpr("YEAR", (
            ex.Constant(datetime.date(1995, 5, 5)),)), {})

    def test_null_argument_short_circuits(self):
        expr = ex.FuncExpr("SUBSTRING", (STR_S, NULL, ex.Constant(3)))
        assert compile_expr(expr)({4: "abc"}) is None
        assert_agree(expr, {4: "abc"})

    def test_unknown_function_raises_at_row_time(self):
        expr = ex.FuncExpr("NO_SUCH_FN", (ONE,))
        fn = compile_expr(expr)
        with pytest.raises(ExecutionError):
            fn({})
        assert_agree(expr, {})


class TestCastAndHelpers:
    def test_cast_parity(self):
        cases = [
            (ex.CastExpr(ex.Constant("12"), INTEGER), {}),
            (ex.CastExpr(ex.Constant(3), DOUBLE), {}),
            (ex.CastExpr(ex.Constant(3.9), varchar(10)), {}),
            (ex.CastExpr(NULL, INTEGER), {}),
        ]
        for expr, env in cases:
            assert_agree(expr, env)

    def test_compile_predicate_null_counts_as_false(self):
        accept = compile_predicate(ex.Comparison("=", INT_A, ONE))
        assert accept({1: 1}) is True
        assert accept({1: 2}) is False
        assert accept({1: None}) is False

    def test_compile_predicate_none_always_true(self):
        assert compile_predicate(None)({}) is True

    def test_compile_projection(self):
        out_var = ex.ColumnVar(9, "out", INTEGER)
        project = compile_projection(
            [(out_var, ex.Arithmetic("+", INT_A, ONE))])
        assert project({1: 41}) == {9: 42}

    def test_memoized_per_expression_object(self):
        clear_cache()
        expr = ex.Comparison("<", INT_A, TWO)
        assert compile_expr(expr) is compile_expr(expr)

    def test_memo_distinguishes_equal_but_typed_constants(self):
        # Constant(0) == Constant(False) under dataclass equality, but
        # Kleene logic must tell them apart (`is False` identity check).
        clear_cache()
        zero = ex.BoolOp("AND", (ex.Constant(0),))
        false = ex.BoolOp("AND", (ex.Constant(False),))
        assert compile_expr(zero)({}) is evaluate(zero, {})
        assert compile_expr(false)({}) is evaluate(false, {})


# -- randomized differential sweep ------------------------------------------------


class ExprGen:
    """Deterministic random expression trees, typed to avoid Python
    TypeErrors that SQL would never produce (e.g. ``'x' < 3``)."""

    LIKE_PATTERNS = ["%", "a%", "%z", "_b%", "abc", "%bc_", "a_c"]

    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    def const_int(self):
        return ex.Constant(self.rng.choice([None, -3, 0, 1, 2, 7, 100]))

    def const_str(self):
        return ex.Constant(self.rng.choice(
            [None, "", "a", "abc", "abz", "zebra", "bcb"]))

    def num(self, depth):
        if depth <= 0 or self.rng.random() < 0.3:
            return self.rng.choice([
                self.const_int, lambda: INT_A, lambda: INT_B,
                lambda: DBL_C])()
        pick = self.rng.random()
        if pick < 0.7:
            op = self.rng.choice(["+", "-", "*", "/", "%"])
            return ex.Arithmetic(op, self.num(depth - 1),
                                 self.num(depth - 1))
        return ex.CaseWhen(
            whens=((self.boolean(depth - 1), self.num(depth - 1)),),
            otherwise=(self.num(depth - 1)
                       if self.rng.random() < 0.7 else None))

    def string(self, depth):
        if depth <= 0 or self.rng.random() < 0.5:
            return self.rng.choice(
                [self.const_str, lambda: STR_S, lambda: STR_T])()
        return ex.Arithmetic("||", self.string(depth - 1),
                             self.string(depth - 1))

    def boolean(self, depth):
        if depth <= 0:
            return ex.Constant(self.rng.choice([True, False, None]),
                               BOOLEAN)
        pick = self.rng.random()
        if pick < 0.30:
            op = self.rng.choice(["=", "<>", "<", "<=", ">", ">="])
            if self.rng.random() < 0.7:
                return ex.Comparison(op, self.num(depth - 1),
                                     self.num(depth - 1))
            return ex.Comparison(op, self.string(depth - 1),
                                 self.string(depth - 1))
        if pick < 0.45:
            return ex.BoolOp(
                self.rng.choice(["AND", "OR"]),
                tuple(self.boolean(depth - 1)
                      for _ in range(self.rng.randint(2, 3))))
        if pick < 0.55:
            return ex.NotExpr(self.boolean(depth - 1))
        if pick < 0.70:
            return ex.LikeExpr(self.string(depth - 1),
                               self.rng.choice(self.LIKE_PATTERNS),
                               negated=self.rng.random() < 0.5)
        if pick < 0.85:
            values = tuple(self.rng.sample([-3, 0, 1, 2, 7, 100],
                                           self.rng.randint(1, 4)))
            return ex.InListExpr(self.num(depth - 1), values,
                                 negated=self.rng.random() < 0.5)
        return ex.IsNullExpr(
            self.rng.choice([self.num, self.string])(depth - 1),
            negated=self.rng.random() < 0.5)

    def env(self):
        env = {}
        for var, values in [
            (INT_A, [None, -3, 0, 1, 2, 7]),
            (INT_B, [None, 0, 1, 5, 100]),
            (DBL_C, [None, -1.5, 0.0, 2.25, 9.5]),
            (STR_S, [None, "", "a", "abc", "bcb", "zebra"]),
            (STR_T, [None, "a", "abz", "xyz"]),
        ]:
            if self.rng.random() < 0.9:  # sometimes leave columns unbound
                env[var.id] = self.rng.choice(values)
        return env


@pytest.mark.parametrize("seed", range(40))
def test_random_expressions_differential(seed):
    gen = ExprGen(seed)
    for _ in range(25):
        expr = gen.rng.choice(
            [gen.boolean, gen.num, gen.string])(gen.rng.randint(1, 4))
        for _ in range(8):
            assert_agree(expr, gen.env())


def test_random_predicates_match_row_filtering():
    """compile_predicate and evaluate-is-True agree on filter decisions."""
    gen = ExprGen(12345)
    for _ in range(200):
        predicate = gen.boolean(3)
        env = gen.env()
        accept = compile_predicate(predicate)
        assert (outcome(accept, env)
                == outcome(lambda e: evaluate(predicate, e) is True, env))
