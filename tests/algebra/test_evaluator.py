"""Scalar evaluator tests: SQL three-valued logic and functions."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import expressions as ex
from repro.algebra.evaluator import evaluate, try_fold
from repro.common.errors import ExecutionError
from repro.common.types import DATE, INTEGER, TypeKind, varchar


def var(i):
    return ex.ColumnVar(i, f"c{i}", INTEGER)


def const(v):
    return ex.Constant(v)


class TestBasics:
    def test_constant(self):
        assert evaluate(const(42)) == 42

    def test_column_lookup(self):
        assert evaluate(var(1), {1: "x"}) == "x"

    def test_arithmetic(self):
        expr = ex.Arithmetic("+", const(2), ex.Arithmetic("*", const(3),
                                                          const(4)))
        assert evaluate(expr) == 14

    def test_division(self):
        assert evaluate(ex.Arithmetic("/", const(7), const(2))) == 3.5

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            evaluate(ex.Arithmetic("/", const(1), const(0)))

    def test_modulo(self):
        assert evaluate(ex.Arithmetic("%", const(7), const(3))) == 1

    def test_concat(self):
        assert evaluate(ex.Arithmetic("||", const("a"), const("b"))) == "ab"


class TestThreeValuedLogic:
    def test_null_comparison_is_null(self):
        assert evaluate(ex.Comparison("=", const(None), const(1))) is None

    def test_null_arithmetic_is_null(self):
        assert evaluate(ex.Arithmetic("+", const(None), const(1))) is None

    def test_and_false_dominates_null(self):
        expr = ex.BoolOp("AND", (const(False), const(None)))
        assert evaluate(expr) is False

    def test_and_null_with_true(self):
        expr = ex.BoolOp("AND", (const(True), const(None)))
        assert evaluate(expr) is None

    def test_or_true_dominates_null(self):
        expr = ex.BoolOp("OR", (const(True), const(None)))
        assert evaluate(expr) is True

    def test_or_null_with_false(self):
        expr = ex.BoolOp("OR", (const(False), const(None)))
        assert evaluate(expr) is None

    def test_not_null_is_null(self):
        assert evaluate(ex.NotExpr(const(None))) is None

    def test_is_null(self):
        assert evaluate(ex.IsNullExpr(const(None))) is True
        assert evaluate(ex.IsNullExpr(const(1))) is False

    def test_is_not_null(self):
        assert evaluate(ex.IsNullExpr(const(None), negated=True)) is False


class TestLike:
    def test_prefix(self):
        expr = ex.LikeExpr(const("forest green"), "forest%")
        assert evaluate(expr) is True

    def test_no_match(self):
        assert evaluate(ex.LikeExpr(const("oak"), "forest%")) is False

    def test_underscore(self):
        assert evaluate(ex.LikeExpr(const("cat"), "c_t")) is True

    def test_contains(self):
        assert evaluate(ex.LikeExpr(const("xxforestyy"), "%forest%")) is True

    def test_negated(self):
        assert evaluate(
            ex.LikeExpr(const("oak"), "forest%", negated=True)) is True

    def test_null_operand(self):
        assert evaluate(ex.LikeExpr(const(None), "a%")) is None

    def test_regex_metachars_escaped(self):
        assert evaluate(ex.LikeExpr(const("a.b"), "a.b")) is True
        assert evaluate(ex.LikeExpr(const("axb"), "a.b")) is False


class TestInList:
    def test_member(self):
        assert evaluate(ex.InListExpr(const(2), (1, 2, 3))) is True

    def test_non_member(self):
        assert evaluate(ex.InListExpr(const(9), (1, 2, 3))) is False

    def test_negated(self):
        assert evaluate(
            ex.InListExpr(const(9), (1, 2), negated=True)) is True

    def test_null(self):
        assert evaluate(ex.InListExpr(const(None), (1, 2))) is None


class TestCase:
    def test_first_match_wins(self):
        expr = ex.CaseWhen(
            ((ex.Comparison(">", var(1), const(10)), const("big")),
             (ex.Comparison(">", var(1), const(0)), const("small"))),
            const("neg"))
        assert evaluate(expr, {1: 20}) == "big"
        assert evaluate(expr, {1: 5}) == "small"
        assert evaluate(expr, {1: -1}) == "neg"

    def test_no_match_no_else_is_null(self):
        expr = ex.CaseWhen(
            ((ex.Comparison(">", var(1), const(10)), const(1)),))
        assert evaluate(expr, {1: 0}) is None

    def test_null_condition_skipped(self):
        expr = ex.CaseWhen(
            ((ex.Comparison(">", const(None), const(10)), const(1)),),
            const(2))
        assert evaluate(expr) == 2


class TestCast:
    def test_int_cast(self):
        expr = ex.CastExpr(const("42"), INTEGER)
        assert evaluate(expr) == 42

    def test_string_cast(self):
        assert evaluate(ex.CastExpr(const(42), varchar(10))) == "42"

    def test_date_cast_from_string(self):
        expr = ex.CastExpr(const("1994-01-01"), DATE)
        assert evaluate(expr) == datetime.date(1994, 1, 1)

    def test_null_cast(self):
        assert evaluate(ex.CastExpr(const(None), INTEGER)) is None


class TestDateFunctions:
    def test_dateadd_year(self):
        expr = ex.FuncExpr("DATEADD", (
            const("year"), const(1), const(datetime.date(1994, 1, 1))))
        assert evaluate(expr) == datetime.date(1995, 1, 1)

    def test_dateadd_leap_day(self):
        expr = ex.FuncExpr("DATEADD", (
            const("year"), const(1), const(datetime.date(1996, 2, 29))))
        assert evaluate(expr) == datetime.date(1997, 2, 28)

    def test_dateadd_month_clamps_day(self):
        expr = ex.FuncExpr("DATEADD", (
            const("month"), const(1), const(datetime.date(1994, 1, 31))))
        assert evaluate(expr) == datetime.date(1994, 2, 28)

    def test_dateadd_day(self):
        expr = ex.FuncExpr("DATEADD", (
            const("day"), const(40), const(datetime.date(1994, 1, 1))))
        assert evaluate(expr) == datetime.date(1994, 2, 10)

    def test_year_extract(self):
        expr = ex.FuncExpr("YEAR", (const(datetime.date(1994, 7, 3)),))
        assert evaluate(expr) == 1994

    def test_substring(self):
        expr = ex.FuncExpr("SUBSTRING", (const("PROMO ANODIZED"),
                                         const(1), const(5)))
        assert evaluate(expr) == "PROMO"

    def test_unknown_function_raises(self):
        with pytest.raises(ExecutionError):
            evaluate(ex.FuncExpr("FROBNICATE", (const(1),)))


class TestTryFold:
    def test_constant_expression_folds(self):
        expr = ex.Arithmetic("*", const(6), const(7))
        assert try_fold(expr) == 42

    def test_column_expression_does_not_fold(self):
        assert try_fold(ex.Arithmetic("+", var(1), const(1))) is None

    def test_error_expression_does_not_fold(self):
        assert try_fold(ex.Arithmetic("/", const(1), const(0))) is None


@given(st.integers(-1000, 1000), st.integers(-1000, 1000),
       st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
@settings(max_examples=100, deadline=None)
def test_comparison_flip_equivalence(a, b, op):
    """x op y  ≡  y flip(op) x for all values."""
    cmp = ex.Comparison(op, const(a), const(b))
    assert evaluate(cmp) == evaluate(cmp.flipped())
