"""Distribution property and column equivalence tests."""

import pytest

from repro.algebra.expressions import ColumnVar, Comparison
from repro.algebra.properties import (
    ColumnEquivalence,
    DistKind,
    Distribution,
    ON_CONTROL_DIST,
    REPLICATED_DIST,
    distribution_satisfies,
    distributions_collocated_for_join,
    hashed_on,
)
from repro.common.types import INTEGER


def var(i):
    return ColumnVar(i, f"c{i}", INTEGER)


class TestDistribution:
    def test_hashed_requires_columns(self):
        with pytest.raises(ValueError):
            Distribution(DistKind.HASHED)

    def test_replicated_takes_no_columns(self):
        with pytest.raises(ValueError):
            Distribution(DistKind.REPLICATED, (1,))

    def test_is_partitioned(self):
        assert hashed_on(1).is_partitioned
        assert not REPLICATED_DIST.is_partitioned

    def test_single_node(self):
        assert ON_CONTROL_DIST.is_on_single_node
        assert not hashed_on(1).is_on_single_node

    def test_describe_with_names(self):
        text = hashed_on(7).describe({7: "o_custkey"})
        assert "o_custkey" in text


class TestColumnEquivalence:
    def test_transitivity(self):
        eq = ColumnEquivalence()
        eq.add_equality(1, 2)
        eq.add_equality(2, 3)
        assert eq.are_equivalent(1, 3)

    def test_unrelated(self):
        eq = ColumnEquivalence()
        eq.add_equality(1, 2)
        assert not eq.are_equivalent(1, 3)

    def test_from_predicate(self):
        eq = ColumnEquivalence()
        eq.add_from_predicate(Comparison("=", var(1), var(2)))
        assert eq.are_equivalent(1, 2)

    def test_non_equality_ignored(self):
        eq = ColumnEquivalence()
        eq.add_from_predicate(Comparison("<", var(1), var(2)))
        assert not eq.are_equivalent(1, 2)

    def test_equivalence_class(self):
        eq = ColumnEquivalence()
        eq.add_equality(1, 2)
        eq.add_equality(2, 3)
        assert eq.equivalence_class(1) == {1, 2, 3}

    def test_copy_is_independent(self):
        eq = ColumnEquivalence()
        eq.add_equality(1, 2)
        clone = eq.copy()
        clone.add_equality(2, 3)
        assert not eq.are_equivalent(1, 3)
        assert clone.are_equivalent(1, 3)

    def test_representative_consistent(self):
        eq = ColumnEquivalence()
        eq.add_equality(5, 9)
        assert eq.representative(5) == eq.representative(9)


class TestSatisfies:
    def test_exact_match(self):
        assert distribution_satisfies(hashed_on(1), hashed_on(1))

    def test_hash_through_equivalence(self):
        eq = ColumnEquivalence()
        eq.add_equality(1, 2)
        assert distribution_satisfies(hashed_on(1), hashed_on(2), eq)

    def test_hash_mismatch_without_equivalence(self):
        assert not distribution_satisfies(hashed_on(1), hashed_on(2))

    def test_replicated_does_not_satisfy_hash(self):
        assert not distribution_satisfies(REPLICATED_DIST, hashed_on(1))

    def test_kind_match(self):
        assert distribution_satisfies(REPLICATED_DIST, REPLICATED_DIST)


class TestCollocation:
    def pairs(self):
        return [(var(1), var(2))]

    def test_replicated_side_collocates(self):
        assert distributions_collocated_for_join(
            REPLICATED_DIST, hashed_on(9), self.pairs())

    def test_aligned_hashes_collocate(self):
        assert distributions_collocated_for_join(
            hashed_on(1), hashed_on(2), self.pairs())

    def test_misaligned_hashes_do_not(self):
        assert not distributions_collocated_for_join(
            hashed_on(7), hashed_on(2), self.pairs())

    def test_equivalence_bridges_alignment(self):
        eq = ColumnEquivalence()
        eq.add_equality(7, 1)
        assert distributions_collocated_for_join(
            hashed_on(7), hashed_on(2), self.pairs(), eq)

    def test_both_on_control(self):
        assert distributions_collocated_for_join(
            ON_CONTROL_DIST, ON_CONTROL_DIST, self.pairs())

    def test_control_and_hashed_do_not(self):
        assert not distributions_collocated_for_join(
            ON_CONTROL_DIST, hashed_on(2), self.pairs())
