"""Statistics tests: histograms, estimation, and the per-node merge of
paper §2.2 — including hypothesis invariants."""

import datetime
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.statistics import (
    ColumnStats,
    Histogram,
    merge_column_stats,
    merge_histograms,
    numeric_position,
    sort_key,
)


class TestSortKey:
    def test_null_sorts_first(self):
        values = [3, None, 1]
        assert sorted(values, key=sort_key)[0] is None

    def test_mixed_numerics(self):
        assert sort_key(1) < sort_key(2.5)

    def test_dates_ordered(self):
        early = datetime.date(1994, 1, 1)
        late = datetime.date(1995, 1, 1)
        assert sort_key(early) < sort_key(late)

    def test_strings_lexicographic(self):
        assert sort_key("apple") < sort_key("banana")


class TestNumericPosition:
    def test_numbers_identity(self):
        assert numeric_position(42) == 42.0

    def test_string_order_preserved(self):
        assert numeric_position("aaa") < numeric_position("zzz")

    def test_date_ordinal(self):
        d = datetime.date(1994, 6, 1)
        assert numeric_position(d) == float(d.toordinal())


class TestHistogramBuild:
    def test_empty(self):
        hist = Histogram.build([])
        assert hist.total_count == 0
        assert hist.estimate_le(5) == 0

    def test_total_count_preserved(self):
        hist = Histogram.build(list(range(1000)), num_buckets=16)
        assert hist.total_count == 1000

    def test_min_max(self):
        hist = Histogram.build([5, 1, 9, 3])
        assert hist.min_value == 1
        assert hist.max_value == 9

    def test_equal_values_dont_straddle_buckets(self):
        values = [1] * 50 + [2] * 50
        hist = Histogram.build(values, num_buckets=10)
        uppers = [b.upper for b in hist.buckets]
        assert len(uppers) == len(set(uppers))

    def test_estimate_le_full_range(self):
        hist = Histogram.build(list(range(100)))
        assert hist.estimate_le(99) == pytest.approx(100)

    def test_estimate_le_midpoint(self):
        hist = Histogram.build(list(range(1000)), num_buckets=20)
        assert hist.estimate_le(499) == pytest.approx(500, rel=0.1)

    def test_estimate_eq_uniform(self):
        hist = Histogram.build([i % 10 for i in range(1000)])
        assert hist.estimate_eq(3) == pytest.approx(100, rel=0.2)

    def test_estimate_eq_outside_range(self):
        hist = Histogram.build(list(range(10)))
        assert hist.estimate_eq(-5) == 0
        assert hist.estimate_eq(99) == 0

    def test_estimate_range(self):
        hist = Histogram.build(list(range(1000)), num_buckets=20)
        estimate = hist.estimate_range(100, 199)
        assert estimate == pytest.approx(100, rel=0.25)

    def test_estimate_range_open_ended(self):
        hist = Histogram.build(list(range(100)))
        assert hist.estimate_range(None, None) == pytest.approx(100)


class TestColumnStats:
    def test_build_counts(self):
        stats = ColumnStats.build([1, 2, 2, None, 3])
        assert stats.row_count == 5
        assert stats.null_count == 1
        assert stats.distinct_count == 3

    def test_null_fraction(self):
        stats = ColumnStats.build([None, None, 1, 2])
        assert stats.null_fraction == pytest.approx(0.5)

    def test_avg_width_strings(self):
        stats = ColumnStats.build(["ab", "abcd"])
        assert stats.avg_width == pytest.approx(3.0)

    def test_empty_column(self):
        stats = ColumnStats.build([])
        assert stats.row_count == 0
        assert stats.distinct_count == 0


class TestMerge:
    def _split(self, values, parts=4, seed=0):
        rng = random.Random(seed)
        fragments = [[] for _ in range(parts)]
        for value in values:
            fragments[rng.randrange(parts)].append(value)
        return fragments

    def test_merged_row_count_is_sum(self):
        values = list(range(500))
        parts = [ColumnStats.build(f) for f in self._split(values)]
        merged = merge_column_stats(parts)
        assert merged.row_count == 500

    def test_merged_min_max(self):
        values = list(range(-50, 300))
        parts = [ColumnStats.build(f) for f in self._split(values)]
        merged = merge_column_stats(parts)
        assert merged.min_value == -50
        assert merged.max_value == 299

    def test_merged_distinct_close_to_truth(self):
        values = [i % 64 for i in range(2000)]
        parts = [ColumnStats.build(f) for f in self._split(values)]
        merged = merge_column_stats(parts)
        # Every value appears on every node, so the sum over-counts; the
        # integer-domain cap repairs it.
        assert merged.distinct_count == pytest.approx(64, rel=0.05)

    def test_hash_partitioned_distinct_is_exact(self):
        # Hash placement puts each key on exactly one node: sum is exact.
        values = list(range(256))
        fragments = [[v for v in values if v % 4 == n] for n in range(4)]
        parts = [ColumnStats.build(f) for f in fragments]
        merged = merge_column_stats(parts)
        assert merged.distinct_count == 256

    def test_merged_histogram_estimates(self):
        values = list(range(2000))
        parts = [ColumnStats.build(f) for f in self._split(values)]
        merged = merge_column_stats(parts)
        estimate = merged.histogram.estimate_le(999)
        assert estimate == pytest.approx(1000, rel=0.15)

    def test_merge_empty_parts(self):
        merged = merge_column_stats([])
        assert merged.row_count == 0

    def test_merge_single_part_identity(self):
        stats = ColumnStats.build(list(range(100)))
        merged = merge_column_stats([stats])
        assert merged.row_count == stats.row_count
        assert merged.distinct_count == stats.distinct_count

    def test_merge_histograms_preserves_total(self):
        h1 = Histogram.build(list(range(0, 500)))
        h2 = Histogram.build(list(range(500, 900)))
        merged = merge_histograms([h1, h2])
        assert merged.total_count == 900
        assert merged.min_value == 0
        assert merged.max_value == 899


# -- hypothesis invariants ----------------------------------------------------

values_strategy = st.lists(
    st.integers(min_value=-10_000, max_value=10_000),
    min_size=1, max_size=400,
)


@given(values_strategy)
@settings(max_examples=60, deadline=None)
def test_histogram_total_equals_input(values):
    hist = Histogram.build(values)
    assert hist.total_count == len(values)


@given(values_strategy, st.integers(-10_001, 10_001),
       st.integers(-10_001, 10_001))
@settings(max_examples=60, deadline=None)
def test_estimate_le_monotonic(values, a, b):
    hist = Histogram.build(values)
    low, high = min(a, b), max(a, b)
    assert hist.estimate_le(low) <= hist.estimate_le(high) + 1e-9


@given(values_strategy, st.integers(min_value=2, max_value=6))
@settings(max_examples=60, deadline=None)
def test_merge_invariants(values, parts):
    fragments = [values[i::parts] for i in range(parts)]
    stats = [ColumnStats.build(f) for f in fragments if f]
    merged = merge_column_stats(stats)
    assert merged.row_count == len(values)
    true_distinct = len(set(values))
    assert merged.distinct_count >= max(
        (s.distinct_count for s in stats), default=0)
    # Distinct estimate is bounded by the non-null row count.
    assert merged.distinct_count <= merged.row_count
    # And it never undershoots the per-fragment max, never overshoots
    # the sum.
    assert merged.distinct_count <= sum(s.distinct_count for s in stats)
    assert merged.min_value == min(values)
    assert merged.max_value == max(values)
    del true_distinct
