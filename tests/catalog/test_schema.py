"""Schema / catalog unit tests."""

import pytest

from repro.catalog.schema import (
    Catalog,
    Column,
    DistributionKind,
    ON_CONTROL,
    REPLICATED,
    TableDef,
    TableDistribution,
    hash_distributed,
)
from repro.common.errors import CatalogError
from repro.common.types import INTEGER, varchar


def simple_table(name="t", distribution=None):
    return TableDef(
        name,
        [Column("a", INTEGER), Column("b", varchar(10))],
        distribution or hash_distributed("a"),
    )


class TestDistribution:
    def test_hash_requires_columns(self):
        with pytest.raises(CatalogError):
            TableDistribution(DistributionKind.HASH)

    def test_replicated_takes_no_columns(self):
        with pytest.raises(CatalogError):
            TableDistribution(DistributionKind.REPLICATED, ("a",))

    def test_hash_str(self):
        assert str(hash_distributed("a", "b")) == "HASH(a, b)"

    def test_replicated_str(self):
        assert str(REPLICATED) == "REPLICATED"

    def test_control_str(self):
        assert str(ON_CONTROL) == "CONTROL"


class TestTableDef:
    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            TableDef("t", [Column("a", INTEGER), Column("A", INTEGER)],
                     REPLICATED)

    def test_distribution_column_must_exist(self):
        with pytest.raises(CatalogError):
            TableDef("t", [Column("a", INTEGER)], hash_distributed("zz"))

    def test_primary_key_column_must_exist(self):
        with pytest.raises(CatalogError):
            TableDef("t", [Column("a", INTEGER)], REPLICATED,
                     primary_key=("nope",))

    def test_column_lookup_case_insensitive(self):
        table = simple_table()
        assert table.column("A").name == "a"
        assert table.has_column("B")

    def test_column_index(self):
        assert simple_table().column_index("b") == 1

    def test_column_index_unknown_raises(self):
        with pytest.raises(CatalogError):
            simple_table().column_index("zzz")

    def test_row_width_sums_column_widths(self):
        assert simple_table().row_width == 4 + 10

    def test_column_names(self):
        assert simple_table().column_names == ["a", "b"]


class TestCatalog:
    def test_add_and_get(self):
        catalog = Catalog([simple_table()])
        assert catalog.table("T").name == "t"
        assert "t" in catalog
        assert len(catalog) == 1

    def test_duplicate_rejected(self):
        catalog = Catalog([simple_table()])
        with pytest.raises(CatalogError):
            catalog.add_table(simple_table())

    def test_unknown_table_raises(self):
        with pytest.raises(CatalogError):
            Catalog().table("missing")

    def test_drop(self):
        catalog = Catalog([simple_table()])
        catalog.drop_table("t")
        assert "t" not in catalog

    def test_drop_missing_raises(self):
        with pytest.raises(CatalogError):
            Catalog().drop_table("t")

    def test_tables_listing(self):
        catalog = Catalog([simple_table("x"), simple_table("y")])
        assert sorted(t.name for t in catalog.tables()) == ["x", "y"]
