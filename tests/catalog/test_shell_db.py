"""Shell database tests (paper §2.2)."""

import pytest

from repro.catalog.schema import Catalog, Column, TableDef, hash_distributed
from repro.catalog.shell_db import ShellDatabase
from repro.catalog.statistics import ColumnStats
from repro.common.errors import CatalogError
from repro.common.types import INTEGER, varchar


@pytest.fixture()
def shell():
    catalog = Catalog([
        TableDef("t", [Column("a", INTEGER), Column("s", varchar(20))],
                 hash_distributed("a"), row_count=1000),
    ])
    return ShellDatabase(catalog, node_count=4)


class TestShellDatabase:
    def test_requires_positive_node_count(self, shell):
        with pytest.raises(CatalogError):
            ShellDatabase(shell.catalog, node_count=0)

    def test_default_stats_synthesized(self, shell):
        stats = shell.column_stats("t", "a")
        assert stats.row_count == 1000
        assert stats.distinct_count > 0

    def test_default_width_from_type(self, shell):
        assert shell.column_stats("t", "s").avg_width == 20

    def test_set_and_get_stats(self, shell):
        shell.set_column_stats("t", "a", ColumnStats.build(range(100)))
        assert shell.has_column_stats("t", "a")
        assert shell.column_stats("t", "a").distinct_count == 100

    def test_set_stats_unknown_column_raises(self, shell):
        with pytest.raises(CatalogError):
            shell.set_column_stats("t", "zzz", ColumnStats.build([1]))

    def test_set_stats_unknown_table_raises(self, shell):
        with pytest.raises(CatalogError):
            shell.set_column_stats("missing", "a", ColumnStats.build([1]))

    def test_avg_row_width_uses_stats_when_present(self, shell):
        shell.set_column_stats("t", "s",
                               ColumnStats.build(["ab"] * 10))
        width = shell.avg_row_width("t")
        assert width == pytest.approx(4 + 2)

    def test_avg_row_width_falls_back_to_declared(self, shell):
        assert shell.avg_row_width("t") == pytest.approx(24)

    def test_table_passthrough(self, shell):
        assert shell.table("t").name == "t"
        assert len(list(shell.tables())) == 1
