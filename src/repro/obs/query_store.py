"""The Query Store: persistent plan + runtime-stats history per shape.

SQL Server's Query Store is the canonical form of history-driven
optimization infrastructure: every completed execution is aggregated
per **normalized query shape** (the plan cache's :func:`parameterize`
key, computed *without* hints so a hint-forced plan lands under the same
shape) × **plan hash** (a literal-insensitive digest of the template
DSQL plan's steps).  Each (shape, plan) bucket accumulates

* execution count and cache-hit count;
* total/min/max/last **wall** seconds (measured) and the same
  aggregates over **simulated elapsed** seconds (the quantity the DMS
  cost model predicts — deterministic, unaffected by queue waits);
* per-phase timing totals (queue / compile / execute);
* rows returned and bytes moved;
* per-step actual cardinalities joined against the optimizer's
  estimates, with the max Q-error observed
  (:func:`repro.obs.profiler.q_error`);
* first/last-seen timestamps and the schema_version in effect.

This is ROADMAP item 3's correction-cache substrate: observed
cardinalities keyed by (shape, step), durable across restarts via JSONL
:meth:`QueryStore.save` / :meth:`QueryStore.load` (the persisted lines
*are* schema-valid ``query_store_flush`` events).

**Regression detection** (:meth:`QueryStore.regressions`): a shape whose
*current* plan (the one seen most recently) has a mean simulated latency
exceeding a prior plan's by a configurable factor is flagged.  Baselines
must share the current plan's ``schema_version`` and be
``baseline_eligible`` — loading history recorded under a different
schema version keeps the counts but disqualifies those plans as
baselines, so stale pre-DDL timings never indict a post-DDL plan.

Zero-overhead default: :data:`NULL_QUERY_STORE` follows the
``NULL_REQUESTS`` contract — a shared no-op singleton with
``enabled = False`` and no per-call allocation (the booby-trap test
monkeypatches every record constructor to prove it).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.profiler import q_error

__all__ = [
    "StepCardinality",
    "PlanStats",
    "ShapeStats",
    "PlanRegression",
    "QueryStore",
    "NullQueryStore",
    "NULL_QUERY_STORE",
    "normalized_shape_key",
    "plan_shape_digest",
    "DEFAULT_MAX_SHAPES",
    "DEFAULT_REGRESSION_FACTOR",
    "DEFAULT_MIN_EXECUTIONS",
]

#: LRU bound on distinct shapes retained (the store is a bounded cache,
#: like the flight recorder; evictions are counted in ``stats()``).
DEFAULT_MAX_SHAPES = 256

#: A current plan regresses when its mean simulated latency exceeds the
#: best eligible baseline plan's by this factor.
DEFAULT_REGRESSION_FACTOR = 1.5

#: Both the current plan and a baseline need this many executions before
#: the detector trusts their means.
DEFAULT_MIN_EXECUTIONS = 2

# Normalizing SQL (literal lifting) costs a parse; both query text and
# template step SQL repeat heavily across executions, so memoize by the
# raw string.  Bounded: cleared wholesale past the limit (simpler than
# LRU and the limit is far above any real working set).
_MEMO_LIMIT = 4096
_memo_lock = threading.Lock()
_shape_key_memo: Dict[str, str] = {}
_step_key_memo: Dict[str, str] = {}


def _parameterized_key(sql: str) -> str:
    """``parameterize(sql).key`` with a whitespace-flattening fallback
    for text the parameterizer cannot handle.  Imported lazily —
    ``repro.service`` imports ``repro.obs``, not the other way round."""
    try:
        from repro.service.plan_cache import parameterize
        return parameterize(sql).key
    except Exception:
        return " ".join(sql.split())


def normalized_shape_key(sql: str) -> str:
    """The store's shape key: the plan cache's parameterized key,
    computed **without hints** so hinted and unhinted executions of the
    same text share one shape (that is what makes a hint-forced plan
    change visible as two plans of one shape)."""
    with _memo_lock:
        key = _shape_key_memo.get(sql)
    if key is not None:
        return key
    key = _parameterized_key(sql)
    with _memo_lock:
        if len(_shape_key_memo) >= _MEMO_LIMIT:
            _shape_key_memo.clear()
        _shape_key_memo[sql] = key
    return key


def _normalized_step_key(step_sql: str) -> str:
    with _memo_lock:
        key = _step_key_memo.get(step_sql)
    if key is not None:
        return key
    key = _parameterized_key(step_sql)
    with _memo_lock:
        if len(_step_key_memo) >= _MEMO_LIMIT:
            _step_key_memo.clear()
        _step_key_memo[step_sql] = key
    return key


def plan_shape_digest(plan) -> str:
    """A literal-insensitive fingerprint of a **template** DSQL plan.

    Unlike :func:`repro.obs.requests.plan_digest` (raw step SQL), each
    step's SQL is parameterized first, so two compilations of the same
    shape with different literals — a cache miss after an eviction, an
    uncached private recompile — share a hash, while a genuinely
    different plan (movement strategy, step structure) does not.  Hash
    the template (``compiled.dsql_plan``), never an instantiated plan:
    instantiation renames temp tables per execution.
    """
    digest = hashlib.sha1()
    for step in plan.steps:
        movement = getattr(step, "movement", None)
        operation = movement.describe() if movement is not None else "Return"
        digest.update(operation.encode("utf-8", "replace"))
        digest.update(b"\x00")
        digest.update(
            _normalized_step_key(step.sql).encode("utf-8", "replace"))
        digest.update(b"\x00")
    return digest.hexdigest()[:12]


def _step_operation(step) -> str:
    movement = getattr(step, "movement", None)
    return movement.describe() if movement is not None else "Return"


@dataclass
class StepCardinality:
    """Observed vs. estimated cardinality for one DSQL step of one plan.

    The feedback loop's raw material: ``estimated_rows`` is the
    optimizer's shell-db guess baked into the template, the actuals
    accumulate across executions, ``max_q_error`` is the worst
    estimate/actual divergence seen.
    """

    index: int
    kind: str = ""
    operation: str = ""
    estimated_rows: float = 0.0
    executions: int = 0
    actual_rows_total: int = 0
    actual_rows_last: int = 0
    max_q_error: float = 1.0

    @property
    def mean_actual_rows(self) -> float:
        if self.executions <= 0:
            return 0.0
        return self.actual_rows_total / self.executions

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "operation": self.operation,
            "estimated_rows": self.estimated_rows,
            "executions": self.executions,
            "actual_rows_total": self.actual_rows_total,
            "actual_rows_last": self.actual_rows_last,
            "max_q_error": self.max_q_error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StepCardinality":
        return cls(
            index=int(data["index"]),
            kind=str(data["kind"]),
            operation=str(data["operation"]),
            estimated_rows=float(data["estimated_rows"]),
            executions=int(data["executions"]),
            actual_rows_total=int(data["actual_rows_total"]),
            actual_rows_last=int(data["actual_rows_last"]),
            max_q_error=float(data["max_q_error"]),
        )


@dataclass
class PlanStats:
    """Runtime-stat aggregates for one plan of one shape."""

    plan_hash: str
    schema_version: int = 0
    #: Cleared when the plan's history was recorded under a different
    #: schema version than the store's current one (see ``load``) — an
    #: ineligible plan still shows its counts but never serves as a
    #: regression baseline nor gets indicted as a regression.
    baseline_eligible: bool = True
    execution_count: int = 0
    cache_hits: int = 0
    rows_returned_total: int = 0
    bytes_moved_total: int = 0
    wall_seconds_total: float = 0.0
    wall_seconds_min: float = 0.0
    wall_seconds_max: float = 0.0
    wall_seconds_last: float = 0.0
    elapsed_seconds_total: float = 0.0
    elapsed_seconds_min: float = 0.0
    elapsed_seconds_max: float = 0.0
    elapsed_seconds_last: float = 0.0
    queue_seconds_total: float = 0.0
    compile_seconds_total: float = 0.0
    execute_seconds_total: float = 0.0
    first_seen: float = 0.0
    last_seen: float = 0.0
    #: Monotonic recency tie-break (wall clocks can collide).
    last_seen_seq: int = 0
    max_q_error: float = 1.0
    steps: List[StepCardinality] = field(default_factory=list)

    @property
    def mean_wall_seconds(self) -> float:
        if self.execution_count <= 0:
            return 0.0
        return self.wall_seconds_total / self.execution_count

    @property
    def mean_elapsed_seconds(self) -> float:
        """Mean *simulated* latency — the regression detector's metric
        (deterministic; queue waits under concurrency never inflate
        it)."""
        if self.execution_count <= 0:
            return 0.0
        return self.elapsed_seconds_total / self.execution_count

    def to_dict(self) -> dict:
        return {
            "plan_hash": self.plan_hash,
            "schema_version": self.schema_version,
            "baseline_eligible": self.baseline_eligible,
            "execution_count": self.execution_count,
            "cache_hits": self.cache_hits,
            "rows_returned_total": self.rows_returned_total,
            "bytes_moved_total": self.bytes_moved_total,
            "wall_seconds_total": self.wall_seconds_total,
            "wall_seconds_min": self.wall_seconds_min,
            "wall_seconds_max": self.wall_seconds_max,
            "wall_seconds_last": self.wall_seconds_last,
            "elapsed_seconds_total": self.elapsed_seconds_total,
            "elapsed_seconds_min": self.elapsed_seconds_min,
            "elapsed_seconds_max": self.elapsed_seconds_max,
            "elapsed_seconds_last": self.elapsed_seconds_last,
            "queue_seconds_total": self.queue_seconds_total,
            "compile_seconds_total": self.compile_seconds_total,
            "execute_seconds_total": self.execute_seconds_total,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
            "last_seen_seq": self.last_seen_seq,
            "max_q_error": self.max_q_error,
            "steps": [step.to_dict() for step in self.steps],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlanStats":
        return cls(
            plan_hash=str(data["plan_hash"]),
            schema_version=int(data["schema_version"]),
            baseline_eligible=bool(data["baseline_eligible"]),
            execution_count=int(data["execution_count"]),
            cache_hits=int(data["cache_hits"]),
            rows_returned_total=int(data["rows_returned_total"]),
            bytes_moved_total=int(data["bytes_moved_total"]),
            wall_seconds_total=float(data["wall_seconds_total"]),
            wall_seconds_min=float(data["wall_seconds_min"]),
            wall_seconds_max=float(data["wall_seconds_max"]),
            wall_seconds_last=float(data["wall_seconds_last"]),
            elapsed_seconds_total=float(data["elapsed_seconds_total"]),
            elapsed_seconds_min=float(data["elapsed_seconds_min"]),
            elapsed_seconds_max=float(data["elapsed_seconds_max"]),
            elapsed_seconds_last=float(data["elapsed_seconds_last"]),
            queue_seconds_total=float(data["queue_seconds_total"]),
            compile_seconds_total=float(data["compile_seconds_total"]),
            execute_seconds_total=float(data["execute_seconds_total"]),
            first_seen=float(data["first_seen"]),
            last_seen=float(data["last_seen"]),
            last_seen_seq=int(data["last_seen_seq"]),
            max_q_error=float(data["max_q_error"]),
            steps=[StepCardinality.from_dict(step)
                   for step in data.get("steps", [])],
        )


@dataclass
class ShapeStats:
    """One normalized query shape and every plan observed for it."""

    query_id: int
    shape_key: str
    example_sql: str = ""
    first_seen: float = 0.0
    last_seen: float = 0.0
    plans: "OrderedDict[str, PlanStats]" = field(
        default_factory=OrderedDict)

    @property
    def execution_count(self) -> int:
        return sum(plan.execution_count for plan in self.plans.values())

    def current_plan(self) -> Optional[PlanStats]:
        """The most recently executed plan (the one the shape would run
        next — what the regression detector judges)."""
        if not self.plans:
            return None
        return max(self.plans.values(),
                   key=lambda plan: plan.last_seen_seq)

    def to_dict(self) -> dict:
        return {
            "query_id": self.query_id,
            "shape_key": self.shape_key,
            "example_sql": self.example_sql,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
            "execution_count": self.execution_count,
            "plans": [plan.to_dict() for plan in self.plans.values()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShapeStats":
        shape = cls(
            query_id=int(data["query_id"]),
            shape_key=str(data["shape_key"]),
            example_sql=str(data["example_sql"]),
            first_seen=float(data["first_seen"]),
            last_seen=float(data["last_seen"]),
        )
        for plan_data in data.get("plans", []):
            plan = PlanStats.from_dict(plan_data)
            shape.plans[plan.plan_hash] = plan
        return shape


@dataclass(frozen=True)
class PlanRegression:
    """One flagged shape: its current plan runs slower than a prior one."""

    query_id: int
    shape_key: str
    example_sql: str
    plan_hash: str            # the regressed (current) plan
    baseline_hash: str        # the faster prior plan
    current_mean_seconds: float
    baseline_mean_seconds: float
    slowdown: float           # current / baseline mean ratio
    executions: int           # current plan's execution count
    schema_version: int


class QueryStore:
    """Aggregates every completed execution per shape × plan.

    Thread-safe: the service's client threads stamp through one lock,
    and snapshot readers (system-view materialization, exports, the
    regression detector) take the same lock, so no reader sees a
    half-applied update.
    """

    enabled = True

    def __init__(self, max_shapes: int = DEFAULT_MAX_SHAPES,
                 regression_factor: float = DEFAULT_REGRESSION_FACTOR,
                 min_executions: int = DEFAULT_MIN_EXECUTIONS):
        self.max_shapes = max(1, int(max_shapes))
        self.regression_factor = float(regression_factor)
        self.min_executions = max(1, int(min_executions))
        self._lock = threading.RLock()
        self._shapes: "OrderedDict[str, ShapeStats]" = OrderedDict()
        self._next_id = 1
        self._seq = 0
        self._recorded = 0
        self._evicted = 0

    # -- intake ----------------------------------------------------------------

    def stamp(self, sql: str, plan, result, *,
              schema_version: int = 0,
              cache_hit: bool = False,
              timing=None) -> None:
        """Record one completed execution.

        ``plan`` must be the **template** DSQL plan
        (``compiled.dsql_plan``) — instantiated plans carry
        per-execution temp names.  ``result`` is the
        :class:`~repro.appliance.runner.QueryResult`; ``timing`` the
        wall-clock :class:`~repro.appliance.runner.ExecutionTiming`
        breakdown when the caller has one (defaults to
        ``result.timing``).
        """
        if timing is None:
            timing = getattr(result, "timing", None)
        step_stats = getattr(result, "step_stats", ())
        steps: List[Tuple[int, str, str, float, int]] = []
        bytes_moved = 0
        for step, stats in zip(plan.steps, step_stats):
            if stats.operation is not None:
                step_bytes = stats.total_bytes()
            else:
                step_bytes = sum(stats.network_bytes.values())
            bytes_moved += step_bytes
            steps.append((step.index,
                          "DMS" if getattr(step, "movement", None)
                          is not None else "Return",
                          _step_operation(step),
                          float(step.estimated_rows),
                          int(stats.rows_moved)))
        if timing is not None:
            wall = timing.total_seconds
            queue = timing.queue_seconds
            compile_s = timing.compile_seconds
            execute = timing.execute_seconds
        else:
            wall = sum(stats.wall_seconds for stats in step_stats)
            queue = compile_s = 0.0
            execute = wall
        self.record_execution(
            normalized_shape_key(sql), plan_shape_digest(plan),
            example_sql=sql,
            schema_version=schema_version,
            cache_hit=cache_hit,
            rows=len(result.rows),
            bytes_moved=bytes_moved,
            elapsed_seconds=result.elapsed_seconds,
            wall_seconds=wall,
            queue_seconds=queue,
            compile_seconds=compile_s,
            execute_seconds=execute,
            steps=steps,
        )

    def record_execution(self, shape_key: str, plan_hash: str, *,
                         example_sql: str = "",
                         schema_version: int = 0,
                         cache_hit: bool = False,
                         rows: int = 0,
                         bytes_moved: int = 0,
                         elapsed_seconds: float = 0.0,
                         wall_seconds: float = 0.0,
                         queue_seconds: float = 0.0,
                         compile_seconds: float = 0.0,
                         execute_seconds: float = 0.0,
                         steps: Sequence[Tuple[int, str, str, float, int]]
                         = (),
                         now: Optional[float] = None) -> None:
        """The aggregation core: fold one execution's scalars into the
        (shape, plan) bucket.  ``steps`` carries
        ``(index, kind, operation, estimated_rows, actual_rows)``
        tuples."""
        if now is None:
            now = time.time()
        with self._lock:
            self._seq += 1
            self._recorded += 1
            shape = self._shapes.get(shape_key)
            if shape is None:
                shape = ShapeStats(query_id=self._next_id,
                                   shape_key=shape_key,
                                   example_sql=example_sql,
                                   first_seen=now, last_seen=now)
                self._next_id += 1
                self._shapes[shape_key] = shape
            else:
                self._shapes.move_to_end(shape_key)
            shape.last_seen = now
            plan = shape.plans.get(plan_hash)
            if plan is None:
                plan = PlanStats(plan_hash=plan_hash,
                                 schema_version=schema_version,
                                 first_seen=now)
                shape.plans[plan_hash] = plan
            first = plan.execution_count == 0
            plan.execution_count += 1
            if cache_hit:
                plan.cache_hits += 1
            # A plan re-observed after DDL is a live plan again: carry
            # its stats forward under the new version and restore its
            # baseline eligibility.
            plan.schema_version = schema_version
            plan.baseline_eligible = True
            plan.rows_returned_total += int(rows)
            plan.bytes_moved_total += int(bytes_moved)
            plan.wall_seconds_total += wall_seconds
            plan.wall_seconds_last = wall_seconds
            plan.elapsed_seconds_total += elapsed_seconds
            plan.elapsed_seconds_last = elapsed_seconds
            if first:
                plan.wall_seconds_min = wall_seconds
                plan.wall_seconds_max = wall_seconds
                plan.elapsed_seconds_min = elapsed_seconds
                plan.elapsed_seconds_max = elapsed_seconds
            else:
                plan.wall_seconds_min = min(plan.wall_seconds_min,
                                            wall_seconds)
                plan.wall_seconds_max = max(plan.wall_seconds_max,
                                            wall_seconds)
                plan.elapsed_seconds_min = min(plan.elapsed_seconds_min,
                                               elapsed_seconds)
                plan.elapsed_seconds_max = max(plan.elapsed_seconds_max,
                                               elapsed_seconds)
            plan.queue_seconds_total += queue_seconds
            plan.compile_seconds_total += compile_seconds
            plan.execute_seconds_total += execute_seconds
            plan.last_seen = now
            plan.last_seen_seq = self._seq
            for index, kind, operation, estimated, actual in steps:
                while len(plan.steps) <= index:
                    plan.steps.append(StepCardinality(
                        index=len(plan.steps)))
                card = plan.steps[index]
                card.kind = kind
                card.operation = operation
                card.estimated_rows = estimated
                card.executions += 1
                card.actual_rows_total += actual
                card.actual_rows_last = actual
                card.max_q_error = max(card.max_q_error,
                                       q_error(estimated, actual))
                plan.max_q_error = max(plan.max_q_error,
                                       card.max_q_error)
            while len(self._shapes) > self.max_shapes:
                self._shapes.popitem(last=False)
                self._evicted += 1

    # -- snapshots -------------------------------------------------------------

    def shapes(self) -> List[ShapeStats]:
        """Retained shapes ordered by query_id.  The objects are live —
        flatten them while holding ``_lock`` (the system-view
        materializer and the exporters do)."""
        with self._lock:
            return sorted(self._shapes.values(),
                          key=lambda shape: shape.query_id)

    def find(self, shape_key: str) -> Optional[ShapeStats]:
        with self._lock:
            return self._shapes.get(shape_key)

    def regressions(self, factor: Optional[float] = None,
                    min_executions: Optional[int] = None
                    ) -> List[PlanRegression]:
        """Shapes whose current plan's mean simulated latency exceeds
        the best eligible prior plan's by ``factor``.  Baselines must
        share the current plan's schema_version, be baseline-eligible
        and have ``min_executions`` runs (as must the current plan)."""
        if factor is None:
            factor = self.regression_factor
        if min_executions is None:
            min_executions = self.min_executions
        flagged: List[PlanRegression] = []
        with self._lock:
            for shape in self._shapes.values():
                current = shape.current_plan()
                if current is None or not current.baseline_eligible \
                        or current.execution_count < min_executions:
                    continue
                baselines = [
                    plan for plan in shape.plans.values()
                    if plan is not current
                    and plan.baseline_eligible
                    and plan.schema_version == current.schema_version
                    and plan.execution_count >= min_executions
                    and plan.mean_elapsed_seconds > 0.0
                ]
                if not baselines:
                    continue
                best = min(baselines,
                           key=lambda plan: plan.mean_elapsed_seconds)
                if current.mean_elapsed_seconds \
                        > factor * best.mean_elapsed_seconds:
                    flagged.append(PlanRegression(
                        query_id=shape.query_id,
                        shape_key=shape.shape_key,
                        example_sql=shape.example_sql,
                        plan_hash=current.plan_hash,
                        baseline_hash=best.plan_hash,
                        current_mean_seconds=current.mean_elapsed_seconds,
                        baseline_mean_seconds=best.mean_elapsed_seconds,
                        slowdown=(current.mean_elapsed_seconds
                                  / best.mean_elapsed_seconds),
                        executions=current.execution_count,
                        schema_version=current.schema_version,
                    ))
        flagged.sort(key=lambda r: r.slowdown, reverse=True)
        return flagged

    def observed_cardinalities(self, shape_key: str
                               ) -> Dict[int, float]:
        """ROADMAP item 3's hook: mean observed rows per step index of
        the shape's current plan (empty when unknown)."""
        with self._lock:
            shape = self._shapes.get(shape_key)
            if shape is None:
                return {}
            current = shape.current_plan()
            if current is None:
                return {}
            return {card.index: card.mean_actual_rows
                    for card in current.steps if card.executions}

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "shapes": len(self._shapes),
                "plans": sum(len(shape.plans)
                             for shape in self._shapes.values()),
                "executions": sum(shape.execution_count
                                  for shape in self._shapes.values()),
                "recorded": self._recorded,
                "evicted_shapes": self._evicted,
                "max_shapes": self.max_shapes,
                "regression_factor": self.regression_factor,
                "min_executions": self.min_executions,
            }

    # -- persistence -----------------------------------------------------------

    def to_events(self) -> List[dict]:
        """One schema-valid ``query_store_flush`` event per shape — the
        export format *and* the persistence format, so a saved store is
        directly ``schema_check``-able."""
        with self._lock:
            return [{"event": "query_store_flush", **shape.to_dict()}
                    for shape in sorted(self._shapes.values(),
                                        key=lambda s: s.query_id)]

    def save(self, path: str) -> int:
        """Write the store as JSONL ``query_store_flush`` events;
        returns the event count.  Round-trips bit-identically through
        :meth:`load` (floats survive via ``repr`` exactness)."""
        events = self.to_events()
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return len(events)

    def load(self, path: str,
             schema_version: Optional[int] = None) -> int:
        """Merge a saved store back in; returns shapes loaded.

        With ``schema_version`` given (the appliance's current
        version), plans recorded under any *other* version keep their
        history but lose baseline eligibility — a restarted service
        whose data changed never compares new plans against stale
        timings.  Pass ``None`` to restore verbatim.
        """
        loaded = 0
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        with self._lock:
            for line in lines:
                event = json.loads(line)
                if event.get("event") != "query_store_flush":
                    continue
                shape = ShapeStats.from_dict(event)
                if schema_version is not None:
                    for plan in shape.plans.values():
                        if plan.schema_version != schema_version:
                            plan.baseline_eligible = False
                self._shapes[shape.shape_key] = shape
                self._shapes.move_to_end(shape.shape_key)
                self._next_id = max(self._next_id, shape.query_id + 1)
                self._seq = max(
                    self._seq,
                    max((plan.last_seen_seq
                         for plan in shape.plans.values()), default=0))
                loaded += 1
            while len(self._shapes) > self.max_shapes:
                self._shapes.popitem(last=False)
                self._evicted += 1
        return loaded


class NullQueryStore(QueryStore):
    """The disabled store: records nothing, allocates nothing."""

    enabled = False
    __slots__ = ()
    max_shapes = 0
    regression_factor = DEFAULT_REGRESSION_FACTOR
    min_executions = DEFAULT_MIN_EXECUTIONS
    _lock = threading.RLock()

    def __init__(self):  # no per-instance state at all
        pass

    def stamp(self, sql, plan, result, *, schema_version=0,
              cache_hit=False, timing=None):
        del sql, plan, result, schema_version, cache_hit, timing

    def record_execution(self, shape_key, plan_hash, **kwargs):
        del shape_key, plan_hash, kwargs

    def shapes(self):
        return []

    def find(self, shape_key):
        del shape_key
        return None

    def regressions(self, factor=None, min_executions=None):
        del factor, min_executions
        return []

    def observed_cardinalities(self, shape_key):
        del shape_key
        return {}

    def stats(self):
        return {"shapes": 0, "plans": 0, "executions": 0,
                "recorded": 0, "evicted_shapes": 0, "max_shapes": 0,
                "regression_factor": self.regression_factor,
                "min_executions": self.min_executions}

    def to_events(self):
        return []

    def save(self, path):
        del path
        return 0

    def load(self, path, schema_version=None):
        del path, schema_version
        return 0


NULL_QUERY_STORE = NullQueryStore()
