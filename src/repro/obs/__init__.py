"""repro.obs — the observability subsystem.

Grown out of :mod:`repro.telemetry` (PR 1's span trees and flat
counters), this package adds the feedback layer the paper's §2.5 claim
needs to be *checked* rather than assumed:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of labeled
  counters/gauges/histograms with a zero-overhead no-op default
  (:data:`NULL_METRICS`), mirroring the ``NULL_TRACER`` contract;
* :mod:`repro.obs.profiler` — per-node / per-operator runtime actuals
  joined with the winning plan's cardinality estimates: skew statistics
  (max/mean, coefficient of variation) and Q-error profiles;
* :mod:`repro.obs.opt_trace` — the optimizer search-space recorder
  (:class:`OptimizerTrace` / :data:`NULL_OPT_TRACE`): per-group
  enumeration, prune and enforce accounting, hint overrides;
* :mod:`repro.obs.requests` — the live request-lifecycle layer
  (:class:`RequestRegistry` / :data:`NULL_REQUESTS`): every query gets a
  ``request_id`` tracked queued → compiling → running → complete, with
  per-step and per-node progress updated in-flight, plus the bounded
  flight recorder of completed requests;
* :mod:`repro.obs.query_store` — the persistent plan + runtime-stats
  history (:class:`QueryStore` / :data:`NULL_QUERY_STORE`): every
  completed execution aggregated per normalized shape × plan hash, with
  JSONL persistence and plan-regression detection — the fifth lens, and
  ROADMAP item 3's correction-cache substrate;
* :mod:`repro.obs.system_views` — the eight virtual system views
  (``sys.dm_pdw_*`` plus ``sys.query_store_*``), snapshot-materialized
  as replicated pseudo-tables so they are queryable through the normal
  parse → optimize → execute path;
* :mod:`repro.obs.export` — structured sinks: JSONL event log with
  schema validation, JSON profile documents, Prometheus text;
* :mod:`repro.obs.report` — the rendered ``repro profile``,
  ``repro why`` and ``repro requests`` tables;
* :mod:`repro.obs.schema_check` — ``python -m repro.obs.schema_check``
  CLI used by CI to validate emitted JSONL.
"""

from repro.obs.export import (
    EVENT_SCHEMAS,
    events_to_jsonl,
    optimizer_trace_to_events,
    optimizer_trace_to_metrics,
    profile_to_events,
    profile_to_metrics,
    query_store_to_events,
    query_store_to_metrics,
    request_to_event,
    requests_to_events,
    requests_to_metrics,
    validate_event,
    validate_events,
    validate_jsonl,
    write_jsonl,
)
from repro.obs.opt_trace import (
    EnumerationRecord,
    GroupTrace,
    HintOverrideRecord,
    MovementRecord,
    NULL_OPT_TRACE,
    NullOptimizerTrace,
    OptimizerTrace,
    OptimizerTraceSummary,
    PruneRecord,
    format_property_key,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsError,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
)
from repro.obs.profiler import (
    OperatorEstimate,
    OperatorObserver,
    OperatorProfile,
    QErrorSummary,
    QueryProfile,
    SkewStats,
    StepProfile,
    build_query_profile,
    fragment_operator_estimates,
    operator_kind,
    q_error,
    skew_stats,
    summarize_q_errors,
)
from repro.obs.query_store import (
    NULL_QUERY_STORE,
    NullQueryStore,
    PlanRegression,
    PlanStats,
    QueryStore,
    ShapeStats,
    StepCardinality,
    normalized_shape_key,
    plan_shape_digest,
)
from repro.obs.report import (
    render_group_table,
    render_operator_table,
    render_optimizer_trace_report,
    render_profile_report,
    render_prune_effectiveness_table,
    render_query_store_plans_table,
    render_query_store_regressions,
    render_query_store_report,
    render_query_store_table,
    render_rejected_movements_table,
    render_request_steps_table,
    render_requests_report,
    render_requests_table,
    render_step_table,
)
from repro.obs.requests import (
    NULL_REQUEST,
    NULL_REQUESTS,
    NullRequestHandle,
    NullRequestRegistry,
    REQUEST_STATES,
    RequestHandle,
    RequestRecord,
    RequestRegistry,
    StepProgress,
    TERMINAL_STATES,
    plan_digest,
)
from repro.obs.system_views import (
    SYSTEM_VIEW_NAMES,
    mentions_system_views,
    refresh_system_views,
    register_system_views,
    system_view_defs,
)

__all__ = [
    "EVENT_SCHEMAS",
    "events_to_jsonl",
    "optimizer_trace_to_events",
    "optimizer_trace_to_metrics",
    "profile_to_events",
    "profile_to_metrics",
    "validate_event",
    "validate_events",
    "validate_jsonl",
    "write_jsonl",
    "EnumerationRecord",
    "GroupTrace",
    "HintOverrideRecord",
    "MovementRecord",
    "NULL_OPT_TRACE",
    "NullOptimizerTrace",
    "OptimizerTrace",
    "OptimizerTraceSummary",
    "PruneRecord",
    "format_property_key",
    "DEFAULT_BUCKETS",
    "MetricsError",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetricsRegistry",
    "OperatorEstimate",
    "OperatorObserver",
    "OperatorProfile",
    "QErrorSummary",
    "QueryProfile",
    "SkewStats",
    "StepProfile",
    "build_query_profile",
    "fragment_operator_estimates",
    "operator_kind",
    "q_error",
    "skew_stats",
    "summarize_q_errors",
    "render_group_table",
    "render_operator_table",
    "render_optimizer_trace_report",
    "render_profile_report",
    "render_prune_effectiveness_table",
    "render_rejected_movements_table",
    "render_request_steps_table",
    "render_requests_report",
    "render_requests_table",
    "render_step_table",
    "render_query_store_table",
    "render_query_store_plans_table",
    "render_query_store_regressions",
    "render_query_store_report",
    "request_to_event",
    "requests_to_events",
    "requests_to_metrics",
    "query_store_to_events",
    "query_store_to_metrics",
    "NULL_QUERY_STORE",
    "NullQueryStore",
    "PlanRegression",
    "PlanStats",
    "QueryStore",
    "ShapeStats",
    "StepCardinality",
    "normalized_shape_key",
    "plan_shape_digest",
    "NULL_REQUEST",
    "NULL_REQUESTS",
    "NullRequestHandle",
    "NullRequestRegistry",
    "REQUEST_STATES",
    "RequestHandle",
    "RequestRecord",
    "RequestRegistry",
    "StepProgress",
    "TERMINAL_STATES",
    "plan_digest",
    "SYSTEM_VIEW_NAMES",
    "mentions_system_views",
    "refresh_system_views",
    "register_system_views",
    "system_view_defs",
]
