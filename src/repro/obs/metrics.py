"""MetricsRegistry: labeled counters, gauges and histograms.

The registry is the structured-metrics counterpart of
:mod:`repro.telemetry`'s flat counter map.  Where a tracer counter is one
accumulating number per dotted name, a registry metric carries **labels**
(``node=``, ``op=``, ``step=``) so per-node and per-operator facts keep
their identity all the way to the export sinks::

    registry = MetricsRegistry()
    rows = registry.counter("pdw_step_rows_total",
                            "Rows produced per node per DSQL step",
                            labelnames=("step", "op", "node"))
    rows.labels(step="1", op="shuffle", node="3").inc(4821)
    print(registry.render_prometheus())

The default everywhere is :data:`NULL_METRICS`, which preserves the
``NULL_TRACER`` zero-overhead contract: every method returns a shared
no-op object, nothing is allocated per call, and instrumented code guards
any loop that would *compute* a metric value on ``registry.enabled``.

Like :mod:`repro.telemetry`, this module is dependency-free so it can be
imported from every layer without cycles.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "MetricsError",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "DEFAULT_BUCKETS",
]


class MetricsError(ValueError):
    """Metric misuse: kind/label mismatches, unknown labels."""


# Geometric default buckets; wide enough for q-errors, skew coefficients
# and simulated seconds alike.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0,
    10.0, 50.0, 100.0, 1000.0,
)


# Value mutations (`self.value += amount`) are read-modify-writes, and
# the DMS runtime increments series from node/step worker threads under
# the parallel runtime.  One shared lock keeps every series consistent;
# the critical sections are a few arithmetic ops, far cheaper than the
# label lookup that precedes them.
_VALUE_LOCK = threading.Lock()


class CounterValue:
    """One labeled time series of a counter metric.  Thread-safe."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError("counters can only increase")
        with _VALUE_LOCK:
            self.value += amount


class GaugeValue:
    """One labeled time series of a gauge metric.  Thread-safe."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with _VALUE_LOCK:
            self.value += amount


class HistogramValue:
    """One labeled time series of a histogram metric.  Thread-safe."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Sequence[float]):
        self.buckets = tuple(buckets)
        self.counts = [0] * len(self.buckets)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with _VALUE_LOCK:
            self.total += value
            self.count += 1
            # per-bucket counts; cumulative() folds them for exposition
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    break

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper bound, cumulative count) pairs, excluding +Inf."""
        out = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        return out


_KIND_VALUES = {
    "counter": CounterValue,
    "gauge": GaugeValue,
    "histogram": HistogramValue,
}


class Metric:
    """A named metric family: one value object per distinct label set."""

    __slots__ = ("name", "help", "kind", "labelnames", "buckets",
                 "_children", "_lock")

    def __init__(self, name: str, help: str, kind: str,
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets)
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: object):
        """The child time series for one concrete label assignment.
        Thread-safe: concurrent first touches create one child."""
        if set(labels) != set(self.labelnames):
            raise MetricsError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if self.kind == "histogram":
                        child = HistogramValue(self.buckets)
                    else:
                        child = _KIND_VALUES[self.kind]()
                    self._children[key] = child
        return child

    # Label-free conveniences --------------------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def series(self) -> List[Tuple[Dict[str, str], object]]:
        """(labels dict, value object) for every child, sorted by labels.
        Snapshots under the lock so concurrent first-touch inserts never
        break a render mid-iteration."""
        with self._lock:
            items = sorted(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), child)
            for key, child in items
        ]


class MetricsRegistry:
    """Owns all metric families; the render/snapshot surface."""

    enabled = True

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    # -- registration ---------------------------------------------------------

    def _register(self, name: str, help: str, kind: str,
                  labelnames: Sequence[str],
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Metric:
        with self._lock:
            return self._register_locked(name, help, kind, labelnames,
                                         buckets)

    def _register_locked(self, name: str, help: str, kind: str,
                         labelnames: Sequence[str],
                         buckets: Sequence[float]) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise MetricsError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {kind}")
            if existing.labelnames != tuple(labelnames):
                raise MetricsError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.labelnames}, not {tuple(labelnames)}")
            return existing
        metric = Metric(name, help, kind, labelnames, buckets)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Metric:
        return self._register(name, help, "counter", labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Metric:
        return self._register(name, help, "gauge", labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Metric:
        return self._register(name, help, "histogram", labelnames,
                              buckets)

    # -- introspection --------------------------------------------------------

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def metrics(self) -> List[Metric]:
        with self._lock:  # registrations race with renders
            return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
        """Scalar view: name → {label items → value}.  Histograms report
        their observation count."""
        out: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
        for metric in self.metrics():
            family = {}
            for labels, child in metric.series():
                key = tuple(sorted(labels.items()))
                if isinstance(child, HistogramValue):
                    family[key] = float(child.count)
                else:
                    family[key] = float(child.value)
            out[metric.name] = family
        return out

    def reset(self) -> None:
        self._metrics = {}

    # -- export ---------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: List[str] = []
        for metric in self.metrics():
            if metric.help:
                lines.append(
                    f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for labels, child in metric.series():
                if isinstance(child, HistogramValue):
                    for bound, cum in child.cumulative():
                        lines.append(_series_line(
                            f"{metric.name}_bucket",
                            {**labels, "le": _fmt_float(bound)}, cum))
                    lines.append(_series_line(
                        f"{metric.name}_bucket",
                        {**labels, "le": "+Inf"}, child.count))
                    lines.append(_series_line(f"{metric.name}_sum",
                                              labels, child.total))
                    lines.append(_series_line(f"{metric.name}_count",
                                              labels, child.count))
                else:
                    lines.append(_series_line(metric.name, labels,
                                              child.value))
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt_float(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_help(value: str) -> str:
    """HELP text escaping per the exposition format: backslash and
    newline only (quotes are *not* escaped outside label values)."""
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _series_line(name: str, labels: Dict[str, str], value) -> str:
    rendered = _fmt_float(float(value))
    if not labels:
        return f"{name} {rendered}"
    inner = ",".join(
        f'{key}="{_escape_label(str(val))}"'
        for key, val in sorted(labels.items()))
    return f"{name}{{{inner}}} {rendered}"


# -- the no-op default ---------------------------------------------------------


class _NullValue:
    """Shared do-nothing child: counter, gauge and histogram alike."""

    __slots__ = ()
    value = 0.0
    count = 0
    total = 0.0

    def inc(self, amount: float = 1.0) -> None:
        del amount

    def set(self, value: float) -> None:
        del value

    def observe(self, value: float) -> None:
        del value


_NULL_VALUE = _NullValue()


class _NullMetric:
    """Shared do-nothing metric family."""

    __slots__ = ()

    def labels(self, **labels: object) -> _NullValue:
        del labels
        return _NULL_VALUE

    def inc(self, amount: float = 1.0) -> None:
        del amount

    def set(self, value: float) -> None:
        del value

    def observe(self, value: float) -> None:
        del value

    def series(self) -> List:
        return []


_NULL_METRIC = _NullMetric()


class NullMetricsRegistry(MetricsRegistry):
    """The default registry: records nothing, allocates nothing."""

    enabled = False

    def _register(self, name: str, help: str, kind: str,
                  labelnames: Sequence[str],
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Metric:
        del name, help, kind, labelnames, buckets
        return _NULL_METRIC  # type: ignore[return-value]


NULL_METRICS = NullMetricsRegistry()
