"""The appliance's queryable system views (``sys.dm_pdw_*`` DMVs).

The product ships its runtime state as Dynamic Management Views on the
control node; this module reproduces that surface.  Eight replicated
pseudo-tables are registered in the catalog/shell database (the parser
already folds ``sys.dm_pdw_exec_requests`` down to its last component,
so the ``sys.`` spelling works through the ordinary parse -> optimize ->
execute path), and :func:`refresh_system_views` snapshot-materializes
their rows on demand from the live sources of truth:

* ``sys.dm_pdw_exec_requests`` — one row per active or retained request
  (:class:`repro.obs.requests.RequestRegistry`);
* ``sys.dm_pdw_request_steps`` — one row per DSQL step of each request,
  live step status included;
* ``sys.dm_pdw_dms_workers`` — one row per (request, step, node)
  extract+route task that has reported progress;
* ``sys.dm_pdw_plan_cache`` — one row per parameterized plan-cache
  entry (:class:`repro.service.PlanCache`);
* ``sys.dm_pdw_admission`` — one row of admission-controller state
  (:class:`repro.service.AdmissionController`);
* ``sys.query_store_query_texts`` — one row per normalized query shape
  retained by the :class:`repro.obs.query_store.QueryStore`;
* ``sys.query_store_plans`` — one row per (shape, plan hash) with
  execution counts, bytes moved and max Q-error;
* ``sys.query_store_runtime_stats`` — per-plan latency aggregates
  (mean/min/max/last, phase totals).

A refresh replaces rows through
:meth:`repro.appliance.storage.Appliance.replace_system_rows`, which is
**schema-version neutral**: querying a DMV never invalidates the plan
cache, and cached DMV query plans re-execute against fresh snapshots.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.appliance.storage import Appliance
from repro.catalog.schema import Column, REPLICATED, TableDef
from repro.common.types import BIGINT, BOOLEAN, DOUBLE, INTEGER, varchar
from repro.obs.requests import RequestRecord, RequestRegistry

__all__ = [
    "EXEC_REQUESTS",
    "REQUEST_STEPS",
    "DMS_WORKERS",
    "PLAN_CACHE",
    "ADMISSION",
    "QS_QUERY_TEXTS",
    "QS_PLANS",
    "QS_RUNTIME_STATS",
    "SYSTEM_VIEW_NAMES",
    "system_view_defs",
    "register_system_views",
    "refresh_system_views",
    "mentions_system_views",
]

EXEC_REQUESTS = "dm_pdw_exec_requests"
REQUEST_STEPS = "dm_pdw_request_steps"
DMS_WORKERS = "dm_pdw_dms_workers"
PLAN_CACHE = "dm_pdw_plan_cache"
ADMISSION = "dm_pdw_admission"
QS_QUERY_TEXTS = "query_store_query_texts"
QS_PLANS = "query_store_plans"
QS_RUNTIME_STATS = "query_store_runtime_stats"

SYSTEM_VIEW_NAMES = (EXEC_REQUESTS, REQUEST_STEPS, DMS_WORKERS,
                     PLAN_CACHE, ADMISSION,
                     QS_QUERY_TEXTS, QS_PLANS, QS_RUNTIME_STATS)

#: Cheap pre-parse triggers: a query can only read a system view if its
#: text mentions one of the shared name prefixes.
_VIEW_MARKERS = ("dm_pdw_", "query_store_")

#: SQL text in ``dm_pdw_exec_requests.command`` is truncated to this.
_COMMAND_WIDTH = 200


def mentions_system_views(sql: str) -> bool:
    """Whether ``sql`` might read a system view (refresh trigger)."""
    lowered = sql.lower()
    return any(marker in lowered for marker in _VIEW_MARKERS)


def system_view_defs() -> List[TableDef]:
    """Fresh definitions of all eight views (``row_count`` is mutable
    per-appliance state, so every appliance gets its own copies)."""
    return [
        TableDef(EXEC_REQUESTS, [
            Column("request_id", varchar(16), nullable=False),
            Column("status", varchar(16), nullable=False),
            Column("tenant", varchar(32)),
            Column("priority", varchar(16)),
            Column("command", varchar(_COMMAND_WIDTH)),
            Column("cache_hit", BOOLEAN),
            Column("plan_digest", varchar(16)),
            Column("total_steps", INTEGER),
            Column("current_step", INTEGER),
            Column("rows_returned", INTEGER),
            Column("queue_ms", DOUBLE),
            Column("compile_ms", DOUBLE),
            Column("execute_ms", DOUBLE),
            Column("total_ms", DOUBLE),
            Column("error_text", varchar(_COMMAND_WIDTH)),
        ], REPLICATED, is_system=True),
        TableDef(REQUEST_STEPS, [
            Column("request_id", varchar(16), nullable=False),
            Column("step_index", INTEGER, nullable=False),
            Column("kind", varchar(8)),
            Column("operation", varchar(64)),
            Column("status", varchar(16)),
            Column("row_count", BIGINT),
            Column("total_bytes", BIGINT),
            Column("elapsed_ms", DOUBLE),
            Column("wall_ms", DOUBLE),
        ], REPLICATED, is_system=True),
        TableDef(DMS_WORKERS, [
            Column("request_id", varchar(16), nullable=False),
            Column("step_index", INTEGER, nullable=False),
            Column("pdw_node_id", INTEGER, nullable=False),
            Column("rows_processed", BIGINT),
            Column("bytes_processed", BIGINT),
            Column("wall_ms", DOUBLE),
            Column("status", varchar(16)),
        ], REPLICATED, is_system=True),
        TableDef(PLAN_CACHE, [
            Column("shape_key", varchar(_COMMAND_WIDTH), nullable=False),
            Column("schema_version", INTEGER),
            Column("compile_count", INTEGER),
            Column("hit_count", INTEGER),
            Column("execution_count", INTEGER),
            Column("ambiguous_misses", INTEGER),
        ], REPLICATED, is_system=True),
        TableDef(ADMISSION, [
            Column("in_flight", INTEGER),
            Column("queue_depth", INTEGER),
            Column("max_in_flight", INTEGER),
            Column("max_queue", INTEGER),
            Column("admitted_total", INTEGER),
            Column("rejected_total", INTEGER),
        ], REPLICATED, is_system=True),
        TableDef(QS_QUERY_TEXTS, [
            Column("query_id", INTEGER, nullable=False),
            Column("query_text", varchar(_COMMAND_WIDTH), nullable=False),
            Column("example_sql", varchar(_COMMAND_WIDTH)),
            Column("plan_count", INTEGER),
            Column("execution_count", INTEGER),
            Column("first_seen", DOUBLE),
            Column("last_seen", DOUBLE),
        ], REPLICATED, is_system=True),
        TableDef(QS_PLANS, [
            Column("query_id", INTEGER, nullable=False),
            Column("plan_hash", varchar(16), nullable=False),
            Column("schema_version", INTEGER),
            Column("is_current", BOOLEAN),
            Column("baseline_eligible", BOOLEAN),
            Column("execution_count", INTEGER),
            Column("cache_hits", INTEGER),
            Column("step_count", INTEGER),
            Column("rows_returned", BIGINT),
            Column("bytes_moved", BIGINT),
            Column("max_q_error", DOUBLE),
            Column("first_seen", DOUBLE),
            Column("last_seen", DOUBLE),
        ], REPLICATED, is_system=True),
        TableDef(QS_RUNTIME_STATS, [
            Column("query_id", INTEGER, nullable=False),
            Column("plan_hash", varchar(16), nullable=False),
            Column("execution_count", INTEGER),
            Column("mean_ms", DOUBLE),
            Column("min_ms", DOUBLE),
            Column("max_ms", DOUBLE),
            Column("last_ms", DOUBLE),
            Column("wall_mean_ms", DOUBLE),
            Column("queue_ms_total", DOUBLE),
            Column("compile_ms_total", DOUBLE),
            Column("execute_ms_total", DOUBLE),
            Column("rows_returned", BIGINT),
            Column("bytes_moved", BIGINT),
            Column("max_q_error", DOUBLE),
        ], REPLICATED, is_system=True),
    ]


def register_system_views(appliance: Appliance) -> None:
    """Idempotently create all eight views on ``appliance`` (empty).

    Registration is schema-version neutral (system tables never count
    as DDL), so a service can register them lazily without flushing its
    plan cache.
    """
    for table in system_view_defs():
        if not appliance.catalog.has_table(table.name):
            appliance.create_table(table)


def _one_line(text: str, width: int = _COMMAND_WIDTH) -> str:
    return " ".join(text.split())[:width]


def _exec_request_row(record: RequestRecord) -> Tuple:
    return (
        record.request_id,
        record.status,
        record.tenant,
        record.priority,
        _one_line(record.sql),
        record.cache_hit,
        record.plan_digest,
        record.step_count,
        record.current_step,
        record.rows_returned,
        record.queue_seconds * 1e3,
        record.compile_seconds * 1e3,
        record.execute_seconds * 1e3,
        record.total_seconds * 1e3,
        _one_line(record.error),
    )


def _request_id_key(record: RequestRecord) -> int:
    try:
        return int(record.request_id[3:])
    except (TypeError, ValueError):
        return 0


def refresh_system_views(appliance: Appliance,
                         requests: RequestRegistry,
                         plan_cache=None,
                         admission=None,
                         query_store=None) -> None:
    """Materialize a consistent snapshot of all eight views.

    Sources are snapshotted first (each under its own lock), then each
    view's rows are swapped in atomically — a concurrent scan sees
    either the old snapshot or the new one, never a mix within one
    table.  Safe to call from any thread, any number of times.
    """
    register_system_views(appliance)
    records = sorted(requests.snapshot(), key=_request_id_key)

    exec_rows: List[Tuple] = []
    step_rows: List[Tuple] = []
    worker_rows: List[Tuple] = []
    if records:
        # Active records mutate in flight (per-node dicts fill in from
        # worker threads); hold the registry lock while flattening so
        # no row is built from a half-applied transition.
        with requests._lock:
            for record in records:
                exec_rows.append(_exec_request_row(record))
                for step in record.steps:
                    step_rows.append((
                        record.request_id, step.index, step.kind,
                        _one_line(step.operation, 64), step.status,
                        step.rows_moved, step.bytes_moved,
                        step.elapsed_seconds * 1e3,
                        step.wall_seconds * 1e3,
                    ))
                    for node_id in sorted(step.node_rows):
                        worker_rows.append((
                            record.request_id, step.index, node_id,
                            step.node_rows[node_id],
                            step.node_bytes.get(node_id, 0),
                            step.node_wall_seconds.get(node_id, 0.0)
                            * 1e3,
                            step.status,
                        ))

    cache_rows: List[Tuple] = []
    if plan_cache is not None:
        for entry in plan_cache.entries():
            cache_rows.append((
                _one_line(entry.shape.key),
                entry.schema_version,
                entry.compile_count,
                entry.hits,
                entry.executions,
                entry.misses_ambiguous,
            ))

    admission_rows: List[Tuple] = []
    if admission is not None:
        stats = admission.stats()
        rejected = stats.get("rejected_total", {})
        if isinstance(rejected, dict):
            rejected = sum(rejected.values())
        admission_rows.append((
            stats["in_flight"], stats["queue_depth"],
            stats["max_in_flight"], stats["max_queue"],
            stats["admitted_total"], rejected,
        ))

    text_rows: List[Tuple] = []
    plan_rows: List[Tuple] = []
    runtime_rows: List[Tuple] = []
    if query_store is not None and query_store.enabled:
        # One snapshot under the store's lock so SQL joins across the
        # three query_store_* views are mutually consistent.
        with query_store._lock:
            for shape in query_store.shapes():
                current = shape.current_plan()
                text_rows.append((
                    shape.query_id,
                    _one_line(shape.shape_key),
                    _one_line(shape.example_sql),
                    len(shape.plans),
                    shape.execution_count,
                    shape.first_seen,
                    shape.last_seen,
                ))
                for plan in shape.plans.values():
                    plan_rows.append((
                        shape.query_id,
                        plan.plan_hash,
                        plan.schema_version,
                        plan is current,
                        plan.baseline_eligible,
                        plan.execution_count,
                        plan.cache_hits,
                        len(plan.steps),
                        plan.rows_returned_total,
                        plan.bytes_moved_total,
                        plan.max_q_error,
                        plan.first_seen,
                        plan.last_seen,
                    ))
                    runtime_rows.append((
                        shape.query_id,
                        plan.plan_hash,
                        plan.execution_count,
                        plan.mean_elapsed_seconds * 1e3,
                        plan.elapsed_seconds_min * 1e3,
                        plan.elapsed_seconds_max * 1e3,
                        plan.elapsed_seconds_last * 1e3,
                        plan.mean_wall_seconds * 1e3,
                        plan.queue_seconds_total * 1e3,
                        plan.compile_seconds_total * 1e3,
                        plan.execute_seconds_total * 1e3,
                        plan.rows_returned_total,
                        plan.bytes_moved_total,
                        plan.max_q_error,
                    ))

    appliance.replace_system_rows(EXEC_REQUESTS, exec_rows)
    appliance.replace_system_rows(REQUEST_STEPS, step_rows)
    appliance.replace_system_rows(DMS_WORKERS, worker_rows)
    appliance.replace_system_rows(PLAN_CACHE, cache_rows)
    appliance.replace_system_rows(ADMISSION, admission_rows)
    appliance.replace_system_rows(QS_QUERY_TEXTS, text_rows)
    appliance.replace_system_rows(QS_PLANS, plan_rows)
    appliance.replace_system_rows(QS_RUNTIME_STATS, runtime_rows)
