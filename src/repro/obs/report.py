"""Human-readable rendering of query profiles and optimizer traces.

``render_profile_report`` produces the ``repro profile`` output: a
per-step table (movement, skew coefficient, Q-error), a per-operator
table (per-node row counts, skew, Q-error), and the workload-style
Q-error summary line.

``render_optimizer_trace_report`` produces the search-space half of the
``repro why`` output: per-group enumeration statistics, the top-k
costliest considered-but-rejected movements, and prune effectiveness per
interesting-property key.

``render_requests_report`` produces the ``repro requests`` output: the
flight recorder's per-request summary table (status, cache verdict,
phase timings) plus a per-step actuals table for slow requests.

``render_query_store_report`` produces the ``repro querystore`` output:
the per-shape history table, the per-plan runtime-stats table, and the
plan-regression verdicts.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.opt_trace import OptimizerTrace
from repro.obs.profiler import QueryProfile
from repro.obs.requests import RequestRecord, RequestRegistry

__all__ = [
    "render_table",
    "render_step_table",
    "render_operator_table",
    "render_profile_report",
    "render_group_table",
    "render_rejected_movements_table",
    "render_prune_effectiveness_table",
    "render_optimizer_trace_report",
    "render_requests_table",
    "render_request_steps_table",
    "render_requests_report",
    "render_query_store_table",
    "render_query_store_plans_table",
    "render_query_store_regressions",
    "render_query_store_report",
]

# Per-node row vectors are shown verbatim up to this many participants;
# larger appliances collapse to min/mean/max.
_MAX_INLINE_NODES = 8


def render_table(headers: List[str], rows: List[List[str]],
                 left_columns: frozenset = frozenset()) -> str:
    """Aligned fixed-width table (numbers right, names left)."""
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]

    def fmt(cells: List[str]) -> str:
        padded = []
        for i, cell in enumerate(cells):
            if i in left_columns:
                padded.append(cell.ljust(widths[i]))
            else:
                padded.append(cell.rjust(widths[i]))
        return "  ".join(padded).rstrip()

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines += [fmt(r) for r in rows]
    return "\n".join(lines)


def _node_vector(node_rows: Dict[int, int]) -> str:
    if not node_rows:
        return "-"
    values = [rows for _node, rows in sorted(node_rows.items())]
    if len(values) == 1:
        return str(values[0])
    if len(values) <= _MAX_INLINE_NODES:
        return "[" + " ".join(str(v) for v in values) + "]"
    mean = sum(values) / len(values)
    return f"min={min(values)} mean={mean:.0f} max={max(values)}"


def _fmt_q(q: Optional[float]) -> str:
    if q is None:
        return "-"
    if q >= 1000:
        return f"{q:.3g}"
    return f"{q:.2f}"


def render_step_table(profile: QueryProfile) -> str:
    headers = ["step", "operation", "est rows", "act rows", "node rows",
               "skew cov", "max/mean", "recv skew", "q-err"]
    rows = [[
        str(s.index),
        s.operation,
        f"{s.estimated_rows:.0f}",
        str(s.actual_rows),
        _node_vector(s.source_rows),
        f"{s.source_skew.cov:.3f}",
        f"{s.source_skew.imbalance:.2f}",
        f"{s.receive_skew.cov:.3f}" if s.kind == "DMS" else "-",
        _fmt_q(s.q_error),
    ] for s in profile.steps]
    return render_table(headers, rows, left_columns=frozenset({1}))


def render_operator_table(profile: QueryProfile) -> str:
    headers = ["step", "operator", "node rows", "act rows", "est rows",
               "skew cov", "q-err"]
    rows = [[
        str(op.step),
        op.label,
        _node_vector(op.node_rows),
        str(op.actual_rows),
        f"{op.estimated_rows:.0f}" if op.estimated_rows is not None
        else "-",
        f"{op.skew.cov:.3f}",
        _fmt_q(op.q_error),
    ] for op in profile.operators]
    return render_table(headers, rows, left_columns=frozenset({1}))


def render_profile_report(profile: QueryProfile) -> str:
    summary = profile.q_error_summary()
    lines = [
        "Per-step profile (skew over source nodes, recv over "
        "destination bytes):",
        render_step_table(profile),
    ]
    if profile.operators:
        lines += [
            "",
            "Per-operator profile (winning-plan estimates vs. "
            "interpreter actuals):",
            render_operator_table(profile),
        ]
    lines += [
        "",
        f"Q-error: n={summary.count} median={_fmt_q(summary.median)} "
        f"p95={_fmt_q(summary.p95)} max={_fmt_q(summary.max)}",
        f"-- {profile.elapsed_seconds * 1e3:.3f} ms simulated "
        f"({profile.dms_seconds * 1e3:.3f} ms data movement) on "
        f"{profile.node_count} nodes",
    ]
    return "\n".join(lines)


# -- optimizer trace tables ----------------------------------------------------


def render_group_table(trace: OptimizerTrace) -> str:
    """Per-MEMO-group enumeration statistics: interesting properties,
    expressions enumerated, options considered vs. retained."""
    headers = ["group", "interesting", "exprs", "considered", "retained",
               "kept options"]
    rows = []
    for group in sorted(trace.groups):
        g = trace.groups[group]
        rows.append([
            str(g.group),
            ",".join(g.interesting) if g.interesting else "-",
            str(len(g.enumerated)),
            str(g.options_considered),
            str(g.options_retained),
            "; ".join(f"{key}={cost:.6f}s"
                      for _desc, key, cost in g.retained) or "-",
        ])
    return render_table(headers, rows, left_columns=frozenset({1, 5}))


def render_rejected_movements_table(trace: OptimizerTrace,
                                    top_k: int = 10) -> str:
    """The top-k costliest movements the optimizer costed and walked
    away from — the §2.5 "alternatives considered" evidence."""
    headers = ["group", "movement", "ctx", "source -> target", "rows",
               "move cost", "total"]
    rows = [[
        str(m.group),
        m.movement,
        m.context,
        f"{m.source} -> {m.target}",
        f"{m.rows:.0f}",
        f"{m.move_cost:.6f}s",
        f"{m.total_cost:.6f}s",
    ] for m in trace.rejected_movements(top_k)]
    return render_table(headers, rows, left_columns=frozenset({1, 2, 3}))


def render_prune_effectiveness_table(trace: OptimizerTrace) -> str:
    """Per interesting-property key: how many options pruning discarded
    and how much worse they were than their survivors."""
    headers = ["property", "pruned", "mean delta", "max delta"]
    rows = [[
        key,
        str(count),
        f"{mean_delta:.6f}s",
        f"{max_delta:.6f}s",
    ] for key, (count, mean_delta, max_delta)
        in trace.prune_effectiveness().items()]
    return render_table(headers, rows, left_columns=frozenset({0}))


def render_optimizer_trace_report(trace: OptimizerTrace,
                                  top_k: int = 10) -> str:
    """The search-space half of ``repro why``: summary line, per-group
    table, rejected movements, prune effectiveness, hint overrides."""
    s = trace.summary()
    lines = [
        "Search space: "
        f"{s.groups} groups, {s.expressions} expressions, "
        f"{s.options_considered} options considered, "
        f"{s.options_retained} retained "
        f"({s.options_pruned} pruned), "
        f"{s.enforcers_added} DMS enforcers added, "
        f"{s.movements_considered} movements costed "
        f"({s.movements_rejected} rejected) "
        f"in {s.optimize_seconds * 1e3:.3f} ms",
        "",
        "Per-group enumeration:",
        render_group_table(trace),
    ]
    if s.movements_rejected:
        lines += [
            "",
            f"Costliest considered-but-rejected movements (top {top_k}):",
            render_rejected_movements_table(trace, top_k),
        ]
    if trace.prunes:
        lines += [
            "",
            "Prune effectiveness per interesting property:",
            render_prune_effectiveness_table(trace),
        ]
    for override in trace.hint_overrides:
        displaced = ", ".join(
            f"{desc} ({cost:.6f}s)" for desc, cost in
            zip(override.displaced, override.displaced_costs))
        lines += [
            "",
            f"Hint override: group {override.group} forced "
            f"'{override.strategy}' for table {override.table!r}, "
            f"displacing {displaced}; {override.kept} option(s) kept.",
        ]
    return "\n".join(lines)


# -- request flight-recorder tables --------------------------------------------


def _clip_sql(sql: str, width: int = 48) -> str:
    flat = " ".join(sql.split())
    return flat if len(flat) <= width else flat[: width - 3] + "..."


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}"


def render_requests_table(records: List[RequestRecord]) -> str:
    """One row per request: the ``sys.dm_pdw_exec_requests`` view in
    terminal form."""
    headers = ["request", "status", "cache", "steps", "rows",
               "queue ms", "compile ms", "exec ms", "total ms", "command"]
    rows = [[
        r.request_id,
        r.status,
        "hit" if r.cache_hit else "miss",
        str(r.step_count),
        str(r.rows_returned),
        _fmt_ms(r.queue_seconds),
        _fmt_ms(r.compile_seconds),
        _fmt_ms(r.execute_seconds),
        _fmt_ms(r.total_seconds),
        _clip_sql(r.sql),
    ] for r in records]
    return render_table(headers, rows, left_columns=frozenset({0, 1, 9}))


def render_request_steps_table(record: RequestRecord) -> str:
    """Per-step actuals for one request: the
    ``sys.dm_pdw_request_steps`` view in terminal form."""
    headers = ["step", "kind", "operation", "status", "rows", "bytes",
               "sim ms", "wall ms"]
    rows = [[
        str(s.index),
        s.kind,
        s.operation or "-",
        s.status,
        str(s.rows_moved),
        str(s.bytes_moved),
        _fmt_ms(s.elapsed_seconds),
        _fmt_ms(s.wall_seconds),
    ] for s in record.steps]
    return render_table(headers, rows, left_columns=frozenset({1, 2, 3}))


def render_requests_report(registry: RequestRegistry,
                           slow_only: bool = False) -> str:
    """The ``repro requests`` output: recorder stats, the per-request
    table, and step-level detail for every slow request."""
    stats = registry.stats()
    records = registry.slow() if slow_only else registry.completed()
    finished = ", ".join(f"{status}={count}" for status, count
                         in sorted(stats["finished"].items())) or "none"
    lines = [
        f"Flight recorder: {stats['retained']}/{stats['capacity']} "
        f"retained, {stats['active']} active, {stats['slow']} slow "
        f"(threshold {stats['slow_threshold_seconds'] * 1e3:.0f} ms); "
        f"finished: {finished}",
    ]
    if not records:
        lines += ["", "No completed requests recorded."]
        return "\n".join(lines)
    lines += [
        "",
        "Slow requests:" if slow_only else "Completed requests:",
        render_requests_table(records),
    ]
    threshold = stats["slow_threshold_seconds"]
    for record in records:
        if record.steps and record.is_slow(threshold):
            lines += [
                "",
                f"Step detail for {record.request_id} "
                f"({record.total_seconds * 1e3:.2f} ms):",
                render_request_steps_table(record),
            ]
    return "\n".join(lines)


# -- query-store tables --------------------------------------------------------


def render_query_store_table(shapes, top: int = 10) -> str:
    """One row per retained shape (hottest first): the
    ``sys.query_store_query_texts`` view in terminal form."""
    ranked = sorted(shapes, key=lambda s: s.execution_count,
                    reverse=True)[:top]
    headers = ["query", "execs", "plans", "current", "mean ms",
               "max q-err", "query text"]
    rows = []
    for shape in ranked:
        current = shape.current_plan()
        rows.append([
            f"Q{shape.query_id}",
            str(shape.execution_count),
            str(len(shape.plans)),
            current.plan_hash if current else "-",
            f"{current.mean_elapsed_seconds * 1e3:.3f}"
            if current else "-",
            _fmt_q(max((p.max_q_error for p in shape.plans.values()),
                       default=1.0)),
            _clip_sql(shape.example_sql or shape.shape_key),
        ])
    return render_table(headers, rows, left_columns=frozenset({0, 3, 6}))


def render_query_store_plans_table(shape) -> str:
    """One row per plan of one shape: the ``sys.query_store_plans`` +
    ``sys.query_store_runtime_stats`` join in terminal form."""
    current = shape.current_plan()
    headers = ["plan", "cur", "base", "sv", "execs", "hits",
               "mean ms", "min ms", "max ms", "bytes moved", "q-err"]
    rows = [[
        plan.plan_hash,
        "*" if plan is current else "",
        "y" if plan.baseline_eligible else "n",
        str(plan.schema_version),
        str(plan.execution_count),
        str(plan.cache_hits),
        f"{plan.mean_elapsed_seconds * 1e3:.3f}",
        f"{plan.elapsed_seconds_min * 1e3:.3f}",
        f"{plan.elapsed_seconds_max * 1e3:.3f}",
        str(plan.bytes_moved_total),
        _fmt_q(plan.max_q_error),
    ] for plan in shape.plans.values()]
    return render_table(headers, rows, left_columns=frozenset({0, 1, 2}))


def render_query_store_regressions(regressions) -> str:
    """The regression verdicts: one paragraph per flagged shape, or an
    all-clear line."""
    if not regressions:
        return "No plan regressions detected."
    lines = [f"{len(regressions)} plan regression(s) detected:"]
    for reg in regressions:
        lines += [
            "",
            f"Q{reg.query_id}: plan {reg.plan_hash} runs "
            f"{reg.slowdown:.2f}x slower than prior plan "
            f"{reg.baseline_hash} "
            f"({reg.current_mean_seconds * 1e3:.3f} ms vs "
            f"{reg.baseline_mean_seconds * 1e3:.3f} ms mean, "
            f"{reg.executions} execs, schema v{reg.schema_version})",
            f"  {_clip_sql(reg.example_sql or reg.shape_key, 72)}",
        ]
    return "\n".join(lines)


def render_query_store_report(store, top: int = 10) -> str:
    """The ``repro querystore`` output: store stats, the hottest-shapes
    table, per-plan detail for every multi-plan shape, and the
    regression verdicts."""
    stats = store.stats()
    lines = [
        f"Query store: {stats['shapes']} shapes, {stats['plans']} plans, "
        f"{stats['executions']} executions recorded "
        f"({stats['evicted_shapes']} shapes evicted, "
        f"capacity {stats['max_shapes']})",
    ]
    shapes = store.shapes()
    if not shapes:
        lines += ["", "No executions recorded."]
        return "\n".join(lines)
    lines += [
        "",
        f"Hottest shapes (top {top}):",
        render_query_store_table(shapes, top),
    ]
    for shape in shapes:
        if len(shape.plans) > 1:
            lines += [
                "",
                f"Plans for Q{shape.query_id} "
                f"({_clip_sql(shape.example_sql or shape.shape_key)}):",
                render_query_store_plans_table(shape),
            ]
    lines += ["", render_query_store_regressions(store.regressions())]
    return "\n".join(lines)
