"""Per-node / per-operator query profiling: skew and Q-error.

The paper's §2.5 premise is that distributed plan quality hinges on
*where rows actually land*: DMS cost dominates, and every enumeration
decision is driven by the shell database's global statistics.  This
module turns one executed query into a structured profile that makes
both failure modes visible:

* **skew** — per-node row/byte distributions per DSQL step and per
  operator (max/mean imbalance and coefficient of variation), fed by the
  N×N transfer matrix the DMS runtime records per movement;
* **Q-error** — the multiplicative estimation error
  ``max(est/act, act/est)`` joining the winning plan's per-operator
  cardinality estimates (annotated on each DSQL step at generation time)
  against the per-operator actuals the interpreter observes.

The module is deliberately free of ``repro`` imports: operators are
classified by class name and the builder duck-types DSQL steps and
execution stats, so every layer (DSQL generation, the interpreter, the
DMS runtime, the session) can import it without cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "operator_kind",
    "OperatorEstimate",
    "fragment_operator_estimates",
    "OperatorObserver",
    "SkewStats",
    "skew_stats",
    "q_error",
    "QErrorSummary",
    "summarize_q_errors",
    "OperatorProfile",
    "StepProfile",
    "QueryProfile",
    "build_query_profile",
]

CONTROL_NODE = -1

# Logical operator classes worth profiling, by class name (avoids an
# algebra import).  Projects are deliberately absent: QRel SQL generation
# wraps every derived table in a rename-projection, so they exist on the
# executed tree in numbers unrelated to the winning plan and never change
# cardinality.
_OPERATOR_KINDS = {
    "LogicalGet": "Get",
    "LogicalSelect": "Select",
    "LogicalJoin": "Join",
    "LogicalGroupBy": "GroupBy",
    "LogicalUnionAll": "UnionAll",
}


def operator_kind(op: object) -> Optional[str]:
    """Profileable kind of a logical operator, else ``None``."""
    return _OPERATOR_KINDS.get(type(op).__name__)


@dataclass(frozen=True)
class OperatorEstimate:
    """One operator of a winning-plan fragment: the optimizer's view.

    ``per_node`` marks operators whose entire input is replicated: every
    executing node computes the same full result, so the estimate
    describes *each node's* output rather than the per-node sum.
    """

    kind: str
    label: str
    rows: float
    per_node: bool = False


def _reads_replicated_table(op) -> bool:
    """Duck-typed: does this Get scan a replicated (or control-node)
    table?  Such scans yield their full cardinality on every node."""
    table = getattr(op, "table", None)
    dist = getattr(table, "distribution", None)
    kind = getattr(dist, "kind", None)
    return getattr(kind, "name", "") in ("REPLICATED", "ON_CONTROL",
                                         "SINGLE_NODE")


def fragment_operator_estimates(root) -> List[OperatorEstimate]:
    """Postorder per-operator cardinality estimates of a plan fragment.

    ``root`` is a :class:`repro.algebra.physical.PlanNode` whose ``op``
    objects are logical operators (the shape DSQL generation cuts the
    winning plan into).  The postorder matches the order in which the
    interpreter's :class:`OperatorObserver` records actuals, which is
    what lets the profiler join the two without operator identity
    surviving the SQL round-trip.
    """
    out: List[OperatorEstimate] = []

    def visit(node) -> bool:
        """Returns whether the subtree's result is fully replicated."""
        replicated = all([visit(child) for child in node.children])
        kind = operator_kind(node.op)
        if kind == "Get":
            replicated = _reads_replicated_table(node.op)
        if kind is not None:
            out.append(OperatorEstimate(kind, node.op.describe(),
                                        float(node.cardinality),
                                        per_node=replicated))
        return replicated

    visit(root)
    return out


class OperatorObserver:
    """Collects per-operator output row counts during interpretation.

    The interpreter calls :meth:`record` once per operator as each
    completes (postorder).  Cost when attached: one list append per
    operator — never per row; when not attached the interpreter pays a
    single ``is None`` test per operator.
    """

    __slots__ = ("records",)

    def __init__(self):
        self.records: List[Tuple[str, str, int]] = []

    def record(self, op: object, rows_out: int) -> None:
        kind = operator_kind(op)
        if kind is not None:
            self.records.append((kind, op.describe(), rows_out))


# -- skew ----------------------------------------------------------------------


@dataclass(frozen=True)
class SkewStats:
    """Distribution of one quantity across nodes."""

    count: int
    max_value: float
    mean: float
    cov: float  # coefficient of variation: population stdev / mean

    @property
    def imbalance(self) -> float:
        """max/mean — 1.0 is perfectly balanced."""
        if self.mean <= 0.0:
            return 1.0
        return self.max_value / self.mean


def skew_stats(values: Iterable[float]) -> SkewStats:
    """Max/mean/CoV of per-node values (zeros count: an idle node *is*
    skew)."""
    data = [float(v) for v in values]
    if not data:
        return SkewStats(count=0, max_value=0.0, mean=0.0, cov=0.0)
    mean = sum(data) / len(data)
    if mean == 0.0:
        return SkewStats(count=len(data), max_value=max(data), mean=0.0,
                         cov=0.0)
    variance = sum((v - mean) ** 2 for v in data) / len(data)
    return SkewStats(count=len(data), max_value=max(data), mean=mean,
                     cov=math.sqrt(variance) / mean)


# -- Q-error -------------------------------------------------------------------


def q_error(estimated: float, actual: float) -> float:
    """Multiplicative estimation error ``max(est/act, act/est)`` ≥ 1.

    Both sides are floored at one row so empty results stay finite: an
    estimate of 0 against 5 actual rows scores 5.0, and 0 vs 0 scores a
    perfect 1.0.
    """
    e = max(float(estimated), 1.0)
    a = max(float(actual), 1.0)
    return e / a if e >= a else a / e


@dataclass(frozen=True)
class QErrorSummary:
    """Workload-level aggregation of Q-errors."""

    count: int
    median: float
    p95: float
    max: float


def summarize_q_errors(values: Iterable[float]) -> QErrorSummary:
    data = sorted(float(v) for v in values)
    if not data:
        return QErrorSummary(count=0, median=1.0, p95=1.0, max=1.0)
    n = len(data)
    mid = n // 2
    median = data[mid] if n % 2 else (data[mid - 1] + data[mid]) / 2.0
    p95 = data[min(n - 1, math.ceil(0.95 * n) - 1)]
    return QErrorSummary(count=n, median=median, p95=p95, max=data[-1])


# -- profile documents ---------------------------------------------------------


@dataclass
class OperatorProfile:
    """One executed operator: per-node actuals joined with its estimate."""

    step: int
    kind: str
    label: str
    node_rows: Dict[int, int]
    actual_rows: int
    estimated_rows: Optional[float]
    q_error: Optional[float]
    skew: SkewStats

    def to_dict(self) -> dict:
        return {
            "step": self.step,
            "kind": self.kind,
            "label": self.label,
            "node_rows": {str(n): r for n, r in
                          sorted(self.node_rows.items())},
            "actual_rows": self.actual_rows,
            "estimated_rows": self.estimated_rows,
            "q_error": self.q_error,
            "skew_cov": self.skew.cov,
            "skew_imbalance": self.skew.imbalance,
        }


@dataclass
class StepProfile:
    """One DSQL step: movement accounting, skew, transfer matrix."""

    index: int
    kind: str           # "DMS" or "Return"
    operation: str
    estimated_rows: float
    actual_rows: int
    estimated_bytes: float
    actual_bytes: int
    estimated_seconds: float
    actual_seconds: float
    q_error: float
    source_rows: Dict[int, int]
    source_skew: SkewStats
    received_bytes: Dict[int, int]
    receive_skew: SkewStats
    transfers: Dict[Tuple[int, int], Tuple[int, int]]  # (src,dst)→(rows,bytes)
    operators: List[OperatorProfile] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "step": self.index,
            "kind": self.kind,
            "operation": self.operation,
            "estimated_rows": self.estimated_rows,
            "actual_rows": self.actual_rows,
            "estimated_bytes": self.estimated_bytes,
            "actual_bytes": self.actual_bytes,
            "estimated_seconds": self.estimated_seconds,
            "actual_seconds": self.actual_seconds,
            "q_error": self.q_error,
            "source_rows": {str(n): r for n, r in
                            sorted(self.source_rows.items())},
            "source_skew_cov": self.source_skew.cov,
            "source_skew_imbalance": self.source_skew.imbalance,
            "received_bytes": {str(n): b for n, b in
                               sorted(self.received_bytes.items())},
            "receive_skew_cov": self.receive_skew.cov,
            "transfers": [
                {"src": src, "dst": dst, "rows": rows, "bytes": nbytes}
                for (src, dst), (rows, nbytes) in
                sorted(self.transfers.items())
            ],
        }


@dataclass
class QueryProfile:
    """The complete profile of one executed query."""

    sql: str
    node_count: int
    steps: List[StepProfile]
    elapsed_seconds: float
    dms_seconds: float

    @property
    def operators(self) -> List[OperatorProfile]:
        return [op for step in self.steps for op in step.operators]

    def step_q_errors(self) -> List[float]:
        return [step.q_error for step in self.steps]

    def operator_q_errors(self) -> List[float]:
        return [op.q_error for op in self.operators
                if op.q_error is not None]

    def q_error_summary(self) -> QErrorSummary:
        """Aggregated over every joined operator plus every step."""
        return summarize_q_errors(self.operator_q_errors()
                                  + self.step_q_errors())

    def to_dict(self) -> dict:
        summary = self.q_error_summary()
        return {
            "sql": self.sql,
            "node_count": self.node_count,
            "elapsed_seconds": self.elapsed_seconds,
            "dms_seconds": self.dms_seconds,
            "q_error": {
                "count": summary.count,
                "median": summary.median,
                "p95": summary.p95,
                "max": summary.max,
            },
            "steps": [step.to_dict() for step in self.steps],
            "operators": [op.to_dict() for op in self.operators],
        }


# -- builder -------------------------------------------------------------------


def build_query_profile(steps: Sequence, step_stats: Sequence, *,
                        node_count: int, sql: str = "",
                        elapsed_seconds: float = 0.0,
                        dms_seconds: float = 0.0) -> QueryProfile:
    """Join DSQL steps (estimates) with execution stats (actuals).

    ``steps`` are :class:`repro.pdw.dsql.DsqlStep` and ``step_stats``
    :class:`repro.appliance.dms_runtime.StepExecutionStats` — duck-typed
    here to keep this module import-free.  The stats must come from a
    profiled run (``DsqlRunner.run(plan, profile=True)``) for operator
    actuals and transfer matrices to be present; otherwise only the
    step-level columns are populated.
    """
    profiles: List[StepProfile] = []
    for step, stats in zip(steps, step_stats):
        is_dms = step.movement is not None
        if is_dms:
            operation = step.movement.describe()
            actual_bytes = sum(stats.reader_bytes.values())
        else:
            operation = "Return"
            actual_bytes = sum(stats.network_bytes.values())
        transfers = {
            key: (entry[0], entry[1])
            for key, entry in (getattr(stats, "transfers", {}) or {}).items()
        }
        received = _received_bytes(transfers, node_count)
        profiles.append(StepProfile(
            index=step.index,
            kind="DMS" if is_dms else "Return",
            operation=operation,
            estimated_rows=step.estimated_rows,
            actual_rows=stats.rows_moved,
            estimated_bytes=step.estimated_bytes,
            actual_bytes=actual_bytes,
            estimated_seconds=step.estimated_cost,
            actual_seconds=stats.elapsed_seconds,
            q_error=q_error(step.estimated_rows, stats.rows_moved),
            source_rows=dict(stats.node_rows),
            source_skew=skew_stats(stats.node_rows.values()),
            received_bytes=received,
            receive_skew=skew_stats(received.values()),
            transfers=transfers,
            operators=_join_operators(step, stats),
        ))
    return QueryProfile(
        sql=sql,
        node_count=node_count,
        steps=profiles,
        elapsed_seconds=elapsed_seconds,
        dms_seconds=dms_seconds,
    )


def _received_bytes(transfers: Dict[Tuple[int, int], Tuple[int, int]],
                    node_count: int) -> Dict[int, int]:
    """Per-destination byte totals, zero-filling idle compute nodes.

    A node that received *nothing* from a shuffle or broadcast is the
    extreme of skew, so when any compute node received data every compute
    node appears; a pure control-node gather stays a single entry.
    """
    received: Dict[int, int] = {}
    for (_src, dst), (_rows, nbytes) in transfers.items():
        received[dst] = received.get(dst, 0) + nbytes
    if any(dst != CONTROL_NODE for dst in received):
        for node in range(node_count):
            received.setdefault(node, 0)
    return received


def _join_operators(step, stats) -> List[OperatorProfile]:
    """Fold per-node observer records into per-operator profiles and
    attach winning-plan estimates.

    Every node executed the same bound tree, so record sequences align
    positionally.  Estimates join per operator *kind* in postorder — and
    only when the executed tree has exactly as many operators of that
    kind as the plan fragment, since the SQL round-trip can in principle
    merge or synthesize operators; an unmatched kind degrades to actuals
    without Q-error rather than misattributing estimates.
    """
    node_records: Dict[int, List[Tuple[str, str, int]]] = dict(
        getattr(stats, "node_operators", {}) or {})
    if not node_records:
        return []
    lengths = {len(records) for records in node_records.values()}
    depth = min(lengths)

    profiles: List[OperatorProfile] = []
    actual_by_kind: Dict[str, List[OperatorProfile]] = {}
    for position in range(depth):
        kind = label = None
        node_rows: Dict[int, int] = {}
        total = 0
        for node, records in sorted(node_records.items()):
            rec_kind, rec_label, rows = records[position]
            if kind is None:
                kind, label = rec_kind, rec_label
            node_rows[node] = rows
            total += rows
        profile = OperatorProfile(
            step=step.index,
            kind=kind,
            label=label,
            node_rows=node_rows,
            actual_rows=total,
            estimated_rows=None,
            q_error=None,
            skew=skew_stats(node_rows.values()),
        )
        profiles.append(profile)
        actual_by_kind.setdefault(kind, []).append(profile)

    estimates = list(getattr(step, "operator_estimates", ()) or ())
    estimate_by_kind: Dict[str, List[OperatorEstimate]] = {}
    for estimate in estimates:
        estimate_by_kind.setdefault(estimate.kind, []).append(estimate)
    for kind, kind_estimates in estimate_by_kind.items():
        kind_actuals = actual_by_kind.get(kind, [])
        if len(kind_actuals) != len(kind_estimates):
            continue
        for profile, estimate in zip(kind_actuals, kind_estimates):
            profile.estimated_rows = estimate.rows
            profile.label = estimate.label
            # Replicated subtrees compute the same full result on every
            # node; the estimate describes one node's output, so compare
            # against the per-node mean rather than the sum.
            actual = profile.actual_rows
            if estimate.per_node and len(profile.node_rows) > 1:
                actual = profile.actual_rows / len(profile.node_rows)
            profile.q_error = q_error(estimate.rows, actual)
    return profiles
