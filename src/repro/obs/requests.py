"""Live request lifecycle tracking: the registry behind the DMVs.

The shipped product exposes the appliance's runtime state as queryable
system views (``sys.dm_pdw_exec_requests`` and friends); this module is
the in-memory source of truth those views materialize from.  Every query
admitted through :class:`repro.session.PdwSession` or
:class:`repro.service.PdwService` gets a ``request_id`` and a
:class:`RequestRecord` tracked through its lifecycle::

    queued -> compiling -> running (step k/n) -> moving data
           -> complete | failed | rejected

with per-step (:class:`StepProgress`) and per-node progress counters
updated *in flight* by hooks in :class:`repro.appliance.runner.DsqlRunner`,
the DAG scheduler and :class:`repro.appliance.dms_runtime.DmsRuntime`.

Completed records move into a bounded ring buffer — the **flight
recorder** — with a slow-query threshold, so a busy service retains the
recent past at fixed memory cost.  :mod:`repro.obs.export` turns the
recorder into schema-validated ``request_complete`` JSONL events and
``pdw_request_*`` Prometheus series;
:mod:`repro.obs.system_views` snapshots registry state into replicated
pseudo-tables the engine itself can query.

Zero-overhead default: :data:`NULL_REQUESTS` / :data:`NULL_REQUEST`
follow the ``NULL_TRACER`` / ``NULL_OPT_TRACE`` contract — shared no-op
singletons with ``enabled = False`` and no per-call allocation, so the
untracked path stays allocation-free (the booby-trap tests monkeypatch
the record constructors to prove it).
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

__all__ = [
    "StepProgress",
    "RequestRecord",
    "RequestHandle",
    "RequestRegistry",
    "NullRequestHandle",
    "NullRequestRegistry",
    "NULL_REQUEST",
    "NULL_REQUESTS",
    "REQUEST_STATES",
    "TERMINAL_STATES",
    "plan_digest",
]

#: Every status a request can report, in lifecycle order.
REQUEST_STATES = ("queued", "compiling", "running", "moving data",
                  "complete", "failed", "rejected")

#: Statuses that move a record from the active set into the recorder.
TERMINAL_STATES = frozenset({"complete", "failed", "rejected"})

#: Default flight-recorder capacity (completed records retained).
DEFAULT_CAPACITY = 256

#: Default slow-query threshold in *measured* seconds end to end.
DEFAULT_SLOW_SECONDS = 1.0


def plan_digest(plan) -> str:
    """A short stable fingerprint of a DSQL plan's step SQL.

    Two executions of the same cached template share a digest even when
    their literals differ only through parameter binding of the same
    text, so the recorder groups repeats of one plan shape.
    """
    digest = hashlib.sha1()
    for step in plan.steps:
        digest.update(step.sql.encode("utf-8", "replace"))
        digest.update(b"\x00")
    return digest.hexdigest()[:12]


@dataclass
class StepProgress:
    """Live per-step accounting for one request's DSQL step.

    ``status`` walks ``pending -> scheduled -> running -> complete``;
    the per-node dicts fill in as each node's extract+route task
    finishes, so a concurrent DMV read sees partial progress.
    """

    index: int
    kind: str = ""                # "DMS" or "Return"
    operation: str = ""
    status: str = "pending"
    rows_moved: int = 0
    bytes_moved: int = 0
    elapsed_seconds: float = 0.0  # simulated step time
    wall_seconds: float = 0.0     # measured step time
    node_rows: Dict[int, int] = field(default_factory=dict)
    node_bytes: Dict[int, int] = field(default_factory=dict)
    node_wall_seconds: Dict[int, float] = field(default_factory=dict)


@dataclass
class RequestRecord:
    """One query's trip through the appliance, live or completed."""

    request_id: str
    sql: str
    tenant: str = "default"
    priority: str = "normal"
    status: str = "queued"
    submitted_at: float = 0.0     # epoch seconds
    ended_at: Optional[float] = None
    cache_hit: bool = False
    plan_digest: str = ""
    step_count: int = 0
    current_step: int = -1
    rows_returned: int = 0
    error: str = ""
    queue_seconds: float = 0.0
    compile_seconds: float = 0.0
    execute_seconds: float = 0.0
    total_seconds: float = 0.0
    steps: List[StepProgress] = field(default_factory=list)

    @property
    def is_active(self) -> bool:
        return self.status not in TERMINAL_STATES

    def is_slow(self, threshold_seconds: float) -> bool:
        return self.total_seconds >= threshold_seconds


class RequestHandle:
    """The mutation surface one in-flight request's instrumentation uses.

    Handed out by :meth:`RequestRegistry.begin` and threaded through the
    session/service, the runner (``run(plan, request=...)``), the DAG
    scheduler and the DMS runtime.  Every method takes the registry lock,
    so concurrent DMV snapshots never see torn rows.
    """

    enabled = True
    __slots__ = ("_registry", "_record")

    def __init__(self, registry: "RequestRegistry",
                 record: RequestRecord):
        self._registry = registry
        self._record = record

    @property
    def request_id(self) -> str:
        return self._record.request_id

    @property
    def record(self) -> RequestRecord:
        return self._record

    # -- lifecycle transitions -------------------------------------------------

    def compiling(self) -> None:
        with self._registry._lock:
            self._record.status = "compiling"

    def begin_plan(self, plan) -> None:
        """The runner is about to execute ``plan``: materialize one
        :class:`StepProgress` per DSQL step and go ``running``."""
        record = self._record
        digest = plan_digest(plan)
        steps = []
        for step in plan.steps:
            movement = getattr(step, "movement", None)
            if movement is not None:
                kind = "DMS"
                operation = movement.describe()
            else:
                kind = "Return"
                operation = "Return"
            steps.append(StepProgress(index=step.index, kind=kind,
                                      operation=operation))
        with self._registry._lock:
            record.plan_digest = digest
            record.step_count = len(steps)
            record.steps = steps
            record.status = "running"

    def step_scheduled(self, index: int) -> None:
        """The DAG scheduler submitted step ``index`` to the pool."""
        with self._registry._lock:
            steps = self._record.steps
            if 0 <= index < len(steps) \
                    and steps[index].status == "pending":
                steps[index].status = "scheduled"

    def begin_step(self, index: int) -> None:
        with self._registry._lock:
            record = self._record
            if not (0 <= index < len(record.steps)):
                return
            step = record.steps[index]
            step.status = "running"
            record.current_step = index
            # DMS steps *are* the data movement; the paper's lifecycle
            # surfaces them as a distinct observable state.
            record.status = ("moving data" if step.kind == "DMS"
                             else "running")

    def node_done(self, index: int, node_id: int, rows: int,
                  nbytes: int, wall_seconds: float) -> None:
        """One node's extract+route task for step ``index`` finished."""
        with self._registry._lock:
            steps = self._record.steps
            if not (0 <= index < len(steps)):
                return
            step = steps[index]
            step.node_rows[node_id] = step.node_rows.get(node_id, 0) + rows
            step.node_bytes[node_id] = (step.node_bytes.get(node_id, 0)
                                        + nbytes)
            step.node_wall_seconds[node_id] = (
                step.node_wall_seconds.get(node_id, 0.0) + wall_seconds)

    def end_step(self, index: int, stats) -> None:
        """Step ``index`` finished with its
        :class:`~repro.appliance.dms_runtime.StepExecutionStats`."""
        with self._registry._lock:
            record = self._record
            if not (0 <= index < len(record.steps)):
                return
            step = record.steps[index]
            step.status = "complete"
            step.rows_moved = stats.rows_moved
            step.bytes_moved = (stats.total_bytes()
                                if stats.operation is not None
                                else sum(stats.network_bytes.values()))
            step.elapsed_seconds = stats.elapsed_seconds
            step.wall_seconds = stats.wall_seconds
            record.status = "running"

    # -- terminal transitions ---------------------------------------------------

    def complete(self, rows: int = 0, cache_hit: bool = False,
                 queue_seconds: float = 0.0,
                 compile_seconds: float = 0.0,
                 execute_seconds: float = 0.0,
                 total_seconds: float = 0.0) -> None:
        record = self._record
        record.rows_returned = rows
        record.cache_hit = cache_hit
        record.queue_seconds = queue_seconds
        record.compile_seconds = compile_seconds
        record.execute_seconds = execute_seconds
        record.total_seconds = total_seconds
        self._registry._finish(record, "complete")

    def failed(self, error: str, total_seconds: float = 0.0) -> None:
        record = self._record
        record.error = str(error)
        record.total_seconds = total_seconds
        self._registry._finish(record, "failed")

    def rejected(self, error: str) -> None:
        record = self._record
        record.error = str(error)
        self._registry._finish(record, "rejected")


class RequestRegistry:
    """Assigns request ids, tracks in-flight queries, retains the past.

    Thread-safe: the session and every service client thread mutate
    through :class:`RequestHandle` under one lock, and snapshot readers
    (DMV materialization, exports, ``stats()``) take the same lock, so a
    reader never observes a half-applied transition.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 slow_threshold_seconds: float = DEFAULT_SLOW_SECONDS):
        self.capacity = max(1, int(capacity))
        self.slow_threshold_seconds = float(slow_threshold_seconds)
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self._active: "OrderedDict[str, RequestRecord]" = OrderedDict()
        self._recorder: Deque[RequestRecord] = deque(maxlen=self.capacity)
        self._counts: Dict[str, int] = {}

    # -- intake ----------------------------------------------------------------

    def begin(self, sql: str, tenant: str = "default",
              priority: str = "normal") -> RequestHandle:
        record = RequestRecord(
            request_id=f"QID{next(self._ids)}",
            sql=sql, tenant=tenant, priority=priority,
            submitted_at=time.time())
        with self._lock:
            self._active[record.request_id] = record
        return RequestHandle(self, record)

    def _finish(self, record: RequestRecord, status: str) -> None:
        with self._lock:
            record.status = status
            record.ended_at = time.time()
            record.current_step = -1
            self._active.pop(record.request_id, None)
            self._recorder.append(record)
            self._counts[status] = self._counts.get(status, 0) + 1

    # -- snapshots -------------------------------------------------------------

    def active(self) -> List[RequestRecord]:
        """In-flight records, oldest first."""
        with self._lock:
            return list(self._active.values())

    def completed(self) -> List[RequestRecord]:
        """The flight recorder's retained records, oldest first."""
        with self._lock:
            return list(self._recorder)

    def slow(self) -> List[RequestRecord]:
        """Retained records at or above the slow-query threshold."""
        threshold = self.slow_threshold_seconds
        with self._lock:
            return [record for record in self._recorder
                    if record.is_slow(threshold)]

    def snapshot(self) -> List[RequestRecord]:
        """Active then retained records — the DMV materialization set."""
        with self._lock:
            return list(self._active.values()) + list(self._recorder)

    def find(self, request_id: str) -> Optional[RequestRecord]:
        with self._lock:
            record = self._active.get(request_id)
            if record is not None:
                return record
            for record in self._recorder:
                if record.request_id == request_id:
                    return record
        return None

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "active": len(self._active),
                "retained": len(self._recorder),
                "capacity": self.capacity,
                "slow_threshold_seconds": self.slow_threshold_seconds,
                "slow": sum(
                    1 for record in self._recorder
                    if record.is_slow(self.slow_threshold_seconds)),
                "finished": dict(self._counts),
            }


class NullRequestHandle:
    """The shared do-nothing handle: every hook is a no-op."""

    enabled = False
    __slots__ = ()
    request_id = None

    def compiling(self):
        pass

    def begin_plan(self, plan):
        del plan

    def step_scheduled(self, index):
        del index

    def begin_step(self, index):
        del index

    def node_done(self, index, node_id, rows, nbytes, wall_seconds):
        del index, node_id, rows, nbytes, wall_seconds

    def end_step(self, index, stats):
        del index, stats

    def complete(self, rows=0, cache_hit=False, queue_seconds=0.0,
                 compile_seconds=0.0, execute_seconds=0.0,
                 total_seconds=0.0):
        del rows, cache_hit, queue_seconds, compile_seconds
        del execute_seconds, total_seconds

    def failed(self, error, total_seconds=0.0):
        del error, total_seconds

    def rejected(self, error):
        del error


NULL_REQUEST = NullRequestHandle()


class NullRequestRegistry(RequestRegistry):
    """The default registry: tracks nothing, allocates nothing."""

    enabled = False
    __slots__ = ()
    capacity = 0
    slow_threshold_seconds = 0.0

    def __init__(self):  # no per-instance state at all
        pass

    def begin(self, sql, tenant="default", priority="normal"):
        del sql, tenant, priority
        return NULL_REQUEST

    def active(self):
        return []

    def completed(self):
        return []

    def slow(self):
        return []

    def snapshot(self):
        return []

    def find(self, request_id):
        del request_id
        return None

    def stats(self):
        return {"active": 0, "retained": 0, "capacity": 0,
                "slow_threshold_seconds": 0.0, "slow": 0, "finished": {}}


NULL_REQUESTS = NullRequestRegistry()
