"""Validate profiler JSONL event logs against the event schemas.

    python -m repro.obs.schema_check profile.jsonl [more.jsonl ...]

Exit status 0 when every event in every file validates, 1 otherwise —
the CI smoke step runs this against a fresh ``repro profile --jsonl``
dump so the exported schema cannot drift silently.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.obs.export import validate_jsonl


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.schema_check",
        description="validate profiler JSONL event logs")
    parser.add_argument("paths", nargs="+", metavar="events.jsonl")
    args = parser.parse_args(argv)

    failed = False
    for path in args.paths:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        errors = validate_jsonl(text)
        count = sum(1 for line in text.splitlines() if line.strip())
        if errors:
            failed = True
            print(f"{path}: {len(errors)} schema error(s) "
                  f"in {count} event(s)")
            for error in errors:
                print(f"  {error}")
        else:
            print(f"{path}: {count} event(s) ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
