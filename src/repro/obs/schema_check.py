"""Validate profiler / optimizer-trace JSONL event logs.

    python -m repro.obs.schema_check events.jsonl [more.jsonl ...]
                                     [--require EVENT_TYPE ...]

Exit status 0 when every event in every file validates (and every
``--require``'d event type appears at least once per file), 1 otherwise
— the CI smoke steps run this against fresh ``repro profile --jsonl``
and ``repro why --jsonl`` dumps so the exported schemas cannot drift
silently.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import List, Optional

from repro.obs.export import EVENT_SCHEMAS, validate_jsonl


def _event_counts(text: str) -> Counter:
    """Occurrences of each ``event`` tag in valid-JSON lines."""
    counts: Counter = Counter()
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(event, dict):
            counts[event.get("event")] += 1
    return counts


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.schema_check",
        description="validate profiler / optimizer JSONL event logs")
    parser.add_argument("paths", nargs="+", metavar="events.jsonl")
    parser.add_argument(
        "--require", action="append", default=[], metavar="EVENT_TYPE",
        help="fail unless each file contains at least one event of this "
             "type (repeatable); must be a known schema type")
    args = parser.parse_args(argv)

    for required in args.require:
        if required not in EVENT_SCHEMAS:
            parser.error(f"--require {required!r} is not a known event "
                         f"type (known: {', '.join(sorted(EVENT_SCHEMAS))})")

    failed = False
    for path in args.paths:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        errors = validate_jsonl(text)
        counts = _event_counts(text)
        for required in args.require:
            if not counts.get(required):
                errors.append(f"required event type {required!r} absent")
        count = sum(1 for line in text.splitlines() if line.strip())
        if errors:
            failed = True
            print(f"{path}: {len(errors)} schema error(s) "
                  f"in {count} event(s)")
            for error in errors:
                print(f"  {error}")
        else:
            by_type = " ".join(f"{kind}={n}" for kind, n
                               in sorted(counts.items()))
            print(f"{path}: {count} event(s) ok ({by_type})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
