"""Structured export sinks for query profiles and optimizer traces.

Three formats, two sources of truth
(:class:`repro.obs.profiler.QueryProfile` for runtime profiles,
:class:`repro.obs.opt_trace.OptimizerTrace` for the optimizer's search
space):

* **JSONL event log** — one self-describing event per line (``query``,
  ``step``, ``operator`` for profiles; ``optimizer_summary``,
  ``optimizer_group``, ``optimizer_prune``, ``optimizer_enforce``,
  ``optimizer_hint``, ``plan_choice`` for traces), append-friendly and
  greppable; every event is checkable against :data:`EVENT_SCHEMAS`
  (hand-rolled validation — no third-party schema library is assumed in
  the environment);
* **JSON profile document** — the nested ``QueryProfile.to_dict()`` form;
* **Prometheus text** — labeled series via :func:`profile_to_metrics` /
  :func:`optimizer_trace_to_metrics` into a
  :class:`repro.obs.metrics.MetricsRegistry` plus the registry's
  ``render_prometheus``.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.opt_trace import OptimizerTrace
from repro.obs.profiler import QueryProfile
from repro.obs.requests import RequestRecord, RequestRegistry

__all__ = [
    "profile_to_events",
    "optimizer_trace_to_events",
    "request_to_event",
    "requests_to_events",
    "query_store_to_events",
    "events_to_jsonl",
    "write_jsonl",
    "EVENT_SCHEMAS",
    "validate_event",
    "validate_events",
    "validate_jsonl",
    "profile_to_metrics",
    "optimizer_trace_to_metrics",
    "requests_to_metrics",
    "query_store_to_metrics",
]


# -- event log -----------------------------------------------------------------


def profile_to_events(profile: QueryProfile) -> List[dict]:
    """Flatten a profile into schema-checked events: one ``query`` event,
    one ``step`` event per DSQL step, one ``operator`` event per joined
    operator."""
    summary = profile.q_error_summary()
    events: List[dict] = [{
        "event": "query",
        "sql": profile.sql,
        "node_count": profile.node_count,
        "steps": len(profile.steps),
        "elapsed_seconds": profile.elapsed_seconds,
        "dms_seconds": profile.dms_seconds,
        "q_error_count": summary.count,
        "q_error_median": summary.median,
        "q_error_p95": summary.p95,
        "q_error_max": summary.max,
    }]
    for step in profile.steps:
        events.append({"event": "step", **step.to_dict()})
    for op in profile.operators:
        events.append({"event": "operator", **op.to_dict()})
    return events


def optimizer_trace_to_events(trace: OptimizerTrace,
                              plan_choice=None) -> List[dict]:
    """Flatten an optimizer trace into schema-checked events: one
    ``optimizer_summary``, one ``optimizer_group`` per MEMO group, one
    ``optimizer_prune`` per prune victim, one ``optimizer_enforce`` per
    costed movement, one ``optimizer_hint`` per hint override — plus a
    ``plan_choice`` event when the §2.5 baseline comparison
    (:class:`repro.pdw.why.PlanChoice`, duck-typed via ``to_dict``) is
    supplied."""
    summary = trace.summary()
    events: List[dict] = [{
        "event": "optimizer_summary",
        "groups": summary.groups,
        "expressions": summary.expressions,
        "options_considered": summary.options_considered,
        "options_retained": summary.options_retained,
        "options_pruned": summary.options_pruned,
        "enforcers_added": summary.enforcers_added,
        "movements_considered": summary.movements_considered,
        "movements_rejected": summary.movements_rejected,
        "hint_overrides": summary.hint_overrides,
        "optimize_seconds": summary.optimize_seconds,
        "plan_cost": summary.plan_cost,
        "plan_distribution": trace.plan_distribution,
    }]
    for group in trace.groups.values():
        events.append({
            "event": "optimizer_group",
            "group": group.group,
            "interesting": list(group.interesting),
            "expressions": len(group.enumerated),
            "options_considered": group.options_considered,
            "options_retained": group.options_retained,
            "retained": [
                {"option": desc, "property_key": key, "cost": cost}
                for desc, key, cost in group.retained
            ],
        })
    for prune in trace.prunes:
        events.append({
            "event": "optimizer_prune",
            "group": prune.group,
            "victim": prune.victim,
            "property_key": prune.property_key,
            "victim_cost": prune.victim_cost,
            "survivor": prune.survivor,
            "survivor_cost": prune.survivor_cost,
            "cost_delta": prune.cost_delta,
        })
    for move in trace.movements:
        events.append({
            "event": "optimizer_enforce",
            "group": move.group,
            "operation": move.operation,
            "movement": move.movement,
            "property_key": move.property_key,
            "source": move.source,
            "target": move.target,
            "rows": move.rows,
            "row_width": move.row_width,
            "reader": move.reader,
            "network": move.network,
            "writer": move.writer,
            "bulk_copy": move.bulk_copy,
            "move_cost": move.move_cost,
            "total_cost": move.total_cost,
            "chosen": move.chosen,
            "context": move.context,
        })
    for override in trace.hint_overrides:
        events.append({
            "event": "optimizer_hint",
            "group": override.group,
            "table": override.table,
            "strategy": override.strategy,
            "displaced": list(override.displaced),
            "displaced_costs": list(override.displaced_costs),
            "kept": override.kept,
        })
    if plan_choice is not None:
        events.append({"event": "plan_choice", **plan_choice.to_dict()})
    return events


def request_to_event(record: RequestRecord,
                     slow_threshold_seconds: float) -> dict:
    """One flight-recorder record as a ``request_complete`` event."""
    return {
        "event": "request_complete",
        "request_id": record.request_id,
        "status": record.status,
        "sql": record.sql,
        "tenant": record.tenant,
        "priority": record.priority,
        "cache_hit": record.cache_hit,
        "plan_digest": record.plan_digest,
        "steps": record.step_count,
        "rows": record.rows_returned,
        "queue_seconds": record.queue_seconds,
        "compile_seconds": record.compile_seconds,
        "execute_seconds": record.execute_seconds,
        "total_seconds": record.total_seconds,
        "slow": record.is_slow(slow_threshold_seconds),
        "error": record.error,
        "step_actuals": [
            {
                "step": step.index,
                "kind": step.kind,
                "operation": step.operation,
                "rows": step.rows_moved,
                "bytes": step.bytes_moved,
                "seconds": step.elapsed_seconds,
            }
            for step in record.steps
        ],
    }


def requests_to_events(registry: RequestRegistry) -> List[dict]:
    """Flatten the flight recorder into schema-checked
    ``request_complete`` events (one per retained record)."""
    threshold = registry.slow_threshold_seconds
    return [request_to_event(record, threshold)
            for record in registry.completed()]


def query_store_to_events(store) -> List[dict]:
    """Flatten a :class:`repro.obs.query_store.QueryStore` into
    schema-checked ``query_store_flush`` events (one per retained
    shape).  The same format :meth:`QueryStore.save` persists — a saved
    store is directly ``schema_check``-able."""
    return store.to_events()


def events_to_jsonl(events: Iterable[dict]) -> str:
    return "".join(json.dumps(event, sort_keys=True) + "\n"
                   for event in events)


def write_jsonl(events: Iterable[dict], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(events_to_jsonl(events))


# -- schema validation ---------------------------------------------------------

# Field → (type spec, required).  Type specs: a type / tuple of types,
# "number", "number?" (number or null), "str_int_map" (JSON object keyed
# by stringified node ids with integer values), or "transfer_list".
_NUM = "number"
_OPT_NUM = "number?"

EVENT_SCHEMAS: Dict[str, Dict[str, Tuple[object, bool]]] = {
    "query": {
        "sql": (str, True),
        "node_count": (int, True),
        "steps": (int, True),
        "elapsed_seconds": (_NUM, True),
        "dms_seconds": (_NUM, True),
        "q_error_count": (int, True),
        "q_error_median": (_NUM, True),
        "q_error_p95": (_NUM, True),
        "q_error_max": (_NUM, True),
    },
    "step": {
        "step": (int, True),
        "kind": (str, True),
        "operation": (str, True),
        "estimated_rows": (_NUM, True),
        "actual_rows": (int, True),
        "estimated_bytes": (_NUM, True),
        "actual_bytes": (int, True),
        "estimated_seconds": (_NUM, True),
        "actual_seconds": (_NUM, True),
        "q_error": (_NUM, True),
        "source_rows": ("str_int_map", True),
        "source_skew_cov": (_NUM, True),
        "source_skew_imbalance": (_NUM, True),
        "received_bytes": ("str_int_map", True),
        "receive_skew_cov": (_NUM, True),
        "transfers": ("transfer_list", True),
    },
    "operator": {
        "step": (int, True),
        "kind": (str, True),
        "label": (str, True),
        "node_rows": ("str_int_map", True),
        "actual_rows": (int, True),
        "estimated_rows": (_OPT_NUM, True),
        "q_error": (_OPT_NUM, True),
        "skew_cov": (_NUM, True),
        "skew_imbalance": (_NUM, True),
    },
    # -- optimizer search-space trace events -----------------------------------
    "optimizer_summary": {
        "groups": (int, True),
        "expressions": (int, True),
        "options_considered": (int, True),
        "options_retained": (int, True),
        "options_pruned": (int, True),
        "enforcers_added": (int, True),
        "movements_considered": (int, True),
        "movements_rejected": (int, True),
        "hint_overrides": (int, True),
        "optimize_seconds": (_NUM, True),
        "plan_cost": (_NUM, True),
        "plan_distribution": (str, True),
    },
    "optimizer_group": {
        "group": (int, True),
        "interesting": ("str_list", True),
        "expressions": (int, True),
        "options_considered": (int, True),
        "options_retained": (int, True),
        "retained": ("retained_list", True),
    },
    "optimizer_prune": {
        "group": (int, True),
        "victim": (str, True),
        "property_key": (str, True),
        "victim_cost": (_NUM, True),
        "survivor": (str, True),
        "survivor_cost": (_NUM, True),
        "cost_delta": (_NUM, True),
    },
    "optimizer_enforce": {
        "group": (int, True),
        "operation": (str, True),
        "movement": (str, True),
        "property_key": (str, True),
        "source": (str, True),
        "target": (str, True),
        "rows": (_NUM, True),
        "row_width": (_NUM, True),
        "reader": (_NUM, True),
        "network": (_NUM, True),
        "writer": (_NUM, True),
        "bulk_copy": (_NUM, True),
        "move_cost": (_NUM, True),
        "total_cost": (_NUM, True),
        "chosen": (bool, True),
        "context": (str, True),
    },
    "optimizer_hint": {
        "group": (int, True),
        "table": (str, True),
        "strategy": (str, True),
        "displaced": ("str_list", True),
        "displaced_costs": ("num_list", True),
        "kept": (int, True),
    },
    "plan_choice": {
        "sql": (str, True),
        "plan_cost": (_NUM, True),
        "baseline_cost": (_NUM, True),
        "delta": (_NUM, True),
        "delta_pct": (_NUM, True),
        "baseline_matches": (bool, True),
        "movements_plan": (int, True),
        "movements_baseline": (int, True),
        "movements_shared": (int, True),
    },
    # -- query-store flush / persistence events --------------------------------
    "query_store_flush": {
        "query_id": (int, True),
        "shape_key": (str, True),
        "example_sql": (str, True),
        "first_seen": (_NUM, True),
        "last_seen": (_NUM, True),
        "execution_count": (int, True),
        "plans": ("plan_stats_list", True),
    },
    # -- request flight-recorder events ----------------------------------------
    "request_complete": {
        "request_id": (str, True),
        "status": (str, True),
        "sql": (str, True),
        "tenant": (str, True),
        "priority": (str, True),
        "cache_hit": (bool, True),
        "plan_digest": (str, True),
        "steps": (int, True),
        "rows": (int, True),
        "queue_seconds": (_NUM, True),
        "compile_seconds": (_NUM, True),
        "execute_seconds": (_NUM, True),
        "total_seconds": (_NUM, True),
        "slow": (bool, True),
        "error": (str, True),
        "step_actuals": ("step_list", True),
    },
}


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_field(name: str, value: object, spec: object) -> Optional[str]:
    if spec == _NUM:
        if not _is_number(value):
            return f"field {name!r} must be a number, got {value!r}"
        return None
    if spec == _OPT_NUM:
        if value is not None and not _is_number(value):
            return f"field {name!r} must be a number or null, got {value!r}"
        return None
    if spec == "str_int_map":
        if not isinstance(value, dict):
            return f"field {name!r} must be an object, got {value!r}"
        for key, entry in value.items():
            if not isinstance(key, str) or not _lenient_int(key):
                return f"field {name!r} has non-node key {key!r}"
            if not isinstance(entry, int) or isinstance(entry, bool):
                return f"field {name!r}[{key}] must be an int, got {entry!r}"
        return None
    if spec == "str_list":
        if not isinstance(value, list) or not all(
                isinstance(entry, str) for entry in value):
            return f"field {name!r} must be a list of strings, got {value!r}"
        return None
    if spec == "num_list":
        if not isinstance(value, list) or not all(
                _is_number(entry) for entry in value):
            return f"field {name!r} must be a list of numbers, got {value!r}"
        return None
    if spec == "retained_list":
        if not isinstance(value, list):
            return f"field {name!r} must be a list, got {value!r}"
        for entry in value:
            if not isinstance(entry, dict):
                return f"field {name!r} entries must be objects"
            if not isinstance(entry.get("option"), str) \
                    or not isinstance(entry.get("property_key"), str) \
                    or not _is_number(entry.get("cost")):
                return (f"field {name!r} entry needs str 'option', "
                        f"str 'property_key', number 'cost': {entry!r}")
        return None
    if spec == "step_list":
        if not isinstance(value, list):
            return f"field {name!r} must be a list, got {value!r}"
        for entry in value:
            if not isinstance(entry, dict):
                return f"field {name!r} entries must be objects"
            for part in ("step", "rows", "bytes"):
                if not isinstance(entry.get(part), int) or isinstance(
                        entry.get(part), bool):
                    return (f"field {name!r} entry missing int "
                            f"{part!r}: {entry!r}")
            for part in ("kind", "operation"):
                if not isinstance(entry.get(part), str):
                    return (f"field {name!r} entry missing str "
                            f"{part!r}: {entry!r}")
            if not _is_number(entry.get("seconds")):
                return (f"field {name!r} entry missing number "
                        f"'seconds': {entry!r}")
        return None
    if spec == "plan_stats_list":
        if not isinstance(value, list):
            return f"field {name!r} must be a list, got {value!r}"
        for entry in value:
            if not isinstance(entry, dict):
                return f"field {name!r} entries must be objects"
            if not isinstance(entry.get("plan_hash"), str):
                return (f"field {name!r} entry missing str "
                        f"'plan_hash': {entry!r}")
            for part in ("schema_version", "execution_count",
                         "cache_hits", "last_seen_seq"):
                if not isinstance(entry.get(part), int) or isinstance(
                        entry.get(part), bool):
                    return (f"field {name!r} entry missing int "
                            f"{part!r}: {entry!r}")
            if not isinstance(entry.get("baseline_eligible"), bool):
                return (f"field {name!r} entry missing bool "
                        f"'baseline_eligible': {entry!r}")
            for part in ("elapsed_seconds_total", "wall_seconds_total",
                         "queue_seconds_total", "compile_seconds_total",
                         "execute_seconds_total", "max_q_error",
                         "first_seen", "last_seen"):
                if not _is_number(entry.get(part)):
                    return (f"field {name!r} entry missing number "
                            f"{part!r}: {entry!r}")
            if not isinstance(entry.get("steps"), list):
                return (f"field {name!r} entry missing list "
                        f"'steps': {entry!r}")
        return None
    if spec == "transfer_list":
        if not isinstance(value, list):
            return f"field {name!r} must be a list, got {value!r}"
        for entry in value:
            if not isinstance(entry, dict):
                return f"field {name!r} entries must be objects"
            for part in ("src", "dst", "rows", "bytes"):
                if not isinstance(entry.get(part), int) or isinstance(
                        entry.get(part), bool):
                    return (f"field {name!r} entry missing int "
                            f"{part!r}: {entry!r}")
        return None
    if isinstance(value, bool) and spec in (int, float):
        return f"field {name!r} must be {spec}, got bool"
    if not isinstance(value, spec):  # type: ignore[arg-type]
        return f"field {name!r} must be {spec}, got {value!r}"
    return None


def _lenient_int(text: str) -> bool:
    try:
        int(text)
        return True
    except ValueError:
        return False


def validate_event(event: object) -> List[str]:
    """Schema errors for one event (empty list — valid)."""
    if not isinstance(event, dict):
        return [f"event must be an object, got {type(event).__name__}"]
    kind = event.get("event")
    schema = EVENT_SCHEMAS.get(kind)  # type: ignore[arg-type]
    if schema is None:
        return [f"unknown event type {kind!r}"]
    errors: List[str] = []
    for name, (spec, required) in schema.items():
        if name not in event:
            if required:
                errors.append(f"missing field {name!r}")
            continue
        error = _check_field(name, event[name], spec)
        if error:
            errors.append(error)
    for name in event:
        if name != "event" and name not in schema:
            errors.append(f"unexpected field {name!r}")
    return errors


def validate_events(events: Iterable[object]) -> List[str]:
    """Schema errors across a whole event stream, prefixed by position."""
    errors: List[str] = []
    for index, event in enumerate(events):
        for error in validate_event(event):
            errors.append(f"event {index}: {error}")
    return errors


def validate_jsonl(text: str) -> List[str]:
    """Validate raw JSONL content (parse errors become schema errors)."""
    events: List[object] = []
    errors: List[str] = []
    for index, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            errors.append(f"line {index}: invalid JSON ({exc})")
    return errors + validate_events(events)


# -- metrics sink --------------------------------------------------------------


def profile_to_metrics(profile: QueryProfile,
                       registry: MetricsRegistry) -> None:
    """Record a profile into a registry as labeled series.

    Families: ``pdw_operator_rows_total{step,op,node}``,
    ``pdw_step_rows_total{step,op,node}``,
    ``pdw_step_received_bytes_total{step,node}``,
    ``pdw_step_skew_cov{step}`` / ``pdw_step_receive_skew_cov{step}``
    gauges, and a ``pdw_q_error`` histogram over every joined
    estimate/actual pair.
    """
    if not registry.enabled:
        return
    step_rows = registry.counter(
        "pdw_step_rows_total",
        "Rows produced per source node per DSQL step",
        labelnames=("step", "op", "node"))
    received = registry.counter(
        "pdw_step_received_bytes_total",
        "Bytes received per destination node per DSQL step",
        labelnames=("step", "node"))
    source_skew = registry.gauge(
        "pdw_step_skew_cov",
        "Coefficient of variation of per-node source rows per DSQL step",
        labelnames=("step",))
    receive_skew = registry.gauge(
        "pdw_step_receive_skew_cov",
        "Coefficient of variation of per-node received bytes per DSQL step",
        labelnames=("step",))
    op_rows = registry.counter(
        "pdw_operator_rows_total",
        "Rows produced per operator per node",
        labelnames=("step", "op", "node"))
    q_hist = registry.histogram(
        "pdw_q_error",
        "Q-error of every joined estimate/actual pair")
    for step in profile.steps:
        step_label = str(step.index)
        for node, rows in step.source_rows.items():
            step_rows.labels(step=step_label, op=step.operation,
                             node=str(node)).inc(rows)
        for node, nbytes in step.received_bytes.items():
            received.labels(step=step_label, node=str(node)).inc(nbytes)
        source_skew.labels(step=step_label).set(step.source_skew.cov)
        receive_skew.labels(step=step_label).set(step.receive_skew.cov)
        q_hist.observe(step.q_error)
        for op in step.operators:
            for node, rows in op.node_rows.items():
                op_rows.labels(step=step_label, op=op.kind,
                               node=str(node)).inc(rows)
            if op.q_error is not None:
                q_hist.observe(op.q_error)


def optimizer_trace_to_metrics(trace: OptimizerTrace,
                               registry: MetricsRegistry,
                               plan_choice=None) -> None:
    """Record an optimizer trace into a registry as ``pdw_optimizer_*``
    series.

    Families: search-space counters
    (``pdw_optimizer_{groups,expressions}_total``,
    ``pdw_optimizer_options_{considered,retained,pruned}``,
    ``pdw_optimizer_pruned_by_property_total{key}``,
    ``pdw_optimizer_enforcers_added_total{op}``,
    ``pdw_optimizer_movements_{considered,rejected}_total``,
    ``pdw_optimizer_hint_overrides_total``) and cost gauges
    (``pdw_optimizer_optimize_seconds``,
    ``pdw_optimizer_plan_cost_seconds``; with a §2.5 comparison also
    ``pdw_optimizer_baseline_cost_seconds`` /
    ``pdw_optimizer_baseline_delta_seconds``).
    """
    if not registry.enabled:
        return
    summary = trace.summary()
    registry.counter(
        "pdw_optimizer_groups_total",
        "MEMO groups visited by the PDW enumeration").inc(summary.groups)
    registry.counter(
        "pdw_optimizer_expressions_total",
        "Logical expressions enumerated across all groups",
    ).inc(summary.expressions)
    registry.counter(
        "pdw_optimizer_options_considered",
        "Distributed plan options generated during enumeration",
    ).inc(summary.options_considered)
    registry.counter(
        "pdw_optimizer_options_retained",
        "Options surviving the interesting-property prune",
    ).inc(summary.options_retained)
    registry.counter(
        "pdw_optimizer_options_pruned",
        "Options discarded by cost-based pruning",
    ).inc(summary.options_pruned)
    registry.counter(
        "pdw_optimizer_movements_considered_total",
        "DMS movements costed (enforcers and union branch moves)",
    ).inc(summary.movements_considered)
    registry.counter(
        "pdw_optimizer_movements_rejected_total",
        "Costed DMS movements the optimizer did not choose",
    ).inc(summary.movements_rejected)
    registry.counter(
        "pdw_optimizer_hint_overrides_total",
        "Option sets overridden by §3.1 query hints",
    ).inc(summary.hint_overrides)
    pruned_by_key = registry.counter(
        "pdw_optimizer_pruned_by_property_total",
        "Prune victims per interesting-property key",
        labelnames=("key",))
    for key, (count, _mean, _max) in trace.prune_effectiveness().items():
        pruned_by_key.labels(key=key).inc(count)
    enforcers = registry.counter(
        "pdw_optimizer_enforcers_added_total",
        "DMS enforcer steps inserted into retained options, per operation",
        labelnames=("op",))
    for move in trace.movements:
        if move.chosen and move.context == "enforce":
            enforcers.labels(op=move.operation).inc()
    registry.gauge(
        "pdw_optimizer_optimize_seconds",
        "Wall-clock seconds spent in the traced PDW optimization",
    ).set(summary.optimize_seconds)
    registry.gauge(
        "pdw_optimizer_plan_cost_seconds",
        "DMS cost of the winning distributed plan (simulated seconds)",
    ).set(summary.plan_cost)
    if plan_choice is not None:
        registry.gauge(
            "pdw_optimizer_baseline_cost_seconds",
            "DMS cost of the §2.5 parallelized-serial baseline",
        ).set(plan_choice.baseline_cost)
        registry.gauge(
            "pdw_optimizer_baseline_delta_seconds",
            "Extra DMS seconds the §2.5 baseline pays over the chosen plan",
        ).set(plan_choice.delta)


def requests_to_metrics(requests: RequestRegistry,
                        registry: MetricsRegistry) -> None:
    """Record the flight recorder into a registry as ``pdw_request_*``
    series.

    Families: ``pdw_request_total{status,tenant}`` counter,
    ``pdw_request_seconds{phase}`` histogram (queue / compile /
    execute / total phases of every completed request),
    ``pdw_request_rows_total``, ``pdw_request_cache_hits_total`` and
    ``pdw_request_slow_total`` counters, plus a
    ``pdw_request_in_flight`` gauge over currently active requests.
    """
    if not registry.enabled or not requests.enabled:
        return
    total = registry.counter(
        "pdw_request_total",
        "Completed requests by terminal status and tenant",
        labelnames=("status", "tenant"))
    seconds = registry.histogram(
        "pdw_request_seconds",
        "Request wall-clock seconds per lifecycle phase",
        labelnames=("phase",))
    rows_total = registry.counter(
        "pdw_request_rows_total",
        "Rows returned to clients across completed requests")
    cache_hits = registry.counter(
        "pdw_request_cache_hits_total",
        "Completed requests served from the plan cache")
    slow_total = registry.counter(
        "pdw_request_slow_total",
        "Completed requests exceeding the slow-query threshold")
    in_flight = registry.gauge(
        "pdw_request_in_flight",
        "Requests currently active (queued, compiling or running)")
    threshold = requests.slow_threshold_seconds
    for record in requests.completed():
        total.labels(status=record.status, tenant=record.tenant).inc()
        seconds.labels(phase="queue").observe(record.queue_seconds)
        seconds.labels(phase="compile").observe(record.compile_seconds)
        seconds.labels(phase="execute").observe(record.execute_seconds)
        seconds.labels(phase="total").observe(record.total_seconds)
        rows_total.inc(record.rows_returned)
        if record.cache_hit:
            cache_hits.inc()
        if record.is_slow(threshold):
            slow_total.inc()
    in_flight.set(len(requests.active()))


def query_store_to_metrics(store, registry: MetricsRegistry) -> None:
    """Record a :class:`repro.obs.query_store.QueryStore` into a
    registry as ``pdw_query_store_*`` series.

    Families: gauges ``pdw_query_store_shapes``,
    ``pdw_query_store_plans``, ``pdw_query_store_regressions`` and
    ``pdw_query_store_max_q_error``; counters
    ``pdw_query_store_executions_total``,
    ``pdw_query_store_rows_total``,
    ``pdw_query_store_bytes_moved_total`` and
    ``pdw_query_store_seconds_total{phase}`` (queue / compile /
    execute / total simulated).
    """
    if not registry.enabled or not store.enabled:
        return
    shapes = store.shapes()
    plan_count = 0
    executions = 0
    rows = 0
    bytes_moved = 0
    max_q = 1.0
    queue = compile_s = execute = elapsed = 0.0
    with store._lock:
        for shape in shapes:
            for plan in shape.plans.values():
                plan_count += 1
                executions += plan.execution_count
                rows += plan.rows_returned_total
                bytes_moved += plan.bytes_moved_total
                max_q = max(max_q, plan.max_q_error)
                queue += plan.queue_seconds_total
                compile_s += plan.compile_seconds_total
                execute += plan.execute_seconds_total
                elapsed += plan.elapsed_seconds_total
    registry.gauge(
        "pdw_query_store_shapes",
        "Distinct normalized query shapes retained by the query store",
    ).set(len(shapes))
    registry.gauge(
        "pdw_query_store_plans",
        "Distinct (shape, plan hash) pairs retained by the query store",
    ).set(plan_count)
    registry.gauge(
        "pdw_query_store_regressions",
        "Shapes whose current plan regresses past a prior plan",
    ).set(len(store.regressions()))
    registry.gauge(
        "pdw_query_store_max_q_error",
        "Worst per-step cardinality Q-error observed across all plans",
    ).set(max_q)
    registry.counter(
        "pdw_query_store_executions_total",
        "Executions aggregated into the query store",
    ).inc(executions)
    registry.counter(
        "pdw_query_store_rows_total",
        "Rows returned across all store-recorded executions",
    ).inc(rows)
    registry.counter(
        "pdw_query_store_bytes_moved_total",
        "DMS bytes moved across all store-recorded executions",
    ).inc(bytes_moved)
    seconds_total = registry.counter(
        "pdw_query_store_seconds_total",
        "Store-recorded seconds per lifecycle phase "
        "(elapsed is simulated)",
        labelnames=("phase",))
    seconds_total.labels(phase="queue").inc(queue)
    seconds_total.labels(phase="compile").inc(compile_s)
    seconds_total.labels(phase="execute").inc(execute)
    seconds_total.labels(phase="elapsed").inc(elapsed)
