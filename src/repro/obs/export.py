"""Structured export sinks for query profiles.

Three formats, one source of truth (:class:`repro.obs.profiler.QueryProfile`):

* **JSONL event log** — one self-describing event per line (``query``,
  ``step``, ``operator``), append-friendly and greppable; every event is
  checkable against :data:`EVENT_SCHEMAS` (hand-rolled validation — no
  third-party schema library is assumed in the environment);
* **JSON profile document** — the nested ``QueryProfile.to_dict()`` form;
* **Prometheus text** — labeled series via
  :func:`profile_to_metrics` into a
  :class:`repro.obs.metrics.MetricsRegistry` plus the registry's
  ``render_prometheus``.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import QueryProfile

__all__ = [
    "profile_to_events",
    "events_to_jsonl",
    "write_jsonl",
    "EVENT_SCHEMAS",
    "validate_event",
    "validate_events",
    "validate_jsonl",
    "profile_to_metrics",
]


# -- event log -----------------------------------------------------------------


def profile_to_events(profile: QueryProfile) -> List[dict]:
    """Flatten a profile into schema-checked events: one ``query`` event,
    one ``step`` event per DSQL step, one ``operator`` event per joined
    operator."""
    summary = profile.q_error_summary()
    events: List[dict] = [{
        "event": "query",
        "sql": profile.sql,
        "node_count": profile.node_count,
        "steps": len(profile.steps),
        "elapsed_seconds": profile.elapsed_seconds,
        "dms_seconds": profile.dms_seconds,
        "q_error_count": summary.count,
        "q_error_median": summary.median,
        "q_error_p95": summary.p95,
        "q_error_max": summary.max,
    }]
    for step in profile.steps:
        events.append({"event": "step", **step.to_dict()})
    for op in profile.operators:
        events.append({"event": "operator", **op.to_dict()})
    return events


def events_to_jsonl(events: Iterable[dict]) -> str:
    return "".join(json.dumps(event, sort_keys=True) + "\n"
                   for event in events)


def write_jsonl(events: Iterable[dict], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(events_to_jsonl(events))


# -- schema validation ---------------------------------------------------------

# Field → (type spec, required).  Type specs: a type / tuple of types,
# "number", "number?" (number or null), "str_int_map" (JSON object keyed
# by stringified node ids with integer values), or "transfer_list".
_NUM = "number"
_OPT_NUM = "number?"

EVENT_SCHEMAS: Dict[str, Dict[str, Tuple[object, bool]]] = {
    "query": {
        "sql": (str, True),
        "node_count": (int, True),
        "steps": (int, True),
        "elapsed_seconds": (_NUM, True),
        "dms_seconds": (_NUM, True),
        "q_error_count": (int, True),
        "q_error_median": (_NUM, True),
        "q_error_p95": (_NUM, True),
        "q_error_max": (_NUM, True),
    },
    "step": {
        "step": (int, True),
        "kind": (str, True),
        "operation": (str, True),
        "estimated_rows": (_NUM, True),
        "actual_rows": (int, True),
        "estimated_bytes": (_NUM, True),
        "actual_bytes": (int, True),
        "estimated_seconds": (_NUM, True),
        "actual_seconds": (_NUM, True),
        "q_error": (_NUM, True),
        "source_rows": ("str_int_map", True),
        "source_skew_cov": (_NUM, True),
        "source_skew_imbalance": (_NUM, True),
        "received_bytes": ("str_int_map", True),
        "receive_skew_cov": (_NUM, True),
        "transfers": ("transfer_list", True),
    },
    "operator": {
        "step": (int, True),
        "kind": (str, True),
        "label": (str, True),
        "node_rows": ("str_int_map", True),
        "actual_rows": (int, True),
        "estimated_rows": (_OPT_NUM, True),
        "q_error": (_OPT_NUM, True),
        "skew_cov": (_NUM, True),
        "skew_imbalance": (_NUM, True),
    },
}


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_field(name: str, value: object, spec: object) -> Optional[str]:
    if spec == _NUM:
        if not _is_number(value):
            return f"field {name!r} must be a number, got {value!r}"
        return None
    if spec == _OPT_NUM:
        if value is not None and not _is_number(value):
            return f"field {name!r} must be a number or null, got {value!r}"
        return None
    if spec == "str_int_map":
        if not isinstance(value, dict):
            return f"field {name!r} must be an object, got {value!r}"
        for key, entry in value.items():
            if not isinstance(key, str) or not _lenient_int(key):
                return f"field {name!r} has non-node key {key!r}"
            if not isinstance(entry, int) or isinstance(entry, bool):
                return f"field {name!r}[{key}] must be an int, got {entry!r}"
        return None
    if spec == "transfer_list":
        if not isinstance(value, list):
            return f"field {name!r} must be a list, got {value!r}"
        for entry in value:
            if not isinstance(entry, dict):
                return f"field {name!r} entries must be objects"
            for part in ("src", "dst", "rows", "bytes"):
                if not isinstance(entry.get(part), int) or isinstance(
                        entry.get(part), bool):
                    return (f"field {name!r} entry missing int "
                            f"{part!r}: {entry!r}")
        return None
    if isinstance(value, bool) and spec in (int, float):
        return f"field {name!r} must be {spec}, got bool"
    if not isinstance(value, spec):  # type: ignore[arg-type]
        return f"field {name!r} must be {spec}, got {value!r}"
    return None


def _lenient_int(text: str) -> bool:
    try:
        int(text)
        return True
    except ValueError:
        return False


def validate_event(event: object) -> List[str]:
    """Schema errors for one event (empty list — valid)."""
    if not isinstance(event, dict):
        return [f"event must be an object, got {type(event).__name__}"]
    kind = event.get("event")
    schema = EVENT_SCHEMAS.get(kind)  # type: ignore[arg-type]
    if schema is None:
        return [f"unknown event type {kind!r}"]
    errors: List[str] = []
    for name, (spec, required) in schema.items():
        if name not in event:
            if required:
                errors.append(f"missing field {name!r}")
            continue
        error = _check_field(name, event[name], spec)
        if error:
            errors.append(error)
    for name in event:
        if name != "event" and name not in schema:
            errors.append(f"unexpected field {name!r}")
    return errors


def validate_events(events: Iterable[object]) -> List[str]:
    """Schema errors across a whole event stream, prefixed by position."""
    errors: List[str] = []
    for index, event in enumerate(events):
        for error in validate_event(event):
            errors.append(f"event {index}: {error}")
    return errors


def validate_jsonl(text: str) -> List[str]:
    """Validate raw JSONL content (parse errors become schema errors)."""
    events: List[object] = []
    errors: List[str] = []
    for index, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            errors.append(f"line {index}: invalid JSON ({exc})")
    return errors + validate_events(events)


# -- metrics sink --------------------------------------------------------------


def profile_to_metrics(profile: QueryProfile,
                       registry: MetricsRegistry) -> None:
    """Record a profile into a registry as labeled series.

    Families: ``pdw_operator_rows_total{step,op,node}``,
    ``pdw_step_rows_total{step,op,node}``,
    ``pdw_step_received_bytes_total{step,node}``,
    ``pdw_step_skew_cov{step}`` / ``pdw_step_receive_skew_cov{step}``
    gauges, and a ``pdw_q_error`` histogram over every joined
    estimate/actual pair.
    """
    if not registry.enabled:
        return
    step_rows = registry.counter(
        "pdw_step_rows_total",
        "Rows produced per source node per DSQL step",
        labelnames=("step", "op", "node"))
    received = registry.counter(
        "pdw_step_received_bytes_total",
        "Bytes received per destination node per DSQL step",
        labelnames=("step", "node"))
    source_skew = registry.gauge(
        "pdw_step_skew_cov",
        "Coefficient of variation of per-node source rows per DSQL step",
        labelnames=("step",))
    receive_skew = registry.gauge(
        "pdw_step_receive_skew_cov",
        "Coefficient of variation of per-node received bytes per DSQL step",
        labelnames=("step",))
    op_rows = registry.counter(
        "pdw_operator_rows_total",
        "Rows produced per operator per node",
        labelnames=("step", "op", "node"))
    q_hist = registry.histogram(
        "pdw_q_error",
        "Q-error of every joined estimate/actual pair")
    for step in profile.steps:
        step_label = str(step.index)
        for node, rows in step.source_rows.items():
            step_rows.labels(step=step_label, op=step.operation,
                             node=str(node)).inc(rows)
        for node, nbytes in step.received_bytes.items():
            received.labels(step=step_label, node=str(node)).inc(nbytes)
        source_skew.labels(step=step_label).set(step.source_skew.cov)
        receive_skew.labels(step=step_label).set(step.receive_skew.cov)
        q_hist.observe(step.q_error)
        for op in step.operators:
            for node, rows in op.node_rows.items():
                op_rows.labels(step=step_label, op=op.kind,
                               node=str(node)).inc(rows)
            if op.q_error is not None:
                q_hist.observe(op.q_error)
