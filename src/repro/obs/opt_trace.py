"""Optimizer search-space tracing (paper §3.2-§3.3 made observable).

PR 3 made the *runtime* observable; this module opens up the optimizer
itself.  An :class:`OptimizerTrace` handed to
:class:`repro.pdw.enumerator.PdwOptimizer` records, per MEMO group:

* the **options enumerated** by each logical expression (Figure 4 step
  06.i — join/group-by/union combination counts);
* the **interesting-property targets** derived for the group (step 04);
* every **prune decision** (step 06.ii): the victim option, the property
  key it delivered, and the cost delta to the survivor that displaced it;
* every **movement considered** while enforcing (step 07) or placing
  union branches, with the full :class:`~repro.pdw.cost_model.DmsCost`
  component breakdown (reader / network / writer / bulk copy) and whether
  the movement was actually inserted;
* **hint overrides** (§3.1): options a ``replicate``/``shuffle`` hint
  displaced, so a forced strategy is auditable after the fact.

The default everywhere is :data:`NULL_OPT_TRACE`, which preserves the
``NULL_TRACER`` / ``NULL_METRICS`` zero-overhead contract: every method
is a no-op, nothing is allocated per call, and instrumented code guards
any loop that would *compute* a trace value on ``trace.enabled``.

Like :mod:`repro.obs.metrics` and :mod:`repro.obs.profiler`, this module
is free of ``repro`` imports (operators, distributions and cost
breakdowns arrive as plain strings/floats), so the optimizer can import
it without cycles and the export layer can consume it without touching
the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "format_property_key",
    "EnumerationRecord",
    "PruneRecord",
    "MovementRecord",
    "HintOverrideRecord",
    "GroupTrace",
    "OptimizerTraceSummary",
    "OptimizerTrace",
    "NullOptimizerTrace",
    "NULL_OPT_TRACE",
]


def format_property_key(key: object) -> str:
    """Render a :data:`repro.pdw.interesting.PropertyKey` tuple (or any
    value) as a stable short string: ``("hash", 5)`` → ``"hash:5"``."""
    if isinstance(key, tuple):
        return ":".join(str(part) for part in key)
    return str(key)


@dataclass(frozen=True)
class EnumerationRecord:
    """One logical expression's contribution to a group (step 06.i)."""

    group: int
    operator: str          # logical operator description, e.g. "Join[INNER]"
    options: int           # distributed options the expression produced


@dataclass(frozen=True)
class PruneRecord:
    """One victim of cost-based pruning (step 06.ii)."""

    group: int
    victim: str            # option description ("op @ distribution")
    property_key: str      # property the victim delivered
    victim_cost: float
    survivor: str          # option that covers the victim's property slot
    survivor_cost: float

    @property
    def cost_delta(self) -> float:
        """How much worse the victim was than its survivor."""
        return self.victim_cost - self.survivor_cost


@dataclass(frozen=True)
class MovementRecord:
    """One data movement the optimizer *costed* — an enforcer candidate
    (step 07) or a union branch placement.  ``chosen`` marks the
    candidate that was actually inserted; the rest are the
    considered-but-rejected movements of the "why" report."""

    group: int
    operation: str         # DMS operation value, e.g. "shuffle"
    movement: str          # DataMovement.describe(), e.g. "ShuffleMove(o_custkey)"
    property_key: str      # enforced property (or the union target's key)
    source: str            # distribution before the move
    target: str            # distribution after the move
    rows: float            # global cardinality Y fed to the cost model
    row_width: float       # average row width w
    reader: float          # DmsCost components, in seconds
    network: float
    writer: float
    bulk_copy: float
    move_cost: float       # max(max(reader, network), max(writer, bulk))
    total_cost: float      # source option cost + move_cost
    chosen: bool
    context: str = "enforce"   # "enforce" (step 07) or "union" (branch)


@dataclass(frozen=True)
class HintOverrideRecord:
    """A §3.1 hint displacing otherwise-retained options for a group."""

    group: int
    table: str
    strategy: str                      # "replicate" or "shuffle"
    displaced: Tuple[str, ...]         # descriptions of removed options
    displaced_costs: Tuple[float, ...]
    kept: int                          # options surviving the override


@dataclass
class GroupTrace:
    """Everything recorded for one MEMO group."""

    group: int
    interesting: Tuple[str, ...] = ()
    enumerated: List[EnumerationRecord] = field(default_factory=list)
    options_considered: int = 0
    options_retained: int = 0
    retained: Tuple[Tuple[str, str, float], ...] = ()
    # retained entries are (description, property key, cost)


@dataclass(frozen=True)
class OptimizerTraceSummary:
    """Search-space statistics for one ``PdwOptimizer.optimize()`` run."""

    groups: int
    expressions: int
    options_considered: int
    options_retained: int
    options_pruned: int
    enforcers_added: int
    movements_considered: int
    movements_rejected: int
    hint_overrides: int
    optimize_seconds: float
    plan_cost: float


class OptimizerTrace:
    """Records one bottom-up enumeration run.  Not thread-safe: each
    optimize() call owns its trace (optimization is single-threaded)."""

    enabled = True

    def __init__(self):
        self.groups: Dict[int, GroupTrace] = {}
        self.prunes: List[PruneRecord] = []
        self.movements: List[MovementRecord] = []
        self.hint_overrides: List[HintOverrideRecord] = []
        self.optimize_seconds = 0.0
        self.plan_cost = 0.0
        self.plan_distribution = ""

    # -- recording hooks (called by PdwOptimizer) ------------------------------

    def begin_group(self, group: int, interesting: Tuple[str, ...]) -> None:
        self.groups[group] = GroupTrace(group, tuple(sorted(interesting)))

    def record_enumeration(self, group: int, operator: str,
                           options: int) -> None:
        self.groups[group].enumerated.append(
            EnumerationRecord(group, operator, options))

    def record_prune(self, group: int, victim: str, property_key: str,
                     victim_cost: float, survivor: str,
                     survivor_cost: float) -> None:
        self.prunes.append(PruneRecord(group, victim, property_key,
                                       victim_cost, survivor,
                                       survivor_cost))

    def record_movement(self, record: MovementRecord) -> None:
        self.movements.append(record)

    def record_hint_override(self, group: int, table: str, strategy: str,
                             displaced: Tuple[str, ...],
                             displaced_costs: Tuple[float, ...],
                             kept: int) -> None:
        self.hint_overrides.append(HintOverrideRecord(
            group, table, strategy, displaced, displaced_costs, kept))

    def end_group(self, group: int, considered: int,
                  retained: Tuple[Tuple[str, str, float], ...]) -> None:
        trace = self.groups[group]
        trace.options_considered = considered
        trace.options_retained = len(retained)
        trace.retained = retained

    def finish(self, plan_cost: float, plan_distribution: str,
               optimize_seconds: float) -> None:
        self.plan_cost = plan_cost
        self.plan_distribution = plan_distribution
        self.optimize_seconds = optimize_seconds

    # -- views -----------------------------------------------------------------

    @property
    def enforcers_added(self) -> int:
        return sum(1 for m in self.movements
                   if m.chosen and m.context == "enforce")

    def summary(self) -> OptimizerTraceSummary:
        considered = sum(g.options_considered for g in self.groups.values())
        retained = sum(g.options_retained for g in self.groups.values())
        rejected = sum(1 for m in self.movements if not m.chosen)
        return OptimizerTraceSummary(
            groups=len(self.groups),
            expressions=sum(len(g.enumerated)
                            for g in self.groups.values()),
            options_considered=considered,
            options_retained=retained,
            options_pruned=len(self.prunes),
            enforcers_added=self.enforcers_added,
            movements_considered=len(self.movements),
            movements_rejected=rejected,
            hint_overrides=len(self.hint_overrides),
            optimize_seconds=self.optimize_seconds,
            plan_cost=self.plan_cost,
        )

    def rejected_movements(self, top_k: Optional[int] = None
                           ) -> List[MovementRecord]:
        """Movements costed but not inserted, costliest first — the
        alternatives the optimizer paid to evaluate and walked away
        from."""
        rejected = sorted((m for m in self.movements if not m.chosen),
                          key=lambda m: (-m.move_cost, m.group))
        return rejected if top_k is None else rejected[:top_k]

    def prune_effectiveness(self) -> Dict[str, Tuple[int, float, float]]:
        """Per property key: (victims pruned, mean cost delta, max cost
        delta) — how much worse the discarded options were."""
        grouped: Dict[str, List[float]] = {}
        for record in self.prunes:
            grouped.setdefault(record.property_key, []).append(
                record.cost_delta)
        return {
            key: (len(deltas), sum(deltas) / len(deltas), max(deltas))
            for key, deltas in sorted(grouped.items())
        }


class NullOptimizerTrace(OptimizerTrace):
    """The default recorder: records nothing, allocates nothing."""

    enabled = False
    __slots__ = ()

    def __init__(self):  # no per-instance state at all
        pass

    def begin_group(self, group, interesting):
        del group, interesting

    def record_enumeration(self, group, operator, options):
        del group, operator, options

    def record_prune(self, group, victim, property_key, victim_cost,
                     survivor, survivor_cost):
        del group, victim, property_key, victim_cost, survivor
        del survivor_cost

    def record_movement(self, record):
        del record

    def record_hint_override(self, group, table, strategy, displaced,
                             displaced_costs, kept):
        del group, table, strategy, displaced, displaced_costs, kept

    def end_group(self, group, considered, retained):
        del group, considered, retained

    def finish(self, plan_cost, plan_distribution, optimize_seconds):
        del plan_cost, plan_distribution, optimize_seconds

    # views stay usable on the shared no-op (everything empty/zero)
    @property
    def groups(self):  # type: ignore[override]
        return {}

    @property
    def prunes(self):  # type: ignore[override]
        return []

    @property
    def movements(self):  # type: ignore[override]
        return []

    @property
    def hint_overrides(self):  # type: ignore[override]
        return []

    @property
    def enforcers_added(self):  # type: ignore[override]
        return 0

    @property
    def optimize_seconds(self):  # type: ignore[override]
        return 0.0

    @property
    def plan_cost(self):  # type: ignore[override]
        return 0.0

    @property
    def plan_distribution(self):  # type: ignore[override]
        return ""


NULL_OPT_TRACE = NullOptimizerTrace()
