"""The serial ("SQL Server") optimizer: binder, normalization, MEMO,
exploration, implementation, cardinality estimation, serial cost model,
and the MEMO⇄XML interface of paper §3.1."""

from repro.optimizer.binder import Binder, bind_query
from repro.optimizer.memo import Group, GroupExpression, Memo, topological_order
from repro.optimizer.memo_xml import memo_from_xml, memo_to_xml
from repro.optimizer.normalize import normalize
from repro.optimizer.search import (
    OptimizationResult,
    OptimizerConfig,
    SerialOptimizer,
    extract_best_serial_plan,
)

__all__ = [
    "Binder",
    "Group",
    "GroupExpression",
    "Memo",
    "OptimizationResult",
    "OptimizerConfig",
    "SerialOptimizer",
    "bind_query",
    "extract_best_serial_plan",
    "memo_from_xml",
    "memo_to_xml",
    "normalize",
    "topological_order",
]
