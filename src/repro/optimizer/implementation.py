"""The implementation phase: add physical alternatives to the MEMO.

Paper §2.5 step 2(d): *"The implementation phase which adds physical
operator (algorithms) choices into the search space."*  For every logical
group expression we add the applicable physical operators:

* ``Get``      → TableScan
* ``Select``   → Filter
* ``Project``  → ComputeScalar
* ``Join``     → HashJoin (equi; both probe/build orders for inner),
                 MergeJoin (equi), NestedLoopJoin (always, and the only
                 choice for non-equi / cross)
* ``GroupBy``  → HashAggregate, StreamAggregate
* ``UnionAll`` → UnionAllOp
"""

from __future__ import annotations

from repro.algebra import expressions as ex
from repro.algebra import physical as phys
from repro.algebra.logical import (
    JoinKind,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalProject,
    LogicalSelect,
    LogicalUnionAll,
)
from repro.optimizer.memo import Group, GroupExpression, Memo


def implement_group_expression(memo: Memo, group: Group,
                               expr: GroupExpression) -> None:
    """Add the physical counterparts of one logical expression."""
    op = expr.op
    children = expr.children

    if isinstance(op, LogicalGet):
        memo.add_expression(
            group.id,
            phys.TableScan(op.table, op.columns, op.alias),
            children, is_logical=False)
        return

    if isinstance(op, LogicalSelect):
        memo.add_expression(group.id, phys.Filter(op.predicate),
                            children, is_logical=False)
        return

    if isinstance(op, LogicalProject):
        memo.add_expression(group.id, phys.ComputeScalar(op.outputs),
                            children, is_logical=False)
        return

    if isinstance(op, LogicalJoin):
        _implement_join(memo, group, op, children)
        return

    if isinstance(op, LogicalGroupBy):
        memo.add_expression(
            group.id,
            phys.HashAggregate(op.keys, op.aggregates, op.phase.value),
            children, is_logical=False)
        memo.add_expression(
            group.id,
            phys.StreamAggregate(op.keys, op.aggregates, op.phase.value),
            children, is_logical=False)
        return

    if isinstance(op, LogicalUnionAll):
        memo.add_expression(group.id, phys.UnionAllOp(op.outputs),
                            children, is_logical=False)
        return


def _implement_join(memo: Memo, group: Group, op: LogicalJoin,
                    children) -> None:
    left_group = memo.group(children[0])
    right_group = memo.group(children[1])
    left_ids = frozenset(v.id for v in left_group.output_vars)
    right_ids = frozenset(v.id for v in right_group.output_vars)
    pairs = ex.equi_join_pairs(op.predicate, left_ids, right_ids)

    if pairs:
        memo.add_expression(group.id, phys.HashJoin(op.kind, op.predicate),
                            children, is_logical=False)
        memo.add_expression(group.id, phys.MergeJoin(op.kind, op.predicate),
                            children, is_logical=False)
        if op.kind is JoinKind.INNER:
            # Swapped probe/build order; output columns are a set, so the
            # group is unchanged.
            swapped = (children[1], children[0])
            memo.add_expression(group.id,
                                phys.HashJoin(op.kind, op.predicate),
                                swapped, is_logical=False)
    memo.add_expression(group.id, phys.NestedLoopJoin(op.kind, op.predicate),
                        children, is_logical=False)


def implement_memo(memo: Memo) -> int:
    """Run implementation over every group; returns #physical exprs added."""
    added = 0
    for group in memo.canonical_groups():
        before = len(group.physical_expressions)
        for expr in list(group.logical_expressions):
            if memo.find(group.id) != group.id:
                break
            implement_group_expression(memo, memo.group(group.id), expr)
        added += len(memo.group(group.id).physical_expressions) - before
    return added
