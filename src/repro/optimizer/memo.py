"""The MEMO: compact representation of the optimization search space.

Paper §2.5: *"The MEMO consists of two mutually recursive data structures,
called groups and groupExpressions.  A group represents all equivalent
operator trees producing the same output ... A groupExpression is an
operator having other groups (rather than other operators) as children."*
[Graefe, Cascades/Volcano.]

This implementation supports:

* deduplication of group expressions (same operator + same child groups),
* **group merging** via union-find when a duplicate expression proves two
  groups equivalent (the classic Cascades mechanism),
* logical properties per group — output columns, estimated cardinality,
  average row width — computed from the shell database statistics, and
* both logical and physical group expressions, so the exported search
  space looks like Figure 3(c).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra import expressions as ex
from repro.algebra.logical import (
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalOp,
    LogicalProject,
    LogicalSelect,
    LogicalUnionAll,
)
from repro.common.errors import OptimizerError
from repro.optimizer.cardinality import StatsContext, estimate_operator_cardinality


class GroupExpression:
    """An operator whose children are MEMO groups."""

    __slots__ = ("op", "children", "is_logical", "cost", "best_child_exprs")

    def __init__(self, op, children: Tuple[int, ...], is_logical: bool):
        self.op = op
        self.children = children
        self.is_logical = is_logical
        self.cost: Optional[float] = None        # physical only
        self.best_child_exprs: Tuple[int, ...] = ()

    @property
    def key(self) -> tuple:
        return (self.op.local_key(), self.children)

    def describe(self) -> str:
        kids = ", ".join(str(c) for c in self.children)
        return f"{self.op.describe()}({kids})"


class Group:
    """All equivalent expressions producing the same intermediate result."""

    __slots__ = ("id", "expressions", "output_vars", "cardinality",
                 "row_width", "explored")

    def __init__(self, group_id: int, output_vars: Sequence[ex.ColumnVar],
                 cardinality: float, row_width: float):
        self.id = group_id
        self.expressions: List[GroupExpression] = []
        self.output_vars = list(output_vars)
        self.cardinality = cardinality
        self.row_width = row_width
        self.explored = False

    @property
    def logical_expressions(self) -> List[GroupExpression]:
        return [e for e in self.expressions if e.is_logical]

    @property
    def physical_expressions(self) -> List[GroupExpression]:
        return [e for e in self.expressions if not e.is_logical]


def derive_output_vars(op: LogicalOp,
                       child_vars: Sequence[Sequence[ex.ColumnVar]]
                       ) -> List[ex.ColumnVar]:
    """Output columns of an operator given its children's outputs."""
    if isinstance(op, LogicalGet):
        return list(op.columns)
    if isinstance(op, LogicalSelect):
        return list(child_vars[0])
    if isinstance(op, LogicalProject):
        return [var for var, _ in op.outputs]
    if isinstance(op, LogicalJoin):
        cols = list(child_vars[0])
        if op.kind.returns_right_columns:
            cols += list(child_vars[1])
        return cols
    if isinstance(op, LogicalGroupBy):
        return list(op.keys) + [var for var, _ in op.aggregates]
    if isinstance(op, LogicalUnionAll):
        return list(op.outputs)
    raise OptimizerError(f"unknown logical operator {type(op).__name__}")


class Memo:
    """The search-space container shared by exploration and implementation."""

    def __init__(self, stats: StatsContext):
        self.stats = stats
        self.groups: List[Group] = []
        self._dedup: Dict[tuple, int] = {}
        self._parent: List[int] = []  # union-find over group ids

    # -- union-find ----------------------------------------------------------

    def find(self, group_id: int) -> int:
        parent = self._parent[group_id]
        if parent != group_id:
            root = self.find(parent)
            self._parent[group_id] = root
            return root
        return group_id

    def group(self, group_id: int) -> Group:
        return self.groups[self.find(group_id)]

    def _merge(self, a: int, b: int) -> int:
        """Merge group ``b`` into group ``a`` (both canonical ids)."""
        a, b = self.find(a), self.find(b)
        if a == b:
            return a
        keeper, absorbed = (a, b) if a < b else (b, a)
        keep_group = self.groups[keeper]
        gone_group = self.groups[absorbed]
        existing = {e.key for e in keep_group.expressions}
        for expr in gone_group.expressions:
            if expr.key not in existing:
                keep_group.expressions.append(expr)
                existing.add(expr.key)
            self._dedup[expr.key] = keeper
        self._parent[absorbed] = keeper
        keep_group.explored = keep_group.explored and gone_group.explored
        return keeper

    # -- group / expression creation ------------------------------------------

    def _new_group(self, output_vars: Sequence[ex.ColumnVar],
                   cardinality: float, row_width: float) -> Group:
        group = Group(len(self.groups), output_vars, cardinality, row_width)
        self.groups.append(group)
        self._parent.append(group.id)
        return group

    def merge_equivalent(self, a: int, b: int) -> int:
        """Declare two groups equivalent; returns the surviving id."""
        return self._merge(self.find(a), self.find(b))

    def add_expression(self, group_id: int, op, children: Sequence[int],
                       is_logical: bool = True) -> Optional[GroupExpression]:
        """Add an expression to a group, merging groups on duplicates.

        Returns the (possibly pre-existing) group expression, or ``None``
        when the expression would reference its own group (which can arise
        after merges and carries no information).
        """
        group_id = self.find(group_id)
        children = tuple(self.find(c) for c in children)
        if group_id in children:
            return None
        expr = GroupExpression(op, children, is_logical)
        owner = self._dedup.get(expr.key)
        if owner is not None:
            owner = self.find(owner)
            if owner != group_id:
                merged = self._merge(owner, group_id)
                owner = merged
            for existing in self.groups[owner].expressions:
                if existing.key == expr.key:
                    return existing
        group = self.groups[group_id]
        group.expressions.append(expr)
        self._dedup[expr.key] = group_id
        return expr

    def group_for_expression(self, op: LogicalOp,
                             children: Sequence[int]) -> int:
        """Group that owns ``op(children)``, creating one if needed.

        New groups get logical properties estimated from the children.
        """
        children = tuple(self.find(c) for c in children)
        probe = GroupExpression(op, children, True)
        owner = self._dedup.get(probe.key)
        if owner is not None:
            return self.find(owner)
        child_groups = [self.groups[c] for c in children]
        child_vars = [g.output_vars for g in child_groups]
        child_cards = tuple(g.cardinality for g in child_groups)
        output_vars = derive_output_vars(op, child_vars)
        for var in output_vars:
            self.stats.register_derived(var)
        cardinality = estimate_operator_cardinality(
            op, self.stats, child_cards, child_vars)
        row_width = self.stats.row_width(output_vars)
        group = self._new_group(output_vars, cardinality, row_width)
        self.add_expression(group.id, op, children, is_logical=True)
        return group.id

    def insert_tree(self, op: LogicalOp) -> int:
        """Recursively memoize a logical tree; returns the root group id."""
        child_groups = [self.insert_tree(child) for child in op.children]
        return self.group_for_expression(op, child_groups)

    # -- inspection ------------------------------------------------------------

    def canonical_groups(self) -> List[Group]:
        """All live (non-absorbed) groups."""
        return [g for g in self.groups if self.find(g.id) == g.id]

    def expression_count(self, logical_only: bool = False) -> int:
        return sum(
            len(g.logical_expressions if logical_only else g.expressions)
            for g in self.canonical_groups()
        )

    def dump(self, root: Optional[int] = None) -> str:
        """Figure-3-style textual dump of the MEMO contents."""
        lines = []
        groups = self.canonical_groups()
        for group in sorted(groups, key=lambda g: -g.id):
            exprs = "  ".join(
                f"{i + 1}. {e.describe()}"
                for i, e in enumerate(group.expressions)
            )
            marker = " (root)" if root is not None and self.find(root) == group.id else ""
            lines.append(
                f"Group {group.id}{marker} "
                f"[rows={group.cardinality:.0f}, width={group.row_width:.0f}]: "
                f"{exprs}"
            )
        return "\n".join(lines)


def topological_order(memo: Memo, root: int) -> List[int]:
    """Canonical group ids reachable from ``root``, children before parents
    (the bottom-up order the PDW enumerator wants)."""
    root = memo.find(root)
    order: List[int] = []
    visited = set()

    def visit(group_id: int) -> None:
        group_id = memo.find(group_id)
        if group_id in visited:
            return
        visited.add(group_id)
        for expr in memo.groups[group_id].expressions:
            for child in expr.children:
                visit(child)
        order.append(group_id)

    visit(root)
    return order
