"""MEMO ⇄ XML: the contract between the two optimizers.

Paper §3.1: *"We defined a new compilation entry point to request the
optimizer MEMO ... the output from SQL Server is an XML representation of
the MEMO data structure"*, and §2.5 (component 3/4): the XML generator
encodes the search space, and the PDW side has "a memo parser ...
responsible for constructing the memo data structure for the PDW query
optimizer".

The document carries:

* every column variable (id, name, type, average width, and its base
  table/column origin when it has one — so the PDW side can re-derive
  statistics from the shell database),
* every group with its logical properties (estimated rows, row width), and
* every group expression, logical and physical, with children encoded as
  group ids and scalar expressions as nested elements.
"""

from __future__ import annotations

import datetime
import xml.etree.ElementTree as ET
from typing import Dict, List, Optional, Tuple

from repro.algebra import expressions as ex
from repro.algebra import physical as phys
from repro.algebra.logical import (
    AggPhase,
    JoinKind,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalProject,
    LogicalSelect,
    LogicalUnionAll,
    detached_groupby,
    detached_join,
    detached_select,
    detached_union,
)
from repro.catalog.shell_db import ShellDatabase
from repro.common.errors import OptimizerError
from repro.common.types import SqlType, TypeKind
from repro.optimizer.cardinality import StatsContext
from repro.optimizer.memo import Group, GroupExpression, Memo
from repro.telemetry import NULL_TRACER, Tracer


# ---------------------------------------------------------------------------
# scalar expression serialization
# ---------------------------------------------------------------------------

def _type_to_attrs(sql_type: SqlType) -> Dict[str, str]:
    attrs = {"kind": sql_type.kind.value}
    if sql_type.length is not None:
        attrs["length"] = str(sql_type.length)
    if sql_type.precision is not None:
        attrs["precision"] = str(sql_type.precision)
    if sql_type.scale is not None:
        attrs["scale"] = str(sql_type.scale)
    return attrs


def _type_from_attrs(attrs: Dict[str, str]) -> SqlType:
    return SqlType(
        TypeKind(attrs["kind"]),
        length=int(attrs["length"]) if "length" in attrs else None,
        precision=int(attrs["precision"]) if "precision" in attrs else None,
        scale=int(attrs["scale"]) if "scale" in attrs else None,
    )


def _const_to_element(value: object) -> ET.Element:
    element = ET.Element("const")
    if value is None:
        element.set("type", "null")
    elif isinstance(value, bool):
        element.set("type", "bool")
        element.set("value", "1" if value else "0")
    elif isinstance(value, int):
        element.set("type", "int")
        element.set("value", str(value))
    elif isinstance(value, float):
        element.set("type", "float")
        element.set("value", repr(value))
    elif isinstance(value, datetime.date):
        element.set("type", "date")
        element.set("value", value.isoformat())
    else:
        element.set("type", "str")
        element.set("value", str(value))
    return element


def _const_from_element(element: ET.Element) -> object:
    type_name = element.get("type")
    raw = element.get("value", "")
    if type_name == "null":
        return None
    if type_name == "bool":
        return raw == "1"
    if type_name == "int":
        return int(raw)
    if type_name == "float":
        return float(raw)
    if type_name == "date":
        return datetime.date.fromisoformat(raw)
    return raw


def expr_to_element(expr: ex.ScalarExpr) -> ET.Element:
    """Serialize a bound scalar expression to an XML element."""
    if isinstance(expr, ex.ColumnVar):
        element = ET.Element("col")
        element.set("id", str(expr.id))
        return element
    if isinstance(expr, ex.Constant):
        return _const_to_element(expr.value)
    if isinstance(expr, ex.Comparison):
        element = ET.Element("cmp")
        element.set("op", expr.op)
        element.append(expr_to_element(expr.left))
        element.append(expr_to_element(expr.right))
        return element
    if isinstance(expr, ex.Arithmetic):
        element = ET.Element("arith")
        element.set("op", expr.op)
        element.append(expr_to_element(expr.left))
        element.append(expr_to_element(expr.right))
        return element
    if isinstance(expr, ex.BoolOp):
        element = ET.Element("bool")
        element.set("op", expr.op)
        for arg in expr.args:
            element.append(expr_to_element(arg))
        return element
    if isinstance(expr, ex.NotExpr):
        element = ET.Element("not")
        element.append(expr_to_element(expr.operand))
        return element
    if isinstance(expr, ex.FuncExpr):
        element = ET.Element("func")
        element.set("name", expr.name)
        for arg in expr.args:
            element.append(expr_to_element(arg))
        return element
    if isinstance(expr, ex.CastExpr):
        element = ET.Element("cast", _type_to_attrs(expr.target))
        element.append(expr_to_element(expr.operand))
        return element
    if isinstance(expr, ex.CaseWhen):
        element = ET.Element("case")
        for condition, result in expr.whens:
            when = ET.SubElement(element, "when")
            when.append(expr_to_element(condition))
            when.append(expr_to_element(result))
        if expr.otherwise is not None:
            otherwise = ET.SubElement(element, "else")
            otherwise.append(expr_to_element(expr.otherwise))
        return element
    if isinstance(expr, ex.LikeExpr):
        element = ET.Element("like")
        element.set("pattern", expr.pattern)
        element.set("negated", "1" if expr.negated else "0")
        element.append(expr_to_element(expr.operand))
        return element
    if isinstance(expr, ex.InListExpr):
        element = ET.Element("inlist")
        element.set("negated", "1" if expr.negated else "0")
        element.append(expr_to_element(expr.operand))
        values = ET.SubElement(element, "values")
        for value in expr.values:
            values.append(_const_to_element(value))
        return element
    if isinstance(expr, ex.IsNullExpr):
        element = ET.Element("isnull")
        element.set("negated", "1" if expr.negated else "0")
        element.append(expr_to_element(expr.operand))
        return element
    if isinstance(expr, ex.AggExpr):
        element = ET.Element("agg")
        element.set("func", expr.func)
        element.set("distinct", "1" if expr.distinct else "0")
        if expr.arg is not None:
            element.append(expr_to_element(expr.arg))
        return element
    raise OptimizerError(f"cannot serialize {type(expr).__name__}")


def expr_from_element(element: ET.Element,
                      vars_by_id: Dict[int, ex.ColumnVar]) -> ex.ScalarExpr:
    """Deserialize a scalar expression, resolving column ids."""
    tag = element.tag
    if tag == "col":
        var_id = int(element.get("id"))
        try:
            return vars_by_id[var_id]
        except KeyError:
            raise OptimizerError(f"XML references unknown column #{var_id}")
    if tag == "const":
        return ex.Constant(_const_from_element(element))
    children = list(element)
    if tag == "cmp":
        return ex.Comparison(element.get("op"),
                             expr_from_element(children[0], vars_by_id),
                             expr_from_element(children[1], vars_by_id))
    if tag == "arith":
        return ex.Arithmetic(element.get("op"),
                             expr_from_element(children[0], vars_by_id),
                             expr_from_element(children[1], vars_by_id))
    if tag == "bool":
        return ex.BoolOp(element.get("op"), tuple(
            expr_from_element(c, vars_by_id) for c in children))
    if tag == "not":
        return ex.NotExpr(expr_from_element(children[0], vars_by_id))
    if tag == "func":
        return ex.FuncExpr(element.get("name"), tuple(
            expr_from_element(c, vars_by_id) for c in children))
    if tag == "cast":
        return ex.CastExpr(expr_from_element(children[0], vars_by_id),
                           _type_from_attrs(element.attrib))
    if tag == "case":
        whens: List[Tuple[ex.ScalarExpr, ex.ScalarExpr]] = []
        otherwise = None
        for child in children:
            if child.tag == "when":
                parts = list(child)
                whens.append((expr_from_element(parts[0], vars_by_id),
                              expr_from_element(parts[1], vars_by_id)))
            elif child.tag == "else":
                otherwise = expr_from_element(list(child)[0], vars_by_id)
        return ex.CaseWhen(tuple(whens), otherwise)
    if tag == "like":
        return ex.LikeExpr(expr_from_element(children[0], vars_by_id),
                           element.get("pattern"),
                           element.get("negated") == "1")
    if tag == "inlist":
        operand = expr_from_element(children[0], vars_by_id)
        values = tuple(
            _const_from_element(v) for v in children[1]
        )
        return ex.InListExpr(operand, values, element.get("negated") == "1")
    if tag == "isnull":
        return ex.IsNullExpr(expr_from_element(children[0], vars_by_id),
                             element.get("negated") == "1")
    if tag == "agg":
        arg = (expr_from_element(children[0], vars_by_id)
               if children else None)
        return ex.AggExpr(element.get("func"), arg,
                          element.get("distinct") == "1")
    raise OptimizerError(f"unknown expression tag <{tag}>")


# ---------------------------------------------------------------------------
# memo export
# ---------------------------------------------------------------------------

def memo_to_xml(memo: Memo, root_group: int,
                stats: StatsContext,
                tracer: Tracer = NULL_TRACER) -> str:
    """Encode the MEMO as the XML document PDW consumes."""
    with tracer.span("xml.serialize") as span:
        text = _memo_to_xml(memo, root_group, stats)
        if tracer.enabled:
            size = len(text.encode("utf-8"))
            span.set("bytes", size)
            tracer.count("xml.serialized_bytes", size)
    return text


def _memo_to_xml(memo: Memo, root_group: int,
                 stats: StatsContext) -> str:
    document = ET.Element("memo")
    document.set("root", str(memo.find(root_group)))

    columns = ET.SubElement(document, "columns")
    seen_vars: Dict[int, ex.ColumnVar] = {}
    for group in memo.canonical_groups():
        for var in group.output_vars:
            seen_vars.setdefault(var.id, var)
        for expr in group.expressions:
            for var in _expression_vars(expr):
                seen_vars.setdefault(var.id, var)
    for var_id in sorted(seen_vars):
        var = seen_vars[var_id]
        element = ET.SubElement(columns, "column")
        element.set("id", str(var.id))
        element.set("name", var.name)
        element.set("width", repr(stats.width_of(var)))
        for key, value in _type_to_attrs(var.sql_type).items():
            element.set(f"type-{key}", value)
        origin = stats.var_origins.get(var.id)
        if origin is not None:
            element.set("table", origin[0])
            element.set("table-column", origin[1])

    for group in memo.canonical_groups():
        group_el = ET.SubElement(document, "group")
        group_el.set("id", str(group.id))
        group_el.set("rows", repr(group.cardinality))
        group_el.set("width", repr(group.row_width))
        group_el.set("outputs",
                     " ".join(str(v.id) for v in group.output_vars))
        seen = set()
        for expr in group.expressions:
            children = tuple(memo.find(c) for c in expr.children)
            if group.id in children:
                continue  # self-reference created by a merge
            key = (expr.op.local_key(), children, expr.is_logical)
            if key in seen:
                continue
            seen.add(key)
            group_el.append(_expression_to_element(expr, children))

    return ET.tostring(document, encoding="unicode")


def _expression_vars(expr: GroupExpression) -> List[ex.ColumnVar]:
    """Column vars mentioned directly by an expression's operator."""
    op = expr.op
    found: List[ex.ColumnVar] = []

    def scan(scalar: Optional[ex.ScalarExpr]) -> None:
        if scalar is None:
            return
        stack = [scalar]
        while stack:
            node = stack.pop()
            if isinstance(node, ex.ColumnVar):
                found.append(node)
            stack.extend(node.children())

    if isinstance(op, (LogicalGet, phys.TableScan)):
        found.extend(op.columns)
    elif isinstance(op, (LogicalSelect, phys.Filter)):
        scan(op.predicate)
    elif isinstance(op, (LogicalProject, phys.ComputeScalar)):
        for var, scalar in op.outputs:
            found.append(var)
            scan(scalar)
    elif isinstance(op, (LogicalJoin, phys.HashJoin, phys.MergeJoin,
                         phys.NestedLoopJoin)):
        scan(op.predicate)
    elif isinstance(op, (LogicalGroupBy, phys.HashAggregate,
                         phys.StreamAggregate)):
        found.extend(op.keys)
        for var, agg in op.aggregates:
            found.append(var)
            scan(agg)
    elif isinstance(op, (LogicalUnionAll, phys.UnionAllOp)):
        found.extend(op.outputs)
        if isinstance(op, LogicalUnionAll):
            for branch in op.branch_columns:
                found.extend(branch)
    return found


_JOIN_OPS = {
    "Join": None,
    "HashJoin": phys.HashJoin,
    "MergeJoin": phys.MergeJoin,
    "NestedLoopJoin": phys.NestedLoopJoin,
}


def _expression_to_element(expr: GroupExpression,
                           children=None) -> ET.Element:
    op = expr.op
    if children is None:
        children = expr.children
    element = ET.Element("expr")
    element.set("children", " ".join(str(c) for c in children))
    element.set("logical", "1" if expr.is_logical else "0")

    if isinstance(op, LogicalGet):
        element.set("op", "Get")
        element.set("table", op.table.name)
        element.set("alias", op.alias)
        element.set("cols", " ".join(str(c.id) for c in op.columns))
    elif isinstance(op, phys.TableScan):
        element.set("op", "TableScan")
        element.set("table", op.table.name)
        element.set("alias", op.alias)
        element.set("cols", " ".join(str(c.id) for c in op.columns))
    elif isinstance(op, (LogicalSelect, phys.Filter)):
        element.set("op", "Select" if expr.is_logical else "Filter")
        element.append(expr_to_element(op.predicate))
    elif isinstance(op, (LogicalProject, phys.ComputeScalar)):
        element.set("op", "Project" if expr.is_logical else "ComputeScalar")
        for var, scalar in op.outputs:
            out = ET.SubElement(element, "output")
            out.set("var", str(var.id))
            out.append(expr_to_element(scalar))
    elif isinstance(op, (LogicalJoin, phys.HashJoin, phys.MergeJoin,
                         phys.NestedLoopJoin)):
        name = ("Join" if isinstance(op, LogicalJoin)
                else type(op).__name__)
        element.set("op", name)
        element.set("join-kind", op.kind.value)
        if op.predicate is not None:
            element.append(expr_to_element(op.predicate))
    elif isinstance(op, (LogicalGroupBy, phys.HashAggregate,
                         phys.StreamAggregate)):
        name = ("GroupBy" if isinstance(op, LogicalGroupBy)
                else type(op).__name__)
        element.set("op", name)
        if isinstance(op, LogicalGroupBy):
            element.set("phase", op.phase.value)
        else:
            element.set("phase", op.phase)
        element.set("keys", " ".join(str(k.id) for k in op.keys))
        for var, agg in op.aggregates:
            agg_el = ET.SubElement(element, "aggregate")
            agg_el.set("var", str(var.id))
            agg_el.append(expr_to_element(agg))
    elif isinstance(op, (LogicalUnionAll, phys.UnionAllOp)):
        element.set("op", "UnionAll" if expr.is_logical else "UnionAllOp")
        element.set("cols", " ".join(str(c.id) for c in op.outputs))
        if isinstance(op, LogicalUnionAll):
            for branch in op.branch_columns:
                branch_el = ET.SubElement(element, "branch")
                branch_el.set("cols",
                              " ".join(str(c.id) for c in branch))
    else:
        raise OptimizerError(
            f"cannot serialize operator {type(op).__name__}")
    return element


# ---------------------------------------------------------------------------
# memo import (the PDW-side "memo parser")
# ---------------------------------------------------------------------------

class ParsedMemo:
    """A MEMO reconstructed from XML, plus column metadata.

    ``memo`` is a fully functional :class:`Memo` rebuilt against the shell
    database, so the PDW optimizer works with the same data structure the
    serial optimizer produced — faithfully mirroring the paper's design
    where both sides hold structurally identical memos.
    """

    def __init__(self, memo: Memo, root_group: int,
                 vars_by_id: Dict[int, ex.ColumnVar],
                 stats: StatsContext):
        self.memo = memo
        self.root_group = root_group
        self.vars_by_id = vars_by_id
        self.stats = stats


def memo_from_xml(xml_text: str, shell: ShellDatabase,
                  tracer: Tracer = NULL_TRACER) -> ParsedMemo:
    """Parse the XML search space back into a MEMO (PDW component 4's
    first step, Figure 4 line 01)."""
    with tracer.span("xml.parse") as span:
        parsed = _memo_from_xml(xml_text, shell)
        if tracer.enabled:
            size = len(xml_text.encode("utf-8"))
            span.set("bytes", size)
            span.set("groups", len(parsed.memo.canonical_groups()))
            tracer.count("xml.parsed_bytes", size)
    return parsed


def _memo_from_xml(xml_text: str, shell: ShellDatabase) -> ParsedMemo:
    document = ET.fromstring(xml_text)
    root_group = int(document.get("root"))

    stats = StatsContext(shell)
    vars_by_id: Dict[int, ex.ColumnVar] = {}
    columns_el = document.find("columns")
    if columns_el is not None:
        for column in columns_el:
            var_id = int(column.get("id"))
            type_attrs = {
                key[len("type-"):]: value
                for key, value in column.attrib.items()
                if key.startswith("type-")
            }
            var = ex.ColumnVar(var_id, column.get("name"),
                               _type_from_attrs(type_attrs))
            vars_by_id[var_id] = var
            stats.var_widths[var_id] = float(column.get("width", "4"))
            if column.get("table"):
                stats.var_origins[var_id] = (
                    column.get("table"), column.get("table-column"))

    memo = Memo(stats)
    group_elements = document.findall("group")

    # First pass: create the shells so children can be referenced freely.
    id_map: Dict[int, int] = {}
    for group_el in group_elements:
        xml_id = int(group_el.get("id"))
        outputs = [
            vars_by_id[int(v)] for v in group_el.get("outputs", "").split()
        ]
        group = memo._new_group(
            outputs,
            float(group_el.get("rows", "0")),
            float(group_el.get("width", "0")),
        )
        id_map[xml_id] = group.id

    for group_el in group_elements:
        group_id = id_map[int(group_el.get("id"))]
        for expr_el in group_el.findall("expr"):
            op, is_logical = _operator_from_element(expr_el, shell,
                                                    vars_by_id)
            children = tuple(
                id_map[int(c)] for c in expr_el.get("children", "").split()
            )
            memo.add_expression(group_id, op, children,
                                is_logical=is_logical)

    return ParsedMemo(memo, id_map[root_group], vars_by_id, stats)


def _operator_from_element(element: ET.Element, shell: ShellDatabase,
                           vars_by_id: Dict[int, ex.ColumnVar]):
    op_name = element.get("op")
    is_logical = element.get("logical") == "1"

    if op_name in ("Get", "TableScan"):
        table = shell.table(element.get("table"))
        columns = [vars_by_id[int(c)] for c in element.get("cols").split()]
        if op_name == "Get":
            get = LogicalGet.__new__(LogicalGet)
            get.table = table
            get.columns = columns
            get.alias = element.get("alias")
            get.children = []
            return get, True
        return phys.TableScan(table, columns, element.get("alias")), False

    if op_name in ("Select", "Filter"):
        predicate = expr_from_element(list(element)[0], vars_by_id)
        if op_name == "Select":
            return detached_select(predicate), True
        return phys.Filter(predicate), False

    if op_name in ("Project", "ComputeScalar"):
        outputs = []
        for out in element.findall("output"):
            var = vars_by_id[int(out.get("var"))]
            outputs.append((var, expr_from_element(list(out)[0], vars_by_id)))
        if op_name == "Project":
            project = LogicalProject.__new__(LogicalProject)
            project.children = []
            project.outputs = outputs
            return project, True
        return phys.ComputeScalar(outputs), False

    if op_name in _JOIN_OPS:
        kind = JoinKind(element.get("join-kind"))
        predicate_el = [c for c in element if c.tag not in ()]
        predicate = (expr_from_element(predicate_el[0], vars_by_id)
                     if predicate_el else None)
        if op_name == "Join":
            return detached_join(kind, predicate), True
        return _JOIN_OPS[op_name](kind, predicate), False

    if op_name in ("GroupBy", "HashAggregate", "StreamAggregate"):
        keys = [vars_by_id[int(k)] for k in element.get("keys", "").split()]
        aggregates = []
        for agg_el in element.findall("aggregate"):
            var = vars_by_id[int(agg_el.get("var"))]
            aggregates.append(
                (var, expr_from_element(list(agg_el)[0], vars_by_id)))
        if op_name == "GroupBy":
            phase = AggPhase(element.get("phase", "complete"))
            return detached_groupby(keys, aggregates, phase), True
        cls = (phys.HashAggregate if op_name == "HashAggregate"
               else phys.StreamAggregate)
        return cls(keys, aggregates, element.get("phase", "complete")), False

    if op_name in ("UnionAll", "UnionAllOp"):
        outputs = [vars_by_id[int(c)] for c in element.get("cols").split()]
        if op_name == "UnionAll":
            branches = [
                [vars_by_id[int(c)] for c in b.get("cols").split()]
                for b in element.findall("branch")
            ]
            return detached_union(outputs, branches), True
        return phys.UnionAllOp(outputs), False

    raise OptimizerError(f"unknown operator {op_name!r} in memo XML")
