"""Normalization / simplification of the bound logical tree.

Paper §2.5 step 2(a): *"Simplification of the input operator tree into a
normalized form. This is inserted as the initial plan into the MEMO."* and
§5 lists the concrete techniques PDW inherits: contradiction detection,
redundant join elimination, subquery unnesting (done in the binder) and
more.  This module implements the tree-to-tree rewrites:

* constant folding,
* contradiction detection (empty ranges, conflicting equalities),
* semi-join → inner-join + duplicate-eliminating group-by ("sub-query
  removal" in the Q20 walkthrough — the distinct shows up in the paper's
  DSQL as ``GROUP BY p_partkey``),
* predicate pushdown (with CROSS → INNER join upgrade),
* redundant self-join elimination, and
* column pruning (narrowing Gets, which shrinks the row widths that the
  DMS cost model charges for).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.algebra import expressions as ex
from repro.algebra.evaluator import try_fold
from repro.algebra.logical import (
    JoinKind,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalOp,
    LogicalProject,
    LogicalSelect,
    LogicalUnionAll,
    Query,
)
from repro.catalog.statistics import sort_key


def normalize(query: Query) -> Query:
    """Run the full normalization pipeline on a bound query."""
    root = query.root
    root = fold_tree_constants(root)
    root = convert_semijoins(root)
    root = push_down_predicates(root)
    root = eliminate_self_joins_in_query(root, query)
    root = detect_contradictions(root)
    required = {var.id for var in root.output_columns()}
    required.update(var.id for var, _ in query.order_by)
    root = prune_columns(root, required)
    root = remove_redundant_projects(root, keep_root=True)
    return Query(root, query.output_names, query.order_by, query.limit)


def remove_redundant_projects(op: LogicalOp,
                              keep_root: bool = False) -> LogicalOp:
    """Drop identity projections that neither rename nor narrow.

    Derived tables leave identity Project wrappers behind; removing them
    lets MEMO groups expose their GroupBy/Join expressions directly (the
    group-by pushdown rule pattern-matches on those).
    """
    op.children = [remove_redundant_projects(c) for c in op.children]
    if keep_root or not isinstance(op, LogicalProject):
        return op
    identity = all(
        isinstance(expr, ex.ColumnVar) and expr.id == var.id
        for var, expr in op.outputs
    )
    if not identity:
        return op
    child_ids = {v.id for v in op.child.output_columns()}
    if {var.id for var, _ in op.outputs} == child_ids:
        return op.child
    return op


def eliminate_self_joins_in_query(root: LogicalOp, query: Query) -> LogicalOp:
    """Run self-join elimination and apply its substitutions query-wide."""
    root, mappings = eliminate_self_joins(root)
    for mapping in mappings:
        substitute_tree(root, mapping)
        query.order_by = [
            (mapping.get(var.id, var), asc) for var, asc in query.order_by
        ]
    return root


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------

def fold_expression(expr: ex.ScalarExpr) -> ex.ScalarExpr:
    """Bottom-up constant folding of one scalar expression."""
    if isinstance(expr, (ex.ColumnVar, ex.Constant)):
        return expr

    if isinstance(expr, ex.Comparison):
        folded = ex.Comparison(expr.op, fold_expression(expr.left),
                               fold_expression(expr.right))
        return _fold_if_constant(folded)
    if isinstance(expr, ex.Arithmetic):
        folded = ex.Arithmetic(expr.op, fold_expression(expr.left),
                               fold_expression(expr.right))
        return _fold_if_constant(folded)
    if isinstance(expr, ex.BoolOp):
        args = []
        for arg in expr.args:
            arg = fold_expression(arg)
            if isinstance(arg, ex.Constant):
                if expr.op == "AND" and arg.value is True:
                    continue
                if expr.op == "OR" and arg.value is False:
                    continue
                if expr.op == "AND" and arg.value is False:
                    return ex.FALSE
                if expr.op == "OR" and arg.value is True:
                    return ex.TRUE
            args.append(arg)
        if not args:
            return ex.TRUE if expr.op == "AND" else ex.FALSE
        if len(args) == 1:
            return args[0]
        return ex.BoolOp(expr.op, tuple(args))
    if isinstance(expr, ex.NotExpr):
        operand = fold_expression(expr.operand)
        if isinstance(operand, ex.Constant) and isinstance(operand.value, bool):
            return ex.Constant(not operand.value)
        if isinstance(operand, ex.Comparison):
            negations = {"=": "<>", "<>": "=", "<": ">=",
                         "<=": ">", ">": "<=", ">=": "<"}
            return ex.Comparison(negations[operand.op], operand.left,
                                 operand.right)
        return ex.NotExpr(operand)
    if isinstance(expr, ex.CastExpr):
        folded = ex.CastExpr(fold_expression(expr.operand), expr.target)
        return _fold_if_constant(folded)
    if isinstance(expr, ex.FuncExpr):
        folded = ex.FuncExpr(expr.name,
                             tuple(fold_expression(a) for a in expr.args))
        return _fold_if_constant(folded)
    if isinstance(expr, ex.CaseWhen):
        whens = tuple((fold_expression(c), fold_expression(r))
                      for c, r in expr.whens)
        otherwise = (fold_expression(expr.otherwise)
                     if expr.otherwise is not None else None)
        return ex.CaseWhen(whens, otherwise)
    if isinstance(expr, ex.LikeExpr):
        return ex.LikeExpr(fold_expression(expr.operand), expr.pattern,
                           expr.negated)
    if isinstance(expr, ex.InListExpr):
        return ex.InListExpr(fold_expression(expr.operand), expr.values,
                             expr.negated)
    if isinstance(expr, ex.IsNullExpr):
        return ex.IsNullExpr(fold_expression(expr.operand), expr.negated)
    if isinstance(expr, ex.AggExpr):
        arg = fold_expression(expr.arg) if expr.arg is not None else None
        return ex.AggExpr(expr.func, arg, expr.distinct)
    return expr


def _fold_if_constant(expr: ex.ScalarExpr) -> ex.ScalarExpr:
    if expr.columns_used():
        return expr
    value = try_fold(expr)
    if value is None:
        return expr
    return ex.Constant(value)


def fold_tree_constants(op: LogicalOp) -> LogicalOp:
    """Fold constants in every predicate / projection of the tree."""
    op.children = [fold_tree_constants(c) for c in op.children]
    if isinstance(op, LogicalSelect):
        op.predicate = fold_expression(op.predicate)
        if isinstance(op.predicate, ex.Constant) and op.predicate.value is True:
            return op.child
    elif isinstance(op, LogicalJoin) and op.predicate is not None:
        op.predicate = fold_expression(op.predicate)
    elif isinstance(op, LogicalProject):
        op.outputs = [(var, fold_expression(expr)) for var, expr in op.outputs]
    elif isinstance(op, LogicalGroupBy):
        op.aggregates = [
            (var, fold_expression(agg)) for var, agg in op.aggregates
        ]
    return op


# ---------------------------------------------------------------------------
# contradiction detection
# ---------------------------------------------------------------------------

def _range_contradiction(conjs: Sequence[ex.ScalarExpr]) -> bool:
    """True when per-column constant bounds are unsatisfiable."""
    lows: Dict[int, Tuple[object, bool]] = {}    # var → (bound, inclusive)
    highs: Dict[int, Tuple[object, bool]] = {}
    equals: Dict[int, object] = {}

    def note(var_id: int, op: str, value: object) -> None:
        if op == "=":
            if var_id in equals and sort_key(equals[var_id]) != sort_key(value):
                raise _Contradiction
            equals[var_id] = value
        elif op in (">", ">="):
            current = lows.get(var_id)
            key = sort_key(value)
            if current is None or key > sort_key(current[0]):
                lows[var_id] = (value, op == ">=")
        elif op in ("<", "<="):
            current = highs.get(var_id)
            key = sort_key(value)
            if current is None or key < sort_key(current[0]):
                highs[var_id] = (value, op == "<=")

    class _Contradiction(Exception):
        pass

    try:
        for conj in conjs:
            if not isinstance(conj, ex.Comparison):
                continue
            left, right = conj.left, conj.right
            if isinstance(left, ex.ColumnVar) and isinstance(right, ex.Constant):
                if right.value is not None:
                    note(left.id, conj.op, right.value)
            elif isinstance(right, ex.ColumnVar) and isinstance(left, ex.Constant):
                if left.value is not None:
                    note(right.id, conj.op.translate(str.maketrans("<>", "><")),
                         left.value)
        for var_id, (low, low_inc) in lows.items():
            if var_id in highs:
                high, high_inc = highs[var_id]
                low_key, high_key = sort_key(low), sort_key(high)
                if low_key > high_key:
                    return True
                if low_key == high_key and not (low_inc and high_inc):
                    return True
            if var_id in equals:
                eq_key = sort_key(equals[var_id])
                if eq_key < sort_key(low) or (eq_key == sort_key(low)
                                              and not low_inc):
                    return True
        for var_id, (high, high_inc) in highs.items():
            if var_id in equals:
                eq_key = sort_key(equals[var_id])
                if eq_key > sort_key(high) or (eq_key == sort_key(high)
                                               and not high_inc):
                    return True
    except _Contradiction:
        return True
    return False


def detect_contradictions(op: LogicalOp) -> LogicalOp:
    """Replace provably-empty Selects with a FALSE filter (cardinality 0)."""
    op.children = [detect_contradictions(c) for c in op.children]
    if isinstance(op, LogicalSelect):
        conjs = ex.conjuncts(op.predicate)
        if any(isinstance(c, ex.Constant) and c.value is False for c in conjs):
            op.predicate = ex.FALSE
        elif _range_contradiction(conjs):
            op.predicate = ex.FALSE
    return op


# ---------------------------------------------------------------------------
# semi-join → join + distinct
# ---------------------------------------------------------------------------

def convert_semijoins(op: LogicalOp) -> LogicalOp:
    """Rewrite equi-semi-joins into inner joins over duplicate-free inputs.

    ``L SEMI R on L.a = R.b`` ≡ ``L JOIN (SELECT DISTINCT b FROM R) ON a=b``.
    The rewrite unlocks join reordering across the former subquery boundary,
    which the paper's Q20 plan relies on (part ⋈ lineitem before partsupp).
    """
    op.children = [convert_semijoins(c) for c in op.children]
    if not isinstance(op, LogicalJoin) or op.kind is not JoinKind.SEMI:
        return op
    right_cols = frozenset(v.id for v in op.right.output_columns())
    left_cols = frozenset(v.id for v in op.left.output_columns())
    conjs = ex.conjuncts(op.predicate)
    pairs = ex.equi_join_pairs(op.predicate, left_cols, right_cols)
    # Only rewrite when every conjunct is one of the extracted equi pairs.
    if len(pairs) != len(conjs) or not pairs:
        return op
    right_keys: List[ex.ColumnVar] = []
    for _, right_var in pairs:
        if right_var.id not in [k.id for k in right_keys]:
            right_keys.append(right_var)
    right = op.right
    if not _duplicate_free_on(right, right_keys):
        right = LogicalGroupBy(right, right_keys, [])
    return LogicalJoin(JoinKind.INNER, op.left, right, op.predicate)


def _duplicate_free_on(op: LogicalOp, keys: Sequence[ex.ColumnVar]) -> bool:
    key_ids = {k.id for k in keys}
    if isinstance(op, LogicalGroupBy):
        return {k.id for k in op.keys} <= key_ids
    if isinstance(op, (LogicalProject, LogicalSelect)):
        # Identity projections preserve duplicate-freedom.
        if isinstance(op, LogicalProject):
            identity = all(
                isinstance(expr, ex.ColumnVar) and expr.id == var.id
                for var, expr in op.outputs
            )
            if not identity:
                return False
        return _duplicate_free_on(op.children[0], keys)
    return False


# ---------------------------------------------------------------------------
# predicate pushdown
# ---------------------------------------------------------------------------

def push_down_predicates(op: LogicalOp) -> LogicalOp:
    """Push filter conjuncts as close to the Gets as legal."""
    return _push(op, [])


def _attach(op: LogicalOp, conjs: Sequence[ex.ScalarExpr]) -> LogicalOp:
    predicate = ex.make_conjunction(conjs)
    if predicate is None:
        return op
    return LogicalSelect(op, predicate)


def _push(op: LogicalOp, incoming: List[ex.ScalarExpr]) -> LogicalOp:
    if isinstance(op, LogicalSelect):
        return _push(op.child, incoming + list(ex.conjuncts(op.predicate)))

    if isinstance(op, LogicalProject):
        mapping = {var.id: expr for var, expr in op.outputs}
        pushable: List[ex.ScalarExpr] = []
        for conj in incoming:
            pushable.append(conj.substitute(mapping))
        op.children = [_push(op.child, pushable)]
        return op

    if isinstance(op, LogicalJoin):
        return _push_join(op, incoming)

    if isinstance(op, LogicalGroupBy):
        key_ids = {k.id for k in op.keys}
        below: List[ex.ScalarExpr] = []
        above: List[ex.ScalarExpr] = []
        for conj in incoming:
            (below if conj.columns_used() <= key_ids else above).append(conj)
        op.children = [_push(op.child, below)]
        return _attach(op, above)

    if isinstance(op, LogicalUnionAll):
        # Push each conjunct into every branch, rewritten onto the
        # branch's own columns.
        output_ids = {v.id for v in op.outputs}
        pushable = [c for c in incoming
                    if set(c.columns_used()) <= output_ids]
        above = [c for c in incoming
                 if not set(c.columns_used()) <= output_ids]
        new_children = []
        for child, branch in zip(op.children, op.branch_columns):
            mapping = {
                out.id: src_var
                for out, src_var in zip(op.outputs, branch)
            }
            branch_conjs = [c.substitute(mapping) for c in pushable]
            new_children.append(_push(child, branch_conjs))
        op.children = new_children
        return _attach(op, above)

    # Get and anything opaque: attach what we have.
    op.children = [_push(c, []) for c in op.children]
    return _attach(op, incoming)


def _push_join(op: LogicalJoin, incoming: List[ex.ScalarExpr]) -> LogicalOp:
    left_cols = frozenset(v.id for v in op.left.output_columns())
    right_cols = frozenset(v.id for v in op.right.output_columns())

    candidates = list(incoming)
    join_conjs: List[ex.ScalarExpr] = []
    if op.kind in (JoinKind.INNER, JoinKind.CROSS):
        candidates += list(ex.conjuncts(op.predicate))
    else:
        join_conjs = list(ex.conjuncts(op.predicate))

    left_push: List[ex.ScalarExpr] = []
    right_push: List[ex.ScalarExpr] = []
    stay: List[ex.ScalarExpr] = []
    above: List[ex.ScalarExpr] = []

    for conj in candidates:
        used = conj.columns_used()
        if used <= left_cols:
            left_push.append(conj)
        elif used <= right_cols:
            if op.kind in (JoinKind.INNER, JoinKind.CROSS, JoinKind.SEMI,
                           JoinKind.ANTI):
                right_push.append(conj)
            else:  # LEFT join: right-only WHERE conjuncts must stay above
                above.append(conj)
        else:
            if op.kind in (JoinKind.INNER, JoinKind.CROSS):
                stay.append(conj)
            else:
                above.append(conj)

    if op.kind in (JoinKind.LEFT, JoinKind.SEMI, JoinKind.ANTI):
        # The ON predicate's single-side conjuncts are pushable to the
        # inner/right side only.
        remaining: List[ex.ScalarExpr] = []
        for conj in join_conjs:
            if conj.columns_used() <= right_cols:
                right_push.append(conj)
            else:
                remaining.append(conj)
        join_conjs = remaining

    left = _push(op.left, left_push)
    right = _push(op.right, right_push)

    if op.kind in (JoinKind.INNER, JoinKind.CROSS):
        kind = JoinKind.INNER if stay else JoinKind.CROSS
        if op.kind is JoinKind.INNER and not stay:
            kind = JoinKind.CROSS
        joined = LogicalJoin(kind, left, right, ex.make_conjunction(stay))
        return joined
    joined = LogicalJoin(op.kind, left, right, ex.make_conjunction(join_conjs))
    return _attach(joined, above)


# ---------------------------------------------------------------------------
# redundant self-join elimination
# ---------------------------------------------------------------------------

def eliminate_self_joins(op: LogicalOp) -> Tuple[LogicalOp, List[Dict[int, ex.ColumnVar]]]:
    """Remove ``Get(T) ⋈ Get(T) ON pk = pk`` pairs, unifying variables.

    Sound whenever the join columns cover a unique key on ``T`` (declared
    via ``TableDef.primary_key``).  Returns the rewritten tree plus the
    variable substitutions (right-side var → left-side var) the caller must
    apply to the *rest* of the query.
    """
    mappings: List[Dict[int, ex.ColumnVar]] = []
    new_children = []
    for child in op.children:
        rewritten, inner = eliminate_self_joins(child)
        new_children.append(rewritten)
        mappings.extend(inner)
    op.children = new_children

    if not (isinstance(op, LogicalJoin) and op.kind is JoinKind.INNER):
        return op, mappings

    def unwrap(node: LogicalOp):
        """Peel filters off a Get, returning (get, filter conjuncts)."""
        filters: List[ex.ScalarExpr] = []
        while isinstance(node, LogicalSelect):
            filters.extend(ex.conjuncts(node.predicate))
            node = node.child
        return (node, filters) if isinstance(node, LogicalGet) else (None, [])

    left, left_filters = unwrap(op.left)
    right, right_filters = unwrap(op.right)
    if left is None or right is None:
        return op, mappings
    if left.table.name != right.table.name or not left.table.primary_key:
        return op, mappings
    # Both Gets must still expose every column (pre-pruning) so zip pairing
    # below lines up; bail out otherwise.
    if len(left.columns) != len(right.columns):
        return op, mappings

    pk = {name.lower() for name in left.table.primary_key}
    pairs = ex.equi_join_pairs(
        op.predicate,
        frozenset(v.id for v in left.columns),
        frozenset(v.id for v in right.columns),
    )
    position_of = {v.id: i for i, v in enumerate(left.columns)}
    right_position = {v.id: i for i, v in enumerate(right.columns)}
    matched_pk_cols = set()
    for left_var, right_var in pairs:
        left_name = left.table.columns[position_of[left_var.id]].name.lower()
        right_name = right.table.columns[right_position[right_var.id]].name.lower()
        if left_name == right_name and left_name in pk:
            matched_pk_cols.add(left_name)
    if matched_pk_cols != pk:
        return op, mappings

    mapping = {
        right_var.id: left_var
        for left_var, right_var in zip(left.columns, right.columns)
    }
    residual = [
        fold_expression(conj.substitute(mapping))
        for conj in (list(ex.conjuncts(op.predicate))
                     + left_filters + right_filters)
    ]
    residual = [
        conj for conj in residual
        if not (isinstance(conj, ex.Comparison) and conj.op == "="
                and conj.left == conj.right)
    ]
    mappings.append(mapping)
    return _attach(left, residual), mappings


def substitute_tree(op: LogicalOp, mapping: Dict[int, ex.ColumnVar]) -> None:
    """Apply a variable substitution to every expression in the tree."""
    for child in op.children:
        substitute_tree(child, mapping)
    if isinstance(op, LogicalSelect):
        op.predicate = op.predicate.substitute(mapping)
    elif isinstance(op, LogicalJoin) and op.predicate is not None:
        op.predicate = op.predicate.substitute(mapping)
    elif isinstance(op, LogicalProject):
        op.outputs = [
            (mapping.get(var.id, var), expr.substitute(mapping))
            for var, expr in op.outputs
        ]
    elif isinstance(op, LogicalGroupBy):
        op.keys = [mapping.get(k.id, k) for k in op.keys]
        op.aggregates = [
            (var, agg.substitute(mapping)) for var, agg in op.aggregates
        ]


# ---------------------------------------------------------------------------
# column pruning
# ---------------------------------------------------------------------------

def prune_columns(op: LogicalOp, required: Set[int]) -> LogicalOp:
    """Narrow every operator's outputs to the columns actually needed."""
    if isinstance(op, LogicalGet):
        # Distribution columns stay: the PDW optimizer needs their
        # variables to express the table's placement property.
        dist_cols = {name.lower() for name in op.table.distribution.columns}
        kept = [
            v for v in op.columns
            if v.id in required or v.name.lower() in dist_cols
        ]
        if not kept:
            kept = [op.columns[0]]
        op.columns = kept
        return op

    if isinstance(op, LogicalSelect):
        child_required = set(required) | set(op.predicate.columns_used())
        op.children = [prune_columns(op.child, child_required)]
        # Columns only the predicate needed die here; narrowing before any
        # later data movement is what the DMS cost model rewards.
        outputs = op.output_columns()
        kept = [v for v in outputs if v.id in required]
        if kept and len(kept) < len(outputs):
            return LogicalProject(op, [(v, v) for v in kept])
        return op

    if isinstance(op, LogicalProject):
        kept = [(var, expr) for var, expr in op.outputs if var.id in required]
        if not kept:
            kept = op.outputs[:1]
        op.outputs = kept
        child_required = set()
        for _, expr in kept:
            child_required |= set(expr.columns_used())
        op.children = [prune_columns(op.child, child_required)]
        return op

    if isinstance(op, LogicalJoin):
        child_required = set(required)
        if op.predicate is not None:
            child_required |= set(op.predicate.columns_used())
        left_ids = {v.id for v in op.left.output_columns()}
        right_ids = {v.id for v in op.right.output_columns()}
        left = prune_columns(op.left, child_required & left_ids)
        right = prune_columns(op.right, child_required & right_ids)
        op.children = [left, right]
        return op

    if isinstance(op, LogicalUnionAll):
        kept_positions = [
            index for index, var in enumerate(op.outputs)
            if var.id in required
        ] or [0]
        op.outputs = [op.outputs[i] for i in kept_positions]
        new_branches = []
        new_children = []
        for child, branch in zip(op.children, op.branch_columns):
            kept_branch = [branch[i] for i in kept_positions]
            new_branches.append(kept_branch)
            new_children.append(
                prune_columns(child, {v.id for v in kept_branch}))
        op.branch_columns = new_branches
        op.children = new_children
        return op

    if isinstance(op, LogicalGroupBy):
        kept_aggs = [
            (var, agg) for var, agg in op.aggregates if var.id in required
        ]
        if op.aggregates and not kept_aggs and not op.keys:
            kept_aggs = op.aggregates[:1]
        op.aggregates = kept_aggs
        child_required = {k.id for k in op.keys}
        for _, agg in kept_aggs:
            child_required |= set(agg.columns_used())
        if not child_required:
            child_ids = [v.id for v in op.child.output_columns()]
            if child_ids:
                child_required = {child_ids[0]}
        op.children = [prune_columns(op.child, child_required)]
        return op

    op.children = [
        prune_columns(c, {v.id for v in c.output_columns()} & required
                      or {v.id for v in c.output_columns()[:1]})
        for c in op.children
    ]
    return op
