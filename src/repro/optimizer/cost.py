"""Serial (single-node) physical cost model.

This is the stand-in for SQL Server's cost model: it ranks the *serial*
physical alternatives so the "best serial plan" of §2.5 exists and can be
compared against the PDW pick (benchmark E3/E8).  Units are abstract
"row-operations"; only relative order matters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.algebra import physical as phys
from repro.common.errors import OptimizerError


@dataclass(frozen=True)
class SerialCostModel:
    """Per-row coefficients for each physical operator."""

    scan_per_row: float = 1.0        # I/O-dominated sequential scan
    filter_per_row: float = 0.1
    project_per_row: float = 0.05
    hash_build_per_row: float = 2.0
    hash_probe_per_row: float = 1.0
    merge_per_row: float = 0.7       # merge phase, after sorts
    sort_coefficient: float = 0.2    # * n log2 n
    nlj_per_pair: float = 0.02
    aggregate_per_row: float = 1.5
    output_per_row: float = 0.05
    union_per_row: float = 0.05
    top_per_row: float = 0.01

    def local_cost(self, op, output_rows: float,
                   child_rows) -> float:
        """Cost of running ``op`` itself (children costed separately)."""
        if isinstance(op, phys.TableScan):
            return self.scan_per_row * output_rows

        if isinstance(op, phys.Filter):
            return (self.filter_per_row * child_rows[0]
                    + self.output_per_row * output_rows)

        if isinstance(op, phys.ComputeScalar):
            return self.project_per_row * child_rows[0]

        if isinstance(op, phys.HashJoin):
            probe, build = child_rows
            return (self.hash_build_per_row * build
                    + self.hash_probe_per_row * probe
                    + self.output_per_row * output_rows)

        if isinstance(op, phys.MergeJoin):
            left, right = child_rows
            return (self._sort_cost(left) + self._sort_cost(right)
                    + self.merge_per_row * (left + right)
                    + self.output_per_row * output_rows)

        if isinstance(op, phys.NestedLoopJoin):
            left, right = child_rows
            return (self.nlj_per_pair * left * max(right, 1.0)
                    + self.output_per_row * output_rows)

        if isinstance(op, (phys.HashAggregate, phys.StreamAggregate)):
            cost = self.aggregate_per_row * child_rows[0]
            if isinstance(op, phys.StreamAggregate):
                cost += self._sort_cost(child_rows[0])
            return cost + self.output_per_row * output_rows

        if isinstance(op, phys.Sort):
            return self._sort_cost(child_rows[0])

        if isinstance(op, phys.Top):
            return self.top_per_row * child_rows[0]

        if isinstance(op, phys.UnionAllOp):
            return self.union_per_row * sum(child_rows)

        raise OptimizerError(f"no cost rule for {type(op).__name__}")

    def _sort_cost(self, rows: float) -> float:
        return self.sort_coefficient * rows * math.log2(max(rows, 2.0))


DEFAULT_SERIAL_COST_MODEL = SerialCostModel()
