"""The algebrizer: AST → bound logical algebra.

This mirrors the SQL Server compilation front end the paper reuses (§2.5
step 2): name resolution against the shell database, typing, and the
normalizing transformations that happen before plan exploration —
in particular **subquery unnesting**, which the Q20 walkthrough (§4)
depends on:

* ``x IN (SELECT ...)`` / ``EXISTS`` become **semi joins** (anti joins when
  negated), with correlated conjuncts hoisted into the join predicate;
* correlated **scalar aggregate subqueries** are decorrelated into a
  group-by on the correlation columns joined back to the outer query
  ("subquery into join transformation" in the paper's words).

The binder produces a :class:`repro.algebra.logical.Query`.
"""

from __future__ import annotations

import datetime
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra import expressions as ex
from repro.algebra.logical import (
    JoinKind,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalOp,
    LogicalProject,
    LogicalSelect,
    LogicalUnionAll,
    Query,
)
from repro.catalog.schema import Catalog
from repro.common.errors import BindError
from repro.common.types import (
    BOOLEAN, DATE, DOUBLE, INTEGER, SqlType, TypeKind, char, decimal, varchar,
)
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_query


class VarFactory:
    """Allocates query-unique column variable ids."""

    def __init__(self):
        self._next = 1

    def new_var(self, name: str, sql_type: SqlType) -> ex.ColumnVar:
        var = ex.ColumnVar(self._next, name, sql_type)
        self._next += 1
        return var


class Scope:
    """One level of name resolution: binding name → columns.

    ``parent`` links to the enclosing query's scope for correlated
    subqueries; lookups that fall through to the parent are recorded so the
    caller can detect correlation.
    """

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self._bindings: Dict[str, List[Tuple[str, ex.ColumnVar]]] = {}
        self.outer_references: List[ex.ColumnVar] = []

    def add_binding(self, name: str, columns: Sequence[Tuple[str, ex.ColumnVar]]):
        key = name.lower()
        if key in self._bindings:
            raise BindError(f"duplicate table alias {name!r}")
        self._bindings[key] = list(columns)

    def resolve(self, column: str, qualifier: Optional[str]) -> ex.ColumnVar:
        var = self._resolve_local(column, qualifier)
        if var is not None:
            return var
        if self.parent is not None:
            outer = self.parent.resolve(column, qualifier)
            self.outer_references.append(outer)
            return outer
        where = f"{qualifier}.{column}" if qualifier else column
        raise BindError(f"unknown column {where!r}")

    def _resolve_local(self, column: str,
                       qualifier: Optional[str]) -> Optional[ex.ColumnVar]:
        column_key = column.lower()
        if qualifier is not None:
            binding = self._bindings.get(qualifier.lower())
            if binding is None:
                return None
            for name, var in binding:
                if name.lower() == column_key:
                    return var
            return None
        matches = [
            var
            for binding in self._bindings.values()
            for name, var in binding
            if name.lower() == column_key
        ]
        if len(matches) > 1:
            raise BindError(f"ambiguous column {column!r}")
        return matches[0] if matches else None

    def all_columns(self) -> List[Tuple[str, ex.ColumnVar]]:
        return [pair for binding in self._bindings.values() for pair in binding]

    def binding_columns(self, name: str) -> List[Tuple[str, ex.ColumnVar]]:
        binding = self._bindings.get(name.lower())
        if binding is None:
            raise BindError(f"unknown table alias {name!r}")
        return list(binding)


def parse_type_name(type_name: str) -> SqlType:
    """Turn a CAST/CREATE type spelling into a :class:`SqlType`."""
    text = type_name.upper().strip()
    base, _, args_text = text.partition("(")
    base = base.strip()
    args = []
    if args_text:
        args = [int(a) for a in args_text.rstrip(")").split(",")]
    if base in ("INTEGER", "INT"):
        return INTEGER
    if base == "BIGINT":
        return SqlType(TypeKind.BIGINT)
    if base in ("DOUBLE", "DOUBLE PRECISION"):
        return DOUBLE
    if base == "DATE":
        return DATE
    if base == "BOOLEAN":
        return BOOLEAN
    if base == "VARCHAR":
        return varchar(args[0] if args else 255)
    if base == "CHAR":
        return char(args[0] if args else 1)
    if base == "DECIMAL":
        if len(args) >= 2:
            return decimal(args[0], args[1])
        return decimal(args[0] if args else 15, 0)
    raise BindError(f"unsupported type {type_name!r}")


def _parse_date_literal(text: str) -> datetime.date:
    date_part = text.split(" ")[0]
    try:
        return datetime.date.fromisoformat(date_part)
    except ValueError as exc:
        raise BindError(f"bad date literal {text!r}") from exc


class _AggregateCollector:
    """Rewrites aggregate calls in an expression into fresh variables and
    collects the (var, AggExpr) definitions for the GroupBy operator."""

    def __init__(self, binder: "Binder"):
        self.binder = binder
        self.collected: List[Tuple[ex.ColumnVar, ex.AggExpr]] = []
        self._dedup: Dict[ex.AggExpr, ex.ColumnVar] = {}

    def rewrite(self, node: ast.Expr, scope: Scope) -> ex.ScalarExpr:
        if isinstance(node, ast.FuncCall) and node.is_aggregate:
            agg = self.binder._bind_aggregate(node, scope)
            if agg.func == "AVG":
                # Decompose AVG into SUM/COUNT so aggregations can later be
                # split into local and global phases (paper §4: local-global
                # aggregation in the distributed plan).
                if agg.distinct:
                    raise BindError("AVG(DISTINCT) is not supported")
                total = self._var_for(ex.AggExpr("SUM", agg.arg))
                count = self._var_for(ex.AggExpr("COUNT", agg.arg))
                return ex.Arithmetic("/", ex.CastExpr(total, DOUBLE), count)
            return self._var_for(agg)
        return self.binder._bind_scalar(node, scope, self)

    def _var_for(self, agg: ex.AggExpr) -> ex.ColumnVar:
        if agg in self._dedup:
            return self._dedup[agg]
        var = self.binder.vars.new_var(agg.func.lower(), agg.result_type)
        self._dedup[agg] = var
        self.collected.append((var, agg))
        return var


class Binder:
    """Binds a parsed SELECT against a catalog."""

    def __init__(self, catalog: Catalog, vars: Optional[VarFactory] = None):
        self.catalog = catalog
        self.vars = vars or VarFactory()

    # -- public entry points -------------------------------------------------

    def bind(self, statement) -> Query:
        if isinstance(statement, ast.UnionSelect):
            return self._bind_union(statement)
        return self._bind_plain(statement)

    def _bind_union(self, union: ast.UnionSelect) -> Query:
        tree, items = self._bind_union_body(union, Scope())
        order_by: List[Tuple[ex.ColumnVar, bool]] = []
        for order_item in union.order_by:
            order_by.append(
                (self._resolve_union_order(order_item.expr, items),
                 order_item.ascending))
        return Query(tree, [name for name, _ in items], order_by,
                     union.limit)

    def _bind_union_body(
        self, union: ast.UnionSelect, scope: Scope,
    ) -> Tuple[LogicalOp, List[Tuple[str, ex.ColumnVar]]]:
        """Bind every branch and wrap in LogicalUnionAll."""
        # Union branches cannot be correlated with an enclosing query.
        del scope
        branches: List[Tuple[LogicalOp, List[Tuple[str, ex.ColumnVar]]]] = []
        for select in union.selects:
            branches.append(self._bind_select_body(select, Scope()))
        arity = len(branches[0][1])
        for _, items in branches[1:]:
            if len(items) != arity:
                raise BindError(
                    "UNION ALL branches must have the same column count")
        outputs = [
            self.vars.new_var(name, var.sql_type)
            for name, var in branches[0][1]
        ]
        op = LogicalUnionAll(
            [tree for tree, _ in branches],
            outputs,
            [[var for _, var in items] for _, items in branches],
        )
        named = [(name, out)
                 for (name, _), out in zip(branches[0][1], outputs)]
        return op, named

    def _resolve_union_order(
        self, expr: ast.Expr, items: List[Tuple[str, ex.ColumnVar]],
    ) -> ex.ColumnVar:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value
            if not 1 <= position <= len(items):
                raise BindError(f"ORDER BY position {position} out of range")
            return items[position - 1][1]
        if isinstance(expr, ast.ColumnRef) and expr.qualifier is None:
            for name, var in items:
                if name.lower() == expr.name.lower():
                    return var
        raise BindError(
            "UNION ORDER BY must reference an output column or ordinal")

    def _bind_plain(self, statement: ast.SelectStatement) -> Query:
        scope = Scope()
        tree, items = self._bind_select_body(statement, scope)
        output_vars: List[ex.ColumnVar] = []
        output_names: List[str] = []
        for name, var in items:
            output_vars.append(var)
            output_names.append(name)

        order_by: List[Tuple[ex.ColumnVar, bool]] = []
        for order_item in statement.order_by:
            var = self._resolve_order_expr(order_item.expr, scope, items)
            order_by.append((var, order_item.ascending))

        # Final projection narrows to exactly the select-list columns.
        if [v.id for v in tree.output_columns()] != [v.id for v in output_vars]:
            tree = LogicalProject(tree, [(v, v) for v in output_vars])
        return Query(tree, output_names, order_by, statement.limit)

    def bind_sql(self, sql: str) -> Query:
        return self.bind(parse_query(sql))

    # -- SELECT body (shared with subqueries) --------------------------------

    def _bind_select_body(
        self, statement: ast.SelectStatement, scope: Scope,
    ) -> Tuple[LogicalOp, List[Tuple[str, ex.ColumnVar]]]:
        """Bind FROM/WHERE/GROUP BY/HAVING/SELECT-list.

        Returns the logical tree and the named output columns.  DISTINCT is
        applied; ORDER BY / TOP are the caller's business.
        """
        tree = self._bind_from(statement.from_items, scope)

        if statement.where is not None:
            tree, predicate = self._bind_predicate(statement.where, scope, tree)
            if predicate is not None:
                tree = LogicalSelect(tree, predicate)

        has_aggregates = self._statement_has_aggregates(statement)

        if statement.group_by or has_aggregates:
            tree, items = self._bind_aggregation(statement, scope, tree)
        else:
            items, projections = self._bind_plain_select_list(statement, scope)
            tree = LogicalProject(tree, projections)

        if statement.distinct:
            keys = [var for _, var in items]
            tree = LogicalGroupBy(tree, keys, [])

        return tree, items

    def _statement_has_aggregates(self, statement: ast.SelectStatement) -> bool:
        def contains_aggregate(expr: ast.Expr) -> bool:
            return any(
                isinstance(node, ast.FuncCall) and node.is_aggregate
                for node in ast.walk_expr(expr)
            )

        if any(contains_aggregate(i.expr) for i in statement.select_items):
            return True
        return statement.having is not None and contains_aggregate(statement.having)

    # -- FROM -----------------------------------------------------------------

    def _bind_from(self, from_items: Sequence[ast.FromItem],
                   scope: Scope) -> LogicalOp:
        if not from_items:
            raise BindError("queries without FROM are not supported")
        tree: Optional[LogicalOp] = None
        for item in from_items:
            bound = self._bind_from_item(item, scope)
            if tree is None:
                tree = bound
            else:
                tree = LogicalJoin(JoinKind.CROSS, tree, bound)
        assert tree is not None
        return tree

    def _bind_from_item(self, item: ast.FromItem, scope: Scope) -> LogicalOp:
        if isinstance(item, ast.TableRef):
            return self._bind_table_ref(item, scope)
        if isinstance(item, ast.DerivedTable):
            return self._bind_derived_table(item, scope)
        if isinstance(item, ast.JoinClause):
            return self._bind_join_clause(item, scope)
        raise BindError(f"unsupported FROM item {type(item).__name__}")

    def _bind_table_ref(self, ref: ast.TableRef, scope: Scope) -> LogicalOp:
        table = self.catalog.table(ref.name)
        columns = [
            self.vars.new_var(col.name, col.sql_type) for col in table.columns
        ]
        pairs = list(zip(table.column_names, columns))
        scope.add_binding(ref.binding_name, pairs)
        return LogicalGet(table, columns, alias=ref.binding_name)

    def _bind_derived_table(self, derived: ast.DerivedTable,
                            scope: Scope) -> LogicalOp:
        inner_scope = Scope(parent=scope)
        if isinstance(derived.subquery, ast.UnionSelect):
            if derived.subquery.order_by or derived.subquery.limit is not None:
                raise BindError(
                    "ORDER BY / TOP in derived tables is not supported")
            tree, items = self._bind_union_body(derived.subquery,
                                                inner_scope)
            scope.add_binding(derived.alias, items)
            return tree
        tree, items = self._bind_select_body(derived.subquery, inner_scope)
        if derived.subquery.order_by or derived.subquery.limit is not None:
            raise BindError("ORDER BY / TOP in derived tables is not supported")
        scope.add_binding(derived.alias, items)
        scope.outer_references.extend(inner_scope.outer_references)
        return tree

    def _bind_join_clause(self, join: ast.JoinClause, scope: Scope) -> LogicalOp:
        left = self._bind_from_item(join.left, scope)
        right = self._bind_from_item(join.right, scope)
        if join.kind == "CROSS":
            return LogicalJoin(JoinKind.CROSS, left, right)
        if join.kind in ("INNER", "LEFT"):
            kind = JoinKind.INNER if join.kind == "INNER" else JoinKind.LEFT
            predicate = self._bind_scalar(join.condition, scope)
            return LogicalJoin(kind, left, right, predicate)
        if join.kind == "RIGHT":
            predicate = self._bind_scalar(join.condition, scope)
            return LogicalJoin(JoinKind.LEFT, right, left, predicate)
        raise BindError(f"unsupported join kind {join.kind}")

    # -- WHERE / subquery unnesting -------------------------------------------

    def _bind_predicate(
        self, node: ast.Expr, scope: Scope, tree: LogicalOp,
    ) -> Tuple[LogicalOp, Optional[ex.ScalarExpr]]:
        """Bind a WHERE predicate, unnesting subqueries into joins.

        Returns the (possibly expanded) tree and the residual scalar
        predicate to apply on top of it.
        """
        residual: List[ex.ScalarExpr] = []
        for conj in self._ast_conjuncts(node):
            tree, bound = self._bind_predicate_conjunct(conj, scope, tree)
            if bound is not None:
                residual.append(bound)
        return tree, ex.make_conjunction(residual)

    def _ast_conjuncts(self, node: ast.Expr) -> List[ast.Expr]:
        if isinstance(node, ast.BinaryOp) and node.op.upper() == "AND":
            return self._ast_conjuncts(node.left) + self._ast_conjuncts(node.right)
        return [node]

    def _bind_predicate_conjunct(
        self, conj: ast.Expr, scope: Scope, tree: LogicalOp,
    ) -> Tuple[LogicalOp, Optional[ex.ScalarExpr]]:
        if isinstance(conj, ast.InSubquery):
            return self._unnest_in_subquery(conj, scope, tree), None
        if isinstance(conj, ast.ExistsExpr):
            return self._unnest_exists(conj, scope, tree), None
        if (isinstance(conj, ast.UnaryOp) and conj.op.upper() == "NOT"
                and isinstance(conj.operand, ast.ExistsExpr)):
            flipped = ast.ExistsExpr(conj.operand.subquery,
                                     negated=not conj.operand.negated)
            return self._unnest_exists(flipped, scope, tree), None
        if self._contains_scalar_subquery(conj):
            return self._unnest_scalar_subquery(conj, scope, tree)
        return tree, self._bind_scalar(conj, scope)

    def _contains_scalar_subquery(self, node: ast.Expr) -> bool:
        return any(
            isinstance(sub, ast.ScalarSubquery) for sub in ast.walk_expr(node)
        )

    def _subquery_is_plain(self, subquery: ast.SelectStatement) -> bool:
        """Plain = FROM/WHERE only, so all its columns can be exposed to
        the enclosing semi/anti join (correlation may reference any of
        them, not just the select list)."""
        return not (subquery.group_by or subquery.having
                    or subquery.distinct
                    or self._statement_has_aggregates(subquery))

    def _bind_subquery_relation(
        self, subquery: ast.SelectStatement, inner_scope: Scope,
    ) -> LogicalOp:
        """Bind a plain subquery's FROM/WHERE, exposing every column."""
        sub_tree = self._bind_from(subquery.from_items, inner_scope)
        if subquery.where is not None:
            sub_tree, predicate = self._bind_predicate(
                subquery.where, inner_scope, sub_tree)
            if predicate is not None:
                sub_tree = LogicalSelect(sub_tree, predicate)
        return sub_tree

    def _unnest_in_subquery(self, node: ast.InSubquery, scope: Scope,
                            tree: LogicalOp) -> LogicalOp:
        operand = self._bind_scalar(node.operand, scope)
        inner_scope = Scope(parent=scope)
        if isinstance(node.subquery, ast.UnionSelect):
            sub_tree, items = self._bind_union_body(node.subquery,
                                                    inner_scope)
            if len(items) != 1:
                raise BindError("IN subquery must return exactly one column")
            predicate = ex.Comparison("=", operand, items[0][1])
            kind = JoinKind.ANTI if node.negated else JoinKind.SEMI
            return LogicalJoin(kind, tree, sub_tree, predicate)
        if self._subquery_is_plain(node.subquery):
            sub_tree = self._bind_subquery_relation(node.subquery,
                                                    inner_scope)
            if len(node.subquery.select_items) != 1:
                raise BindError("IN subquery must return exactly one column")
            inner_value = self._bind_scalar(
                node.subquery.select_items[0].expr, inner_scope)
            if not isinstance(inner_value, ex.ColumnVar):
                raise BindError(
                    "IN subquery select item must be a plain column")
        else:
            sub_tree, items = self._bind_select_body(node.subquery,
                                                     inner_scope)
            if len(items) != 1:
                raise BindError("IN subquery must return exactly one column")
            inner_value = items[0][1]
        sub_tree, correlated = self._hoist_correlated_predicates(
            sub_tree, inner_scope)
        predicate = ex.make_conjunction(
            [ex.Comparison("=", operand, inner_value)] + correlated)
        kind = JoinKind.ANTI if node.negated else JoinKind.SEMI
        return LogicalJoin(kind, tree, sub_tree, predicate)

    def _unnest_exists(self, node: ast.ExistsExpr, scope: Scope,
                       tree: LogicalOp) -> LogicalOp:
        inner_scope = Scope(parent=scope)
        if self._subquery_is_plain(node.subquery):
            sub_tree = self._bind_subquery_relation(node.subquery,
                                                    inner_scope)
        else:
            sub_tree, _items = self._bind_select_body(node.subquery,
                                                      inner_scope)
        sub_tree, correlated = self._hoist_correlated_predicates(
            sub_tree, inner_scope)
        if not correlated:
            raise BindError("uncorrelated EXISTS is not supported")
        predicate = ex.make_conjunction(correlated)
        kind = JoinKind.ANTI if node.negated else JoinKind.SEMI
        return LogicalJoin(kind, tree, sub_tree, predicate)

    def _unnest_scalar_subquery(
        self, conj: ast.Expr, scope: Scope, tree: LogicalOp,
    ) -> Tuple[LogicalOp, Optional[ex.ScalarExpr]]:
        """Decorrelate ``outer_expr <op> (SELECT agg(...) FROM ... WHERE
        corr)`` into a join against a group-by (paper §4: "sub-query into
        join transformation")."""
        if not (isinstance(conj, ast.BinaryOp)
                and conj.op in ("=", "<>", "<", "<=", ">", ">=")):
            raise BindError(
                "scalar subqueries are only supported in comparisons")
        if isinstance(conj.right, ast.ScalarSubquery):
            outer_node, sub_node, op = conj.left, conj.right, conj.op
        elif isinstance(conj.left, ast.ScalarSubquery):
            outer_node, sub_node = conj.right, conj.left
            op = ex.Comparison.FLIPPED[conj.op]
        else:
            raise BindError("comparison must have a scalar subquery side")

        outer_expr = self._bind_scalar(outer_node, scope)
        subquery = sub_node.subquery
        if len(subquery.select_items) != 1:
            raise BindError("scalar subquery must return one column")
        if subquery.group_by or subquery.having or subquery.distinct:
            raise BindError(
                "scalar subqueries with GROUP BY/HAVING are not supported")

        inner_scope = Scope(parent=scope)
        sub_tree = self._bind_from(subquery.from_items, inner_scope)
        if subquery.where is not None:
            sub_tree, predicate = self._bind_predicate(
                subquery.where, inner_scope, sub_tree)
            if predicate is not None:
                sub_tree = LogicalSelect(sub_tree, predicate)
        sub_tree, correlated = self._hoist_correlated_predicates(
            sub_tree, inner_scope)

        collector = _AggregateCollector(self)
        value_expr = collector.rewrite(
            subquery.select_items[0].expr, inner_scope)
        if not collector.collected:
            raise BindError(
                "only aggregate scalar subqueries can be decorrelated")

        # Group-by keys: the inner side of every correlated equality.
        keys: List[ex.ColumnVar] = []
        join_conjuncts: List[ex.ScalarExpr] = []
        inner_cols = frozenset(
            v.id for v in self._collect_output_ids(sub_tree))
        for corr in correlated:
            if (isinstance(corr, ex.Comparison) and corr.op == "="):
                left, right = corr.left, corr.right
                if (isinstance(left, ex.ColumnVar)
                        and isinstance(right, ex.ColumnVar)):
                    inner = left if left.id in inner_cols else right
                    if inner.id not in [k.id for k in keys]:
                        keys.append(inner)
                    join_conjuncts.append(corr)
                    continue
            raise BindError(
                "only equality correlation is supported in scalar subqueries")

        # With no correlation, the subquery is a single-row scalar
        # aggregate; the comparison becomes the (non-equi) join predicate
        # against that one row.
        group = LogicalGroupBy(sub_tree, keys, collector.collected)
        join_conjuncts.append(ex.Comparison(op, outer_expr, value_expr))
        return (
            LogicalJoin(JoinKind.INNER, tree, group,
                        ex.make_conjunction(join_conjuncts)),
            None,
        )

    def _collect_output_ids(self, tree: LogicalOp) -> List[ex.ColumnVar]:
        return tree.output_columns()

    def _hoist_correlated_predicates(
        self, tree: LogicalOp, inner_scope: Scope,
    ) -> Tuple[LogicalOp, List[ex.ScalarExpr]]:
        """Remove conjuncts that reference outer columns from Select nodes
        in ``tree`` and return them separately."""
        outer_ids = {var.id for var in inner_scope.outer_references}
        if not outer_ids:
            return tree, []
        hoisted: List[ex.ScalarExpr] = []

        def rewrite(op: LogicalOp) -> LogicalOp:
            op.children = [rewrite(c) for c in op.children]
            if isinstance(op, LogicalSelect):
                keep: List[ex.ScalarExpr] = []
                local = frozenset(v.id for v in op.child.output_columns())
                for conj in ex.conjuncts(op.predicate):
                    used = conj.columns_used()
                    if used & outer_ids and used <= (outer_ids | local):
                        hoisted.append(conj)
                    else:
                        keep.append(conj)
                predicate = ex.make_conjunction(keep)
                if predicate is None:
                    return op.child
                op.predicate = predicate
            return op

        return rewrite(tree), hoisted

    # -- aggregation ------------------------------------------------------------

    def _bind_aggregation(
        self, statement: ast.SelectStatement, scope: Scope, tree: LogicalOp,
    ) -> Tuple[LogicalOp, List[Tuple[str, ex.ColumnVar]]]:
        keys: List[ex.ColumnVar] = []
        for group_expr in statement.group_by:
            bound = self._bind_scalar(group_expr, scope)
            if not isinstance(bound, ex.ColumnVar):
                raise BindError("GROUP BY expressions must be plain columns")
            if bound.id not in [k.id for k in keys]:
                keys.append(bound)

        collector = _AggregateCollector(self)
        items: List[Tuple[str, ex.ColumnVar]] = []
        post_outputs: List[Tuple[ex.ColumnVar, ex.ScalarExpr]] = []
        key_ids = {k.id for k in keys}

        for index, item in enumerate(statement.select_items):
            bound = collector.rewrite(item.expr, scope)
            name = item.alias or self._default_name(item.expr, index)
            if isinstance(bound, ex.ColumnVar):
                items.append((name, bound))
                post_outputs.append((bound, bound))
                if bound.id not in key_ids and not self._is_agg_var(
                        bound, collector):
                    raise BindError(
                        f"column {bound.name!r} must appear in GROUP BY")
            else:
                used = bound.columns_used()
                agg_ids = {var.id for var, _ in collector.collected}
                if not used <= (key_ids | agg_ids):
                    raise BindError(
                        "select expression mixes non-grouped columns")
                var = self.vars.new_var(name, ex.expression_type(bound))
                items.append((name, var))
                post_outputs.append((var, bound))

        having_pred: Optional[ex.ScalarExpr] = None
        if statement.having is not None:
            having_pred = collector.rewrite(statement.having, scope)

        grouped: LogicalOp = LogicalGroupBy(tree, keys, collector.collected)
        if having_pred is not None:
            grouped = LogicalSelect(grouped, having_pred)
        grouped = LogicalProject(grouped, post_outputs)
        return grouped, items

    def _is_agg_var(self, var: ex.ColumnVar,
                    collector: _AggregateCollector) -> bool:
        return any(var.id == v.id for v, _ in collector.collected)

    def _bind_plain_select_list(
        self, statement: ast.SelectStatement, scope: Scope,
    ) -> Tuple[List[Tuple[str, ex.ColumnVar]],
               List[Tuple[ex.ColumnVar, ex.ScalarExpr]]]:
        items: List[Tuple[str, ex.ColumnVar]] = []
        projections: List[Tuple[ex.ColumnVar, ex.ScalarExpr]] = []
        for index, item in enumerate(statement.select_items):
            if isinstance(item.expr, ast.Star):
                columns = (
                    scope.binding_columns(item.expr.qualifier)
                    if item.expr.qualifier else scope.all_columns()
                )
                for name, var in columns:
                    items.append((name, var))
                    projections.append((var, var))
                continue
            bound = self._bind_scalar(item.expr, scope)
            name = item.alias or self._default_name(item.expr, index)
            if isinstance(bound, ex.ColumnVar):
                items.append((name, bound))
                projections.append((bound, bound))
            else:
                var = self.vars.new_var(name, ex.expression_type(bound))
                items.append((name, var))
                projections.append((var, bound))
        if not projections:
            raise BindError("empty select list")
        return items, projections

    def _default_name(self, expr: ast.Expr, index: int) -> str:
        if isinstance(expr, ast.ColumnRef):
            return expr.name
        return f"col{index + 1}"

    def _resolve_order_expr(
        self, expr: ast.Expr, scope: Scope,
        items: List[Tuple[str, ex.ColumnVar]],
    ) -> ex.ColumnVar:
        # Ordinal (ORDER BY 1) or alias / column reference.
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value
            if not 1 <= position <= len(items):
                raise BindError(f"ORDER BY position {position} out of range")
            return items[position - 1][1]
        if isinstance(expr, ast.ColumnRef) and expr.qualifier is None:
            for name, var in items:
                if name.lower() == expr.name.lower():
                    return var
        bound = self._bind_scalar(expr, scope)
        if isinstance(bound, ex.ColumnVar):
            for _, var in items:
                if var.id == bound.id:
                    return var
            raise BindError(
                "ORDER BY columns must appear in the select list")
        raise BindError("ORDER BY expressions must be plain columns")

    # -- scalar expressions ------------------------------------------------------

    def _bind_scalar(self, node: ast.Expr, scope: Scope,
                     collector: Optional[_AggregateCollector] = None,
                     ) -> ex.ScalarExpr:
        if isinstance(node, ast.Literal):
            if node.is_date:
                return ex.Constant(_parse_date_literal(str(node.value)), DATE)
            value = node.value
            if isinstance(value, str):
                return ex.Constant(value, varchar(max(1, len(value))))
            if isinstance(value, bool):
                return ex.Constant(value, BOOLEAN)
            if isinstance(value, float):
                return ex.Constant(value, DOUBLE)
            if value is None:
                return ex.Constant(None, None)
            return ex.Constant(value, INTEGER)

        if isinstance(node, ast.ColumnRef):
            return scope.resolve(node.name, node.qualifier)

        if isinstance(node, ast.BinaryOp):
            op = node.op.upper()
            left = self._bind_sub(node.left, scope, collector)
            right = self._bind_sub(node.right, scope, collector)
            if op in ("AND", "OR"):
                return ex.BoolOp(op, (left, right))
            if op in ("=", "<>", "<", "<=", ">", ">="):
                return ex.Comparison(op, left, right)
            return ex.Arithmetic(node.op, left, right)

        if isinstance(node, ast.UnaryOp):
            operand = self._bind_sub(node.operand, scope, collector)
            if node.op.upper() == "NOT":
                return ex.NotExpr(operand)
            return ex.Arithmetic("*", ex.Constant(-1, INTEGER), operand)

        if isinstance(node, ast.FuncCall):
            if node.is_aggregate:
                if collector is None:
                    raise BindError(
                        f"aggregate {node.name} not allowed here")
                return collector.rewrite(node, scope)
            args = tuple(self._bind_sub(a, scope, collector) for a in node.args)
            return ex.FuncExpr(node.name.upper(), args)

        if isinstance(node, ast.Cast):
            operand = self._bind_sub(node.operand, scope, collector)
            return ex.CastExpr(operand, parse_type_name(node.type_name))

        if isinstance(node, ast.CaseExpr):
            whens = tuple(
                (self._bind_sub(c, scope, collector),
                 self._bind_sub(r, scope, collector))
                for c, r in node.whens
            )
            otherwise = (
                self._bind_sub(node.else_result, scope, collector)
                if node.else_result is not None else None
            )
            return ex.CaseWhen(whens, otherwise)

        if isinstance(node, ast.Between):
            operand = self._bind_sub(node.operand, scope, collector)
            low = self._bind_sub(node.low, scope, collector)
            high = self._bind_sub(node.high, scope, collector)
            between = ex.BoolOp("AND", (
                ex.Comparison(">=", operand, low),
                ex.Comparison("<=", operand, high),
            ))
            return ex.NotExpr(between) if node.negated else between

        if isinstance(node, ast.Like):
            operand = self._bind_sub(node.operand, scope, collector)
            pattern = node.pattern
            if not (isinstance(pattern, ast.Literal)
                    and isinstance(pattern.value, str)):
                raise BindError("LIKE pattern must be a string literal")
            return ex.LikeExpr(operand, pattern.value, node.negated)

        if isinstance(node, ast.InList):
            operand = self._bind_sub(node.operand, scope, collector)
            values = []
            for value_node in node.values:
                if not isinstance(value_node, ast.Literal):
                    raise BindError("IN list values must be literals")
                if value_node.is_date:
                    values.append(_parse_date_literal(str(value_node.value)))
                else:
                    values.append(value_node.value)
            return ex.InListExpr(operand, tuple(values), node.negated)

        if isinstance(node, ast.IsNull):
            operand = self._bind_sub(node.operand, scope, collector)
            return ex.IsNullExpr(operand, node.negated)

        if isinstance(node, (ast.InSubquery, ast.ExistsExpr,
                             ast.ScalarSubquery)):
            raise BindError(
                "subqueries are only supported as top-level WHERE conjuncts")

        if isinstance(node, ast.Star):
            raise BindError("* is only allowed in the select list / COUNT(*)")

        raise BindError(f"unsupported expression {type(node).__name__}")

    def _bind_sub(self, node: ast.Expr, scope: Scope,
                  collector: Optional[_AggregateCollector]) -> ex.ScalarExpr:
        if (collector is not None and isinstance(node, ast.FuncCall)
                and node.is_aggregate):
            return collector.rewrite(node, scope)
        return self._bind_scalar(node, scope, collector)

    def _bind_aggregate(self, node: ast.FuncCall, scope: Scope) -> ex.AggExpr:
        func = node.name.upper()
        if func == "COUNT" and len(node.args) == 1 and isinstance(
                node.args[0], ast.Star):
            return ex.AggExpr("COUNT", None, node.distinct)
        if len(node.args) != 1:
            raise BindError(f"{func} takes exactly one argument")
        arg = self._bind_scalar(node.args[0], scope)
        return ex.AggExpr(func, arg, node.distinct)


def bind_query(catalog: Catalog, sql: str) -> Query:
    """Parse and bind a SELECT statement against ``catalog``."""
    return Binder(catalog).bind_sql(sql)
