"""Cardinality and selectivity estimation.

Paper §2.5 step 2(c): *"Estimation of the size of intermediate results for
each of the execution alternatives.  These estimations are based on the
size of base tables and statistics on the column values."*

:class:`StatsContext` maps bound column variables back to shell-database
statistics (histograms, distinct counts, average widths).  Estimators
follow the classic System-R shapes with histogram refinement:

* equality with a constant — histogram bucket density, else ``1/distinct``;
* ranges — histogram interpolation, else magic 0.30;
* equi-joins — ``1 / max(d_left, d_right)`` (containment assumption);
* group-by — distinct-product capped by input cardinality.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.algebra import expressions as ex
from repro.algebra.logical import (
    JoinKind,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalOp,
    LogicalProject,
    LogicalSelect,
)
from repro.catalog.shell_db import ShellDatabase
from repro.catalog.statistics import ColumnStats

DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 0.3
DEFAULT_LIKE_SELECTIVITY = 0.1
DEFAULT_GUESS_SELECTIVITY = 0.33


class StatsContext:
    """Statistics lookup for bound column variables.

    ``var_origins`` maps a variable id to its base ``(table, column)`` when
    the variable came straight from a Get; derived variables (aggregates,
    computed projections) have no origin and fall back to defaults.
    """

    def __init__(self, shell: ShellDatabase):
        self.shell = shell
        self.var_origins: Dict[int, Tuple[str, str]] = {}
        self.var_widths: Dict[int, float] = {}

    def register_get(self, get: LogicalGet) -> None:
        """Record origins/widths for the variables a Get produces."""
        for var in get.columns:
            self.var_origins[var.id] = (get.table.name, var.name)
            if self.shell.has_column_stats(get.table.name, var.name):
                stats = self.shell.column_stats(get.table.name, var.name)
                self.var_widths[var.id] = stats.avg_width
            else:
                self.var_widths[var.id] = float(var.sql_type.width)

    def register_tree(self, root: LogicalOp) -> None:
        if isinstance(root, LogicalGet):
            self.register_get(root)
        for child in root.children:
            self.register_tree(child)

    def register_derived(self, var: ex.ColumnVar) -> None:
        self.var_widths.setdefault(var.id, float(var.sql_type.width))

    def stats_for(self, var_id: int) -> Optional[ColumnStats]:
        origin = self.var_origins.get(var_id)
        if origin is None:
            return None
        table, column = origin
        if not self.shell.has_column_stats(table, column):
            return None
        return self.shell.column_stats(table, column)

    def width_of(self, var: ex.ColumnVar) -> float:
        return self.var_widths.get(var.id, float(var.sql_type.width))

    def row_width(self, vars: Iterable[ex.ColumnVar]) -> float:
        return sum(self.width_of(v) for v in vars) or 4.0

    def distinct_of(self, var_id: int, fallback_rows: float) -> float:
        stats = self.stats_for(var_id)
        if stats is not None and stats.distinct_count > 0:
            return stats.distinct_count
        return max(1.0, fallback_rows / 10.0)


def predicate_selectivity(predicate: Optional[ex.ScalarExpr],
                          context: StatsContext,
                          input_rows: float) -> float:
    """Selectivity of a predicate against rows of known statistics.

    Range conjuncts on the same column (``d >= x AND d < y``) are combined
    into a single histogram range estimate instead of being multiplied as
    if independent — the latter grossly over-counts narrow date windows.
    """
    if predicate is None:
        return 1.0
    conjs = ex.conjuncts(predicate)
    if not conjs:
        return 1.0
    remaining, ranges = _extract_column_ranges(conjs)
    selectivity = 1.0
    for var_id, (low, low_inc, high, high_inc) in ranges.items():
        selectivity *= _range_selectivity(var_id, low, low_inc, high,
                                          high_inc, context)
    for conj in remaining:
        selectivity *= _conjunct_selectivity(conj, context, input_rows)
    return max(1e-9, min(1.0, selectivity))


def _extract_column_ranges(conjs):
    """Split conjuncts into (others, per-column combined range bounds).

    Only columns with *both* a lower and an upper constant bound are
    combined; single-sided comparisons keep the per-conjunct path."""
    from repro.catalog.statistics import sort_key

    bounds: Dict[int, list] = {}
    attributed: Dict[int, list] = {}
    for conj in conjs:
        comparison = None
        if isinstance(conj, ex.Comparison) and conj.op in ("<", "<=",
                                                           ">", ">="):
            left, right = conj.left, conj.right
            if isinstance(left, ex.ColumnVar) and isinstance(
                    right, ex.Constant) and right.value is not None:
                comparison = (left.id, conj.op, right.value)
            elif isinstance(right, ex.ColumnVar) and isinstance(
                    left, ex.Constant) and left.value is not None:
                flipped = conj.flipped()
                comparison = (flipped.left.id, flipped.op,
                              flipped.right.value)
        if comparison is None:
            continue
        var_id, op, value = comparison
        entry = bounds.setdefault(var_id, [None, True, None, True])
        if op in (">", ">="):
            if entry[0] is None or sort_key(value) > sort_key(entry[0]):
                entry[0], entry[1] = value, op == ">="
        else:
            if entry[2] is None or sort_key(value) < sort_key(entry[2]):
                entry[2], entry[3] = value, op == "<="
        attributed.setdefault(var_id, []).append(conj)

    ranges = {}
    consumed = set()
    for var_id, entry in bounds.items():
        if entry[0] is not None and entry[2] is not None:
            ranges[var_id] = tuple(entry)
            consumed.update(id(c) for c in attributed[var_id])
    remaining = [c for c in conjs if id(c) not in consumed]
    return remaining, ranges


def _range_selectivity(var_id: int, low, low_inc, high, high_inc,
                       context: StatsContext) -> float:
    stats = context.stats_for(var_id)
    if stats is None or not stats.histogram.buckets:
        return DEFAULT_RANGE_SELECTIVITY
    hist = stats.histogram
    total = max(1.0, hist.total_count)
    rows = hist.estimate_range(low, high, low_inclusive=low_inc,
                               high_inclusive=high_inc)
    return min(1.0, max(0.0, rows / total))


def _conjunct_selectivity(conj: ex.ScalarExpr, context: StatsContext,
                          input_rows: float) -> float:
    if isinstance(conj, ex.Constant):
        if conj.value is False or conj.value is None:
            return 0.0
        return 1.0

    if isinstance(conj, ex.Comparison):
        return _comparison_selectivity(conj, context, input_rows)

    if isinstance(conj, ex.BoolOp) and conj.op == "OR":
        result = 0.0
        for arg in conj.args:
            s = _conjunct_selectivity(arg, context, input_rows)
            result = result + s - result * s
        return result

    if isinstance(conj, ex.NotExpr):
        return 1.0 - _conjunct_selectivity(conj.operand, context, input_rows)

    if isinstance(conj, ex.LikeExpr):
        base = _like_selectivity(conj, context)
        return 1.0 - base if conj.negated else base

    if isinstance(conj, ex.InListExpr):
        base = _in_list_selectivity(conj, context, input_rows)
        return 1.0 - base if conj.negated else base

    if isinstance(conj, ex.IsNullExpr):
        base = _null_fraction(conj.operand, context)
        return 1.0 - base if conj.negated else base

    return DEFAULT_GUESS_SELECTIVITY


def _comparison_selectivity(conj: ex.Comparison, context: StatsContext,
                            input_rows: float) -> float:
    left, right = conj.left, conj.right
    if isinstance(right, ex.ColumnVar) and isinstance(left, ex.Constant):
        conj = conj.flipped()
        left, right = conj.left, conj.right

    if isinstance(left, ex.ColumnVar) and isinstance(right, ex.Constant):
        return _column_vs_constant(conj.op, left, right.value, context,
                                   input_rows)

    if isinstance(left, ex.ColumnVar) and isinstance(right, ex.ColumnVar):
        if conj.op == "=":
            d_left = context.distinct_of(left.id, input_rows)
            d_right = context.distinct_of(right.id, input_rows)
            return 1.0 / max(d_left, d_right, 1.0)
        return DEFAULT_RANGE_SELECTIVITY

    if conj.op == "=":
        return DEFAULT_EQ_SELECTIVITY
    return DEFAULT_RANGE_SELECTIVITY


def _column_vs_constant(op: str, var: ex.ColumnVar, value,
                        context: StatsContext, input_rows: float) -> float:
    stats = context.stats_for(var.id)
    if stats is None or stats.row_count <= 0:
        if op == "=":
            return 1.0 / max(1.0, context.distinct_of(var.id, input_rows))
        if op == "<>":
            return 1.0 - 1.0 / max(1.0, context.distinct_of(var.id, input_rows))
        return DEFAULT_RANGE_SELECTIVITY

    hist = stats.histogram
    # Histograms may be built from a sample; fractions are computed
    # against the histogram's own mass, not the table row count.
    total = (hist.total_count if hist.buckets
             else max(1.0, stats.row_count - stats.null_count))
    total = max(1.0, total)
    if op == "=":
        if hist.buckets:
            return min(1.0, hist.estimate_eq(value) / total)
        return 1.0 / max(1.0, stats.distinct_count)
    if op == "<>":
        if hist.buckets:
            return 1.0 - min(1.0, hist.estimate_eq(value) / total)
        return 1.0 - 1.0 / max(1.0, stats.distinct_count)
    if not hist.buckets:
        return DEFAULT_RANGE_SELECTIVITY
    if op in ("<", "<="):
        rows = hist.estimate_le(value)
        if op == "<":
            rows -= hist.estimate_eq(value)
        return min(1.0, max(0.0, rows / total))
    if op in (">", ">="):
        rows = total - hist.estimate_le(value)
        if op == ">=":
            rows += hist.estimate_eq(value)
        return min(1.0, max(0.0, rows / total))
    return DEFAULT_RANGE_SELECTIVITY


def _like_selectivity(conj: ex.LikeExpr, context: StatsContext) -> float:
    pattern = conj.pattern
    if pattern and "%" not in pattern and "_" not in pattern:
        # Exact match in disguise.
        if isinstance(conj.operand, ex.ColumnVar):
            stats = context.stats_for(conj.operand.id)
            if stats is not None and stats.distinct_count > 0:
                return 1.0 / stats.distinct_count
        return DEFAULT_EQ_SELECTIVITY
    if pattern.endswith("%") and "%" not in pattern[:-1] and "_" not in pattern:
        # Prefix match: roughly proportional to prefix length.
        prefix = pattern[:-1]
        return max(0.001, DEFAULT_LIKE_SELECTIVITY / max(1, len(prefix) - 2))
    return DEFAULT_LIKE_SELECTIVITY


def _in_list_selectivity(conj: ex.InListExpr, context: StatsContext,
                         input_rows: float) -> float:
    if not isinstance(conj.operand, ex.ColumnVar):
        return min(1.0, DEFAULT_EQ_SELECTIVITY * len(conj.values))
    per_value = 1.0 / max(1.0, context.distinct_of(conj.operand.id, input_rows))
    return min(1.0, per_value * len(conj.values))


def _null_fraction(operand: ex.ScalarExpr, context: StatsContext) -> float:
    if isinstance(operand, ex.ColumnVar):
        stats = context.stats_for(operand.id)
        if stats is not None:
            return stats.null_fraction
    return 0.05


def estimate_operator_cardinality(op: LogicalOp, context: StatsContext,
                                  child_cards: Tuple[float, ...],
                                  child_vars) -> float:
    """Cardinality of ``op`` given its children's estimates.

    ``child_vars`` is the list of each child's output variables (needed
    for join column attribution).
    """
    if isinstance(op, LogicalGet):
        return float(max(0, op.table.row_count))

    if isinstance(op, LogicalSelect):
        rows = child_cards[0]
        return rows * predicate_selectivity(op.predicate, context, rows)

    if isinstance(op, LogicalProject):
        return child_cards[0]

    if isinstance(op, LogicalJoin):
        return _join_cardinality(op, context, child_cards, child_vars)

    if isinstance(op, LogicalGroupBy):
        return _group_by_cardinality(op, context, child_cards[0])

    # UnionAll and anything else additive.
    return sum(child_cards)


def _join_cardinality(op: LogicalJoin, context: StatsContext,
                      child_cards, child_vars) -> float:
    left_rows, right_rows = child_cards
    if op.kind is JoinKind.CROSS or op.predicate is None:
        return left_rows * right_rows

    left_ids = frozenset(v.id for v in child_vars[0])
    right_ids = frozenset(v.id for v in child_vars[1])
    pairs = ex.equi_join_pairs(op.predicate, left_ids, right_ids)

    selectivity = 1.0
    matched = set()
    for left_var, right_var in pairs:
        d_left = context.distinct_of(left_var.id, left_rows)
        d_right = context.distinct_of(right_var.id, right_rows)
        selectivity *= 1.0 / max(d_left, d_right, 1.0)
        matched.add(ex.Comparison("=", left_var, right_var))
        matched.add(ex.Comparison("=", right_var, left_var))
    for conj in ex.conjuncts(op.predicate):
        if conj in matched:
            continue
        if (isinstance(conj, ex.Comparison) and conj.op == "="
                and conj.flipped() in matched):
            continue
        selectivity *= _conjunct_selectivity(conj, context,
                                             left_rows * right_rows)
    selectivity = max(1e-12, min(1.0, selectivity))

    if op.kind in (JoinKind.INNER, JoinKind.LEFT):
        raw = left_rows * right_rows * selectivity
        if op.kind is JoinKind.LEFT:
            raw = max(raw, left_rows)
        return raw
    if op.kind is JoinKind.SEMI:
        return left_rows * min(1.0, selectivity * max(right_rows, 1.0))
    if op.kind is JoinKind.ANTI:
        return left_rows * max(0.0, 1.0 - selectivity * max(right_rows, 1.0))
    return left_rows * right_rows * selectivity


def _group_by_cardinality(op: LogicalGroupBy, context: StatsContext,
                          input_rows: float) -> float:
    if not op.keys:
        return 1.0 if input_rows > 0 else 0.0
    groups = 1.0
    for key in op.keys:
        groups *= context.distinct_of(key.id, input_rows)
        if groups > input_rows:
            break
    return max(0.0, min(groups, input_rows))
