"""The serial optimizer driver: explore, implement, cost, extract.

This plays the role of the SQL Server Query Optimizer in the paper's
architecture (Figure 2, box 2): it simplifies the input tree, builds the
MEMO, runs logical exploration (all equivalent join orders, group-by /
join reordering), adds physical alternatives, and can either extract the
best *serial* plan or hand the whole MEMO to the PDW side.

Exploration details:

* **Join-order enumeration** — maximal regions of inner/cross joins are
  enumerated with dynamic programming over connected sub-sets (bushy
  trees included), inserting every decomposition into the MEMO.  Equality
  predicates are first closed transitively (the paper's "join transitivity
  closure detection", §4), which is what lets Q20 consider joining
  ``part`` directly to ``lineitem``.
* **Timeout / seeding** — §3.1: for very large spaces SQL Server uses a
  timeout and the initial plans seeded into the MEMO dominate the result.
  When a region exceeds ``config.exhaustive_join_limit`` we fall back to
  greedy left-deep enumeration, optionally *seeded* with a
  distribution-aware order that prefers collocated joins
  (``config.seed_collocated_joins``).
* **Group-by pushdown** (invariant grouping) — rewrites
  ``GroupBy(X) ⋈ R`` into ``GroupBy(X ⋈ R)`` when R is duplicate-free on
  the join columns and the join only touches grouping keys.  Q20's plan
  (Figure 7) needs this to join ``part`` with ``lineitem`` *below* the
  partial aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.algebra import expressions as ex
from repro.algebra import physical as phys
from repro.algebra.logical import (
    AggPhase,
    JoinKind,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalOp,
    LogicalProject,
    LogicalSelect,
    Query,
    detached_groupby,
    detached_join,
)
from repro.algebra.physical import PlanNode
from repro.algebra.properties import ColumnEquivalence
from repro.catalog.schema import DistributionKind
from repro.catalog.shell_db import ShellDatabase
from repro.common.errors import OptimizerError
from repro.optimizer.binder import Binder
from repro.optimizer.cardinality import StatsContext
from repro.optimizer.cost import DEFAULT_SERIAL_COST_MODEL, SerialCostModel
from repro.optimizer.implementation import implement_memo
from repro.optimizer.memo import Group, GroupExpression, Memo
from repro.optimizer.normalize import normalize
from repro.sql.parser import parse_query
from repro.telemetry import NULL_TRACER, Tracer


@dataclass
class OptimizerConfig:
    """Knobs for the serial search."""

    exhaustive_join_limit: int = 10
    enable_groupby_pushdown: bool = True
    groupby_pushdown_rounds: int = 3
    enable_aggregate_split: bool = True
    seed_collocated_joins: bool = True
    cost_model: SerialCostModel = field(
        default_factory=lambda: DEFAULT_SERIAL_COST_MODEL)


@dataclass
class OptimizationResult:
    """Everything downstream consumers need."""

    query: Query
    memo: Memo
    root_group: int
    stats: StatsContext
    equivalence: ColumnEquivalence
    best_serial_plan: Optional[PlanNode] = None

    @property
    def best_serial_cost(self) -> float:
        if self.best_serial_plan is None:
            raise OptimizerError("no serial plan extracted")
        return self.best_serial_plan.cost


class SerialOptimizer:
    """Normalize → memoize → explore → implement → cost."""

    def __init__(self, shell: ShellDatabase,
                 config: Optional[OptimizerConfig] = None,
                 tracer: Tracer = NULL_TRACER):
        self.shell = shell
        self.config = config or OptimizerConfig()
        self.tracer = tracer

    # -- public API -----------------------------------------------------------

    def optimize_sql(self, sql: str, extract_serial: bool = True
                     ) -> OptimizationResult:
        with self.tracer.span("parse"):
            statement = parse_query(sql)
        with self.tracer.span("bind"):
            query = Binder(self.shell.catalog).bind(statement)
        return self.optimize_query(query, extract_serial)

    def optimize_query(self, query: Query, extract_serial: bool = True
                       ) -> OptimizationResult:
        tracer = self.tracer
        with tracer.span("normalize"):
            query = normalize(query)
        stats = StatsContext(self.shell)
        stats.register_tree(query.root)
        memo = Memo(stats)
        root_group = memo.insert_tree(query.root)

        equivalence = ColumnEquivalence()
        self._collect_equalities(query.root, equivalence)

        with tracer.span("explore") as span:
            self._explore_join_regions(memo, query.root, equivalence)
            if self.config.enable_groupby_pushdown:
                self._explore_groupby_pushdown(memo)
            if self.config.enable_aggregate_split:
                self._explore_aggregate_splits(memo)
            if tracer.enabled:
                span.set("groups", len(memo.canonical_groups()))
                span.set("logical_expressions",
                         memo.expression_count(logical_only=True))
        with tracer.span("implement"):
            implement_memo(memo)
        if tracer.enabled:
            groups = len(memo.canonical_groups())
            expressions = memo.expression_count()
            logical = memo.expression_count(logical_only=True)
            tracer.count("serial.memo.groups", groups)
            tracer.count("serial.memo.expressions.logical", logical)
            tracer.count("serial.memo.expressions.physical",
                         expressions - logical)

        result = OptimizationResult(
            query=query,
            memo=memo,
            root_group=memo.find(root_group),
            stats=stats,
            equivalence=equivalence,
        )
        if extract_serial:
            with tracer.span("extract_serial"):
                result.best_serial_plan = extract_best_serial_plan(
                    memo, result.root_group, self.config.cost_model)
        return result

    # -- equivalence ----------------------------------------------------------

    def _collect_equalities(self, op: LogicalOp,
                            equivalence: ColumnEquivalence) -> None:
        if isinstance(op, LogicalSelect):
            equivalence.add_from_predicate(op.predicate)
        if isinstance(op, LogicalJoin) and op.kind in (JoinKind.INNER,
                                                       JoinKind.SEMI):
            equivalence.add_from_predicate(op.predicate)
        if isinstance(op, LogicalProject):
            for var, expr in op.outputs:
                if isinstance(expr, ex.ColumnVar):
                    equivalence.add_equality(var.id, expr.id)
        for child in op.children:
            self._collect_equalities(child, equivalence)

    # -- join-region exploration ------------------------------------------------

    def _explore_join_regions(self, memo: Memo, op: LogicalOp,
                              equivalence: ColumnEquivalence,
                              inside_region: bool = False) -> None:
        is_region_op = (isinstance(op, LogicalJoin)
                        and op.kind in (JoinKind.INNER, JoinKind.CROSS))
        if is_region_op and not inside_region:
            leaves, conjuncts = _collect_region(op)
            for leaf in leaves:
                self._explore_join_regions(memo, leaf, equivalence, False)
            if len(leaves) >= 2:
                self._enumerate_region(memo, op, leaves, conjuncts,
                                       equivalence)
            return
        for child in op.children:
            self._explore_join_regions(memo, child, equivalence,
                                       inside_region=False)

    def _enumerate_region(self, memo: Memo, region_root: LogicalJoin,
                          leaves: List[LogicalOp],
                          conjuncts: List[ex.ScalarExpr],
                          equivalence: ColumnEquivalence) -> None:
        leaf_groups = [memo.insert_tree(leaf) for leaf in leaves]
        leaf_cols = [
            frozenset(v.id for v in memo.group(g).output_vars)
            for g in leaf_groups
        ]
        region = _RegionProblem(memo, leaf_groups, leaf_cols, conjuncts,
                                equivalence)
        n = len(leaves)
        if n <= self.config.exhaustive_join_limit:
            full_group = region.enumerate_exhaustive()
        else:
            full_group = region.enumerate_greedy(
                seed_collocated=self.config.seed_collocated_joins)
        original_root_group = memo.insert_tree(region_root)
        memo.merge_equivalent(original_root_group, full_group)

    # -- group-by pushdown -------------------------------------------------------

    def _explore_groupby_pushdown(self, memo: Memo) -> None:
        for _ in range(self.config.groupby_pushdown_rounds):
            if not self._groupby_pushdown_round(memo):
                break

    def _groupby_pushdown_round(self, memo: Memo) -> bool:
        changed = False
        for group in list(memo.canonical_groups()):
            group = memo.group(group.id)
            for expr in list(group.expressions):
                if not expr.is_logical or not isinstance(expr.op, LogicalJoin):
                    continue
                if expr.op.kind is not JoinKind.INNER:
                    continue
                if self._try_push_join_below_groupby(memo, group, expr):
                    changed = True
        return changed

    def _try_push_join_below_groupby(self, memo: Memo, group: Group,
                                     join_expr: GroupExpression) -> bool:
        """Attempt GroupBy(X) ⋈ R  →  GroupBy'(X ⋈ R) for either side."""
        join_op: LogicalJoin = join_expr.op
        predicate = join_op.predicate
        if predicate is None:
            return False
        changed = False
        for gb_index in (0, 1):
            gb_group = memo.group(join_expr.children[gb_index])
            other_group_id = memo.find(join_expr.children[1 - gb_index])
            other_group = memo.group(other_group_id)
            other_ids = frozenset(v.id for v in other_group.output_vars)
            for gb_expr in list(gb_group.logical_expressions):
                if not isinstance(gb_expr.op, LogicalGroupBy):
                    continue
                gb_op: LogicalGroupBy = gb_expr.op
                if not gb_op.keys:
                    continue
                key_ids = frozenset(k.id for k in gb_op.keys)
                allowed = key_ids | other_ids
                if not set(predicate.columns_used()) <= allowed:
                    continue
                pairs = ex.equi_join_pairs(predicate, key_ids, other_ids)
                if not pairs:
                    continue
                other_join_cols = {right.id for _, right in pairs}
                if not _group_duplicate_free_on(memo, other_group_id,
                                                other_join_cols):
                    continue
                child_group = memo.find(gb_expr.children[0])
                new_join = detached_join(JoinKind.INNER, predicate)
                join_group = memo.group_for_expression(
                    new_join, (child_group, other_group_id))
                if memo.find(join_group) == memo.find(group.id):
                    continue
                new_keys = list(gb_op.keys) + [
                    v for v in other_group.output_vars
                    if v.id not in key_ids
                ]
                new_gb = detached_groupby(new_keys, gb_op.aggregates)
                before = len(memo.group(group.id).expressions)
                memo.add_expression(group.id, new_gb, (join_group,),
                                    is_logical=True)
                if len(memo.group(group.id).expressions) != before:
                    changed = True
        return changed


    # -- local/global aggregation split ------------------------------------------

    def _explore_aggregate_splits(self, memo: Memo) -> None:
        """Add GlobalGB(LocalGB(X)) alternatives for every complete GroupBy.

        SQL Server's exploration generates these partial-aggregation
        alternatives; the PDW preprocessor later fixes the partial groups'
        cardinalities for the appliance topology (Figure 4, step 02) and
        the PDW enumerator turns them into the LocalGB → Shuffle → GlobalGB
        pattern of the Q20 plan (Figure 7).
        """
        next_var_id = _max_var_id(memo) + 1
        for group in list(memo.canonical_groups()):
            group = memo.group(group.id)
            for expr in list(group.logical_expressions):
                op = expr.op
                if not isinstance(op, LogicalGroupBy):
                    continue
                if op.phase is not AggPhase.COMPLETE:
                    continue
                if not op.keys and not op.aggregates:
                    continue
                if any(agg.distinct for _, agg in op.aggregates):
                    continue
                local_aggs = []
                global_aggs = []
                for var, agg in op.aggregates:
                    partial = ex.ColumnVar(next_var_id,
                                           f"partial_{var.name}",
                                           var.sql_type)
                    next_var_id += 1
                    memo.stats.register_derived(partial)
                    local_aggs.append((partial, agg))
                    combine = "SUM" if agg.func in ("SUM", "COUNT") \
                        else agg.func
                    global_aggs.append((var, ex.AggExpr(combine, partial)))
                local_op = detached_groupby(op.keys, local_aggs,
                                            AggPhase.LOCAL)
                local_group = memo.group_for_expression(
                    local_op, expr.children)
                global_op = detached_groupby(op.keys, global_aggs,
                                             AggPhase.GLOBAL)
                memo.add_expression(memo.find(group.id), global_op,
                                    (local_group,))


def _max_var_id(memo: Memo) -> int:
    highest = 0
    for group in memo.canonical_groups():
        for var in group.output_vars:
            highest = max(highest, var.id)
    for var_id in memo.stats.var_widths:
        highest = max(highest, var_id)
    return highest


# ---------------------------------------------------------------------------
# join regions
# ---------------------------------------------------------------------------

def _collect_region(op: LogicalOp) -> Tuple[List[LogicalOp],
                                            List[ex.ScalarExpr]]:
    """Leaves and predicate conjuncts of a maximal inner/cross join tree."""
    leaves: List[LogicalOp] = []
    conjuncts: List[ex.ScalarExpr] = []

    def walk(node: LogicalOp) -> None:
        if (isinstance(node, LogicalJoin)
                and node.kind in (JoinKind.INNER, JoinKind.CROSS)):
            walk(node.left)
            walk(node.right)
            conjuncts.extend(ex.conjuncts(node.predicate))
        else:
            leaves.append(node)

    walk(op)
    return leaves, conjuncts


class _RegionProblem:
    """Dynamic-programming join enumeration over one region."""

    def __init__(self, memo: Memo, leaf_groups: List[int],
                 leaf_cols: List[FrozenSet[int]],
                 conjuncts: List[ex.ScalarExpr],
                 equivalence: ColumnEquivalence):
        self.memo = memo
        self.leaf_groups = leaf_groups
        self.leaf_cols = leaf_cols
        self.n = len(leaf_groups)
        self.equivalence = equivalence
        self.non_equi: List[ex.ScalarExpr] = []
        self.applied_equalities: Set[ex.Comparison] = set()
        # Map equivalence class representative → {leaf index → var with
        # smallest id on that leaf}, used to synthesize join equalities.
        self.class_vars: Dict[int, Dict[int, ex.ColumnVar]] = {}
        self._analyze(conjuncts)

    def _analyze(self, conjuncts: List[ex.ScalarExpr]) -> None:
        var_lookup: Dict[int, ex.ColumnVar] = {}
        for conj in conjuncts:
            if (isinstance(conj, ex.Comparison) and conj.op == "="
                    and isinstance(conj.left, ex.ColumnVar)
                    and isinstance(conj.right, ex.ColumnVar)):
                var_lookup[conj.left.id] = conj.left
                var_lookup[conj.right.id] = conj.right
            else:
                self.non_equi.append(conj)
        for var_id, var in var_lookup.items():
            rep = self.equivalence.representative(var_id)
            leaf = self._leaf_of(var_id)
            if leaf is None:
                continue
            per_leaf = self.class_vars.setdefault(rep, {})
            current = per_leaf.get(leaf)
            if current is None or var.id < current.id:
                per_leaf[leaf] = var

    def _leaf_of(self, var_id: int) -> Optional[int]:
        for index, cols in enumerate(self.leaf_cols):
            if var_id in cols:
                return index
        return None

    def _cols_of_set(self, mask: int) -> FrozenSet[int]:
        cols: Set[int] = set()
        for index in range(self.n):
            if mask & (1 << index):
                cols |= self.leaf_cols[index]
        return frozenset(cols)

    def _predicate_for_split(self, left_mask: int,
                             right_mask: int) -> Optional[ex.ScalarExpr]:
        """Join predicate connecting two leaf sets: one equality per
        equivalence class spanning both sides, plus non-equi conjuncts
        that become applicable exactly at this join."""
        left_leaves = _mask_indices(left_mask)
        right_leaves = _mask_indices(right_mask)
        parts: List[ex.ScalarExpr] = []
        for per_leaf in self.class_vars.values():
            left_var = _smallest_var(per_leaf, left_leaves)
            right_var = _smallest_var(per_leaf, right_leaves)
            if left_var is not None and right_var is not None:
                parts.append(ex.Comparison("=", left_var, right_var))
        whole = self._cols_of_set(left_mask | right_mask)
        left_cols = self._cols_of_set(left_mask)
        right_cols = self._cols_of_set(right_mask)
        for conj in self.non_equi:
            used = set(conj.columns_used())
            if (used <= whole and not used <= left_cols
                    and not used <= right_cols):
                parts.append(conj)
        return ex.make_conjunction(parts)

    def _residual_filters(self, mask: int, sub_masks: Sequence[int]
                          ) -> List[ex.ScalarExpr]:
        del mask, sub_masks
        return []

    def _make_join_group(self, left_group: int, right_group: int,
                         predicate: Optional[ex.ScalarExpr]) -> int:
        kind = JoinKind.INNER if predicate is not None else JoinKind.CROSS
        join = detached_join(kind, predicate)
        return self.memo.group_for_expression(join,
                                              (left_group, right_group))

    # -- exhaustive DP ---------------------------------------------------------

    def enumerate_exhaustive(self) -> int:
        best: Dict[int, int] = {}
        for index, group in enumerate(self.leaf_groups):
            best[1 << index] = group
        full = (1 << self.n) - 1
        for mask in _masks_by_popcount(self.n):
            if mask in best:
                continue
            group_id: Optional[int] = None
            connected_splits = []
            for left_mask in _proper_submasks(mask):
                right_mask = mask ^ left_mask
                if left_mask > right_mask:
                    continue  # unordered split, one canonical direction
                predicate = self._predicate_for_split(left_mask, right_mask)
                if predicate is not None:
                    connected_splits.append((left_mask, right_mask, predicate))
            splits = connected_splits
            if not splits:
                # Disconnected: allow cross products on every split.
                splits = [
                    (lm, mask ^ lm, None)
                    for lm in _proper_submasks(mask) if lm < (mask ^ lm)
                ]
            for left_mask, right_mask, predicate in splits:
                if left_mask not in best or right_mask not in best:
                    continue
                new_group = self._make_join_group(
                    best[left_mask], best[right_mask], predicate)
                if group_id is None:
                    group_id = new_group
                else:
                    group_id = self.memo.merge_equivalent(group_id, new_group)
            if group_id is None:
                raise OptimizerError("join region has an unreachable subset")
            best[mask] = group_id
        return best[full]

    # -- greedy fallback ---------------------------------------------------------

    def enumerate_greedy(self, seed_collocated: bool = True) -> int:
        orders = [self._greedy_order(prefer_collocated=False)]
        if seed_collocated:
            orders.append(self._greedy_order(prefer_collocated=True))
        result: Optional[int] = None
        for order in orders:
            group_id = self._materialize_left_deep(order)
            result = (group_id if result is None
                      else self.memo.merge_equivalent(result, group_id))
        assert result is not None
        return result

    def _greedy_order(self, prefer_collocated: bool) -> List[int]:
        remaining = set(range(self.n))
        cardinality = {
            i: self.memo.group(g).cardinality
            for i, g in enumerate(self.leaf_groups)
        }
        order = [min(remaining, key=lambda i: cardinality[i])]
        remaining.discard(order[0])
        while remaining:
            joined_mask = 0
            for index in order:
                joined_mask |= 1 << index

            def rank(candidate: int) -> tuple:
                predicate = self._predicate_for_split(joined_mask,
                                                      1 << candidate)
                connected = predicate is not None
                collocated = (prefer_collocated
                              and self._leaf_collocated(order[-1], candidate))
                return (not connected, not collocated,
                        cardinality[candidate])

            chosen = min(remaining, key=rank)
            order.append(chosen)
            remaining.discard(chosen)
        return order

    def _leaf_collocated(self, a: int, b: int) -> bool:
        dist_a = _leaf_distribution(self.memo, self.leaf_groups[a])
        dist_b = _leaf_distribution(self.memo, self.leaf_groups[b])
        if dist_a is None or dist_b is None:
            return False
        kind_a, cols_a = dist_a
        kind_b, cols_b = dist_b
        if kind_a is DistributionKind.REPLICATED or \
                kind_b is DistributionKind.REPLICATED:
            return True
        if kind_a is DistributionKind.HASH and kind_b is DistributionKind.HASH:
            for col_a in cols_a:
                for col_b in cols_b:
                    if self.equivalence.are_equivalent(col_a, col_b):
                        return True
        return False

    def _materialize_left_deep(self, order: List[int]) -> int:
        mask = 1 << order[0]
        group_id = self.leaf_groups[order[0]]
        for index in order[1:]:
            predicate = self._predicate_for_split(mask, 1 << index)
            group_id = self._make_join_group(
                group_id, self.leaf_groups[index], predicate)
            mask |= 1 << index
        return group_id


def _mask_indices(mask: int) -> List[int]:
    return [i for i in range(mask.bit_length()) if mask & (1 << i)]


def _smallest_var(per_leaf: Dict[int, ex.ColumnVar],
                  leaves: List[int]) -> Optional[ex.ColumnVar]:
    candidates = [per_leaf[leaf] for leaf in leaves if leaf in per_leaf]
    if not candidates:
        return None
    return min(candidates, key=lambda v: v.id)


def _masks_by_popcount(n: int):
    masks = sorted(range(1, 1 << n), key=lambda m: bin(m).count("1"))
    for mask in masks:
        if bin(mask).count("1") >= 2:
            yield mask


def _proper_submasks(mask: int):
    sub = (mask - 1) & mask
    while sub:
        yield sub
        sub = (sub - 1) & mask


def _leaf_distribution(memo: Memo, group_id: int
                       ) -> Optional[Tuple[DistributionKind, List[int]]]:
    """Base-table distribution of a leaf group, seen through filters."""
    group = memo.group(group_id)
    for expr in group.logical_expressions:
        op = expr.op
        if isinstance(op, LogicalGet):
            table = op.table
            cols = []
            for dist_col in table.distribution.columns:
                for var in op.columns:
                    if var.name.lower() == dist_col.lower():
                        cols.append(var.id)
            return (table.distribution.kind, cols)
        if isinstance(op, (LogicalSelect, LogicalProject)):
            return _leaf_distribution(memo, expr.children[0])
    return None


def _group_duplicate_free_on(memo: Memo, group_id: int,
                             columns: Set[int],
                             _seen: Optional[Set[int]] = None) -> bool:
    """Is every row of the group unique on ``columns``?"""
    group_id = memo.find(group_id)
    seen = _seen or set()
    if group_id in seen:
        return False
    seen.add(group_id)
    group = memo.group(group_id)
    for expr in group.logical_expressions:
        op = expr.op
        if isinstance(op, LogicalGroupBy):
            if {k.id for k in op.keys} <= columns and op.keys:
                return True
        elif isinstance(op, LogicalGet):
            table = op.table
            if table.primary_key:
                pk_ids = set()
                for pk_col in table.primary_key:
                    for var in op.columns:
                        if var.name.lower() == pk_col.lower():
                            pk_ids.add(var.id)
                if len(pk_ids) == len(table.primary_key) and pk_ids <= columns:
                    return True
        elif isinstance(op, (LogicalSelect, LogicalProject)):
            if isinstance(op, LogicalProject):
                identity_ids = {
                    var.id for var, e in op.outputs
                    if isinstance(e, ex.ColumnVar) and e.id == var.id
                }
                if not columns <= identity_ids:
                    continue
            if _group_duplicate_free_on(memo, expr.children[0], columns,
                                        seen):
                return True
    return False


# ---------------------------------------------------------------------------
# best serial plan extraction
# ---------------------------------------------------------------------------

def extract_best_serial_plan(memo: Memo, root_group: int,
                             cost_model: SerialCostModel) -> PlanNode:
    """Bottom-up dynamic programming over physical expressions."""
    best: Dict[int, Tuple[float, GroupExpression]] = {}
    in_progress: Set[int] = set()

    def best_cost(group_id: int) -> float:
        group_id = memo.find(group_id)
        if group_id in best:
            return best[group_id][0]
        if group_id in in_progress:
            return float("inf")
        in_progress.add(group_id)
        group = memo.group(group_id)
        winner: Optional[Tuple[float, GroupExpression]] = None
        for expr in group.physical_expressions:
            children = [memo.find(c) for c in expr.children]
            if group_id in children:
                continue
            child_cost = sum(best_cost(c) for c in children)
            if child_cost == float("inf"):
                continue
            child_rows = tuple(memo.group(c).cardinality for c in children)
            local = cost_model.local_cost(expr.op, group.cardinality,
                                          child_rows)
            total = child_cost + local
            if winner is None or total < winner[0]:
                winner = (total, expr)
        in_progress.discard(group_id)
        if winner is None:
            return float("inf")
        best[group_id] = winner
        return winner[0]

    total = best_cost(root_group)
    if total == float("inf"):
        raise OptimizerError("no physical plan found")

    def build(group_id: int) -> PlanNode:
        group_id = memo.find(group_id)
        cost, expr = best[group_id]
        group = memo.group(group_id)
        children = [build(c) for c in expr.children]
        return PlanNode(
            expr.op, children,
            output_columns=group.output_vars,
            cardinality=group.cardinality,
            row_width=group.row_width,
            cost=cost,
        )

    return build(root_group)
