"""Physical relational operators and extracted plan trees.

Physical operators appear in two places:

* as physical group expressions inside the serial MEMO (Figure 3(c) of the
  paper shows ``Table Scan``, ``HashJoin`` etc. alongside the logical
  operators), and
* in extracted plan trees — both the best serial plan and, on the PDW side,
  the distributed plan where :class:`repro.pdw.dms.DataMovement` nodes are
  interleaved with relational fragments.

:class:`PlanNode` is the uniform extracted-plan tree: an operator plus
children plus derived properties (cardinality, row width, cost).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.algebra.expressions import AggExpr, ColumnVar, ScalarExpr
from repro.algebra.logical import JoinKind
from repro.catalog.schema import TableDef


class PhysicalOp:
    """Base class for physical operators."""

    @property
    def name(self) -> str:
        return type(self).__name__

    def describe(self) -> str:
        return self.name

    def local_key(self) -> tuple:
        """Hashable identity excluding children (for MEMO dedup)."""
        raise NotImplementedError


class TableScan(PhysicalOp):
    """Sequential scan of a base or temp table."""

    def __init__(self, table: TableDef, columns: Sequence[ColumnVar],
                 alias: Optional[str] = None):
        self.table = table
        self.columns = list(columns)
        self.alias = alias or table.name

    def local_key(self) -> tuple:
        return ("TableScan", self.table.name, tuple(c.id for c in self.columns))

    def describe(self) -> str:
        return f"TableScan({self.alias})"


class Filter(PhysicalOp):
    """Apply a predicate to the child's rows."""

    def __init__(self, predicate: ScalarExpr):
        self.predicate = predicate

    def local_key(self) -> tuple:
        return ("Filter", self.predicate)

    def describe(self) -> str:
        return f"Filter[{self.predicate}]"


class ComputeScalar(PhysicalOp):
    """Project / compute output columns."""

    def __init__(self, outputs: Sequence[Tuple[ColumnVar, ScalarExpr]]):
        self.outputs = list(outputs)

    def local_key(self) -> tuple:
        return ("ComputeScalar",
                tuple((var.id, expr) for var, expr in self.outputs))

    def describe(self) -> str:
        inner = ", ".join(f"{var}:={expr}" for var, expr in self.outputs)
        return f"ComputeScalar[{inner}]"


class HashJoin(PhysicalOp):
    """Hash join; the *right* child is the build side by convention."""

    def __init__(self, kind: JoinKind, predicate: Optional[ScalarExpr]):
        self.kind = kind
        self.predicate = predicate

    def local_key(self) -> tuple:
        return ("HashJoin", self.kind.value, self.predicate)

    def describe(self) -> str:
        return f"HashJoin({self.kind.value})[{self.predicate}]"


class MergeJoin(PhysicalOp):
    """Sort-merge join (sorting both inputs is folded into its cost)."""

    def __init__(self, kind: JoinKind, predicate: Optional[ScalarExpr]):
        self.kind = kind
        self.predicate = predicate

    def local_key(self) -> tuple:
        return ("MergeJoin", self.kind.value, self.predicate)

    def describe(self) -> str:
        return f"MergeJoin({self.kind.value})[{self.predicate}]"


class NestedLoopJoin(PhysicalOp):
    """Naive nested loops; the fallback for non-equi predicates."""

    def __init__(self, kind: JoinKind, predicate: Optional[ScalarExpr]):
        self.kind = kind
        self.predicate = predicate

    def local_key(self) -> tuple:
        return ("NestedLoopJoin", self.kind.value, self.predicate)

    def describe(self) -> str:
        return f"NestedLoopJoin({self.kind.value})[{self.predicate}]"


class HashAggregate(PhysicalOp):
    """Hash-based grouping; ``phase`` distinguishes partial (local) from
    complete/global aggregation in local-global splits."""

    def __init__(self, keys: Sequence[ColumnVar],
                 aggregates: Sequence[Tuple[ColumnVar, AggExpr]],
                 phase: str = "complete"):
        self.keys = list(keys)
        self.aggregates = list(aggregates)
        self.phase = phase

    def local_key(self) -> tuple:
        return ("HashAggregate", self.phase,
                tuple(k.id for k in self.keys),
                tuple((var.id, agg) for var, agg in self.aggregates))

    def describe(self) -> str:
        keys = ", ".join(str(k) for k in self.keys)
        return f"HashAggregate[{keys}]"


class StreamAggregate(PhysicalOp):
    """Sort-based grouping (input sort folded into cost)."""

    def __init__(self, keys: Sequence[ColumnVar],
                 aggregates: Sequence[Tuple[ColumnVar, AggExpr]],
                 phase: str = "complete"):
        self.keys = list(keys)
        self.aggregates = list(aggregates)
        self.phase = phase

    def local_key(self) -> tuple:
        return ("StreamAggregate", self.phase,
                tuple(k.id for k in self.keys),
                tuple((var.id, agg) for var, agg in self.aggregates))

    def describe(self) -> str:
        keys = ", ".join(str(k) for k in self.keys)
        return f"StreamAggregate[{keys}]"


class Sort(PhysicalOp):
    """Explicit sort, used at the query root for ORDER BY."""

    def __init__(self, order: Sequence[Tuple[ColumnVar, bool]]):
        self.order = list(order)

    def local_key(self) -> tuple:
        return ("Sort", tuple((var.id, asc) for var, asc in self.order))

    def describe(self) -> str:
        inner = ", ".join(
            f"{var}{'' if asc else ' DESC'}" for var, asc in self.order)
        return f"Sort[{inner}]"


class Top(PhysicalOp):
    """Keep the first N rows."""

    def __init__(self, limit: int):
        self.limit = limit

    def local_key(self) -> tuple:
        return ("Top", self.limit)

    def describe(self) -> str:
        return f"Top({self.limit})"


class UnionAllOp(PhysicalOp):
    """Physical bag union."""

    def __init__(self, outputs: Sequence[ColumnVar]):
        self.outputs = list(outputs)

    def local_key(self) -> tuple:
        return ("UnionAll", tuple(c.id for c in self.outputs))


class PlanNode:
    """A node of an extracted plan tree.

    ``op`` is a :class:`PhysicalOp` (or a PDW data-movement operator, which
    implements the same ``describe``/``local_key`` protocol); ``children``
    are :class:`PlanNode`; the remaining fields are derived properties used
    for costing and display.
    """

    def __init__(self, op, children: Sequence["PlanNode"] = (),
                 output_columns: Sequence[ColumnVar] = (),
                 cardinality: float = 0.0,
                 row_width: float = 0.0,
                 cost: float = 0.0):
        self.op = op
        self.children = list(children)
        self.output_columns = list(output_columns)
        self.cardinality = cardinality
        self.row_width = row_width
        self.cost = cost

    def tree_string(self, indent: int = 0) -> str:
        label = self.op.describe()
        line = ("  " * indent
                + f"{label}  (rows={self.cardinality:.0f}, cost={self.cost:.2f})")
        lines = [line]
        for child in self.children:
            lines.append(child.tree_string(indent + 1))
        return "\n".join(lines)

    def total_cost(self) -> float:
        return self.cost

    def walk(self):
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def clone_tree(self) -> "PlanNode":
        """Structural copy of the tree (operators are shared, nodes are
        not) — for consumers that rewrite plan trees in place."""
        return PlanNode(
            self.op,
            [child.clone_tree() for child in self.children],
            output_columns=list(self.output_columns),
            cardinality=self.cardinality,
            row_width=self.row_width,
            cost=self.cost,
        )
