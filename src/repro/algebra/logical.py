"""Logical relational operators.

These form the normalized operator tree the binder produces (Figure 3(b) in
the paper) and the *logical* group expressions inside the MEMO.  Each
operator exposes:

* ``children`` — its logical inputs,
* ``output_columns()`` — the :class:`ColumnVar` list it produces,
* ``local_key()`` — a hashable description of the operator *excluding* its
  children, which the MEMO combines with child group ids to deduplicate
  group expressions.

ORDER BY / TOP live outside the algebra on the :class:`Query` wrapper — in
PDW the final sort happens when results are returned through the control
node, so it never participates in join reordering.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from repro.algebra.expressions import (
    AggExpr,
    ColumnVar,
    ScalarExpr,
    conjuncts,
)
from repro.catalog.schema import TableDef


class JoinKind(enum.Enum):
    INNER = "inner"
    LEFT = "left"
    SEMI = "semi"
    ANTI = "anti"
    CROSS = "cross"

    @property
    def returns_right_columns(self) -> bool:
        return self in (JoinKind.INNER, JoinKind.LEFT, JoinKind.CROSS)


class LogicalOp:
    """Base class for logical operators."""

    children: List["LogicalOp"]

    def output_columns(self) -> List[ColumnVar]:
        raise NotImplementedError

    def local_key(self) -> tuple:
        """Hashable identity excluding children (used for MEMO dedup)."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__.replace("Logical", "")

    def describe(self) -> str:
        """Short human-readable label for plan printing."""
        return self.name


class LogicalGet(LogicalOp):
    """Read all rows of a base (or temp) table.

    Each Get instance owns the column variables that stand for the table's
    columns in this query; two Gets of the same table in one query have
    distinct variables, exactly like two range variables in SQL.
    """

    def __init__(self, table: TableDef, columns: Sequence[ColumnVar],
                 alias: Optional[str] = None):
        self.table = table
        self.columns = list(columns)
        self.alias = alias or table.name
        self.children = []

    def output_columns(self) -> List[ColumnVar]:
        return list(self.columns)

    def local_key(self) -> tuple:
        return ("Get", self.table.name, tuple(c.id for c in self.columns))

    def describe(self) -> str:
        return f"Get({self.alias})"


class LogicalSelect(LogicalOp):
    """Filter rows by a predicate."""

    def __init__(self, child: LogicalOp, predicate: ScalarExpr):
        self.children = [child]
        self.predicate = predicate

    @property
    def child(self) -> LogicalOp:
        return self.children[0]

    def output_columns(self) -> List[ColumnVar]:
        return self.child.output_columns()

    def local_key(self) -> tuple:
        return ("Select", self.predicate)

    def describe(self) -> str:
        return f"Select[{self.predicate}]"


class LogicalProject(LogicalOp):
    """Compute output columns; each output var is defined by an expression.

    Pass-through columns are represented by an output var whose defining
    expression is itself (identity projection).
    """

    def __init__(self, child: LogicalOp,
                 outputs: Sequence[Tuple[ColumnVar, ScalarExpr]]):
        self.children = [child]
        self.outputs = list(outputs)

    @property
    def child(self) -> LogicalOp:
        return self.children[0]

    def output_columns(self) -> List[ColumnVar]:
        return [var for var, _ in self.outputs]

    def local_key(self) -> tuple:
        return ("Project", tuple((var.id, expr) for var, expr in self.outputs))

    def describe(self) -> str:
        inner = ", ".join(f"{var}:={expr}" for var, expr in self.outputs)
        return f"Project[{inner}]"


class LogicalJoin(LogicalOp):
    """A join of any :class:`JoinKind`; ``predicate`` may be ``None`` for
    CROSS."""

    def __init__(self, kind: JoinKind, left: LogicalOp, right: LogicalOp,
                 predicate: Optional[ScalarExpr] = None):
        self.kind = kind
        self.children = [left, right]
        self.predicate = predicate

    @property
    def left(self) -> LogicalOp:
        return self.children[0]

    @property
    def right(self) -> LogicalOp:
        return self.children[1]

    def output_columns(self) -> List[ColumnVar]:
        cols = self.left.output_columns()
        if self.kind.returns_right_columns:
            cols = cols + self.right.output_columns()
        return cols

    def local_key(self) -> tuple:
        return ("Join", self.kind.value, self.predicate)

    def describe(self) -> str:
        pred = f"[{self.predicate}]" if self.predicate is not None else ""
        return f"{self.kind.value.capitalize()}Join{pred}"


class AggPhase(enum.Enum):
    """Phase of a (possibly split) aggregation.

    The SQL Server exploration generates local/global splits as MEMO
    alternatives; the PDW preprocessor later fixes partial-aggregate
    cardinalities based on appliance topology (paper Figure 4, step 02).
    """

    COMPLETE = "complete"
    LOCAL = "local"      # partial aggregation, runs on each node's data
    GLOBAL = "global"    # combines partials; needs key-aligned distribution


class LogicalGroupBy(LogicalOp):
    """Grouped aggregation; with no aggregates it is DISTINCT over keys."""

    def __init__(self, child: LogicalOp, keys: Sequence[ColumnVar],
                 aggregates: Sequence[Tuple[ColumnVar, AggExpr]],
                 phase: "AggPhase" = None):
        self.children = [child]
        self.keys = list(keys)
        self.aggregates = list(aggregates)
        self.phase = phase or AggPhase.COMPLETE

    @property
    def child(self) -> LogicalOp:
        return self.children[0]

    def output_columns(self) -> List[ColumnVar]:
        return list(self.keys) + [var for var, _ in self.aggregates]

    def local_key(self) -> tuple:
        return (
            "GroupBy",
            self.phase.value,
            tuple(k.id for k in self.keys),
            tuple((var.id, agg) for var, agg in self.aggregates),
        )

    def describe(self) -> str:
        keys = ", ".join(str(k) for k in self.keys)
        aggs = ", ".join(f"{var}:={agg}" for var, agg in self.aggregates)
        prefix = {"complete": "", "local": "Local", "global": "Global"}
        return f"{prefix[self.phase.value]}GroupBy[{keys}][{aggs}]"


class LogicalUnionAll(LogicalOp):
    """Bag union; children must produce union-compatible columns.

    ``outputs`` are fresh variables standing for the union's columns and
    ``branch_columns[i]`` lists, positionally, which child-``i`` column
    feeds each output.
    """

    def __init__(self, inputs: Sequence[LogicalOp],
                 outputs: Sequence[ColumnVar],
                 branch_columns: Sequence[Sequence[ColumnVar]]):
        self.children = list(inputs)
        self.outputs = list(outputs)
        self.branch_columns = [list(branch) for branch in branch_columns]

    def output_columns(self) -> List[ColumnVar]:
        return list(self.outputs)

    def local_key(self) -> tuple:
        return (
            "UnionAll",
            tuple(c.id for c in self.outputs),
            tuple(tuple(c.id for c in branch)
                  for branch in self.branch_columns),
        )

    def describe(self) -> str:
        return f"UnionAll[{', '.join(str(v) for v in self.outputs)}]"


def detached_union(outputs: Sequence[ColumnVar],
                   branch_columns: Sequence[Sequence[ColumnVar]]
                   ) -> LogicalUnionAll:
    """A UnionAll operator with no child links (MEMO use)."""
    union = LogicalUnionAll.__new__(LogicalUnionAll)
    union.children = []
    union.outputs = list(outputs)
    union.branch_columns = [list(branch) for branch in branch_columns]
    return union


def detached_join(kind: JoinKind,
                  predicate: Optional[ScalarExpr]) -> LogicalJoin:
    """A Join operator with no child links — for use as a MEMO group
    expression, where children are group ids instead of operators."""
    join = LogicalJoin.__new__(LogicalJoin)
    join.kind = kind
    join.children = []
    join.predicate = predicate
    return join


def detached_groupby(keys: Sequence[ColumnVar],
                     aggregates: Sequence[Tuple[ColumnVar, AggExpr]],
                     phase: AggPhase = AggPhase.COMPLETE) -> LogicalGroupBy:
    """A GroupBy operator with no child links (MEMO use)."""
    group_by = LogicalGroupBy.__new__(LogicalGroupBy)
    group_by.children = []
    group_by.keys = list(keys)
    group_by.aggregates = list(aggregates)
    group_by.phase = phase
    return group_by


def detached_select(predicate: ScalarExpr) -> LogicalSelect:
    """A Select operator with no child links (MEMO use)."""
    select = LogicalSelect.__new__(LogicalSelect)
    select.children = []
    select.predicate = predicate
    return select


class Query:
    """A bound query: a logical tree plus presentation clauses.

    ``order_by`` entries are ``(ColumnVar, ascending)``; ``output_names``
    are the user-facing column labels in select-list order.
    """

    def __init__(self, root: LogicalOp,
                 output_names: Sequence[str],
                 order_by: Sequence[Tuple[ColumnVar, bool]] = (),
                 limit: Optional[int] = None):
        self.root = root
        self.output_names = list(output_names)
        self.order_by = list(order_by)
        self.limit = limit

    def output_columns(self) -> List[ColumnVar]:
        return self.root.output_columns()


def plan_tree_string(op: LogicalOp, indent: int = 0) -> str:
    """Pretty-print a logical tree for debugging and examples."""
    lines = ["  " * indent + op.describe()]
    for child in op.children:
        lines.append(plan_tree_string(child, indent + 1))
    return "\n".join(lines)


def collect_gets(op: LogicalOp) -> List[LogicalGet]:
    """All base-table Gets under ``op`` in left-to-right order."""
    if isinstance(op, LogicalGet):
        return [op]
    result: List[LogicalGet] = []
    for child in op.children:
        result.extend(collect_gets(child))
    return result


def predicate_conjuncts(op: LogicalOp) -> List[ScalarExpr]:
    """All filter/join conjuncts in the tree (for analysis/tests)."""
    found: List[ScalarExpr] = []
    if isinstance(op, LogicalSelect):
        found.extend(conjuncts(op.predicate))
    if isinstance(op, LogicalJoin) and op.predicate is not None:
        found.extend(conjuncts(op.predicate))
    for child in op.children:
        found.extend(predicate_conjuncts(child))
    return found
