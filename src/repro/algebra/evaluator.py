"""Evaluation of bound scalar expressions.

One evaluator serves three masters: constant folding in the normalizer,
row-at-a-time evaluation in the appliance's node executor, and direct
evaluation in tests.  SQL three-valued logic is honoured: ``None`` is NULL,
comparisons with NULL yield NULL, and AND/OR follow Kleene semantics.
"""

from __future__ import annotations

import datetime
import re
from typing import Dict, Optional

from repro.algebra import expressions as ex
from repro.common.errors import ExecutionError
from repro.common.types import TypeKind


class UnboundColumn(Exception):
    """Raised when evaluation hits a column missing from the environment
    (used by constant folding to mean "not a constant")."""


def evaluate(expr: ex.ScalarExpr, env: Optional[Dict[int, object]] = None):
    """Evaluate ``expr`` with column values from ``env`` (var id → value)."""
    env = env or {}

    if isinstance(expr, ex.Constant):
        return expr.value

    if isinstance(expr, ex.ColumnVar):
        if expr.id not in env:
            raise UnboundColumn(expr.id)
        return env[expr.id]

    if isinstance(expr, ex.Comparison):
        left = evaluate(expr.left, env)
        right = evaluate(expr.right, env)
        return _compare(expr.op, left, right)

    if isinstance(expr, ex.Arithmetic):
        left = evaluate(expr.left, env)
        right = evaluate(expr.right, env)
        return _arithmetic(expr.op, left, right)

    if isinstance(expr, ex.BoolOp):
        return _bool_op(expr, env)

    if isinstance(expr, ex.NotExpr):
        value = evaluate(expr.operand, env)
        return None if value is None else (not value)

    if isinstance(expr, ex.LikeExpr):
        value = evaluate(expr.operand, env)
        if value is None:
            return None
        matched = _like_match(str(value), expr.pattern)
        return (not matched) if expr.negated else matched

    if isinstance(expr, ex.InListExpr):
        value = evaluate(expr.operand, env)
        if value is None:
            return None
        found = value in expr.values
        return (not found) if expr.negated else found

    if isinstance(expr, ex.IsNullExpr):
        value = evaluate(expr.operand, env)
        is_null = value is None
        return (not is_null) if expr.negated else is_null

    if isinstance(expr, ex.CastExpr):
        return _cast(evaluate(expr.operand, env), expr.target.kind)

    if isinstance(expr, ex.CaseWhen):
        for condition, result in expr.whens:
            if evaluate(condition, env) is True:
                return evaluate(result, env)
        if expr.otherwise is not None:
            return evaluate(expr.otherwise, env)
        return None

    if isinstance(expr, ex.FuncExpr):
        return _scalar_function(expr, env)

    if isinstance(expr, ex.AggExpr):
        raise ExecutionError("aggregate evaluated outside GroupBy")

    raise ExecutionError(f"cannot evaluate {type(expr).__name__}")


def _compare(op: str, left, right):
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"unknown comparison {op}")


def _arithmetic(op: str, left, right):
    if left is None or right is None:
        return None
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        result = left / right
        return result
    if op == "%":
        if right == 0:
            raise ExecutionError("division by zero")
        return left % right
    if op == "||":
        return str(left) + str(right)
    raise ExecutionError(f"unknown arithmetic operator {op}")


def _bool_op(expr: ex.BoolOp, env):
    saw_null = False
    if expr.op == "AND":
        for arg in expr.args:
            value = evaluate(arg, env)
            if value is False:
                return False
            if value is None:
                saw_null = True
        return None if saw_null else True
    for arg in expr.args:  # OR
        value = evaluate(arg, env)
        if value is True:
            return True
        if value is None:
            saw_null = True
    return None if saw_null else False


_LIKE_CACHE: Dict[str, "re.Pattern[str]"] = {}


def _like_regex(pattern: str) -> "re.Pattern[str]":
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        regex = "".join(
            ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
            for ch in pattern
        )
        compiled = re.compile(f"^{regex}$", re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled


def _like_match(value: str, pattern: str) -> bool:
    return _like_regex(pattern).match(value) is not None


def _cast(value, kind: TypeKind):
    if value is None:
        return None
    if kind in (TypeKind.INTEGER, TypeKind.BIGINT):
        return int(value)
    if kind in (TypeKind.DECIMAL, TypeKind.DOUBLE):
        return float(value)
    if kind in (TypeKind.VARCHAR, TypeKind.CHAR):
        return str(value)
    if kind is TypeKind.DATE:
        if isinstance(value, datetime.date):
            return value
        return datetime.date.fromisoformat(str(value).split(" ")[0])
    if kind is TypeKind.BOOLEAN:
        return bool(value)
    raise ExecutionError(f"unsupported cast target {kind}")


def _scalar_function(expr: ex.FuncExpr, env):
    args = [evaluate(a, env) for a in expr.args]
    if any(a is None for a in args):
        return None
    return apply_scalar_function(expr.name.upper(), args)


def apply_scalar_function(name: str, args):
    """Dispatch a scalar function over already-evaluated, non-NULL args.

    Shared by the tree-walking evaluator and the closure compiler
    (:mod:`repro.algebra.compiler`) so both backends agree exactly.
    """
    if name == "DATEADD":
        unit, amount, base = args
        base_date = _cast(base, TypeKind.DATE)
        amount = int(amount)
        unit = str(unit).lower()
        if unit == "day":
            return base_date + datetime.timedelta(days=amount)
        if unit == "month":
            month_index = base_date.month - 1 + amount
            year = base_date.year + month_index // 12
            month = month_index % 12 + 1
            day = min(base_date.day, _days_in_month(year, month))
            return datetime.date(year, month, day)
        if unit == "year":
            try:
                return base_date.replace(year=base_date.year + amount)
            except ValueError:  # Feb 29 → Feb 28
                return base_date.replace(year=base_date.year + amount, day=28)
        raise ExecutionError(f"unsupported DATEADD unit {unit!r}")

    if name == "SUBSTRING":
        text, start, length = str(args[0]), int(args[1]), int(args[2])
        return text[start - 1:start - 1 + length]

    if name in ("YEAR", "MONTH", "DAY"):
        date_value = _cast(args[0], TypeKind.DATE)
        return getattr(date_value, name.lower())

    if name == "EXTRACT":
        part, date_value = str(args[0]).lower(), _cast(args[1], TypeKind.DATE)
        return getattr(date_value, part)

    raise ExecutionError(f"unsupported function {name}")


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        return 31
    first = datetime.date(year, month, 1)
    next_first = datetime.date(year + month // 12, month % 12 + 1, 1)
    return (next_first - first).days


def try_fold(expr: ex.ScalarExpr) -> Optional[object]:
    """Evaluate ``expr`` if it is constant; ``None`` means *not constant*
    (NULL constants fold to a Constant(None) upstream, never through here).
    """
    if expr.columns_used():
        return None
    try:
        return evaluate(expr, {})
    except (UnboundColumn, ExecutionError):
        return None
