"""Bound algebra: scalar expressions, logical/physical operators,
distribution properties, the shared expression evaluator, and the
closure compiler backing the compiled execution path."""

from repro.algebra import (
    compiler,
    evaluator,
    expressions,
    logical,
    physical,
    properties,
)

__all__ = ["compiler", "evaluator", "expressions", "logical", "physical",
           "properties"]
