"""Bound algebra: scalar expressions, logical/physical operators,
distribution properties, and the shared expression evaluator."""

from repro.algebra import expressions, evaluator, logical, physical, properties

__all__ = ["expressions", "evaluator", "logical", "physical", "properties"]
