"""Physical properties: data distribution and column equivalence.

The PDW optimizer's *interesting properties* (paper §3.2) are distributions
— "results hashed on column c" — extending System R's interesting orders.
:class:`Distribution` describes how an intermediate result is placed across
the appliance; :class:`ColumnEquivalence` tracks which column variables are
known equal (from equality predicates), so a result hashed on ``o_custkey``
also satisfies a requirement for ``c_custkey`` after the join predicate
``o_custkey = c_custkey`` has been applied.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.algebra.expressions import ColumnVar, Comparison, ScalarExpr, conjuncts


class DistKind(enum.Enum):
    """Placement of an intermediate result."""

    HASHED = "hashed"          # hash-partitioned across compute nodes
    REPLICATED = "replicated"  # full copy on every compute node
    ON_CONTROL = "control"     # single copy on the control node
    SINGLE_NODE = "single"     # single copy on one compute node


@dataclass(frozen=True)
class Distribution:
    """A delivered or required distribution property.

    ``columns`` holds the hash-column variable ids (HASHED only).  The
    paper's DSQL examples always shuffle on a single column, but the type
    supports compound keys.
    """

    kind: DistKind
    columns: Tuple[int, ...] = ()

    def __post_init__(self):
        if self.kind is DistKind.HASHED and not self.columns:
            raise ValueError("HASHED distribution requires columns")
        if self.kind is not DistKind.HASHED and self.columns:
            raise ValueError(f"{self.kind.value} takes no columns")

    @property
    def is_partitioned(self) -> bool:
        return self.kind is DistKind.HASHED

    @property
    def is_on_single_node(self) -> bool:
        return self.kind in (DistKind.ON_CONTROL, DistKind.SINGLE_NODE)

    def describe(self, names: Optional[Dict[int, str]] = None) -> str:
        if self.kind is DistKind.HASHED:
            cols = ", ".join(
                names.get(c, f"#{c}") if names else f"#{c}" for c in self.columns
            )
            return f"hashed({cols})"
        return self.kind.value

    def __str__(self) -> str:
        return self.describe()


REPLICATED_DIST = Distribution(DistKind.REPLICATED)
ON_CONTROL_DIST = Distribution(DistKind.ON_CONTROL)
SINGLE_NODE_DIST = Distribution(DistKind.SINGLE_NODE)


def hashed_on(*column_ids: int) -> Distribution:
    return Distribution(DistKind.HASHED, tuple(column_ids))


class ColumnEquivalence:
    """Union-find over column variable ids.

    Built from equality predicates; answers "does a result hashed on X
    satisfy a requirement hashed on Y?"  This is how join transitivity
    closure (paper §4, Q20 discussion) feeds distribution matching.
    """

    def __init__(self):
        self._parent: Dict[int, int] = {}

    def _find(self, x: int) -> int:
        parent = self._parent.setdefault(x, x)
        if parent != x:
            root = self._find(parent)
            self._parent[x] = root
            return root
        return x

    def add_equality(self, a: int, b: int) -> None:
        root_a, root_b = self._find(a), self._find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a

    def add_from_predicate(self, predicate: Optional[ScalarExpr]) -> None:
        """Record every ``col = col`` conjunct of ``predicate``."""
        for conj in conjuncts(predicate):
            if (isinstance(conj, Comparison) and conj.op == "="
                    and isinstance(conj.left, ColumnVar)
                    and isinstance(conj.right, ColumnVar)):
                self.add_equality(conj.left.id, conj.right.id)

    def are_equivalent(self, a: int, b: int) -> bool:
        return self._find(a) == self._find(b)

    def representative(self, x: int) -> int:
        return self._find(x)

    def equivalence_class(self, x: int) -> FrozenSet[int]:
        root = self._find(x)
        return frozenset(
            member for member in self._parent if self._find(member) == root
        ) or frozenset((x,))

    def copy(self) -> "ColumnEquivalence":
        clone = ColumnEquivalence()
        clone._parent = dict(self._parent)
        return clone


def distribution_satisfies(delivered: Distribution,
                           required: Distribution,
                           equivalence: Optional[ColumnEquivalence] = None) -> bool:
    """Does ``delivered`` satisfy ``required``?

    * Exact kind/column match always satisfies.
    * HASHED requirements are satisfied by a hashing on *equivalent*
      columns (same equivalence classes, in order).
    * A replicated result satisfies any single-compute-node requirement is
      NOT assumed — replication is its own property.
    """
    if delivered == required:
        return True
    if (delivered.kind is DistKind.HASHED and required.kind is DistKind.HASHED
            and len(delivered.columns) == len(required.columns)
            and equivalence is not None):
        return all(
            equivalence.are_equivalent(d, r)
            for d, r in zip(delivered.columns, required.columns)
        )
    return False


def distributions_collocated_for_join(
        left: Distribution, right: Distribution,
        join_pairs: Iterable[Tuple[ColumnVar, ColumnVar]],
        equivalence: Optional[ColumnEquivalence] = None) -> bool:
    """Can a join with equi-columns ``join_pairs`` run without data movement?

    True when:

    * either side is replicated (the other side stays put),
    * both sides sit on the same single node class (both on control), or
    * both are hash-partitioned on a pairing of join-equivalent columns.
    """
    if left.kind is DistKind.REPLICATED or right.kind is DistKind.REPLICATED:
        return True
    if left.kind is DistKind.ON_CONTROL and right.kind is DistKind.ON_CONTROL:
        return True
    if left.kind is DistKind.HASHED and right.kind is DistKind.HASHED:
        pairs = list(join_pairs)
        if len(left.columns) != len(right.columns):
            return False

        def columns_match(left_col: int, right_col: int) -> bool:
            for left_var, right_var in pairs:
                left_ok = left_col == left_var.id or (
                    equivalence is not None
                    and equivalence.are_equivalent(left_col, left_var.id))
                right_ok = right_col == right_var.id or (
                    equivalence is not None
                    and equivalence.are_equivalent(right_col, right_var.id))
                if left_ok and right_ok:
                    return True
            return False

        return all(
            columns_match(lc, rc)
            for lc, rc in zip(left.columns, right.columns)
        )
    return False
