"""Compilation of bound scalar expressions into Python closures.

The tree-walking :func:`repro.algebra.evaluator.evaluate` pays isinstance
dispatch and attribute traffic for every node on every row.  This module
walks each :class:`~repro.algebra.expressions.ScalarExpr` tree **once**
and returns a closure ``env -> value`` whose per-row work is just the
captured operations — the executor's hot path calls the closure instead
of re-interpreting the tree.

Semantics are identical to the evaluator by construction:

* SQL three-valued logic — NULL (``None``) operands propagate through
  comparisons/arithmetic, AND/OR follow Kleene semantics;
* operand evaluation order matches (both sides are evaluated before the
  NULL check, so errors surface identically);
* error behaviour matches — missing columns raise
  :class:`~repro.algebra.evaluator.UnboundColumn`, division by zero and
  unsupported constructs raise :class:`ExecutionError` *at row time*,
  never at compile time (an operator over an empty input must not fail).

LIKE patterns are compiled to regexes and IN lists to hash sets at
compile time, so that cost is paid once per operator rather than once
per row.  Compiled closures are memoized per expression object, so a
step whose bound tree is cached and re-run on every compute node
compiles each expression exactly once.
"""

from __future__ import annotations

import operator
import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.algebra import expressions as ex
from repro.algebra.evaluator import (
    UnboundColumn,
    _cast,
    _like_regex,
    apply_scalar_function,
)
from repro.common.errors import ExecutionError

Env = Dict[int, object]
CompiledExpr = Callable[[Env], object]

_COMPARISONS: Dict[str, Callable] = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_PLAIN_ARITHMETIC: Dict[str, Callable] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}

# Compiled-closure memo, keyed by expression *identity*.  Value equality
# would be wrong here: dataclass ``==`` calls ``Constant(0) ==
# Constant(False)`` equal (Python's ``0 == False``), yet Kleene logic
# distinguishes them with ``is True`` / ``is False`` checks.  Identity
# still captures the win that matters — a step's bound tree is cached in
# the DMS runtime and re-run per node, so each expression object
# compiles once.  Entries pin their key expression, so a live entry's id
# cannot be reused by a different object; bounded so a long-lived
# session cannot grow the memo without limit.
_CACHE: Dict[int, Tuple[ex.ScalarExpr, CompiledExpr]] = {}
_CACHE_LIMIT = 8192
# Re-entrant: _compile recurses through compile_expr for operands.  The
# parallel runtime compiles the same cached bound tree from one worker
# per node, so the memo insert/evict pair must be atomic.
_CACHE_LOCK = threading.RLock()


def compile_expr(expr: ex.ScalarExpr) -> CompiledExpr:
    """Compile ``expr`` into a closure ``env -> value``.  Thread-safe."""
    key = id(expr)
    with _CACHE_LOCK:
        entry = _CACHE.get(key)
        if entry is not None and entry[0] is expr:
            return entry[1]
        fn = _compile(expr)
        if len(_CACHE) >= _CACHE_LIMIT:
            _CACHE.clear()
        _CACHE[key] = (expr, fn)
        return fn


def compile_predicate(expr: Optional[ex.ScalarExpr]) -> Callable[[Env], bool]:
    """Compile a predicate into ``env -> bool`` (NULL counts as False)."""
    if expr is None:
        return lambda env: True
    fn = compile_expr(expr)
    return lambda env: fn(env) is True


def compile_projection(
    outputs,
) -> Callable[[Env], Env]:
    """Compile ``(ColumnVar, ScalarExpr)`` pairs into ``env -> new env``."""
    compiled: List[Tuple[int, CompiledExpr]] = [
        (var.id, compile_expr(expr)) for var, expr in outputs
    ]
    return lambda env: {var_id: fn(env) for var_id, fn in compiled}


def clear_cache() -> None:
    """Drop all memoized closures (tests / memory pressure)."""
    with _CACHE_LOCK:
        _CACHE.clear()


# -- node compilers --------------------------------------------------------------


def _compile(expr: ex.ScalarExpr) -> CompiledExpr:
    if isinstance(expr, ex.Constant):
        value = expr.value
        return lambda env: value

    if isinstance(expr, ex.ColumnVar):
        var_id = expr.id

        def load_column(env):
            try:
                return env[var_id]
            except KeyError:
                raise UnboundColumn(var_id) from None

        return load_column

    if isinstance(expr, ex.Comparison):
        return _compile_comparison(expr)

    if isinstance(expr, ex.Arithmetic):
        return _compile_arithmetic(expr)

    if isinstance(expr, ex.BoolOp):
        return _compile_bool_op(expr)

    if isinstance(expr, ex.NotExpr):
        operand = compile_expr(expr.operand)

        def negate(env):
            value = operand(env)
            return None if value is None else (not value)

        return negate

    if isinstance(expr, ex.LikeExpr):
        return _compile_like(expr)

    if isinstance(expr, ex.InListExpr):
        return _compile_in_list(expr)

    if isinstance(expr, ex.IsNullExpr):
        operand = compile_expr(expr.operand)
        if expr.negated:
            return lambda env: operand(env) is not None
        return lambda env: operand(env) is None

    if isinstance(expr, ex.CastExpr):
        operand = compile_expr(expr.operand)
        kind = expr.target.kind
        return lambda env: _cast(operand(env), kind)

    if isinstance(expr, ex.CaseWhen):
        return _compile_case(expr)

    if isinstance(expr, ex.FuncExpr):
        return _compile_function(expr)

    if isinstance(expr, ex.AggExpr):
        return _raising("aggregate evaluated outside GroupBy")

    return _raising(f"cannot evaluate {type(expr).__name__}")


def _raising(message: str) -> CompiledExpr:
    def fail(env):
        raise ExecutionError(message)

    return fail


def _compile_comparison(expr: ex.Comparison) -> CompiledExpr:
    compare = _COMPARISONS.get(expr.op)
    if compare is None:
        return _raising(f"unknown comparison {expr.op}")

    # Fused shapes for the hot cases.  Semantics match the generic
    # closure below exactly: a constant operand has no side effects, so
    # only its *value* matters to evaluation order, and a missing column
    # raises UnboundColumn before anything else — as the evaluator's
    # left-to-right operand evaluation would.
    left_is_const = isinstance(expr.left, ex.Constant)
    right_is_const = isinstance(expr.right, ex.Constant)

    if (isinstance(expr.left, ex.ColumnVar)
            and isinstance(expr.right, ex.ColumnVar)):
        left_id = expr.left.id
        right_id = expr.right.id

        def compare_columns(env):
            try:
                left_value = env[left_id]
                right_value = env[right_id]
            except KeyError as exc:
                raise UnboundColumn(exc.args[0]) from None
            if left_value is None or right_value is None:
                return None
            return compare(left_value, right_value)

        return compare_columns

    if right_is_const and not left_is_const:
        constant = expr.right.value
        left = compile_expr(expr.left)
        if constant is None:

            def left_then_null(env):
                left(env)
                return None

            return left_then_null

        def compare_right_const(env):
            left_value = left(env)
            if left_value is None:
                return None
            return compare(left_value, constant)

        return compare_right_const

    if left_is_const and not right_is_const:
        constant = expr.left.value
        right = compile_expr(expr.right)
        if constant is None:

            def right_then_null(env):
                right(env)
                return None

            return right_then_null

        def compare_left_const(env):
            right_value = right(env)
            if right_value is None:
                return None
            return compare(constant, right_value)

        return compare_left_const

    left = compile_expr(expr.left)
    right = compile_expr(expr.right)

    def comparison(env):
        left_value = left(env)
        right_value = right(env)
        if left_value is None or right_value is None:
            return None
        return compare(left_value, right_value)

    return comparison


def _compile_arithmetic(expr: ex.Arithmetic) -> CompiledExpr:
    apply = _PLAIN_ARITHMETIC.get(expr.op)
    if apply is not None:
        # Constant-operand fusion for + - * (the common literal shapes
        # like ``1 - l_discount``); a non-NULL constant never short
        # circuits, so only the other operand needs per-row work.
        if (isinstance(expr.right, ex.Constant)
                and expr.right.value is not None
                and not isinstance(expr.left, ex.Constant)):
            constant = expr.right.value
            left = compile_expr(expr.left)

            def apply_right_const(env):
                left_value = left(env)
                if left_value is None:
                    return None
                return apply(left_value, constant)

            return apply_right_const

        if (isinstance(expr.left, ex.Constant)
                and expr.left.value is not None
                and not isinstance(expr.right, ex.Constant)):
            constant = expr.left.value
            right = compile_expr(expr.right)

            def apply_left_const(env):
                right_value = right(env)
                if right_value is None:
                    return None
                return apply(constant, right_value)

            return apply_left_const

    left = compile_expr(expr.left)
    right = compile_expr(expr.right)
    if apply is not None:

        def arithmetic(env):
            left_value = left(env)
            right_value = right(env)
            if left_value is None or right_value is None:
                return None
            return apply(left_value, right_value)

        return arithmetic

    if expr.op in ("/", "%"):
        modulo = expr.op == "%"

        def divide(env):
            left_value = left(env)
            right_value = right(env)
            if left_value is None or right_value is None:
                return None
            if right_value == 0:
                raise ExecutionError("division by zero")
            if modulo:
                return left_value % right_value
            return left_value / right_value

        return divide

    if expr.op == "||":

        def concat(env):
            left_value = left(env)
            right_value = right(env)
            if left_value is None or right_value is None:
                return None
            return str(left_value) + str(right_value)

        return concat

    return _raising(f"unknown arithmetic operator {expr.op}")


def _compile_bool_op(expr: ex.BoolOp) -> CompiledExpr:
    args = [compile_expr(a) for a in expr.args]
    if len(args) == 2:
        # Unrolled binary AND/OR — same left-to-right evaluation and the
        # same short-circuit-on-decisive-value as the generic loops.
        first, second = args
        if expr.op == "AND":

            def conjunction2(env):
                left_value = first(env)
                if left_value is False:
                    return False
                right_value = second(env)
                if right_value is False:
                    return False
                if left_value is None or right_value is None:
                    return None
                return True

            return conjunction2

        def disjunction2(env):
            left_value = first(env)
            if left_value is True:
                return True
            right_value = second(env)
            if right_value is True:
                return True
            if left_value is None or right_value is None:
                return None
            return False

        return disjunction2

    if expr.op == "AND":

        def conjunction(env):
            saw_null = False
            for arg in args:
                value = arg(env)
                if value is False:
                    return False
                if value is None:
                    saw_null = True
            return None if saw_null else True

        return conjunction

    def disjunction(env):
        saw_null = False
        for arg in args:
            value = arg(env)
            if value is True:
                return True
            if value is None:
                saw_null = True
        return None if saw_null else False

    return disjunction


def _compile_like(expr: ex.LikeExpr) -> CompiledExpr:
    operand = compile_expr(expr.operand)
    match = _like_regex(expr.pattern).match
    negated = expr.negated

    def like(env):
        value = operand(env)
        if value is None:
            return None
        matched = match(str(value)) is not None
        return (not matched) if negated else matched

    return like


def _compile_in_list(expr: ex.InListExpr) -> CompiledExpr:
    operand = compile_expr(expr.operand)
    negated = expr.negated
    values = expr.values
    try:
        table = frozenset(values)
    except TypeError:  # unhashable literal — keep the linear scan
        table = None

    if table is not None:

        def in_set(env):
            value = operand(env)
            if value is None:
                return None
            try:
                found = value in table
            except TypeError:  # unhashable probe value
                found = value in values
            return (not found) if negated else found

        return in_set

    def in_tuple(env):
        value = operand(env)
        if value is None:
            return None
        found = value in values
        return (not found) if negated else found

    return in_tuple


def _compile_case(expr: ex.CaseWhen) -> CompiledExpr:
    whens = [
        (compile_expr(condition), compile_expr(result))
        for condition, result in expr.whens
    ]
    otherwise = (compile_expr(expr.otherwise)
                 if expr.otherwise is not None else None)

    def case(env):
        for condition, result in whens:
            if condition(env) is True:
                return result(env)
        if otherwise is not None:
            return otherwise(env)
        return None

    return case


def _compile_function(expr: ex.FuncExpr) -> CompiledExpr:
    args = [compile_expr(a) for a in expr.args]
    name = expr.name.upper()

    def call(env):
        values = [arg(env) for arg in args]
        if any(value is None for value in values):
            return None
        return apply_scalar_function(name, values)

    return call
