"""Bound scalar expressions.

After binding, every column reference is a :class:`ColumnVar` with a
query-unique integer id.  The optimizer reasons about column-id sets, the
executor evaluates these trees against rows, and the QRel layer
(:mod:`repro.pdw.qrel`) renders them back to SQL text.

All nodes are immutable and hashable so that predicates can be deduplicated
and used as dictionary keys inside the MEMO.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.common.types import SqlType, INTEGER, BOOLEAN, DOUBLE


class ScalarExpr:
    """Base class for bound scalar expressions."""

    def columns_used(self) -> FrozenSet[int]:
        """Ids of all column variables referenced by this expression."""
        raise NotImplementedError

    def substitute(self, mapping: Dict[int, "ScalarExpr"]) -> "ScalarExpr":
        """Return a copy with column vars replaced per ``mapping``."""
        raise NotImplementedError

    def children(self) -> Tuple["ScalarExpr", ...]:
        return ()


@dataclass(frozen=True)
class ColumnVar(ScalarExpr):
    """A bound column variable.

    ``name`` is only for display / SQL generation; identity is ``id``.
    """

    id: int
    name: str = field(compare=False)
    sql_type: SqlType = field(compare=False, default=INTEGER)

    def columns_used(self) -> FrozenSet[int]:
        return frozenset((self.id,))

    def substitute(self, mapping):
        return mapping.get(self.id, self)

    def __str__(self) -> str:
        return f"{self.name}#{self.id}"


@dataclass(frozen=True)
class Constant(ScalarExpr):
    """A literal value."""

    value: object
    sql_type: Optional[SqlType] = field(compare=False, default=None)

    def columns_used(self) -> FrozenSet[int]:
        return frozenset()

    def substitute(self, mapping):
        return self

    def __str__(self) -> str:
        return repr(self.value)


def _union_columns(exprs) -> FrozenSet[int]:
    result: FrozenSet[int] = frozenset()
    for expr in exprs:
        result |= expr.columns_used()
    return result


@dataclass(frozen=True)
class Comparison(ScalarExpr):
    """``left <op> right`` with op in =, <>, <, <=, >, >=."""

    op: str
    left: ScalarExpr
    right: ScalarExpr

    FLIPPED = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

    def columns_used(self):
        return self.left.columns_used() | self.right.columns_used()

    def substitute(self, mapping):
        return Comparison(self.op, self.left.substitute(mapping),
                          self.right.substitute(mapping))

    def children(self):
        return (self.left, self.right)

    def flipped(self) -> "Comparison":
        """The same predicate with operand sides exchanged."""
        return Comparison(self.FLIPPED[self.op], self.right, self.left)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Arithmetic(ScalarExpr):
    """``left <op> right`` with op in + - * / % ||."""

    op: str
    left: ScalarExpr
    right: ScalarExpr

    def columns_used(self):
        return self.left.columns_used() | self.right.columns_used()

    def substitute(self, mapping):
        return Arithmetic(self.op, self.left.substitute(mapping),
                          self.right.substitute(mapping))

    def children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class BoolOp(ScalarExpr):
    """N-ary AND / OR."""

    op: str  # "AND" | "OR"
    args: Tuple[ScalarExpr, ...]

    def columns_used(self):
        return _union_columns(self.args)

    def substitute(self, mapping):
        return BoolOp(self.op, tuple(a.substitute(mapping) for a in self.args))

    def children(self):
        return self.args

    def __str__(self) -> str:
        return "(" + f" {self.op} ".join(str(a) for a in self.args) + ")"


@dataclass(frozen=True)
class NotExpr(ScalarExpr):
    operand: ScalarExpr

    def columns_used(self):
        return self.operand.columns_used()

    def substitute(self, mapping):
        return NotExpr(self.operand.substitute(mapping))

    def children(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class FuncExpr(ScalarExpr):
    """A scalar function call (DATEADD, SUBSTRING, YEAR, ...)."""

    name: str
    args: Tuple[ScalarExpr, ...]

    def columns_used(self):
        return _union_columns(self.args)

    def substitute(self, mapping):
        return FuncExpr(self.name, tuple(a.substitute(mapping) for a in self.args))

    def children(self):
        return self.args

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class CastExpr(ScalarExpr):
    operand: ScalarExpr
    target: SqlType

    def columns_used(self):
        return self.operand.columns_used()

    def substitute(self, mapping):
        return CastExpr(self.operand.substitute(mapping), self.target)

    def children(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"CAST({self.operand} AS {self.target})"


@dataclass(frozen=True)
class CaseWhen(ScalarExpr):
    """Searched CASE with (condition, result) pairs."""

    whens: Tuple[Tuple[ScalarExpr, ScalarExpr], ...]
    otherwise: Optional[ScalarExpr] = None

    def columns_used(self):
        cols = _union_columns(e for pair in self.whens for e in pair)
        if self.otherwise is not None:
            cols |= self.otherwise.columns_used()
        return cols

    def substitute(self, mapping):
        whens = tuple(
            (c.substitute(mapping), r.substitute(mapping)) for c, r in self.whens
        )
        otherwise = self.otherwise.substitute(mapping) if self.otherwise else None
        return CaseWhen(whens, otherwise)

    def children(self):
        flat = [e for pair in self.whens for e in pair]
        if self.otherwise is not None:
            flat.append(self.otherwise)
        return tuple(flat)

    def __str__(self) -> str:
        parts = [f"WHEN {c} THEN {r}" for c, r in self.whens]
        if self.otherwise is not None:
            parts.append(f"ELSE {self.otherwise}")
        return "CASE " + " ".join(parts) + " END"


@dataclass(frozen=True)
class LikeExpr(ScalarExpr):
    operand: ScalarExpr
    pattern: str
    negated: bool = False

    def columns_used(self):
        return self.operand.columns_used()

    def substitute(self, mapping):
        return LikeExpr(self.operand.substitute(mapping), self.pattern, self.negated)

    def children(self):
        return (self.operand,)

    def __str__(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"({self.operand} {maybe_not}LIKE {self.pattern!r})"


@dataclass(frozen=True)
class InListExpr(ScalarExpr):
    operand: ScalarExpr
    values: Tuple[object, ...]
    negated: bool = False

    def columns_used(self):
        return self.operand.columns_used()

    def substitute(self, mapping):
        return InListExpr(self.operand.substitute(mapping), self.values, self.negated)

    def children(self):
        return (self.operand,)

    def __str__(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"({self.operand} {maybe_not}IN {self.values})"


@dataclass(frozen=True)
class IsNullExpr(ScalarExpr):
    operand: ScalarExpr
    negated: bool = False

    def columns_used(self):
        return self.operand.columns_used()

    def substitute(self, mapping):
        return IsNullExpr(self.operand.substitute(mapping), self.negated)

    def children(self):
        return (self.operand,)

    def __str__(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"({self.operand} IS {maybe_not}NULL)"


@dataclass(frozen=True)
class AggExpr(ScalarExpr):
    """An aggregate call; ``arg`` is ``None`` for COUNT(*).

    Aggregates appear only inside GroupBy operators, never nested in
    ordinary scalar trees (the binder enforces this).
    """

    func: str  # SUM | COUNT | AVG | MIN | MAX
    arg: Optional[ScalarExpr] = None
    distinct: bool = False

    def columns_used(self):
        return self.arg.columns_used() if self.arg is not None else frozenset()

    def substitute(self, mapping):
        arg = self.arg.substitute(mapping) if self.arg is not None else None
        return AggExpr(self.func, arg, self.distinct)

    def children(self):
        return (self.arg,) if self.arg is not None else ()

    @property
    def result_type(self) -> SqlType:
        if self.func == "COUNT":
            return INTEGER
        if self.func == "AVG":
            return DOUBLE
        if self.arg is not None and isinstance(self.arg, ColumnVar):
            return self.arg.sql_type
        return DOUBLE

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.func}({inner})"


TRUE = Constant(True, BOOLEAN)
FALSE = Constant(False, BOOLEAN)


def conjuncts(expr: Optional[ScalarExpr]) -> Tuple[ScalarExpr, ...]:
    """Flatten an AND tree into its conjuncts (empty for None/TRUE)."""
    if expr is None or expr == TRUE:
        return ()
    if isinstance(expr, BoolOp) and expr.op == "AND":
        flat = []
        for arg in expr.args:
            flat.extend(conjuncts(arg))
        return tuple(flat)
    return (expr,)


def make_conjunction(parts) -> Optional[ScalarExpr]:
    """Combine predicates with AND; None for an empty list."""
    parts = [p for p in parts if p is not None and p != TRUE]
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return BoolOp("AND", tuple(parts))


def equi_join_pairs(predicate: Optional[ScalarExpr],
                    left_cols: FrozenSet[int],
                    right_cols: FrozenSet[int]):
    """Extract ``(left_var, right_var)`` pairs from equality conjuncts that
    straddle a join: one plain column from each side.

    These pairs are exactly what the PDW optimizer calls *interesting
    columns* for joins (paper §3.2).
    """
    pairs = []
    for conj in conjuncts(predicate):
        if not isinstance(conj, Comparison) or conj.op != "=":
            continue
        left, right = conj.left, conj.right
        if not (isinstance(left, ColumnVar) and isinstance(right, ColumnVar)):
            continue
        if left.id in left_cols and right.id in right_cols:
            pairs.append((left, right))
        elif left.id in right_cols and right.id in left_cols:
            pairs.append((right, left))
    return pairs


def expression_type(expr: ScalarExpr) -> SqlType:
    """Best-effort static type of a bound expression."""
    if isinstance(expr, ColumnVar):
        return expr.sql_type
    if isinstance(expr, Constant):
        if expr.sql_type is not None:
            return expr.sql_type
        return DOUBLE if isinstance(expr.value, float) else INTEGER
    if isinstance(expr, (Comparison, BoolOp, NotExpr, LikeExpr,
                         InListExpr, IsNullExpr)):
        return BOOLEAN
    if isinstance(expr, CastExpr):
        return expr.target
    if isinstance(expr, AggExpr):
        return expr.result_type
    if isinstance(expr, Arithmetic):
        return DOUBLE
    if isinstance(expr, CaseWhen) and expr.whens:
        return expression_type(expr.whens[0][1])
    if isinstance(expr, FuncExpr):
        return DOUBLE
    return DOUBLE
