"""SQL frontend: lexer, AST and parser for the PDW dialect."""

from repro.sql import ast_nodes
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse, parse_expression, parse_select

__all__ = [
    "ast_nodes",
    "Token",
    "TokenType",
    "tokenize",
    "parse",
    "parse_expression",
    "parse_select",
]
