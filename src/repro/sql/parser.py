"""Recursive-descent SQL parser.

Grammar (informal)::

    statement   := select | create_table | insert
    select      := SELECT [DISTINCT] [TOP n] items FROM from_list
                   [WHERE expr] [GROUP BY exprs] [HAVING expr]
                   [ORDER BY order_items] [LIMIT n]
    from_list   := from_item ("," from_item)*
    from_item   := primary_from (join_clause)*
    expr        := precedence-climbing over OR / AND / NOT / comparisons /
                   additive / multiplicative / unary / primary

Expression parsing uses classic precedence climbing; subqueries appear as
``(SELECT ...)`` primaries, ``IN (SELECT ...)``, or ``EXISTS (...)``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import SqlSyntaxError
from repro.sql import ast_nodes as ast
from repro.sql.lexer import Token, TokenType, tokenize

_COMPARISON_OPS = ("=", "<>", "!=", "<", "<=", ">", ">=")
_TYPE_KEYWORDS = (
    "INTEGER", "INT", "BIGINT", "DOUBLE", "VARCHAR", "CHAR", "DECIMAL",
    "DATE", "BOOLEAN",
)


class Parser:
    """One-shot parser over a token stream; use :func:`parse`."""

    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> SqlSyntaxError:
        token = self._current
        return SqlSyntaxError(
            f"{message}, found {token}", token.line, token.column
        )

    def _accept_keyword(self, *names: str) -> bool:
        if self._current.is_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_keyword(self, name: str) -> Token:
        if not self._current.is_keyword(name):
            raise self._error(f"expected {name}")
        return self._advance()

    def _accept_operator(self, op: str) -> bool:
        token = self._current
        if token.type is TokenType.OPERATOR and token.value == op:
            self._advance()
            return True
        return False

    def _expect_operator(self, op: str) -> Token:
        token = self._current
        if token.type is not TokenType.OPERATOR or token.value != op:
            raise self._error(f"expected {op!r}")
        return self._advance()

    def _expect_ident(self) -> str:
        token = self._current
        if token.type is TokenType.IDENT:
            return self._advance().value
        # Non-reserved keywords usable as identifiers (e.g. a column named
        # "year") — allow a small safe subset.
        if token.is_keyword("YEAR", "MONTH", "DAY", "DATE"):
            return self._advance().value.lower()
        raise self._error("expected identifier")

    # -- statements ---------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        if self._current.is_keyword("SELECT"):
            stmt: ast.Statement = self._parse_select_or_union()
        elif self._current.is_keyword("CREATE"):
            stmt = self._parse_create_table()
        elif self._current.is_keyword("INSERT"):
            stmt = self._parse_insert()
        else:
            raise self._error("expected SELECT, CREATE or INSERT")
        self._accept_operator(";")
        if self._current.type is not TokenType.EOF:
            raise self._error("unexpected trailing input")
        return stmt

    def _parse_select_or_union(self) -> ast.Statement:
        selects = [self.parse_select()]
        while self._current.is_keyword("UNION"):
            self._advance()
            self._expect_keyword("ALL")
            selects.append(self.parse_select())
        if len(selects) == 1:
            return selects[0]
        # ORDER BY / LIMIT bind to the whole union; they may only appear
        # on the textually-last branch, from which we lift them.
        for inner in selects[:-1]:
            if inner.order_by or inner.limit is not None:
                raise self._error(
                    "ORDER BY/LIMIT only allowed after the last UNION "
                    "branch")
        last = selects[-1]
        order_by, last.order_by = last.order_by, []
        limit, last.limit = last.limit, None
        return ast.UnionSelect(selects, order_by, limit)

    def _parse_create_table(self) -> ast.CreateTableStatement:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        name = self._expect_ident()
        self._expect_operator("(")
        columns = [self._parse_column_def()]
        while self._accept_operator(","):
            columns.append(self._parse_column_def())
        self._expect_operator(")")
        return ast.CreateTableStatement(name, columns)

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._expect_ident()
        type_name = self._parse_type_name()
        return ast.ColumnDef(name, type_name)

    def _parse_type_name(self) -> str:
        token = self._current
        if not token.is_keyword(*_TYPE_KEYWORDS):
            raise self._error("expected type name")
        self._advance()
        base = token.value
        if base == "DOUBLE" and self._accept_keyword("PRECISION"):
            base = "DOUBLE PRECISION"
        if self._accept_operator("("):
            args = [self._expect_number_literal()]
            while self._accept_operator(","):
                args.append(self._expect_number_literal())
            self._expect_operator(")")
            rendered = ", ".join(str(int(a)) for a in args)
            return f"{base}({rendered})"
        return base

    def _expect_number_literal(self) -> float:
        token = self._current
        if token.type is not TokenType.NUMBER:
            raise self._error("expected numeric literal")
        self._advance()
        return float(token.value)

    def _parse_insert(self) -> ast.InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident()
        columns: List[str] = []
        if self._accept_operator("("):
            columns.append(self._expect_ident())
            while self._accept_operator(","):
                columns.append(self._expect_ident())
            self._expect_operator(")")
        if self._current.is_keyword("SELECT"):
            return ast.InsertStatement(table, columns, select=self.parse_select())
        self._expect_keyword("VALUES")
        rows = [self._parse_value_row()]
        while self._accept_operator(","):
            rows.append(self._parse_value_row())
        return ast.InsertStatement(table, columns, values=rows)

    def _parse_value_row(self) -> List[ast.Expr]:
        self._expect_operator("(")
        row = [self.parse_expression()]
        while self._accept_operator(","):
            row.append(self.parse_expression())
        self._expect_operator(")")
        return row

    # -- SELECT -------------------------------------------------------------

    def parse_select(self) -> ast.SelectStatement:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        limit: Optional[int] = None
        if self._accept_keyword("TOP"):
            limit = int(self._expect_number_literal())
        select_items = [self._parse_select_item()]
        while self._accept_operator(","):
            select_items.append(self._parse_select_item())

        from_items: List[ast.FromItem] = []
        if self._accept_keyword("FROM"):
            from_items.append(self._parse_from_item())
            while self._accept_operator(","):
                from_items.append(self._parse_from_item())

        where = self.parse_expression() if self._accept_keyword("WHERE") else None

        group_by: List[ast.Expr] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self.parse_expression())
            while self._accept_operator(","):
                group_by.append(self.parse_expression())

        having = self.parse_expression() if self._accept_keyword("HAVING") else None

        order_by: List[ast.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_operator(","):
                order_by.append(self._parse_order_item())

        if self._accept_keyword("LIMIT"):
            limit = int(self._expect_number_literal())

        return ast.SelectStatement(
            select_items=select_items,
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            distinct=distinct,
            limit=limit,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        expr = self.parse_expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._current.type is TokenType.IDENT:
            alias = self._advance().value
        return ast.SelectItem(expr, alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expression()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expr, ascending)

    # -- FROM ---------------------------------------------------------------

    def _parse_from_item(self) -> ast.FromItem:
        item = self._parse_primary_from()
        while True:
            kind = self._join_kind()
            if kind is None:
                return item
            right = self._parse_primary_from()
            condition = None
            if kind != "CROSS":
                self._expect_keyword("ON")
                condition = self.parse_expression()
            item = ast.JoinClause(kind, item, right, condition)

    def _join_kind(self) -> Optional[str]:
        token = self._current
        if token.is_keyword("JOIN"):
            self._advance()
            return "INNER"
        if token.is_keyword("INNER"):
            self._advance()
            self._expect_keyword("JOIN")
            return "INNER"
        if token.is_keyword("CROSS"):
            self._advance()
            self._expect_keyword("JOIN")
            return "CROSS"
        if token.is_keyword("LEFT", "RIGHT", "FULL"):
            kind = self._advance().value
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return kind
        return None

    def _parse_primary_from(self) -> ast.FromItem:
        if self._accept_operator("("):
            if self._current.is_keyword("SELECT"):
                subquery = self._parse_select_or_union()
                self._expect_operator(")")
                self._accept_keyword("AS")
                alias = self._expect_ident()
                return ast.DerivedTable(subquery, alias)
            # Parenthesized join tree.
            inner = self._parse_from_item()
            self._expect_operator(")")
            return inner
        name = self._parse_qualified_table_name()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._current.type is TokenType.IDENT:
            alias = self._advance().value
        return ast.TableRef(name, alias)

    def _parse_qualified_table_name(self) -> str:
        # Accept db.schema.table / schema.table / table; only the last
        # component is meaningful in our single-database catalog.
        name = self._expect_ident()
        while self._accept_operator("."):
            name = self._expect_ident()
        return name

    # -- expressions --------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        expr = self._parse_and()
        while self._accept_keyword("OR"):
            expr = ast.BinaryOp("OR", expr, self._parse_and())
        return expr

    def _parse_and(self) -> ast.Expr:
        expr = self._parse_not()
        while self._accept_keyword("AND"):
            expr = ast.BinaryOp("AND", expr, self._parse_not())
        return expr

    def _parse_not(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        expr = self._parse_additive()
        token = self._current

        if token.type is TokenType.OPERATOR and token.value in _COMPARISON_OPS:
            op = self._advance().value
            if op == "!=":
                op = "<>"
            right = self._parse_additive()
            return ast.BinaryOp(op, expr, right)

        negated = False
        if token.is_keyword("NOT"):
            follower = self._peek()
            if follower.is_keyword("IN", "BETWEEN", "LIKE"):
                self._advance()
                negated = True
                token = self._current

        if token.is_keyword("IN"):
            self._advance()
            self._expect_operator("(")
            if self._current.is_keyword("SELECT"):
                subquery = self._parse_select_or_union()
                self._expect_operator(")")
                return ast.InSubquery(expr, subquery, negated)
            values = [self.parse_expression()]
            while self._accept_operator(","):
                values.append(self.parse_expression())
            self._expect_operator(")")
            return ast.InList(expr, values, negated)

        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(expr, low, high, negated)

        if token.is_keyword("LIKE"):
            self._advance()
            pattern = self._parse_additive()
            return ast.Like(expr, pattern, negated)

        if token.is_keyword("IS"):
            self._advance()
            is_negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return ast.IsNull(expr, is_negated)

        return expr

    def _parse_additive(self) -> ast.Expr:
        expr = self._parse_multiplicative()
        while True:
            token = self._current
            if token.type is TokenType.OPERATOR and token.value in ("+", "-", "||"):
                op = self._advance().value
                expr = ast.BinaryOp(op, expr, self._parse_multiplicative())
            else:
                return expr

    def _parse_multiplicative(self) -> ast.Expr:
        expr = self._parse_unary()
        while True:
            token = self._current
            if token.type is TokenType.OPERATOR and token.value in ("*", "/", "%"):
                op = self._advance().value
                expr = ast.BinaryOp(op, expr, self._parse_unary())
            else:
                return expr

    def _parse_unary(self) -> ast.Expr:
        if self._accept_operator("-"):
            operand = self._parse_unary()
            if (isinstance(operand, ast.Literal)
                    and isinstance(operand.value, (int, float))
                    and not isinstance(operand.value, bool)):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if self._accept_operator("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._current

        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            value: object = float(text) if "." in text else int(text)
            return ast.Literal(value)

        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)

        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)

        if token.is_keyword("TRUE", "FALSE"):
            self._advance()
            return ast.Literal(token.value == "TRUE")

        if token.is_keyword("DATE") and self._peek().type is TokenType.STRING:
            self._advance()
            literal = self._advance()
            return ast.Literal(literal.value, is_date=True)

        if token.is_keyword("CAST"):
            return self._parse_cast()

        if token.is_keyword("CASE"):
            return self._parse_case()

        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect_operator("(")
            subquery = self.parse_select()
            self._expect_operator(")")
            return ast.ExistsExpr(subquery)

        if token.is_keyword("SUM", "COUNT", "AVG", "MIN", "MAX",
                            "DATEADD", "SUBSTRING", "EXTRACT", "YEAR",
                            "MONTH", "DAY"):
            if self._peek().type is TokenType.OPERATOR and self._peek().value == "(":
                return self._parse_func_call()
            # A bare keyword like YEAR used as identifier.
            self._advance()
            return ast.ColumnRef(token.value.lower())

        if self._accept_operator("("):
            if self._current.is_keyword("SELECT"):
                subquery = self.parse_select()
                self._expect_operator(")")
                return ast.ScalarSubquery(subquery)
            expr = self.parse_expression()
            self._expect_operator(")")
            return expr

        if self._accept_operator("*"):
            return ast.Star()

        if token.type is TokenType.IDENT:
            name = self._advance().value
            if self._current.type is TokenType.OPERATOR and self._current.value == "(":
                return self._parse_call_args(name)
            if self._accept_operator("."):
                if self._accept_operator("*"):
                    return ast.Star(qualifier=name)
                column = self._expect_ident()
                return ast.ColumnRef(column, qualifier=name)
            return ast.ColumnRef(name)

        raise self._error("expected expression")

    def _parse_func_call(self) -> ast.Expr:
        name = self._advance().value
        return self._parse_call_args(name)

    def _parse_call_args(self, name: str) -> ast.Expr:
        self._expect_operator("(")
        if name.upper() == "COUNT" and self._accept_operator("*"):
            self._expect_operator(")")
            return ast.FuncCall("COUNT", [ast.Star()])
        distinct = self._accept_keyword("DISTINCT")
        args: List[ast.Expr] = []
        if not (self._current.type is TokenType.OPERATOR
                and self._current.value == ")"):
            if name.upper() == "DATEADD" and self._current.is_keyword(
                    "YEAR", "MONTH", "DAY"):
                args.append(ast.Literal(self._advance().value.lower()))
            else:
                args.append(self.parse_expression())
            while self._accept_operator(","):
                args.append(self.parse_expression())
        self._expect_operator(")")
        return ast.FuncCall(name.upper(), args, distinct=distinct)

    def _parse_case(self) -> ast.Expr:
        self._expect_keyword("CASE")
        whens = []
        while self._accept_keyword("WHEN"):
            condition = self.parse_expression()
            self._expect_keyword("THEN")
            result = self.parse_expression()
            whens.append((condition, result))
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        else_result = None
        if self._accept_keyword("ELSE"):
            else_result = self.parse_expression()
        self._expect_keyword("END")
        return ast.CaseExpr(whens, else_result)

    def _parse_cast(self) -> ast.Expr:
        self._expect_keyword("CAST")
        self._expect_operator("(")
        operand = self.parse_expression()
        self._expect_keyword("AS")
        type_name = self._parse_type_name()
        self._expect_operator(")")
        return ast.Cast(operand, type_name)


def parse(text: str) -> ast.Statement:
    """Parse one SQL statement."""
    return Parser(text).parse_statement()


def parse_select(text: str) -> ast.SelectStatement:
    """Parse a statement that must be a plain SELECT (no UNION)."""
    statement = parse(text)
    if not isinstance(statement, ast.SelectStatement):
        raise SqlSyntaxError("expected a SELECT statement")
    return statement


def parse_query(text: str):
    """Parse a statement that must be a SELECT or a UNION of SELECTs."""
    statement = parse(text)
    if not isinstance(statement, (ast.SelectStatement, ast.UnionSelect)):
        raise SqlSyntaxError("expected a query")
    return statement


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone scalar expression (useful in tests)."""
    parser = Parser(text)
    expr = parser.parse_expression()
    if parser._current.type is not TokenType.EOF:
        raise parser._error("unexpected trailing input")
    return expr
