"""Hand-written SQL lexer.

Produces a flat list of :class:`Token` for the recursive-descent parser.
The dialect is the subset of T-SQL that PDW's examples and the TPC-H
workload need: identifiers (optionally ``[bracketed]`` or ``"quoted"``),
qualified names, numeric / string / date literals, and the operator set of
standard SQL expressions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.common.errors import SqlSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC",
    "DESC", "AS", "ON", "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER",
    "CROSS", "AND", "OR", "NOT", "IN", "EXISTS", "BETWEEN", "LIKE", "IS",
    "NULL", "DISTINCT", "TOP", "LIMIT", "UNION", "ALL", "CASE", "WHEN",
    "THEN", "ELSE", "END", "CAST", "TRUE", "FALSE", "SUM", "COUNT", "AVG",
    "MIN", "MAX", "DATE", "DATEADD", "YEAR", "MONTH", "DAY", "SUBSTRING",
    "INSERT", "INTO", "VALUES", "CREATE", "TABLE", "INTEGER", "INT",
    "BIGINT", "DOUBLE", "PRECISION", "VARCHAR", "CHAR", "DECIMAL",
    "BOOLEAN", "ANY", "SOME", "EXTRACT",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its 1-based source position."""

    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def __str__(self) -> str:
        return f"{self.value!r}"


_TWO_CHAR_OPS = ("<=", ">=", "<>", "!=", "||")
_ONE_CHAR_OPS = "+-*/%(),.=<>;"


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into tokens, raising :class:`SqlSyntaxError` on any
    character that cannot start a token."""
    tokens: List[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)

    def position() -> tuple:
        return line, i - line_start + 1

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "/" and text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise SqlSyntaxError("unterminated block comment", *position())
            line += text.count("\n", i, end)
            i = end + 2
            continue

        tok_line, tok_col = position()

        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < n and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
                if text[i] == ".":
                    # A trailing dot followed by a non-digit is a qualifier dot.
                    if i + 1 >= n or not text[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            tokens.append(Token(TokenType.NUMBER, text[start:i], tok_line, tok_col))
            continue

        if ch == "'":
            i += 1
            chars = []
            while True:
                if i >= n:
                    raise SqlSyntaxError("unterminated string literal", tok_line, tok_col)
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":  # escaped quote
                        chars.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                chars.append(text[i])
                i += 1
            tokens.append(Token(TokenType.STRING, "".join(chars), tok_line, tok_col))
            continue

        if ch == "[" or ch == '"':
            closer = "]" if ch == "[" else '"'
            end = text.find(closer, i + 1)
            if end < 0:
                raise SqlSyntaxError("unterminated quoted identifier", tok_line, tok_col)
            tokens.append(Token(TokenType.IDENT, text[i + 1:end], tok_line, tok_col))
            i = end + 1
            continue

        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, tok_line, tok_col))
            else:
                tokens.append(Token(TokenType.IDENT, word, tok_line, tok_col))
            continue

        matched_two = text[i:i + 2]
        if matched_two in _TWO_CHAR_OPS:
            tokens.append(Token(TokenType.OPERATOR, matched_two, tok_line, tok_col))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(TokenType.OPERATOR, ch, tok_line, tok_col))
            i += 1
            continue

        raise SqlSyntaxError(f"unexpected character {ch!r}", tok_line, tok_col)

    tokens.append(Token(TokenType.EOF, "", line, i - line_start + 1))
    return tokens
