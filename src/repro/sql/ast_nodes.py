"""Abstract syntax tree for the SQL dialect.

These nodes are the parser's output and the binder's input.  They carry no
semantic information (no types, no resolved columns) — that is added by
:mod:`repro.optimizer.binder`, which lowers the AST into the logical algebra.

Each node knows how to render itself back to SQL text (``to_sql``); the PDW
DSQL generator reuses this to emit step SQL, which gives us the round-trip
property exercised by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union


class AstNode:
    """Base class for all AST nodes."""

    def to_sql(self) -> str:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Scalar expressions
# ---------------------------------------------------------------------------

class Expr(AstNode):
    """Base class for scalar expressions."""


@dataclass
class Literal(Expr):
    """A constant: number, string, boolean, NULL or DATE 'yyyy-mm-dd'."""

    value: object
    is_date: bool = False

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if self.is_date:
            return f"DATE '{self.value}'"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


@dataclass
class ColumnRef(Expr):
    """A possibly-qualified column reference (``o.o_custkey`` or ``name``)."""

    name: str
    qualifier: Optional[str] = None

    def to_sql(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


@dataclass
class Star(Expr):
    """``*`` or ``alias.*`` in a select list or COUNT(*)."""

    qualifier: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.qualifier}.*" if self.qualifier else "*"


@dataclass
class BinaryOp(Expr):
    """A binary operation: arithmetic, comparison, AND/OR, ``||``."""

    op: str
    left: Expr
    right: Expr

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass
class UnaryOp(Expr):
    """Unary ``-`` or ``NOT``."""

    op: str
    operand: Expr

    def to_sql(self) -> str:
        if self.op.upper() == "NOT":
            return f"(NOT {self.operand.to_sql()})"
        return f"({self.op}{self.operand.to_sql()})"


@dataclass
class FuncCall(Expr):
    """A function call; aggregates are ordinary calls with known names."""

    name: str
    args: List[Expr]
    distinct: bool = False

    AGGREGATES = ("SUM", "COUNT", "AVG", "MIN", "MAX")

    @property
    def is_aggregate(self) -> bool:
        return self.name.upper() in self.AGGREGATES

    def to_sql(self) -> str:
        inner = ", ".join(a.to_sql() for a in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name.upper()}({inner})"


@dataclass
class Cast(Expr):
    """``CAST(expr AS type)``; ``type_name`` is the raw type spelling."""

    operand: Expr
    type_name: str

    def to_sql(self) -> str:
        return f"CAST({self.operand.to_sql()} AS {self.type_name})"


@dataclass
class CaseExpr(Expr):
    """Searched CASE expression."""

    whens: List[Tuple[Expr, Expr]]
    else_result: Optional[Expr] = None

    def to_sql(self) -> str:
        parts = ["CASE"]
        for cond, result in self.whens:
            parts.append(f"WHEN {cond.to_sql()} THEN {result.to_sql()}")
        if self.else_result is not None:
            parts.append(f"ELSE {self.else_result.to_sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclass
class InList(Expr):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expr
    values: List[Expr]
    negated: bool = False

    def to_sql(self) -> str:
        values = ", ".join(v.to_sql() for v in self.values)
        maybe_not = "NOT " if self.negated else ""
        return f"({self.operand.to_sql()} {maybe_not}IN ({values}))"


@dataclass
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)``."""

    operand: Expr
    subquery: "SelectStatement"
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"({self.operand.to_sql()} {maybe_not}IN ({self.subquery.to_sql()}))"


@dataclass
class ExistsExpr(Expr):
    """``[NOT] EXISTS (SELECT ...)``."""

    subquery: "SelectStatement"
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"({maybe_not}EXISTS ({self.subquery.to_sql()}))"


@dataclass
class ScalarSubquery(Expr):
    """A subquery used as a scalar value."""

    subquery: "SelectStatement"

    def to_sql(self) -> str:
        return f"({self.subquery.to_sql()})"


@dataclass
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return (f"({self.operand.to_sql()} {maybe_not}BETWEEN "
                f"{self.low.to_sql()} AND {self.high.to_sql()})")


@dataclass
class Like(Expr):
    """``expr [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expr
    pattern: Expr
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"({self.operand.to_sql()} {maybe_not}LIKE {self.pattern.to_sql()})"


@dataclass
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"({self.operand.to_sql()} IS {maybe_not}NULL)"


# ---------------------------------------------------------------------------
# Relational AST
# ---------------------------------------------------------------------------

@dataclass
class SelectItem(AstNode):
    """One entry in the SELECT list: an expression with an optional alias."""

    expr: Expr
    alias: Optional[str] = None

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.expr.to_sql()} AS {self.alias}"
        return self.expr.to_sql()


class FromItem(AstNode):
    """Base class for anything that can appear in FROM."""


@dataclass
class TableRef(FromItem):
    """A base-table reference with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.name} AS {self.alias}"
        return self.name


@dataclass
class DerivedTable(FromItem):
    """A parenthesized subquery in FROM; the alias is mandatory in SQL."""

    subquery: "SelectStatement"
    alias: str

    def to_sql(self) -> str:
        return f"({self.subquery.to_sql()}) AS {self.alias}"


@dataclass
class JoinClause(FromItem):
    """An explicit ``A <kind> JOIN B ON cond``; CROSS joins have no
    condition."""

    kind: str  # INNER | LEFT | RIGHT | FULL | CROSS
    left: FromItem
    right: FromItem
    condition: Optional[Expr] = None

    def to_sql(self) -> str:
        text = f"{self.left.to_sql()} {self.kind} JOIN {self.right.to_sql()}"
        if self.condition is not None:
            text += f" ON {self.condition.to_sql()}"
        return text


@dataclass
class OrderItem(AstNode):
    """One ORDER BY entry."""

    expr: Expr
    ascending: bool = True

    def to_sql(self) -> str:
        return f"{self.expr.to_sql()} {'ASC' if self.ascending else 'DESC'}"


@dataclass
class SelectStatement(AstNode):
    """A full SELECT query block (FROM may hold several comma items)."""

    select_items: List[SelectItem]
    from_items: List[FromItem] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    distinct: bool = False
    limit: Optional[int] = None

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        if self.limit is not None:
            parts.append(f"TOP {self.limit}")
        parts.append(", ".join(item.to_sql() for item in self.select_items))
        if self.from_items:
            parts.append("FROM " + ", ".join(f.to_sql() for f in self.from_items))
        if self.where is not None:
            parts.append("WHERE " + self.where.to_sql())
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(e.to_sql() for e in self.group_by))
        if self.having is not None:
            parts.append("HAVING " + self.having.to_sql())
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.to_sql() for o in self.order_by))
        return " ".join(parts)


@dataclass
class UnionSelect(AstNode):
    """``select UNION ALL select [UNION ALL ...]`` with trailing ORDER BY
    / LIMIT applying to the whole union."""

    selects: List[SelectStatement]
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None

    def to_sql(self) -> str:
        parts = " UNION ALL ".join(s.to_sql() for s in self.selects)
        if self.order_by:
            parts += " ORDER BY " + ", ".join(
                o.to_sql() for o in self.order_by)
        if self.limit is not None:
            parts += f" LIMIT {self.limit}"
        return parts


@dataclass
class ColumnDef(AstNode):
    """A column in CREATE TABLE."""

    name: str
    type_name: str

    def to_sql(self) -> str:
        return f"{self.name} {self.type_name}"


@dataclass
class CreateTableStatement(AstNode):
    """``CREATE TABLE name (col type, ...)`` — used for temp staging tables."""

    name: str
    columns: List[ColumnDef]

    def to_sql(self) -> str:
        cols = ", ".join(c.to_sql() for c in self.columns)
        return f"CREATE TABLE {self.name} ({cols})"


@dataclass
class InsertStatement(AstNode):
    """``INSERT INTO name [(cols)] VALUES (...), ... | SELECT ...``."""

    table: str
    columns: List[str] = field(default_factory=list)
    values: List[List[Expr]] = field(default_factory=list)
    select: Optional[SelectStatement] = None

    def to_sql(self) -> str:
        text = f"INSERT INTO {self.table}"
        if self.columns:
            text += " (" + ", ".join(self.columns) + ")"
        if self.select is not None:
            return f"{text} {self.select.to_sql()}"
        rows = ", ".join(
            "(" + ", ".join(v.to_sql() for v in row) + ")" for row in self.values
        )
        return f"{text} VALUES {rows}"


Statement = Union[SelectStatement, UnionSelect, CreateTableStatement,
                  InsertStatement]


def walk_expr(expr: Expr):
    """Yield ``expr`` and every scalar sub-expression beneath it.

    Subqueries are yielded as their wrapper nodes but not descended into —
    callers that care about nesting handle those explicitly.
    """
    yield expr
    children: Sequence[Expr]
    if isinstance(expr, BinaryOp):
        children = (expr.left, expr.right)
    elif isinstance(expr, UnaryOp):
        children = (expr.operand,)
    elif isinstance(expr, FuncCall):
        children = tuple(expr.args)
    elif isinstance(expr, Cast):
        children = (expr.operand,)
    elif isinstance(expr, CaseExpr):
        flat: List[Expr] = []
        for cond, result in expr.whens:
            flat.extend((cond, result))
        if expr.else_result is not None:
            flat.append(expr.else_result)
        children = tuple(flat)
    elif isinstance(expr, InList):
        children = (expr.operand, *expr.values)
    elif isinstance(expr, (InSubquery, Like)):
        operand = expr.operand
        children = (operand, expr.pattern) if isinstance(expr, Like) else (operand,)
    elif isinstance(expr, Between):
        children = (expr.operand, expr.low, expr.high)
    elif isinstance(expr, IsNull):
        children = (expr.operand,)
    else:
        children = ()
    for child in children:
        yield from walk_expr(child)
