"""Traffic generation: N concurrent clients driving a TPC-H mix.

The serving layer's claims — compile once per shape, overlap executions,
bound the queue — only mean something under concurrent load, so this
module supplies a deterministic load generator: a weighted mix of
**parameterized TPC-H templates** (each arrival draws fresh literals
from a seeded RNG, exercising the plan cache's normalize/bind path, not
just repeat-the-string), driven by ``clients`` threads issuing
``queries_per_client`` queries each through one :class:`PdwService`.

:func:`run_traffic` returns a :class:`TrafficReport` with p50/p95/p99
latency, queries/sec, per-template counts and the service's cache and
admission statistics; :func:`render_report` formats it for the CLI and
the throughput benchmark.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.errors import AdmissionError

#: Data ranges the generator draws from (TPC-H dates span 1992..1998;
#: staying inside 1993..1997 keeps every window selective but nonempty).
_YEARS = (1993, 1994, 1995, 1996, 1997)
_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
             "MACHINERY")
_REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")


@dataclass(frozen=True)
class QueryTemplate:
    """One member of the mix: a name, a literal-drawing SQL factory and
    a selection weight."""

    name: str
    make_sql: Callable[[random.Random], str]
    weight: float = 1.0


def _q1(rng: random.Random) -> str:
    cutoff = f"{rng.choice(_YEARS)}-{rng.randint(1, 12):02d}-01"
    return f"""
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '{cutoff}'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
"""


def _q6(rng: random.Random) -> str:
    year = rng.choice(_YEARS)
    low = round(rng.choice((0.02, 0.03, 0.05, 0.06)), 2)
    return f"""
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '{year}-01-01'
  AND l_shipdate < DATE '{year + 1}-01-01'
  AND l_discount BETWEEN {low} AND {round(low + 0.02, 2)}
  AND l_quantity < {rng.choice((24, 25, 30, 35))}
"""


def _q3(rng: random.Random) -> str:
    date = f"{rng.choice(_YEARS)}-0{rng.randint(1, 9)}-15"
    return f"""
SELECT l_orderkey,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = '{rng.choice(_SEGMENTS)}'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '{date}'
  AND l_shipdate > DATE '{date}'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10
"""


def _q5(rng: random.Random) -> str:
    year = rng.choice(_YEARS)
    return f"""
SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = '{rng.choice(_REGIONS)}'
  AND o_orderdate >= DATE '{year}-01-01'
  AND o_orderdate < DATE '{year + 1}-01-01'
GROUP BY n_name
ORDER BY revenue DESC
"""


def _join(rng: random.Random) -> str:
    return f"""
SELECT c_custkey, o_orderdate
FROM orders, customer
WHERE o_custkey = c_custkey
  AND o_totalprice > {rng.choice((100, 1000, 25000, 50000, 100000))}
"""


#: The default mix: the selective scans dominate (as interactive traffic
#: does), the heavy joins arrive steadily.
DEFAULT_MIX: Sequence[QueryTemplate] = (
    QueryTemplate("Q1", _q1, weight=2.0),
    QueryTemplate("Q6", _q6, weight=3.0),
    QueryTemplate("Q3", _q3, weight=1.0),
    QueryTemplate("Q5", _q5, weight=1.0),
    QueryTemplate("JOIN", _join, weight=2.0),
)

#: Priority classes drawn per arrival (mostly normal, some interactive
#: probes, a batch tail).
_PRIORITY_MIX = (("normal", 0.6), ("interactive", 0.25), ("batch", 0.15))


def _draw_priority(rng: random.Random) -> str:
    roll = rng.random()
    acc = 0.0
    for name, share in _PRIORITY_MIX:
        acc += share
        if roll <= acc:
            return name
    return "batch"


@dataclass
class TrafficReport:
    """What one traffic run measured."""

    clients: int
    queries_per_client: int
    completed: int
    rejected: int
    errors: int
    wall_seconds: float
    latencies: List[float] = field(default_factory=list)
    #: Per-phase wall seconds of every completed query, keyed
    #: "queue" / "compile" / "execute" (from ``QueryResult.timing``).
    phase_latencies: Dict[str, List[float]] = field(default_factory=dict)
    per_template: Dict[str, int] = field(default_factory=dict)
    cache_stats: Dict[str, int] = field(default_factory=dict)
    admission_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def queries_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of completed-query latency, seconds."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def phase_percentile(self, phase: str, q: float) -> float:
        """Nearest-rank percentile of one phase's latency, seconds."""
        values = self.phase_latencies.get(phase)
        if not values:
            return 0.0
        ordered = sorted(values)
        rank = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[rank]


def run_traffic(service, *,
                clients: int = 4,
                queries_per_client: int = 10,
                seed: int = 2012,
                mix: Optional[Sequence[QueryTemplate]] = None,
                timeout_seconds: Optional[float] = None) -> TrafficReport:
    """Drive ``clients`` threads through the mix; gather the report.

    Deterministic for a given seed: each client owns
    ``random.Random(seed + client_id)``, so template choices and drawn
    literals don't depend on thread interleaving.  Admission rejections
    (queue full / timeout) are counted, not raised; any other error is
    counted and the first one re-raised at the end — a load generator
    must not bury correctness bugs.
    """
    templates = list(mix or DEFAULT_MIX)
    weights = [t.weight for t in templates]
    report = TrafficReport(clients=clients,
                           queries_per_client=queries_per_client,
                           completed=0, rejected=0, errors=0,
                           wall_seconds=0.0)
    lock = threading.Lock()
    first_error: List[BaseException] = []

    def client(client_id: int) -> None:
        rng = random.Random(seed + client_id)
        tenant = f"tenant-{client_id % 3}"
        for _ in range(queries_per_client):
            template = rng.choices(templates, weights=weights)[0]
            sql = template.make_sql(rng)
            # Derive from the service's defaults so knobs like
            # use_plan_cache / compiled survive into each arrival.
            options = service.options.override(
                tenant=tenant, priority=_draw_priority(rng),
                timeout_seconds=timeout_seconds)
            arrival = time.perf_counter()
            try:
                result = service.execute(sql, options=options)
            except AdmissionError:
                with lock:
                    report.rejected += 1
                continue
            except Exception as error:  # noqa: BLE001 - re-raised below
                with lock:
                    report.errors += 1
                    if not first_error:
                        first_error.append(error)
                continue
            latency = time.perf_counter() - arrival
            timing = result.timing
            with lock:
                report.completed += 1
                report.latencies.append(latency)
                if timing is not None:
                    phases = report.phase_latencies
                    phases.setdefault("queue", []).append(
                        timing.queue_seconds)
                    phases.setdefault("compile", []).append(
                        timing.compile_seconds)
                    phases.setdefault("execute", []).append(
                        timing.execute_seconds)
                report.per_template[template.name] = \
                    report.per_template.get(template.name, 0) + 1

    threads = [threading.Thread(target=client, args=(i,),
                                name=f"traffic-{i}")
               for i in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.perf_counter() - started
    report.cache_stats = service.plan_cache.stats()
    report.admission_stats = service.admission.stats()
    if first_error:
        raise first_error[0]
    return report


def render_report(report: TrafficReport) -> str:
    """The traffic report as an aligned text block."""
    cache = report.cache_stats
    lines = [
        f"clients            {report.clients}",
        f"queries/client     {report.queries_per_client}",
        f"completed          {report.completed}",
        f"rejected           {report.rejected}",
        f"errors             {report.errors}",
        f"wall seconds       {report.wall_seconds:.3f}",
        f"queries/sec        {report.queries_per_second:.1f}",
        f"latency p50        {report.p50 * 1e3:.2f} ms",
        f"latency p95        {report.p95 * 1e3:.2f} ms",
        f"latency p99        {report.p99 * 1e3:.2f} ms",
    ]
    for phase in ("queue", "compile", "execute"):
        if report.phase_latencies.get(phase):
            lines.append(
                f"{phase + ' p50/p95':<18} "
                f"{report.phase_percentile(phase, 0.50) * 1e3:.2f} / "
                f"{report.phase_percentile(phase, 0.95) * 1e3:.2f} ms")
    lines += [
        f"plan cache         {cache.get('hits', 0)} hits / "
        f"{cache.get('misses', 0)} misses / "
        f"{cache.get('evictions', 0)} evictions "
        f"({cache.get('size', 0)} cached)",
    ]
    if report.per_template:
        mix = ", ".join(f"{name}:{count}" for name, count
                        in sorted(report.per_template.items()))
        lines.append(f"template mix       {mix}")
    return "\n".join(lines)
