"""The PDW serving layer: concurrent sessions over one appliance.

A production appliance is a multi-user system: the control node accepts
many concurrent queries, compiles each into a DSQL plan, and schedules
them across the compute nodes.  This package supplies that front end for
the reproduction:

* :class:`PdwService` — accepts queries from many client threads and
  runs them through the existing engine/runner stack with inter-query
  concurrency (each execution gets a private temp-table namespace, so
  plans overlap safely on one appliance);
* :class:`PlanCache` / :func:`parameterize` — the parameterized plan
  cache: queries are normalized by lifting predicate literals to
  parameter markers, so Q5 compiles once and executes thousands of
  times with different constants (LRU-bounded, invalidated on DDL,
  hits/misses/evictions on the service's MetricsRegistry);
* :class:`AdmissionController` — bounded queueing with priority
  classes, a max-in-flight limit, and typed timeout/reject errors;
* :class:`ExecutionOptions` — the one frozen options surface shared by
  :class:`repro.session.PdwSession` and the service (replaces the old
  scattered ``compiled=``/``parallel=``/``trace=``/``hints=`` kwargs);
* :mod:`repro.service.traffic` — the traffic generator driving N
  concurrent clients through a parameterized TPC-H mix, reporting
  p50/p95/p99 latency and queries/sec.
"""

from repro.common.errors import (
    AdmissionError,
    AdmissionTimeoutError,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
)
from repro.service.admission import AdmissionController, AdmissionTicket
from repro.service.options import (
    ExecutionOptions,
    PRIORITY_CLASSES,
)
from repro.service.plan_cache import (
    PlanCache,
    QueryShape,
    parameterize,
)
from repro.service.service import PdwService
from repro.service.traffic import (
    DEFAULT_MIX,
    QueryTemplate,
    TrafficReport,
    render_report,
    run_traffic,
)

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionTicket",
    "AdmissionTimeoutError",
    "DEFAULT_MIX",
    "QueueFullError",
    "ServiceClosedError",
    "ServiceError",
    "ExecutionOptions",
    "PRIORITY_CLASSES",
    "PdwService",
    "PlanCache",
    "QueryShape",
    "QueryTemplate",
    "TrafficReport",
    "parameterize",
    "render_report",
    "run_traffic",
]
