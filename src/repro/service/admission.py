"""Admission control: bounded queueing with priority classes.

A production control node never lets an unbounded burst of queries pile
onto the appliance — it caps concurrent executions, queues a bounded
backlog, and rejects or times out the rest with an error the client can
act on.  :class:`AdmissionController` is that gate:

* at most ``max_in_flight`` queries hold an execution slot at once;
* at most ``max_queue`` more wait, ordered by **priority class**
  (``interactive`` < ``normal`` < ``batch``; FIFO within a class) —
  a freed slot always goes to the best-ranked waiter;
* a queue at capacity rejects immediately with
  :class:`~repro.common.errors.QueueFullError`;
* a waiter that exceeds its timeout raises
  :class:`~repro.common.errors.AdmissionTimeoutError`;
* :meth:`close` wakes every waiter with
  :class:`~repro.common.errors.ServiceClosedError`.

Implementation: one condition variable plus a heap of waiter records.
Waiters are woken collectively (``notify_all``) and the heap head claims
the slot, so priority order is decided by data, not by wake-up timing;
cancelled records (timeout/close) are lazily popped.  Queue depth and
in-flight gauges plus per-outcome counters land on the metrics registry
as ``pdw_service_*`` series.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import (
    AdmissionTimeoutError,
    QueueFullError,
    ServiceClosedError,
)
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.service.options import PRIORITY_CLASSES

_WAITING = 0
_CANCELLED = 1


@dataclass(order=True)
class _Waiter:
    rank: int
    seq: int
    state: int = field(default=_WAITING, compare=False)


@dataclass
class AdmissionTicket:
    """Proof of admission; hand it back via
    :meth:`AdmissionController.release`."""

    priority: str
    tenant: str
    seq: int
    queued_seconds: float = 0.0
    released: bool = False


class AdmissionController:
    """The concurrency gate in front of the execution stack."""

    def __init__(self, max_in_flight: int = 4, max_queue: int = 32,
                 default_timeout_seconds: Optional[float] = None,
                 metrics: MetricsRegistry = NULL_METRICS):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_in_flight = max_in_flight
        self.max_queue = max_queue
        self.default_timeout_seconds = default_timeout_seconds
        self.metrics = metrics
        self._cond = threading.Condition()
        self._heap: List[_Waiter] = []
        self._queued = 0          # live (non-cancelled) waiters
        self._in_flight = 0
        self._seq = itertools.count(1)
        self._closed = False
        # Totals (also exported as metrics when the registry is live).
        self.admitted_total = 0
        self.rejected_total: Dict[str, int] = {
            "queue_full": 0, "timeout": 0, "closed": 0,
        }

    # -- metric plumbing -------------------------------------------------------

    def _gauges(self) -> None:
        if self.metrics.enabled:
            self.metrics.gauge(
                "pdw_service_in_flight",
                "Queries currently holding an execution slot",
            ).set(self._in_flight)
            self.metrics.gauge(
                "pdw_service_queue_depth",
                "Queries waiting for an execution slot",
            ).set(self._queued)

    def _count_admitted(self, priority: str, waited: float) -> None:
        self.admitted_total += 1
        if self.metrics.enabled:
            self.metrics.counter(
                "pdw_service_admitted_total",
                "Queries granted an execution slot",
                labelnames=("priority",)).labels(priority=priority).inc()
            self.metrics.histogram(
                "pdw_service_queue_wait_seconds",
                "Seconds spent waiting for admission",
            ).observe(waited)

    def _count_rejected(self, reason: str, priority: str) -> None:
        self.rejected_total[reason] = self.rejected_total.get(reason, 0) + 1
        if self.metrics.enabled:
            self.metrics.counter(
                "pdw_service_rejected_total",
                "Queries refused by admission control",
                labelnames=("reason", "priority"),
            ).labels(reason=reason, priority=priority).inc()

    # -- the gate --------------------------------------------------------------

    def _prune(self) -> None:
        while self._heap and self._heap[0].state == _CANCELLED:
            heapq.heappop(self._heap)

    def admit(self, priority: str = "normal", tenant: str = "default",
              timeout_seconds: Optional[float] = None) -> AdmissionTicket:
        """Block until an execution slot is granted.

        Raises :class:`QueueFullError` immediately when the wait queue
        is at capacity, :class:`AdmissionTimeoutError` when the slot
        does not free up within the timeout (explicit argument, else
        the controller default, else wait forever), and
        :class:`ServiceClosedError` after :meth:`close`.
        """
        rank = PRIORITY_CLASSES[priority]
        if timeout_seconds is None:
            timeout_seconds = self.default_timeout_seconds
        started = time.monotonic()
        with self._cond:
            if self._closed:
                self._count_rejected("closed", priority)
                raise ServiceClosedError(
                    "service is closed", tenant, priority)
            self._prune()
            if not self._heap and self._in_flight < self.max_in_flight:
                self._in_flight += 1
                self._count_admitted(priority, 0.0)
                self._gauges()
                return AdmissionTicket(priority, tenant,
                                       next(self._seq))
            if self._queued >= self.max_queue:
                self._count_rejected("queue_full", priority)
                raise QueueFullError(
                    f"admission queue full "
                    f"({self._queued} waiting, cap {self.max_queue})",
                    tenant, priority)
            waiter = _Waiter(rank, next(self._seq))
            heapq.heappush(self._heap, waiter)
            self._queued += 1
            self._gauges()
            deadline = (started + timeout_seconds
                        if timeout_seconds is not None else None)
            try:
                while True:
                    if self._closed:
                        self._count_rejected("closed", priority)
                        raise ServiceClosedError(
                            "service closed while queued",
                            tenant, priority)
                    self._prune()
                    if (self._in_flight < self.max_in_flight
                            and self._heap
                            and self._heap[0] is waiter):
                        heapq.heappop(self._heap)
                        self._in_flight += 1
                        waited = time.monotonic() - started
                        self._count_admitted(priority, waited)
                        # Another slot may be free for the next waiter.
                        self._cond.notify_all()
                        return AdmissionTicket(
                            priority, tenant, waiter.seq,
                            queued_seconds=waited)
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            self._count_rejected("timeout", priority)
                            raise AdmissionTimeoutError(
                                f"no execution slot within "
                                f"{timeout_seconds:.3f}s "
                                f"(priority {priority!r})",
                                tenant, priority)
                    self._cond.wait(remaining)
            finally:
                if waiter.state == _WAITING and self._heap \
                        and waiter in self._heap:
                    waiter.state = _CANCELLED
                self._queued -= 1
                # A granted waiter was already popped; mark consistency
                # for the granted case where state stays _WAITING but
                # the record left the heap.
                if waiter.state == _CANCELLED:
                    self._cond.notify_all()
                self._gauges()

    def release(self, ticket: AdmissionTicket) -> None:
        """Return ``ticket``'s execution slot; wakes the best waiter."""
        with self._cond:
            if ticket.released:
                return
            ticket.released = True
            self._in_flight -= 1
            self._gauges()
            self._cond.notify_all()

    def close(self) -> None:
        """Refuse new work and wake every queued waiter with
        :class:`ServiceClosedError`.  In-flight queries finish."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- introspection ---------------------------------------------------------

    @property
    def in_flight(self) -> int:
        with self._cond:
            return self._in_flight

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return self._queued

    def stats(self) -> Dict[str, object]:
        with self._cond:
            return {
                "in_flight": self._in_flight,
                "queue_depth": self._queued,
                "max_in_flight": self.max_in_flight,
                "max_queue": self.max_queue,
                "admitted_total": self.admitted_total,
                "rejected_total": dict(self.rejected_total),
            }
