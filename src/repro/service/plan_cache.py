"""Parameterized plan cache: compile once, execute with many constants.

Industrial optimizers treat plan caching as table stakes: the same query
template arrives thousands of times per second with different literals,
and compiling each arrival from scratch would melt the control node.
The cache here implements the classic recipe:

1. **Normalize** (:func:`parameterize`): parse the query, lift every
   predicate/select literal to a positional parameter marker, and use
   the re-rendered SQL — markers instead of constants — as the cache
   key.  ``SELECT ... WHERE o_orderdate < DATE '1995-03-15'`` and the
   same query with ``'1997-06-01'`` share one key.
2. **Compile with sniffed constants**: on a miss the *original* SQL
   (real literals) is compiled, so cardinality estimation sees honest
   constants, and the resulting :class:`~repro.pdw.engine.CompiledQuery`
   is cached as the template for its shape.
3. **Re-bind on hit** (:func:`bind_params` + :func:`instantiate_plan`):
   a hit substitutes the new call's literals into every DSQL step's SQL
   (by parsing the step SQL and rewriting matching literal values), so
   the cached plan *shape* executes with the new constants and returns
   exactly the rows a fresh compilation would.

**What is never folded to a marker** — ``TOP n`` / ``LIMIT`` (the limit
is part of the plan: the control-node merge and per-step SQL bake it
in), literals inside interval/structure functions (``DATEADD``,
``SUBSTRING``, ``EXTRACT``, ``YEAR``), and ``ORDER BY`` / ``GROUP BY``
literals (positional semantics).  Those constants stay in the cache key,
so ``TOP 10`` and ``TOP 1000`` are distinct entries.  When a new
parameter vector cannot be substituted unambiguously (two parameter
positions shared one template value but now diverge, or a parameter
value collides with a structural constant in the template), the lookup
reports a miss and the query recompiles — correctness never depends on
substitution being possible.

Entries are LRU-evicted beyond ``capacity`` and invalidated when the
appliance's ``schema_version`` moves (DDL or data loads change the
statistics the template was costed against).  Hints participate in the
key, so a hinted query never reuses an unhinted plan.  All counters land
on the service's :class:`~repro.obs.metrics.MetricsRegistry` as
``pdw_service_plan_cache_*`` series.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.pdw.dsql import DsqlPlan
from repro.pdw.engine import CompiledQuery
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_query

#: Functions whose literal arguments shape the plan structurally —
#: interval arithmetic and string-position arguments feed cardinality
#: and output schema in ways a marker must not hide.  Their literals
#: stay verbatim in the cache key.
STABLE_FUNCTIONS = frozenset({"DATEADD", "SUBSTRING", "EXTRACT", "YEAR"})

#: One literal's identity: (type name, value, is_date).  The type name
#: keeps ``True`` and ``1`` apart (Python hashes them equal).
ParamValue = Tuple[str, object, bool]


def _param_value(literal: ast.Literal) -> ParamValue:
    return (type(literal.value).__name__, literal.value, literal.is_date)


class _Marker:
    """Renders as ``$pN`` inside the normalized key SQL."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def __repr__(self) -> str:
        return f"$p{self.index}"


@dataclass(frozen=True)
class QueryShape:
    """The normalized identity of a query: key + lifted parameters."""

    key: str
    params: Tuple[ParamValue, ...]
    structural: FrozenSet[ParamValue]

    @property
    def param_count(self) -> int:
        return len(self.params)


# -- AST literal transformation -------------------------------------------------

LiteralFn = Callable[[ast.Literal, bool], Optional[ast.Expr]]


def _transform_expr(expr: ast.Expr, fn: LiteralFn,
                    stable: bool) -> ast.Expr:
    """Rebuild ``expr`` bottom-up, replacing literals via ``fn``.

    ``fn(literal, stable)`` returns a replacement node or ``None`` to
    keep the literal; ``stable`` is True under contexts whose constants
    must stay in the key (see :data:`STABLE_FUNCTIONS`).
    """
    if isinstance(expr, ast.Literal):
        replacement = fn(expr, stable)
        return replacement if replacement is not None else expr
    if isinstance(expr, ast.BinaryOp):
        expr.left = _transform_expr(expr.left, fn, stable)
        expr.right = _transform_expr(expr.right, fn, stable)
    elif isinstance(expr, ast.UnaryOp):
        expr.operand = _transform_expr(expr.operand, fn, stable)
    elif isinstance(expr, ast.FuncCall):
        inner_stable = stable or expr.name.upper() in STABLE_FUNCTIONS
        expr.args = [_transform_expr(a, fn, inner_stable)
                     for a in expr.args]
    elif isinstance(expr, ast.Cast):
        expr.operand = _transform_expr(expr.operand, fn, stable)
    elif isinstance(expr, ast.CaseExpr):
        expr.whens = [
            (_transform_expr(cond, fn, stable),
             _transform_expr(result, fn, stable))
            for cond, result in expr.whens
        ]
        if expr.else_result is not None:
            expr.else_result = _transform_expr(expr.else_result, fn,
                                               stable)
    elif isinstance(expr, ast.InList):
        expr.operand = _transform_expr(expr.operand, fn, stable)
        expr.values = [_transform_expr(v, fn, stable)
                       for v in expr.values]
    elif isinstance(expr, ast.InSubquery):
        expr.operand = _transform_expr(expr.operand, fn, stable)
        _transform_select(expr.subquery, fn)
    elif isinstance(expr, ast.ExistsExpr):
        _transform_select(expr.subquery, fn)
    elif isinstance(expr, ast.ScalarSubquery):
        _transform_select(expr.subquery, fn)
    elif isinstance(expr, ast.Between):
        expr.operand = _transform_expr(expr.operand, fn, stable)
        expr.low = _transform_expr(expr.low, fn, stable)
        expr.high = _transform_expr(expr.high, fn, stable)
    elif isinstance(expr, ast.Like):
        expr.operand = _transform_expr(expr.operand, fn, stable)
        expr.pattern = _transform_expr(expr.pattern, fn, stable)
    elif isinstance(expr, ast.IsNull):
        expr.operand = _transform_expr(expr.operand, fn, stable)
    return expr


def _transform_from_item(item: ast.FromItem, fn: LiteralFn) -> None:
    if isinstance(item, ast.DerivedTable):
        _transform_select(item.subquery, fn)
    elif isinstance(item, ast.JoinClause):
        _transform_from_item(item.left, fn)
        _transform_from_item(item.right, fn)
        if item.condition is not None:
            item.condition = _transform_expr(item.condition, fn, False)


def _transform_select(stmt: ast.SelectStatement, fn: LiteralFn) -> None:
    for item in stmt.select_items:
        item.expr = _transform_expr(item.expr, fn, False)
    for from_item in stmt.from_items:
        _transform_from_item(from_item, fn)
    if stmt.where is not None:
        stmt.where = _transform_expr(stmt.where, fn, False)
    # GROUP BY / ORDER BY literals carry positional semantics — keep
    # them in the key (stable context).
    stmt.group_by = [_transform_expr(e, fn, True) for e in stmt.group_by]
    if stmt.having is not None:
        stmt.having = _transform_expr(stmt.having, fn, False)
    for order in stmt.order_by:
        order.expr = _transform_expr(order.expr, fn, True)


def _transform_statement(stmt, fn: LiteralFn) -> None:
    if isinstance(stmt, ast.UnionSelect):
        for select in stmt.selects:
            _transform_select(select, fn)
        for order in stmt.order_by:
            order.expr = _transform_expr(order.expr, fn, True)
    else:
        _transform_select(stmt, fn)


# -- normalization --------------------------------------------------------------

def parameterize(sql: str,
                 hints: Optional[Tuple[Tuple[str, str], ...]] = None
                 ) -> QueryShape:
    """Lift literals to markers; return the query's cache identity.

    ``TOP``/``LIMIT`` values are integer attributes of the statement
    (not literal nodes), so they survive into the key by construction;
    stable-context literals (see module docstring) are kept verbatim
    and recorded in ``structural`` so :func:`bind_params` can refuse
    ambiguous substitutions.
    """
    statement = parse_query(sql)
    params: List[ParamValue] = []
    structural: set = set()

    def lift(literal: ast.Literal, stable: bool) -> Optional[ast.Expr]:
        if literal.value is None or isinstance(literal.value, bool):
            # NULL / TRUE / FALSE are predicate structure, not data.
            structural.add(_param_value(literal))
            return None
        if stable:
            structural.add(_param_value(literal))
            return None
        params.append(_param_value(literal))
        return ast.Literal(_Marker(len(params) - 1), is_date=False)

    _transform_statement(statement, lift)
    key = statement.to_sql()
    if hints:
        key += " /*hints:" + ",".join(
            f"{table}={strategy}" for table, strategy in hints) + "*/"
    return QueryShape(key=key, params=tuple(params),
                      structural=frozenset(structural))


def bind_params(template: Tuple[ParamValue, ...],
                requested: Tuple[ParamValue, ...],
                structural: FrozenSet[ParamValue]
                ) -> Optional[Dict[ParamValue, ParamValue]]:
    """The literal substitution map turning the template's constants
    into the requested call's, or ``None`` when substitution would be
    ambiguous (the caller then recompiles).

    Ambiguity arises when two parameter positions carried the same
    value in the template but now diverge — a value-based rewrite of
    the step SQL could not tell them apart — or when a value slated for
    rewriting also appears as a structural constant of the template.
    An identical parameter vector yields the empty map (pure hit, no
    rewriting needed).
    """
    if len(template) != len(requested):
        return None  # different shape despite equal key; recompile
    mapping: Dict[ParamValue, ParamValue] = {}
    for old, new in zip(template, requested):
        seen = mapping.get(old)
        if seen is not None and seen != new:
            return None
        mapping[old] = new
    mapping = {old: new for old, new in mapping.items() if old != new}
    if any(old in structural for old in mapping):
        return None
    return mapping


def rewrite_literals(sql: str,
                     mapping: Dict[ParamValue, ParamValue]) -> str:
    """Re-render ``sql`` with every literal found in ``mapping``
    replaced by its new value.  Used on DSQL step SQL, which is always
    parseable (the runtime itself parses it per step)."""
    statement = parse_query(sql)

    def substitute(literal: ast.Literal, stable: bool
                   ) -> Optional[ast.Expr]:
        del stable  # structural collisions were excluded by bind_params
        new = mapping.get(_param_value(literal))
        if new is None:
            return None
        _type_name, value, is_date = new
        return ast.Literal(value, is_date=is_date)

    _transform_statement(statement, substitute)
    return statement.to_sql()


# -- plan instantiation ---------------------------------------------------------

def instantiate_plan(compiled: CompiledQuery,
                     mapping: Optional[Dict[ParamValue, ParamValue]],
                     execution_id: int
                     ) -> Tuple[DsqlPlan, List[str]]:
    """An executable copy of the template's DSQL plan for one execution.

    Two rewrites happen here:

    * **parameter substitution** — when ``mapping`` is non-empty, each
      step's SQL is re-rendered with the new literal values;
    * **temp-table namespacing** — every destination temp table gets an
      execution-unique name (``TEMP_ID_1`` → ``TEMP_ID_1_E42``) and all
      step SQL referencing it is renamed, so concurrent executions of
      the same (or different) plans never collide on the appliance.

    Returns the new plan plus the temp names this execution owns; the
    caller drops exactly those afterwards.
    """
    renames: List[Tuple[str, str]] = []
    steps = []
    for step in compiled.dsql_plan.steps:
        sql = rewrite_literals(step.sql, mapping) if mapping else step.sql
        new_step = replace(step, sql=sql)
        if step.destination_table is not None:
            old_name = step.destination_table.name
            new_name = f"{old_name}_E{execution_id}"
            renames.append((old_name, new_name))
            new_step = replace(
                new_step,
                destination_table=replace(step.destination_table,
                                          name=new_name))
        steps.append(new_step)
    for i, step in enumerate(steps):
        sql = step.sql
        for old_name, new_name in renames:
            # Word-boundary replace is exact: TEMP_ID_1 never matches
            # inside TEMP_ID_10, and the _E suffix keeps the property.
            sql = re.sub(r"\b" + re.escape(old_name) + r"\b", new_name,
                         sql, flags=re.IGNORECASE)
        if sql != step.sql:
            steps[i] = replace(step, sql=sql)
    plan = replace(compiled.dsql_plan, steps=steps)
    return plan, [new_name for _old, new_name in renames]


# -- the cache ------------------------------------------------------------------

@dataclass
class CacheEntry:
    """One cached template: the shape it serves and its compilation."""

    shape: QueryShape
    compiled: CompiledQuery
    schema_version: int
    compile_count: int = 1
    hits: int = 0
    misses_ambiguous: int = 0

    # Executions of this entry observed so far (hammer tests assert
    # compile_count == 1 while executions >> 1).
    executions: int = field(default=0)


class PlanCache:
    """LRU cache of compiled query templates keyed on normalized shape.

    Thread-safe; all mutation happens under one lock.  The cache never
    compiles — the service owns single-flight compilation — it only
    stores, looks up, evicts and invalidates.
    """

    def __init__(self, capacity: int = 64,
                 metrics: MetricsRegistry = NULL_METRICS):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self.metrics = metrics
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # -- metric plumbing -------------------------------------------------------

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics.enabled:
            self.metrics.counter(
                f"pdw_service_plan_cache_{name}",
                f"Parameterized plan cache {name}").inc(amount)

    def _set_size(self) -> None:
        if self.metrics.enabled:
            self.metrics.gauge(
                "pdw_service_plan_cache_size",
                "Entries currently cached").set(len(self._entries))

    # -- operations ------------------------------------------------------------

    def lookup(self, shape: QueryShape,
               schema_version: int) -> Optional[CacheEntry]:
        """The entry serving ``shape``, or ``None`` (counted as a miss).

        An entry compiled under an older ``schema_version`` is dropped
        (DDL invalidation) and reported as a miss.
        """
        with self._lock:
            entry = self._entries.get(shape.key)
            if entry is not None and entry.schema_version != schema_version:
                del self._entries[shape.key]
                self.invalidations += 1
                self._count("invalidations")
                self._set_size()
                entry = None
            if entry is None:
                self.misses += 1
                self._count("misses")
                return None
            self._entries.move_to_end(shape.key)
            entry.hits += 1
            self.hits += 1
            self._count("hits")
            return entry

    def peek(self, key: str) -> Optional[CacheEntry]:
        """Lookup without counting or LRU movement (single-flight
        re-checks and tests)."""
        with self._lock:
            return self._entries.get(key)

    def insert(self, entry: CacheEntry) -> CacheEntry:
        """Insert (or return the racing winner for) ``entry.shape``."""
        with self._lock:
            existing = self._entries.get(entry.shape.key)
            if existing is not None \
                    and existing.schema_version == entry.schema_version:
                return existing
            self._entries[entry.shape.key] = entry
            self._entries.move_to_end(entry.shape.key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._count("evictions")
            self._set_size()
            return entry

    def invalidate_all(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
            self._count("invalidations", dropped)
            self._set_size()
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self) -> List[CacheEntry]:
        with self._lock:
            return list(self._entries.values())

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
