"""``PdwService`` — the multi-user front end over one appliance.

Where :class:`repro.session.PdwSession` is one user compiling and running
one query at a time, the service is the control node of a busy appliance:
many client threads call :meth:`PdwService.execute` concurrently and each
call flows through

1. **admission** — :class:`repro.service.AdmissionController` grants an
   execution slot (bounded queue, priority classes, typed
   reject/timeout errors);
2. **the parameterized plan cache** — the query is normalized
   (:func:`repro.service.parameterize`), served from cache on a hit,
   compiled once per shape on a miss (single-flight: concurrent misses
   on the same shape wait for one compilation);
3. **instantiation** — the cached template is stamped out for this
   execution: new literals substituted into the step SQL and temp
   tables renamed into a private namespace, so concurrent executions
   never collide on the appliance;
4. **execution** on the shared :class:`repro.appliance.runner.DsqlRunner`
   (steps DAG-scheduled, nodes thread-parallel when the parallel
   runtime is on);
5. **accounting** — per-tenant counters, phase latency histograms and
   cache/admission gauges on the service's
   :class:`~repro.obs.metrics.MetricsRegistry`, rendered by
   :meth:`PdwService.metrics_text` in Prometheus text format.

Every call returns the same enriched
:class:`~repro.appliance.runner.QueryResult` the session produces —
rows, columns, the compiled-plan handle, the cache-hit flag and a
queue/compile/execute timing breakdown.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro.appliance.runner import DsqlRunner, ExecutionTiming, QueryResult
from repro.appliance.storage import Appliance
from repro.catalog.shell_db import ShellDatabase
from repro.common.errors import ReproError, ServiceClosedError
from repro.obs.metrics import MetricsRegistry
from repro.obs.query_store import QueryStore
from repro.obs.requests import DEFAULT_SLOW_SECONDS, RequestRegistry
from repro.obs.system_views import (
    mentions_system_views,
    refresh_system_views,
    register_system_views,
)
from repro.optimizer.search import OptimizerConfig
from repro.pdw.engine import CompiledQuery, PdwEngine
from repro.pdw.enumerator import PdwConfig
from repro.service.admission import AdmissionController
from repro.service.options import ExecutionOptions
from repro.service.plan_cache import (
    CacheEntry,
    PlanCache,
    QueryShape,
    bind_params,
    instantiate_plan,
    parameterize,
)
from repro.telemetry import NULL_TRACER
from repro.workloads.tpch_datagen import build_tpch_appliance


class PdwService:
    """Accepts many concurrent queries over one simulated appliance.

    Thread-safe by construction: clients call :meth:`execute` from
    their own threads (or :meth:`submit` for a future-based interface).
    Compilation is serialized — the engine is not thread-safe and a
    warm cache makes compiles rare — while executions overlap freely.
    """

    def __init__(self, *,
                 scale: float = 0.002,
                 node_count: int = 8,
                 appliance: Optional[Appliance] = None,
                 shell: Optional[ShellDatabase] = None,
                 options: Optional[ExecutionOptions] = None,
                 serial_config: Optional[OptimizerConfig] = None,
                 pdw_config: Optional[PdwConfig] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 plan_cache_size: int = 64,
                 max_in_flight: int = 4,
                 max_queue: int = 32,
                 default_timeout_seconds: Optional[float] = None,
                 admission: Optional[AdmissionController] = None,
                 requests: Optional[RequestRegistry] = None,
                 query_store: Optional[QueryStore] = None,
                 slow_seconds: Optional[float] = None):
        if (appliance is None) != (shell is None):
            raise ReproError(
                "pass both appliance and shell, or neither "
                "(a shell database must describe its appliance)")
        if appliance is None:
            appliance, shell = build_tpch_appliance(scale=scale,
                                                    node_count=node_count)
        self.appliance = appliance
        self.shell = shell
        self.options = (options or ExecutionOptions()).resolved(
            default_parallel=True)
        # The service *is* an observability surface: metrics default on.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.engine = PdwEngine(shell, serial_config, pdw_config,
                                tracer=NULL_TRACER)
        self.runner = DsqlRunner(appliance, tracer=NULL_TRACER,
                                 executor=self.options.executor,
                                 metrics=self.metrics,
                                 parallel=self.options.parallel)
        self.plan_cache = PlanCache(plan_cache_size, metrics=self.metrics)
        self.admission = admission or AdmissionController(
            max_in_flight=max_in_flight, max_queue=max_queue,
            default_timeout_seconds=default_timeout_seconds,
            metrics=self.metrics)
        # Request lifecycle: live by default (the service is the busy
        # appliance's control node); pass a shared registry to correlate
        # with sessions, or NULL_REQUESTS to opt out entirely.  The
        # slow-query threshold resolves ctor arg > options field >
        # module default; an explicitly passed registry keeps its own.
        if requests is not None:
            self.requests = requests
        else:
            threshold = slow_seconds
            if threshold is None:
                threshold = self.options.slow_seconds
            if threshold is None:
                threshold = DEFAULT_SLOW_SECONDS
            self.requests = RequestRegistry(
                slow_threshold_seconds=threshold)
        # Query store: the persistent plan/runtime-stats history, live
        # by default; pass NULL_QUERY_STORE to opt out at zero cost.
        self.query_store = (query_store if query_store is not None
                            else QueryStore())
        if self.requests.enabled or self.query_store.enabled:
            register_system_views(appliance)
        self._compile_lock = threading.Lock()
        self._key_locks: Dict[str, threading.Lock] = {}
        self._key_locks_guard = threading.Lock()
        self._execution_ids = itertools.count(1)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._closed = False

    # -- public API ------------------------------------------------------------

    def execute(self, sql: str, *,
                options: Optional[ExecutionOptions] = None,
                tenant: Optional[str] = None,
                priority: Optional[str] = None,
                timeout_seconds: Optional[float] = None) -> QueryResult:
        """Admit, compile-or-hit, instantiate and run one query.

        ``options`` overrides the service defaults for this call;
        ``tenant``/``priority``/``timeout_seconds`` are conveniences
        overriding the corresponding options fields.  Raises the typed
        admission errors (:class:`~repro.common.errors.QueueFullError`,
        :class:`~repro.common.errors.AdmissionTimeoutError`,
        :class:`~repro.common.errors.ServiceClosedError`) and the usual
        compilation/execution errors.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        opts = (options or self.options).resolved(default_parallel=True)
        overrides = {}
        if tenant is not None:
            overrides["tenant"] = tenant
        if priority is not None:
            overrides["priority"] = priority
        if timeout_seconds is not None:
            overrides["timeout_seconds"] = timeout_seconds
        if overrides:
            opts = opts.override(**overrides)
        started = time.perf_counter()
        request = self.requests.begin(sql, tenant=opts.tenant,
                                      priority=opts.priority)
        # Refresh after begin so a DMV query observes itself (queued).
        if (self.requests.enabled or self.query_store.enabled) \
                and mentions_system_views(sql):
            self.refresh_system_views()
        try:
            ticket = self.admission.admit(
                priority=opts.priority, tenant=opts.tenant,
                timeout_seconds=opts.timeout_seconds)
        except Exception as exc:
            request.rejected(str(exc))
            raise
        try:
            request.compiling()
            compiled, cache_hit, compile_seconds, mapping = \
                self._compiled_for(sql, opts)
            plan, temp_names = instantiate_plan(
                compiled, mapping, next(self._execution_ids))
            execute_started = time.perf_counter()
            try:
                result = self.runner.run(plan, keep_temps=True,
                                         request=request)
            finally:
                for name in temp_names:
                    self.appliance.drop_table(name)
            execute_seconds = time.perf_counter() - execute_started
        except Exception as exc:
            self.admission.release(ticket)
            request.failed(str(exc),
                           total_seconds=time.perf_counter() - started)
            self._account(opts, outcome="failed",
                          seconds=time.perf_counter() - started)
            raise
        self.admission.release(ticket)
        total = time.perf_counter() - started
        result.plan = compiled
        result.cache_hit = cache_hit
        result.timing = ExecutionTiming(
            queue_seconds=ticket.queued_seconds,
            compile_seconds=compile_seconds,
            execute_seconds=execute_seconds,
            total_seconds=total,
        )
        result.request_id = request.request_id
        request.complete(rows=len(result.rows), cache_hit=cache_hit,
                         queue_seconds=ticket.queued_seconds,
                         compile_seconds=compile_seconds,
                         execute_seconds=execute_seconds,
                         total_seconds=total)
        if self.query_store.enabled:
            # Stamp the *template* plan — instantiated plans carry
            # per-execution temp names that would split the hash.
            self.query_store.stamp(
                sql, compiled.dsql_plan, result,
                schema_version=self.appliance.schema_version,
                cache_hit=cache_hit, timing=result.timing)
        self._account(opts, outcome="ok", seconds=total,
                      timing=result.timing, cache_hit=cache_hit)
        return result

    def submit(self, sql: str, **kwargs) -> "Future[QueryResult]":
        """:meth:`execute` on the service's client pool; returns a
        future.  Handy for fire-and-gather callers; benchmarks drive
        their own client threads instead."""
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=max(2, self.admission.max_in_flight),
                    thread_name_prefix="repro-client")
            pool = self._pool
        return pool.submit(self.execute, sql, **kwargs)

    def execute_many(self, statements: Sequence[str], **kwargs
                     ) -> List[QueryResult]:
        """Run a batch concurrently through :meth:`submit`; results in
        input order; the first failure propagates after the batch
        drains."""
        futures = [self.submit(sql, **kwargs) for sql in statements]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Stop admitting, wake queued waiters, shut the client pool."""
        self._closed = True
        self.admission.close()
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "PdwService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- plan acquisition ------------------------------------------------------

    def _compiled_for(self, sql: str, opts: ExecutionOptions):
        """(compiled template, cache_hit, compile_seconds, mapping).

        Cache path: normalize, look up, and on a miss compile exactly
        once per shape (per-key single-flight around one global compile
        lock — the engine shares mutable optimizer state).  A hit whose
        parameter vector cannot be bound unambiguously falls back to a
        private compilation, uncached.
        """
        if not opts.use_plan_cache:
            compiled, seconds = self._compile(sql, opts)
            return compiled, False, seconds, None
        shape = parameterize(sql, hints=opts.hints)
        version = self.appliance.schema_version
        entry = self.plan_cache.lookup(shape, version)
        if entry is None:
            entry, seconds, racing_hit = self._compile_into_cache(
                shape, sql, opts, version)
            if not racing_hit:
                entry.executions += 1
                return entry.compiled, False, seconds, None
        mapping = bind_params(entry.shape.params, shape.params,
                              entry.shape.structural)
        if mapping is None:
            # Ambiguous substitution: recompile privately for
            # correctness; keep the cached template for future calls.
            entry.misses_ambiguous += 1
            compiled, seconds = self._compile(sql, opts)
            return compiled, False, seconds, None
        entry.executions += 1
        return entry.compiled, True, 0.0, mapping or None

    def _compile_into_cache(self, shape: QueryShape, sql: str,
                            opts: ExecutionOptions, version: int):
        """Single-flight compile of ``shape``: the first thread in
        compiles and inserts; racers wait on the per-key lock and then
        find the entry.  Returns (entry, compile_seconds, racing_hit)
        where ``racing_hit`` says this thread found a ready entry
        instead of compiling."""
        with self._key_locks_guard:
            key_lock = self._key_locks.setdefault(shape.key,
                                                  threading.Lock())
        with key_lock:
            existing = self.plan_cache.peek(shape.key)
            if existing is not None \
                    and existing.schema_version == version:
                return existing, 0.0, True
            compiled, seconds = self._compile(sql, opts)
            entry = self.plan_cache.insert(CacheEntry(
                shape=shape, compiled=compiled, schema_version=version))
            return entry, seconds, False

    def _compile(self, sql: str, opts: ExecutionOptions):
        started = time.perf_counter()
        with self._compile_lock:
            compiled = self.engine.compile(sql, hints=opts.hints_dict)
        seconds = time.perf_counter() - started
        if self.metrics.enabled:
            self.metrics.histogram(
                "pdw_service_compile_seconds",
                "Wall-clock seconds spent compiling on a cache miss",
            ).observe(seconds)
        return compiled, seconds

    # -- accounting ------------------------------------------------------------

    def _account(self, opts: ExecutionOptions, outcome: str,
                 seconds: float,
                 timing: Optional[ExecutionTiming] = None,
                 cache_hit: bool = False) -> None:
        if not self.metrics.enabled:
            return
        self.metrics.counter(
            "pdw_service_queries_total",
            "Queries per tenant, priority and outcome",
            labelnames=("tenant", "priority", "outcome"),
        ).labels(tenant=opts.tenant, priority=opts.priority,
                 outcome=outcome).inc()
        self.metrics.counter(
            "pdw_service_tenant_seconds_total",
            "Wall-clock seconds consumed per tenant",
            labelnames=("tenant",),
        ).labels(tenant=opts.tenant).inc(seconds)
        latency = self.metrics.histogram(
            "pdw_service_latency_seconds",
            "End-to-end and per-phase service latency",
            labelnames=("phase",))
        latency.labels(phase="total").observe(seconds)
        if timing is not None:
            latency.labels(phase="queue").observe(timing.queue_seconds)
            latency.labels(phase="compile").observe(
                timing.compile_seconds)
            latency.labels(phase="execute").observe(
                timing.execute_seconds)

    # -- introspection ---------------------------------------------------------

    def refresh_system_views(self) -> None:
        """Materialize the ``sys.dm_pdw_*`` snapshot tables from the
        live registry, plan cache and admission controller.  Called
        automatically whenever an executed query mentions a system
        view; callable directly to pre-warm them."""
        refresh_system_views(self.appliance, self.requests,
                             plan_cache=self.plan_cache,
                             admission=self.admission,
                             query_store=self.query_store)

    def metrics_text(self) -> str:
        """The service registry in Prometheus text exposition format."""
        return self.metrics.render_prometheus()

    def stats(self) -> Dict[str, object]:
        return {
            "plan_cache": self.plan_cache.stats(),
            "admission": self.admission.stats(),
            "requests": self.requests.stats(),
            "query_store": self.query_store.stats(),
            "schema_version": self.appliance.schema_version,
        }
